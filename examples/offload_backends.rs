//! In-network compute backend tour: the same collectives on the same
//! fabric, with the receive-side compute placed on four different
//! devices — BlueField-3 DPA, a host-CPU progress thread, an FPGA
//! SmartNIC, and SHARP-style in-switch reduction.
//!
//! ```text
//! cargo run --release --example offload_backends
//! ```

use mcast_allgather::core::{
    des, run_concurrent_ag_rs, run_concurrent_ag_rs_endpoint, CollectiveKind, ProtocolConfig,
};
use mcast_allgather::models::{algbw_gbps, busbw_gbps, CollectiveOp};
use mcast_allgather::offload::{ArrivalModel, BackendKind, DatapathTransport, Placement};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::LinkRate;

fn main() {
    // Device level: each backend's receive datapath on one context,
    // 4 KiB chunks, saturated arrivals — the Table-I measurement, now
    // answerable for any backend through the one trait.
    println!("single-context datapath (4 KiB chunks, saturated arrivals):");
    println!(
        "  {:<14} {:<13} {:>9} {:>9} {:>10} {:>9}",
        "backend", "placement", "UC GiB/s", "UD GiB/s", "setup (us)", "contexts"
    );
    for kind in BackendKind::ALL {
        let be = kind.instantiate();
        let dp = |t| be.datapath(t, 1, 4096, 20_000, ArrivalModel::Saturated);
        let uc = dp(DatapathTransport::Uc);
        let ud = dp(DatapathTransport::Ud);
        println!(
            "  {:<14} {:<13} {:>9.1} {:>9.1} {:>10.1} {:>9}",
            kind.label(),
            match be.placement() {
                Placement::EndpointNic => "endpoint NIC",
                Placement::HostCore => "host core",
                Placement::InSwitch => "in-switch",
            },
            uc.gib_per_s,
            ud.gib_per_s,
            be.setup_ns() as f64 / 1e3,
            be.limits().contexts
        );
    }

    // Fabric level: compile each backend into the per-CQE endpoint
    // cost the DES fabric charges, and run a 16-rank Allgather.
    let topo = || Topology::single_switch(16, LinkRate::CX3_56G, 100);
    let p: u32 = 16;
    let n: usize = 64 << 10;
    let fabric_for = |kind: BackendKind| {
        let be = kind.instantiate();
        let mut cfg = FabricConfig::ucc_default();
        cfg.host = be.host_model(ProtocolConfig::default().mtu.bytes());
        cfg.inc_table_capacity = be.limits().aggregation_entries;
        cfg
    };
    println!("\n64 KiB Allgather, 16 ranks on one 56G switch:");
    for kind in BackendKind::ALL {
        let out = des::run_collective(
            topo(),
            fabric_for(kind),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done());
        let gathered = n as u64 * p as u64;
        let alg = algbw_gbps(gathered, out.completion_ns());
        println!(
            "  {:<14} {:>8.1} us   algbw {:>5.1} Gbit/s {}",
            kind.label(),
            out.completion_ns() as f64 / 1e3,
            alg,
            "#".repeat(alg as usize / 2)
        );
    }

    // Where placement really bites: the concurrent {AG_mc, RS} pair.
    // Endpoint backends reduce at the shard owners (every operand
    // crosses the wire); the SHARP backend folds partial aggregates in
    // the switches, so less payload moves and busbw jumps.
    println!("\n16 KiB AG+RS pair (AllReduce decomposition), same fabric:");
    let n: usize = 16 << 10;
    for kind in BackendKind::ALL {
        let be = kind.instantiate();
        let proto = ProtocolConfig {
            chains: p,
            ..ProtocolConfig::default()
        };
        let out = if be.placement() == Placement::InSwitch {
            run_concurrent_ag_rs(topo(), fabric_for(kind), proto, n)
        } else {
            run_concurrent_ag_rs_endpoint(topo(), fabric_for(kind), proto, n)
        };
        assert!(out.stats.all_done());
        let bytes = n as u64 * p as u64;
        let ns = out.pair_completion_ns();
        println!(
            "  {:<14} {:>8.1} us   busbw {:>5.1} Gbit/s   wire {:>5.1} MiB ({})",
            kind.label(),
            ns as f64 / 1e3,
            busbw_gbps(CollectiveOp::AllReduce, p, bytes, ns),
            out.traffic.total_data_bytes() as f64 / (1 << 20) as f64,
            if be.placement() == Placement::InSwitch {
                "reduced in-switch"
            } else {
                "reduced at endpoints"
            }
        );
    }
    println!(
        "\nfull sweep up to 512 ranks: cargo run --release -p mcag-bench --bin figures backendfigs"
    );
}
