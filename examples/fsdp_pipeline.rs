//! FSDP training-step communication: interleaved Allgather (parameter
//! fetch) and Reduce-Scatter (gradient sync) competing for the NIC —
//! the motivating scenario of the paper's Section II.
//!
//! Compares the classic `{ring AG, ring RS}` pair against the
//! bandwidth-optimal `{multicast AG, in-network RS}` pair on the same
//! simulated fabric and reports the measured speedup next to the
//! analytic bound `S = 2 − 2/P` (Appendix B).
//!
//! ```text
//! cargo run --release --example fsdp_pipeline
//! ```

use mcast_allgather::baselines::{ring_allgather, ring_reduce_scatter, run_p2p_concurrent};
use mcast_allgather::core::{run_concurrent_ag_rs, ProtocolConfig};
use mcast_allgather::models::concurrent_speedup;
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::{LinkRate, Mtu};

fn main() {
    // One transformer layer shard per rank.
    let shard = 512 << 10; // 512 KiB
    println!("FSDP step: Allgather(N) + Reduce-Scatter(N*P) per layer, N = 512 KiB\n");
    println!(
        "{:>6}  {:>16}  {:>16}  {:>9}  {:>9}",
        "ranks", "ring+ring (us)", "mcast+INC (us)", "speedup", "2-2/P"
    );
    for p in [4u32, 8, 16, 32] {
        let topo = || Topology::single_switch(p as usize, LinkRate::CX3_56G, 100);

        // Baseline: both collectives as rings, sharing the NIC.
        let ring = run_p2p_concurrent(
            topo(),
            FabricConfig::ideal(),
            vec![ring_allgather(p, shard), ring_reduce_scatter(p, shard)],
            64 << 10,
        );
        assert!(ring.stats.all_done());
        let t_ring = ring.flow_completion_ns(0).max(ring.flow_completion_ns(1));

        // Bandwidth-optimal: multicast AG + switch-reduced RS.
        let opt = run_concurrent_ag_rs(
            topo(),
            FabricConfig::ideal(),
            ProtocolConfig {
                chains: p, // fully parallel multicast, the fluid-model regime
                mtu: Mtu::new(16 << 10),
                ..ProtocolConfig::default()
            },
            shard,
        );
        assert!(opt.stats.all_done());
        let t_opt = opt.pair_completion_ns();

        println!(
            "{:>6}  {:>16.1}  {:>16.1}  {:>8.2}x  {:>8.2}x",
            p,
            t_ring as f64 / 1e3,
            t_opt as f64 / 1e3,
            t_ring as f64 / t_opt as f64,
            concurrent_speedup(p),
        );
    }
    println!(
        "\nthe pair approaches 2x because the optimal collectives do not share a NIC\n\
         direction: multicast AG is receive-bound, in-network RS is send-bound (Insight 2)"
    );
}
