//! SmartNIC offloading demo: the DPA receive datapath from one hardware
//! thread to half the accelerator, against the single-core host CPU —
//! the story of the paper's Figs. 5/13/16 and Table I.
//!
//! ```text
//! cargo run --release --example dpa_offload
//! ```

use mcast_allgather::dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};

fn main() {
    let spec = DpaSpec::bf3();
    println!(
        "DPA complex: {} cores x {} threads @ {} GHz, {} KiB LLC\n",
        spec.cores,
        spec.core.threads,
        spec.core.freq_ghz,
        spec.llc_bytes >> 10
    );

    // Table I: single-thread metrics.
    println!("single-thread datapath metrics (8 MiB buffer, 4 KiB chunks):");
    println!(
        "  {:<8} {:>10} {:>10} {:>10} {:>6}",
        "path", "GiB/s", "instr/CQE", "cyc/CQE", "IPC"
    );
    for kind in [KernelKind::DpaUc, KernelKind::DpaUd] {
        let m = run_datapath(
            &spec,
            &Kernel::new(kind),
            1,
            4096,
            2048 * 10,
            ArrivalModel::Saturated,
        );
        println!(
            "  {:<8} {:>10.1} {:>10.0} {:>10.0} {:>6.2}",
            format!("{kind:?}"),
            m.gib_per_s,
            m.instr_per_cqe,
            m.cycles_per_cqe,
            m.ipc
        );
    }

    // Thread scaling at 200 Gbit/s (Fig. 13): latency hiding in action.
    let link = ArrivalModel::LinkRate {
        gbps: 200.0,
        header_bytes: 64,
    };
    println!("\nUD thread scaling on one core against a 200 Gbit/s link:");
    for t in [1u32, 2, 4, 8, 16] {
        let m = run_datapath(
            &spec,
            &Kernel::new(KernelKind::DpaUd),
            t,
            4096,
            20_000,
            link,
        );
        let bar = "#".repeat((m.goodput_gbps / 4.0) as usize);
        println!("  {t:>2} threads: {:>6.1} Gbit/s {bar}", m.goodput_gbps);
    }

    let cpu = run_datapath(
        &DpaSpec::host_cpu(),
        &Kernel::new(KernelKind::CpuRcCustom),
        1,
        4096,
        20_000,
        link,
    );
    println!(
        "  1 x86 core: {:>6.1} Gbit/s {} (no hardware threads to hide latency)",
        cpu.goodput_gbps,
        "#".repeat((cpu.goodput_gbps / 4.0) as usize)
    );

    // Fig. 16: can this silicon drive a 1.6 Tbit/s link?
    let need = 1.6e12 / 8.0 / 4096.0 / 1e6;
    println!("\n64 B chunk rate toward Tbit/s links (needs {need:.1} Mchunks/s):");
    for t in [16u32, 64, 128] {
        let m = run_datapath(
            &spec,
            &Kernel::new(KernelKind::DpaUd),
            t,
            64,
            2_000 * t as u64,
            ArrivalModel::Saturated,
        );
        let verdict = if m.chunks_per_sec / 1e6 >= need {
            "sustains 1.6 Tbit/s"
        } else {
            "below target"
        };
        println!(
            "  {t:>3} threads: {:>6.1} Mchunks/s  ({verdict})",
            m.chunks_per_sec / 1e6
        );
    }
}
