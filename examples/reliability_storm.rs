//! Reliability under fire: real bytes through the threaded fabric with
//! aggressive drop/reorder injection and a starved staging ring, ending
//! in a byte-exact Allgather — the slow-path machinery of Section III-C
//! (cutoff timer, fetch ring, recursive recovery) doing its job.
//!
//! ```text
//! cargo run --release --example reliability_storm
//! ```

use mcast_allgather::memfabric::collective::{
    allgather_fixture, expected_allgather, run_threaded, ThreadedConfig,
};
use mcast_allgather::memfabric::MemFabricConfig;
use std::time::Duration;

fn main() {
    let p = 6u32;
    let n = 96 << 10; // 96 KiB per rank = 24 chunks each
    let (plan, bufs) = allgather_fixture(p, n, 2, 2);

    println!(
        "threaded allgather: {p} ranks x {} KiB, 2 subgroups, 2 chains",
        n >> 10
    );
    for (drop, reorder, slots, label) in [
        (0.0, 0.0, 256, "clean fabric"),
        (0.05, 0.0, 256, "5% datagram loss"),
        (0.0, 0.4, 256, "40% reordering (adaptive routing)"),
        (0.10, 0.3, 256, "10% loss + 30% reordering"),
        (0.0, 0.0, 2, "2-slot staging ring (RNR storm)"),
    ] {
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(drop, reorder, 0xbad5eed),
            staging_slots: slots,
            cutoff: Duration::from_millis(20),
            watchdog: Duration::from_secs(60),
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let report = run_threaded(&plan, &cfg, &bufs);
        let elapsed = t0.elapsed();

        let expect = expected_allgather(&bufs);
        let correct = report.recv_bufs.iter().all(|b| b == &expect);
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        let dups: u64 = report.stats.iter().map(|s| s.duplicate_chunks).sum();
        let rnr: u64 = report.stats.iter().map(|s| s.staging_drops).sum();
        println!(
            "  {label:<36} -> {} in {elapsed:>8.1?} | fetched {fetched:>4} chunks, \
             {dups:>3} dups, {rnr:>5} RNR drops",
            if correct { "byte-exact" } else { "CORRUPTED" },
        );
        assert!(correct, "receive buffers diverged under {label}");
    }
    println!("\nevery run converged to the exact concatenation of all send buffers");
}
