//! The multi-tenant collective service: ten tenants submit a mixed
//! Broadcast / Allgather / AG+RS workload through the runtime scheduler,
//! contending for a multicast-group table smaller than the tenant count.
//!
//! Demonstrates the `mcag-runtime` layer end to end: admission, fair
//! batching, group-pool reuse with LRU eviction (hit rate < 100% by
//! construction — the table cannot hold every tenant's trees), and the
//! per-tenant latency/queueing stats. The whole run is deterministic: it
//! executes twice and asserts the reports are identical.
//!
//! A second act drives the same service **open-loop**: a seeded Poisson
//! arrival stream over an NCCL-style op/size mix, scheduled with
//! cross-batch pipelining over two fabric partitions and committed in
//! virtual-time order, reporting offered load, sojourn percentiles, and
//! per-partition utilization.
//!
//! A third act reruns one open-loop burst with the **flight recorder**
//! attached: the same workload, now with per-link busy intervals and
//! job sojourn spans recorded, printing the three busiest links and the
//! longest job span, and writing a Chrome trace-event file you can open
//! at <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example runtime_service
//! ```

use mcast_allgather::runtime::{
    JobKind, OpMix, PoolConfig, RateProcess, Runtime, RuntimeConfig, RuntimeReport, RuntimeTrace,
    Workload,
};
use mcast_allgather::simnet::Topology;
use mcast_allgather::trace::{
    export_chrome, validate_json, ChromeOptions, LinkTimeline, TraceSpec,
};
use mcast_allgather::verbs::{LinkRate, Rank};

const TENANTS: usize = 10;
const POOL_CAPACITY: usize = 6; // smaller than the tenant count

fn run_service() -> RuntimeReport {
    let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(POOL_CAPACITY),
        max_inflight: 8,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(topo, cfg);

    // Ten tenants with a skewed mixed workload: the first two are heavy
    // (steady streams, as FSDP training would be), the rest submit a
    // couple of one-off collectives each.
    let tenants: Vec<_> = (0..TENANTS)
        .map(|i| rt.register_tenant(&format!("tenant-{i:02}")))
        .collect();
    for (i, &t) in tenants.iter().enumerate() {
        let jobs = if i < 2 { 5 } else { 2 };
        for j in 0..jobs {
            let kind = match (i + j) % 3 {
                0 => JobKind::Allgather,
                1 => JobKind::Broadcast {
                    root: Rank((i % 8) as u32),
                },
                _ => JobKind::AgRs,
            };
            let send_len = (16 << 10) << (j % 3); // 16..64 KiB
            rt.submit(t, kind, send_len)
                .expect("workload fits the admission policy");
        }
    }
    rt.run_to_completion()
}

fn main() {
    let report = run_service();
    let again = run_service();
    assert_eq!(report, again, "runtime must be deterministic");

    println!(
        "runtime service: {} tenants, group pool of {POOL_CAPACITY} (< {TENANTS} tenants)\n",
        TENANTS
    );
    println!(
        "{:<10}  {:>6}  {:>9}  {:>8}  {:>14}  {:>14}",
        "tenant", "jobs", "rejected", "done", "mean queue us", "mean service us"
    );
    for t in &report.tenants {
        println!(
            "{:<10}  {:>6}  {:>9}  {:>8}  {:>14.1}  {:>14.1}",
            t.name,
            t.submitted,
            t.rejected,
            t.completed,
            t.mean_queue_ns() / 1e3,
            t.mean_service_ns() / 1e3,
        );
    }

    let submitted: u64 = report.tenants.iter().map(|t| t.submitted).sum();
    assert_eq!(
        report.completed_jobs() as u64,
        submitted,
        "every admitted job must complete"
    );
    assert!(
        report.hit_rate() < 1.0,
        "a pool smaller than the tenant count cannot hit every time"
    );
    assert!(report.pool.hits > 0, "repeat tenants must see reuse");
    assert!(report.pool.evictions > 0, "table pressure must evict");

    println!(
        "\njobs completed     : {} over {} batches",
        report.completed_jobs(),
        report.batches
    );
    println!(
        "group pool         : {:.1}% hit rate ({} hits, {} builds, {} rebuilds, {} evictions)",
        report.hit_rate() * 100.0,
        report.pool.hits,
        report.pool.builds,
        report.pool.rebuilds,
        report.pool.evictions
    );
    println!(
        "virtual makespan   : {:.2} ms",
        report.makespan_ns as f64 / 1e6
    );
    println!(
        "sustained goodput  : {:.3} Tbit/s delivered ({:.1} MiB moved on the fabric)",
        report.sustained_tbps(),
        report.moved_bytes as f64 / (1 << 20) as f64
    );
    println!("\ndeterministic across two runs: yes");

    // Act two: the same service under an open-loop Poisson arrival
    // stream — jobs land on the virtual clock instead of being
    // pre-queued, and batches pipeline across two fabric partitions.
    let open = run_open_loop_service();
    let open_again = run_open_loop_service();
    assert_eq!(open, open_again, "open-loop runtime must be deterministic");
    assert!(open.completed_jobs() > 0);
    assert!(
        open.partitions.iter().all(|p| p.batches > 0),
        "both partitions must carry batches"
    );

    println!(
        "\nopen-loop act      : {} offered over {:.1} ms, {} completed, {} rejected",
        open.offered_jobs,
        open.makespan_ns as f64 / 1e6,
        open.completed_jobs(),
        open.rejects.total(),
    );
    println!(
        "sojourn p50 / p99  : {:.1} / {:.1} us (queue + service)",
        open.sojourn_percentile_ns(0.50) as f64 / 1e3,
        open.sojourn_percentile_ns(0.99) as f64 / 1e3,
    );
    println!(
        "partitions         : {} batches + {} batches, {:.1}% mean occupancy",
        open.partitions[0].batches,
        open.partitions[1].batches,
        open.utilization() * 100.0,
    );

    // Act three: the same burst with the flight recorder attached.
    let (traced, trace) = run_traced_burst();
    assert_eq!(
        traced, open,
        "attaching the recorder must not change the report"
    );
    let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
    let timeline = LinkTimeline::build(&trace.fabric, topo.num_links(), 65_536, trace.horizon_ns());
    println!(
        "\ntraced act         : {} fabric events kept ({} dropped by the ring), {} job spans",
        trace.fabric.len(),
        trace.fabric_dropped,
        trace.jobs.len(),
    );
    for (rank, (link, busy_ns)) in timeline.busiest(3).iter().enumerate() {
        println!(
            "busiest link #{}    : link {} busy {:.1} us of {:.1} us simulated",
            rank + 1,
            link,
            *busy_ns as f64 / 1e3,
            trace.horizon_ns() as f64 / 1e3,
        );
    }
    let longest = trace.longest_job().expect("jobs completed");
    println!(
        "longest job span   : job {} (tenant {}) sojourn {:.1} us ({:.1} us queued, batch {})",
        longest.job,
        longest.tenant,
        longest.sojourn_ns() as f64 / 1e3,
        longest.queue_ns() as f64 / 1e3,
        longest.batch,
    );

    let doc = export_chrome(
        &trace,
        &ChromeOptions {
            link_names: (0..topo.num_links()).map(|l| format!("link{l}")).collect(),
            tenant_names: (0..TENANTS).map(|i| format!("tenant-{i:02}")).collect(),
        },
    );
    validate_json(&doc).expect("chrome export is well-formed JSON");
    let out = std::env::temp_dir().join("runtime_service.trace.json");
    std::fs::write(&out, &doc).expect("write trace file");
    println!(
        "perfetto trace     : {} ({} KiB) — open at https://ui.perfetto.dev",
        out.display(),
        doc.len() / 1024,
    );
}

/// The open-loop burst again, with a [`TraceSpec`] on the runtime
/// config: same report, plus the harvested [`RuntimeTrace`].
fn run_traced_burst() -> (RuntimeReport, RuntimeTrace) {
    let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(24),
        max_inflight: 6,
        partitions: 2,
        trace: Some(TraceSpec::default()),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(topo, cfg);
    for i in 0..TENANTS {
        rt.register_tenant(&format!("tenant-{i:02}"));
    }
    let workload = Workload {
        tenants: TENANTS as u32,
        horizon_ns: 3_000_000,
        rate: RateProcess::Poisson {
            mean_interarrival_ns: 50_000,
        },
        mix: OpMix {
            ranks: 8,
            ..OpMix::default()
        },
        seed: 2024,
    };
    rt.load_arrivals(&workload.generate());
    let report = rt.run_open_loop();
    let trace = rt.take_trace().expect("tracing was enabled");
    (report, trace)
}

fn run_open_loop_service() -> RuntimeReport {
    let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(24),
        max_inflight: 6,
        partitions: 2,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(topo, cfg);
    for i in 0..TENANTS {
        rt.register_tenant(&format!("tenant-{i:02}"));
    }
    let workload = Workload {
        tenants: TENANTS as u32,
        horizon_ns: 3_000_000,
        rate: RateProcess::Poisson {
            mean_interarrival_ns: 50_000,
        },
        mix: OpMix {
            ranks: 8,
            ..OpMix::default()
        },
        seed: 2024,
    };
    rt.load_arrivals(&workload.generate());
    rt.run_open_loop()
}
