//! Quickstart: run one multicast Allgather on a simulated 16-node
//! InfiniBand fabric and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig, Sequencer};
use mcast_allgather::simnet::{FabricConfig, Topology};
use mcast_allgather::verbs::LinkRate;

fn main() {
    let n = 256 << 10; // 256 KiB per rank — the FSDP sweet spot
    let topo = Topology::fat_tree_two_level(16, 2, 1, 2, LinkRate::CX3_56G, 300);
    println!(
        "topology: {} ({} hosts, {} switches, {} links)",
        topo.name(),
        topo.num_hosts(),
        topo.num_switches(),
        topo.num_links()
    );

    // Show the Appendix A schedule for two parallel chains (Fig. 8).
    let seq = Sequencer::new(16, 2);
    println!("\nbroadcast sequencer (P=16, M=2 chains):");
    for step in 0..seq.num_steps() {
        println!("  step {step}: active roots {:?}", seq.active_group(step));
    }

    let out = des::run_collective(
        topo,
        FabricConfig::ucc_default(),
        ProtocolConfig::parallel(2, 2),
        CollectiveKind::Allgather,
        n,
    );
    assert!(
        out.stats.all_done(),
        "collective did not finish: {:?}",
        out.stats
    );

    println!("\nallgather of {} KiB x 16 ranks:", n >> 10);
    println!(
        "  completion        : {:.1} us",
        out.completion_ns() as f64 / 1e3
    );
    println!("  mean recv rate    : {:.1} Gbit/s", out.mean_recv_gbps());
    println!("  variability (CV)  : {:.3}", out.recv_gbps_cv());
    let (sync, dp, fin) = out.mean_breakdown_ns();
    let tot = sync + dp + fin;
    println!(
        "  phase breakdown   : {:.1}% RNR sync, {:.1}% multicast datapath, {:.1}% final sync",
        100.0 * sync / tot,
        100.0 * dp / tot,
        100.0 * fin / tot
    );
    println!(
        "  traffic           : {:.1} MiB over all links, max {:.1} MiB on one link",
        out.traffic.total_data_bytes() as f64 / (1 << 20) as f64,
        out.traffic.max_link_data_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "  bandwidth-optimal : each link carried at most P*N = {:.1} MiB",
        (16 * n) as f64 / (1 << 20) as f64
    );
    assert!(out.traffic.max_link_data_bytes() <= (16 * n) as u64);
}
