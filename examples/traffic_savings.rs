//! Switch-counter traffic accounting on the 188-node testbed — the
//! methodology of the paper's Fig. 12, as a runnable demo.
//!
//! Runs one multicast Allgather and one ring Allgather on the simulated
//! 18-switch fat-tree and prints where the bytes went.
//!
//! ```text
//! cargo run --release --example traffic_savings
//! ```

use mcast_allgather::baselines::{ring_allgather, run_p2p};
use mcast_allgather::core::{des, CollectiveKind, ProtocolConfig};
use mcast_allgather::simnet::{FabricConfig, Topology, TrafficReport};

fn report(name: &str, traffic: &TrafficReport) {
    let topo = Topology::ucc_testbed();
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!("{name}:");
    println!(
        "  host injection     : {:>9.1} MiB",
        mib(traffic.host_injection_bytes(&topo))
    );
    println!(
        "  host delivery      : {:>9.1} MiB",
        mib(traffic.host_delivery_bytes(&topo))
    );
    println!(
        "  switch <-> switch  : {:>9.1} MiB",
        mib(traffic.inter_switch_bytes(&topo))
    );
    println!(
        "  all switch ports   : {:>9.1} MiB   <- the Fig. 12 counter",
        mib(traffic.switch_port_rxtx_bytes(&topo))
    );
    println!(
        "  busiest single link: {:>9.1} MiB",
        mib(traffic.max_link_data_bytes())
    );
}

fn main() {
    let n = 64 << 10;
    println!("Allgather of 64 KiB x 188 ranks on the 18-switch fat-tree (12 leaves, 6 spines)\n");

    let mc = des::run_collective(
        Topology::ucc_testbed(),
        FabricConfig::ucc_default(),
        ProtocolConfig::default(),
        CollectiveKind::Allgather,
        n,
    );
    assert!(mc.stats.all_done());
    report("multicast allgather (this paper)", &mc.traffic);

    println!();
    let ring = run_p2p(
        Topology::ucc_testbed(),
        FabricConfig::ucc_default(),
        ring_allgather(188, n),
        16 << 10,
    );
    assert!(ring.stats.all_done());
    report("ring allgather (P2P baseline)", &ring.traffic);

    let topo = Topology::ucc_testbed();
    let savings = ring.traffic.switch_port_rxtx_bytes(&topo) as f64
        / mc.traffic.switch_port_rxtx_bytes(&topo) as f64;
    println!("\nswitch-port traffic savings: {savings:.2}x (paper measures 1.5-2x)");

    // The structural reason: per-rank send volume.
    println!(
        "per-rank injection: multicast {:.0} KiB vs ring {:.0} KiB (N vs N*(P-1))",
        mc.traffic.host_injection_bytes(&topo) as f64 / 188.0 / 1024.0,
        ring.traffic.host_injection_bytes(&topo) as f64 / 188.0 / 1024.0,
    );
}
