//! # mcag-exec — deterministic fork-join execution for simulation sweeps
//!
//! Figure sweeps, ablations, and runtime batch waves are embarrassingly
//! parallel: every job is a self-contained `Send` simulation (the
//! owned-sink refactor of the protocol stack made `Fabric` + apps
//! `Send`), and no job depends on another's output. [`par_map`] runs
//! such jobs across a bounded pool of scoped worker threads while
//! keeping the *results* byte-identical to a serial run:
//!
//! * **Slot-ordered outputs.** Workers claim job indices from one atomic
//!   counter, but every output lands in its input's slot. The returned
//!   `Vec` is `[f(&jobs[0]), f(&jobs[1]), …]` regardless of worker count
//!   or OS scheduling.
//! * **Per-job determinism is the job's problem — and it already holds.**
//!   Each simulation owns its fabric, RNG (seeded from its own config),
//!   and result sinks; nothing is shared, so `f(&job)` is a pure
//!   function of the job description.
//! * **`jobs = 1` bypasses threads entirely**: a plain serial `map`, no
//!   spawn, no atomics — the golden path determinism tests compare
//!   against.
//!
//! [`par_map_ordered`] adds **largest-first claim order** for sweeps
//! with per-job cost skew (a timed-out fault seed costs orders of
//! magnitude more than a clean one): heavy jobs claimed first overlap
//! the cheap bulk instead of stranding a worker at the tail. It also
//! reports per-job wall times ([`Timed`]) for utilization analysis.
//! Outputs remain slot-ordered either way.
//!
//! Wall-clock measurements (as opposed to simulated-time results) made
//! inside jobs remain host- and contention-dependent; parallel sweeps
//! change *when* a job runs, never *what* it computes.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count to use when the caller does not specify one: the host's
/// available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using up to `jobs` worker threads, returning
/// outputs in input order.
///
/// Work is claimed from an atomic index and each output lands in its
/// input's slot, so the result is **byte-identical to the serial run**
/// (`jobs = 1`) for any worker count — the determinism contract the
/// golden tests in `tests/parallel_determinism.rs` pin down. With
/// `jobs <= 1` (or fewer than two items) no thread is spawned.
///
/// Panics in `f` are propagated to the caller after all workers have
/// stopped claiming new items.
pub fn par_map<I, O, F>(jobs: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    // Slot-ordered assembly: output i is f(&items[i]) no matter which
    // worker computed it or when.
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, o) in parts.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "slot {i} claimed twice");
        out[i] = Some(o);
    }
    out.into_iter()
        .map(|o| o.expect("par_map slot never filled"))
        .collect()
}

/// A job output annotated with the wall-clock time its closure took.
///
/// The wall time is measurement, not result: it varies with host load
/// and scheduling, so determinism-checked digests must be built from
/// [`Timed::value`] only.
#[derive(Debug, Clone)]
pub struct Timed<O> {
    /// The job's output.
    pub value: O,
    /// Wall-clock nanoseconds spent inside `f` for this job.
    pub wall_ns: u64,
}

/// [`par_map`] with **largest-first claim order** and per-job wall
/// times: workers claim jobs in descending `weight` (ties broken by
/// input index, so the order is total and deterministic) while outputs
/// still land slot-ordered by input index.
///
/// Use this when per-job cost skews — a handful of expensive jobs
/// claimed last would each strand a worker at the tail of the sweep;
/// claimed first, they overlap with the cheap bulk. The *results* stay
/// byte-identical to `par_map` (and to `jobs = 1`) for any worker
/// count; only wall clock and the measured [`Timed::wall_ns`] change.
pub fn par_map_ordered<I, O, F, W>(jobs: usize, items: &[I], weight: W, f: F) -> Vec<Timed<O>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
    W: Fn(usize, &I) -> u64,
{
    let n = items.len();
    // Claim order: heaviest first, input index as the deterministic
    // tie-break.
    let mut order: Vec<usize> = (0..n).collect();
    // Cached key: `weight` is a caller closure of unknown cost — run it
    // exactly once per item, not once per comparison.
    order.sort_by_cached_key(|&i| (std::cmp::Reverse(weight(i, &items[i])), i));

    let timed = |i: usize| {
        let t0 = std::time::Instant::now();
        let value = f(&items[i]);
        Timed {
            value,
            wall_ns: t0.elapsed().as_nanos() as u64,
        }
    };

    let workers = jobs.max(1).min(n);
    let mut out: Vec<Option<Timed<O>>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for &i in &order {
            out[i] = Some(timed(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, Timed<O>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            let i = order[k];
                            local.push((i, timed(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        for (i, o) in parts.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "slot {i} claimed twice");
            out[i] = Some(o);
        }
    }
    out.into_iter()
        .map(|o| o.expect("par_map_ordered slot never filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn outputs_are_slot_ordered() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |&x| x * x + 1);
        for jobs in [2, 3, 4, 16] {
            let par = par_map(jobs, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_does_not_reorder() {
        // Early items take far longer than late ones; outputs must still
        // land in input order.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(8, &items, |&i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_zero_behaves_like_serial() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(0, &items, |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u32, 2];
        assert_eq!(par_map(64, &items, |&x| x), vec![1, 2]);
    }

    #[test]
    fn worker_panic_propagates() {
        static TRIPPED: AtomicBool = AtomicBool::new(false);
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(2, &items, |&i| {
                if i == 3 {
                    TRIPPED.store(true, Ordering::SeqCst);
                    panic!("job 3 exploded");
                }
                i
            })
        });
        assert!(result.is_err());
        assert!(TRIPPED.load(Ordering::SeqCst));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn ordered_outputs_match_par_map_for_any_worker_count() {
        let items: Vec<u64> = (0..129).collect();
        let plain = par_map(1, &items, |&x| x * 3 + 1);
        for jobs in [1, 2, 4, 16] {
            let ordered = par_map_ordered(jobs, &items, |_, &x| x, |&x| x * 3 + 1);
            let values: Vec<u64> = ordered.iter().map(|t| t.value).collect();
            assert_eq!(values, plain, "jobs={jobs}");
        }
    }

    #[test]
    fn ordered_claims_heaviest_first() {
        use std::sync::Mutex;
        // Serial path: the execution order must be exactly weight-desc
        // with index tie-break, while outputs stay slot-ordered.
        let log = Mutex::new(Vec::new());
        let items = [10u64, 30, 20, 30, 5];
        let out = par_map_ordered(
            1,
            &items,
            |_, &w| w,
            |&w| {
                log.lock().unwrap().push(w);
                w
            },
        );
        assert_eq!(log.into_inner().unwrap(), vec![30, 30, 20, 10, 5]);
        let values: Vec<u64> = out.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![10, 30, 20, 30, 5]);
    }

    #[test]
    fn ordered_records_per_job_wall_times() {
        let items: Vec<usize> = (0..8).collect();
        let out = par_map_ordered(
            2,
            &items,
            |i, _| i as u64,
            |&i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i
            },
        );
        // Only the slept job has a guaranteed-nonzero duration; trivial
        // jobs can legitimately measure 0 ns on coarse monotonic clocks.
        assert!(
            out[0].wall_ns >= 2_000_000,
            "slept job under-measured: {}",
            out[0].wall_ns
        );
        assert_eq!(out.iter().map(|t| t.value).collect::<Vec<_>>(), items);
    }

    #[test]
    fn ordered_empty_input() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_ordered(4, &empty, |_, &x| x as u64, |&x| x).is_empty());
    }

    #[test]
    fn job_closures_are_send_sync() {
        // The shape every sweep uses: a closure over plain config data.
        fn assert_sync<T: Sync>(_: &T) {}
        let cfg = (42u64, 1024usize);
        let f = |&(seed, len): &(u64, usize)| seed + len as u64;
        assert_sync(&f);
        assert_eq!(par_map(2, &[cfg], f), vec![1066]);
    }
}
