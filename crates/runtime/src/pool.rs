//! The bounded switch multicast-group table, shared by every tenant.
//!
//! InfiniBand switches hold a finite MGID table (a few thousand entries
//! on SX6036-class silicon), and programming a group is a subnet-manager
//! round-trip costing hundreds of microseconds to milliseconds — far more
//! than a single collective on a hot path. A long-lived runtime therefore
//! treats groups as a *pooled* resource: a tenant whose communicator ran
//! recently finds its trees still programmed (a **hit**, free), a cold
//! tenant programs into a free slot (a **build**), and once the table is
//! full the least-recently-used unpinned group is torn down and replaced
//! (a **rebuild**, the most expensive path). All costs are charged on the
//! simulated clock by the scheduler, so group-table pressure shows up in
//! tenant latency exactly as it would on real hardware.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identity of one switch-level multicast group: a tenant's communicator
/// owns `index 0..S` for its multicast subgroups plus (for AG+RS jobs)
/// one more for the in-network-reduction tree. Two jobs of the same
/// tenant reuse the same keys — that is what makes pooling pay off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey {
    /// Owning tenant.
    pub tenant: u32,
    /// Group index within the tenant's communicator.
    pub index: u32,
}

/// Group-pool tuning: table size and subnet-manager programming costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Multicast-group table capacity (entries).
    pub capacity: usize,
    /// Simulated cost to program a group into a free slot (SM join
    /// round-trip for every member).
    pub build_ns: u64,
    /// Simulated cost to evict an LRU group *and* program a new one
    /// (leaves + re-routes the spanning tree); `>= build_ns`.
    pub rebuild_ns: u64,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            capacity: 128,
            build_ns: 200_000,   // 200 µs SM programming
            rebuild_ns: 350_000, // detach + reprogram
        }
    }
}

impl PoolConfig {
    /// A pool with `capacity` slots and the default SM costs.
    pub fn with_capacity(capacity: usize) -> PoolConfig {
        PoolConfig {
            capacity,
            ..PoolConfig::default()
        }
    }
}

/// How one [`McastGroupPool::acquire`] was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The group was still programmed — no SM traffic, zero cost.
    Hit,
    /// Programmed into a free table slot.
    Built,
    /// An LRU group was evicted to make room.
    Rebuilt,
}

/// Cumulative pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Acquisitions served by a resident group.
    pub hits: u64,
    /// Groups programmed into free slots.
    pub builds: u64,
    /// Groups programmed after evicting an LRU entry.
    pub rebuilds: u64,
    /// Groups evicted (equals `rebuilds` for this policy).
    pub evictions: u64,
}

impl PoolStats {
    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.hits + self.builds + self.rebuilds
    }

    /// Fraction of acquisitions served without SM traffic, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    last_use: u64,
    pinned: bool,
}

/// LRU pool over the bounded multicast-group table.
///
/// Groups acquired for a running batch are **pinned** (a switch cannot
/// reprogram a tree that packets are flowing through); the scheduler
/// unpins them when the batch completes, leaving them resident for reuse.
#[derive(Debug, Clone)]
pub struct McastGroupPool {
    cfg: PoolConfig,
    resident: HashMap<GroupKey, Slot>,
    tick: u64,
    pinned: usize,
    stats: PoolStats,
}

impl McastGroupPool {
    /// Create a pool. Panics if `capacity == 0`.
    pub fn new(cfg: PoolConfig) -> McastGroupPool {
        assert!(cfg.capacity >= 1, "group table needs at least one slot");
        assert!(cfg.rebuild_ns >= cfg.build_ns, "rebuild cannot beat build");
        McastGroupPool {
            cfg,
            resident: HashMap::new(),
            tick: 0,
            pinned: 0,
            stats: PoolStats::default(),
        }
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Groups currently pinned by in-flight batches.
    pub fn pinned_groups(&self) -> usize {
        self.pinned
    }

    /// Free pinning headroom: how many *more* distinct groups a new batch
    /// may pin without overcommitting the table. Resident-but-unpinned
    /// groups do not count against this — they can be evicted — but every
    /// group a batch acquires (hit or not) is pinned for the batch's
    /// lifetime, so the scheduler budgets batch group demand against this
    /// value when batches overlap on the virtual clock.
    pub fn headroom(&self) -> usize {
        self.cfg.capacity - self.pinned
    }

    /// Groups currently programmed.
    pub fn resident_groups(&self) -> usize {
        self.resident.len()
    }

    /// Is `key` currently programmed?
    pub fn is_resident(&self, key: GroupKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Acquire (and pin) `key`, returning how it was satisfied and the
    /// simulated cost to charge on the clock.
    ///
    /// Panics if the table is full of pinned groups — the scheduler must
    /// never commit a batch whose distinct group demand exceeds
    /// [`McastGroupPool::capacity`].
    pub fn acquire(&mut self, key: GroupKey) -> (AcquireOutcome, u64) {
        self.tick += 1;
        if let Some(slot) = self.resident.get_mut(&key) {
            slot.last_use = self.tick;
            if !slot.pinned {
                slot.pinned = true;
                self.pinned += 1;
            }
            self.stats.hits += 1;
            return (AcquireOutcome::Hit, 0);
        }
        let outcome = if self.resident.len() < self.cfg.capacity {
            self.stats.builds += 1;
            (AcquireOutcome::Built, self.cfg.build_ns)
        } else {
            // Evict the least-recently-used unpinned entry. `last_use`
            // ticks are unique, so the victim is deterministic regardless
            // of hash-map iteration order.
            let victim = self
                .resident
                .iter()
                .filter(|(_, s)| !s.pinned)
                .min_by_key(|(_, s)| s.last_use)
                .map(|(k, _)| *k)
                .expect("group pool overcommitted: every resident group is pinned");
            self.resident.remove(&victim);
            self.stats.evictions += 1;
            self.stats.rebuilds += 1;
            (AcquireOutcome::Rebuilt, self.cfg.rebuild_ns)
        };
        self.resident.insert(
            key,
            Slot {
                last_use: self.tick,
                pinned: true,
            },
        );
        self.pinned += 1;
        outcome
    }

    /// Charge `n` subnet-manager tree rebuilds that happened *outside*
    /// the acquire path — the SM re-routing groups around dead switches
    /// mid-batch. Counts them in [`PoolStats::rebuilds`] and returns the
    /// virtual time to bill (`n × rebuild_ns`): the same detach +
    /// reprogram cost an eviction rebuild pays, because the switch work
    /// is the same.
    pub fn charge_rebuilds(&mut self, n: u32) -> u64 {
        self.stats.rebuilds += n as u64;
        self.rebuild_cost_ns(n)
    }

    /// Virtual time `n` SM tree rebuilds cost (`n × rebuild_ns`) without
    /// charging them — the scheduler prices a batch's recovery work
    /// before the batch commits ([`charge_rebuilds`] bills it once, at
    /// commit).
    ///
    /// [`charge_rebuilds`]: McastGroupPool::charge_rebuilds
    pub fn rebuild_cost_ns(&self, n: u32) -> u64 {
        self.cfg.rebuild_ns * n as u64
    }

    /// Unpin every group (batch finished); resident entries stay cached
    /// for reuse by later batches.
    pub fn unpin_all(&mut self) {
        for slot in self.resident.values_mut() {
            slot.pinned = false;
        }
        self.pinned = 0;
    }

    /// Unpin exactly the given keys (one overlapping batch finished);
    /// other in-flight batches' groups stay pinned. Keys evict-raced
    /// away cannot exist here: pinned entries are never eviction victims,
    /// so every key a batch acquired is still resident when it unpins.
    pub fn unpin(&mut self, keys: &[GroupKey]) {
        for key in keys {
            let slot = self
                .resident
                .get_mut(key)
                .expect("unpin of a non-resident group (pinned entries cannot be evicted)");
            if slot.pinned {
                slot.pinned = false;
                self.pinned -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u32, i: u32) -> GroupKey {
        GroupKey {
            tenant: t,
            index: i,
        }
    }

    #[test]
    fn hit_after_build() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(2));
        let (o, c) = pool.acquire(key(0, 0));
        assert_eq!(o, AcquireOutcome::Built);
        assert_eq!(c, PoolConfig::default().build_ns);
        pool.unpin_all();
        let (o, c) = pool.acquire(key(0, 0));
        assert_eq!(o, AcquireOutcome::Hit);
        assert_eq!(c, 0);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().builds, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(2));
        pool.acquire(key(0, 0));
        pool.acquire(key(1, 0));
        pool.unpin_all();
        // Touch tenant 0 so tenant 1 becomes LRU.
        pool.acquire(key(0, 0));
        pool.unpin_all();
        let (o, _) = pool.acquire(key(2, 0));
        assert_eq!(o, AcquireOutcome::Rebuilt);
        assert!(pool.is_resident(key(0, 0)), "MRU entry survived");
        assert!(!pool.is_resident(key(1, 0)), "LRU entry evicted");
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn pinned_groups_never_evicted() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(2));
        pool.acquire(key(0, 0)); // pinned, oldest
        pool.unpin_all();
        pool.acquire(key(1, 0)); // pinned
        pool.acquire(key(2, 0)); // must evict the unpinned key(0,0)
        assert!(pool.is_resident(key(1, 0)));
        assert!(!pool.is_resident(key(0, 0)));
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn overcommit_detected() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(1));
        pool.acquire(key(0, 0));
        pool.acquire(key(1, 0)); // both pinned, table of one
    }

    #[test]
    fn per_key_unpin_tracks_headroom() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(3));
        pool.acquire(key(0, 0));
        pool.acquire(key(0, 1));
        pool.acquire(key(1, 0));
        assert_eq!(pool.pinned_groups(), 3);
        assert_eq!(pool.headroom(), 0);
        // Batch of tenant 0 finishes; tenant 1's group stays pinned.
        pool.unpin(&[key(0, 0), key(0, 1)]);
        assert_eq!(pool.pinned_groups(), 1);
        assert_eq!(pool.headroom(), 2);
        // A new acquire may evict tenant 0's unpinned groups but never
        // tenant 1's pinned one.
        pool.acquire(key(2, 0));
        assert_eq!(pool.pinned_groups(), 2);
        assert!(pool.is_resident(key(1, 0)));
        // Re-acquiring an already-pinned group must not double-count.
        pool.acquire(key(1, 0));
        assert_eq!(pool.pinned_groups(), 2);
        pool.unpin_all();
        assert_eq!(pool.headroom(), 3);
    }

    #[test]
    fn hit_rate_counts() {
        let mut pool = McastGroupPool::new(PoolConfig::with_capacity(4));
        for t in 0..4 {
            pool.acquire(key(t, 0));
        }
        pool.unpin_all();
        for t in 0..4 {
            pool.acquire(key(t, 0));
        }
        pool.unpin_all();
        let s = pool.stats();
        assert_eq!(s.acquisitions(), 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
