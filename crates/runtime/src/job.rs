//! Tenants, job specifications, admission control, and the pending queue.

use mcag_verbs::Rank;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A logical tenant (training job, user, framework instance) submitting
/// collectives to the shared runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// Tenant as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Runtime-unique job identifier, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Which collective a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// One root multicasts `send_len` bytes to every rank.
    Broadcast {
        /// The broadcasting rank.
        root: Rank,
    },
    /// Every rank contributes `send_len` bytes; all end with `N·P`.
    Allgather,
    /// The FSDP pair: multicast Allgather concurrent with an in-network
    /// Reduce-Scatter on the same ranks (Section II of the paper). Needs
    /// one extra multicast group for the reduction tree.
    AgRs,
}

impl JobKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Broadcast { .. } => "bcast",
            JobKind::Allgather => "allgather",
            JobKind::AgRs => "ag+rs",
        }
    }
}

/// One submitted collective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Collective kind.
    pub kind: JobKind,
    /// Bytes contributed per root (`N`).
    pub send_len: usize,
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The tenant id was never registered.
    UnknownTenant,
    /// The runtime-wide pending queue is at capacity.
    QueueFull,
    /// This tenant already has its quota of pending jobs.
    TenantQuota,
    /// `send_len` exceeds the admission policy's maximum.
    TooLarge,
    /// `send_len` is zero.
    Empty,
    /// A broadcast root outside the rank range.
    InvalidRoot,
    /// The job needs more multicast groups than the pool holds, so it
    /// could never be scheduled.
    GroupDemand,
    /// Load shedding: the runtime's recent-sojourn estimate exceeded
    /// [`AdmissionPolicy::throttle_sojourn_ns`], so new arrivals are
    /// refused until the backlog drains. Distinct from [`QueueFull`]
    /// (hard queue capacity) so a throttling study can attribute
    /// refusals to the throttle rather than the queue bound.
    ///
    /// [`QueueFull`]: RejectReason::QueueFull
    Throttled,
    /// Graceful degradation under sustained faults: the reactive
    /// scheduler's retry backlog exceeded
    /// [`ReactivePolicy::degrade_retry_backlog`], so new arrivals are
    /// shed to let recovery traffic drain. Distinct from [`Throttled`]
    /// (healthy-path sojourn feedback) so a fault study can attribute
    /// refusals to the fault response rather than ordinary overload.
    ///
    /// [`ReactivePolicy::degrade_retry_backlog`]:
    ///     crate::ReactivePolicy::degrade_retry_backlog
    /// [`Throttled`]: RejectReason::Throttled
    Degraded,
}

impl RejectReason {
    /// Short kebab-case label (trace markers, CSV columns).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::QueueFull => "queue-full",
            RejectReason::TenantQuota => "tenant-quota",
            RejectReason::TooLarge => "too-large",
            RejectReason::Empty => "empty",
            RejectReason::InvalidRoot => "invalid-root",
            RejectReason::GroupDemand => "group-demand",
            RejectReason::Throttled => "throttled",
            RejectReason::Degraded => "degraded",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::UnknownTenant => "unknown tenant",
            RejectReason::QueueFull => "runtime queue full",
            RejectReason::TenantQuota => "tenant pending-job quota exceeded",
            RejectReason::TooLarge => "message exceeds admission size limit",
            RejectReason::Empty => "empty message",
            RejectReason::InvalidRoot => "broadcast root out of range",
            RejectReason::GroupDemand => "job needs more groups than the pool holds",
            RejectReason::Throttled => "admission throttled: recent sojourn over threshold",
            RejectReason::Degraded => "degraded: retry backlog over the fault-response bound",
        };
        f.write_str(s)
    }
}

/// Admission-control thresholds applied at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Max pending jobs across all tenants.
    pub max_queued_total: usize,
    /// Max pending jobs per tenant (back-pressure on noisy neighbours).
    pub max_queued_per_tenant: usize,
    /// Max `send_len` in bytes.
    pub max_send_len: usize,
    /// Load-shedding threshold: while the runtime's exponentially
    /// weighted moving average of completed-job sojourn time (queue +
    /// service, ns) exceeds this, new submissions are refused with
    /// [`RejectReason::Throttled`]. `None` disables throttling (the
    /// default) — under open-loop overload the queue then grows to the
    /// hard [`max_queued_total`](AdmissionPolicy::max_queued_total)
    /// bound and sojourn times grow with it.
    pub throttle_sojourn_ns: Option<u64>,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            max_queued_total: 1024,
            max_queued_per_tenant: 64,
            max_send_len: 64 << 20,
            throttle_sojourn_ns: None,
        }
    }
}

/// An admitted job waiting to be scheduled.
#[derive(Debug, Clone, Copy)]
pub struct PendingJob {
    /// Job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Virtual time of submission (ns).
    pub submitted_ns: u64,
    /// Distinct multicast groups the job pins while running.
    pub group_demand: u32,
    /// Batch dispatches consumed so far (0 until first launch; the
    /// reactive scheduler bumps it when re-forming after a timeout).
    pub attempt: u32,
}

/// One tenant's lane in the indexed queue: a FIFO of pending jobs plus
/// the in-flight flag the open-loop scheduler uses to keep a tenant's
/// collectives ordered (a communicator's operations are ordered, so a
/// tenant with a job in a running batch must not enter another batch).
#[derive(Debug, Clone, Default)]
struct Lane {
    fifo: VecDeque<PendingJob>,
    busy: bool,
}

impl Lane {
    #[inline]
    fn ready(&self) -> bool {
        !self.busy && !self.fifo.is_empty()
    }
}

/// Per-tenant FIFO queues drained fairly by the scheduler, indexed for
/// scale.
///
/// A tenant's jobs execute in submission order (a communicator's
/// collectives are ordered), so a batch takes **at most one job per
/// tenant**; the round-robin cursor rotates the starting tenant so no
/// tenant is structurally favoured.
///
/// Lanes live in a dense slab indexed by [`TenantId`], and a sorted
/// **ready index** tracks exactly the tenants that are schedulable
/// (non-empty lane, not marked busy by an in-flight batch). Wave
/// formation therefore walks `O(ready tenants)` — independent of how
/// many tenants are registered — which is what lets the open-loop
/// sweeps scale to thousands of mostly-idle tenants. [`queued_for`]
/// (`JobQueue::queued_for`) is an `O(1)` lane-length lookup, never a
/// queue scan.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    lanes: Vec<Lane>,
    /// Tenants with a schedulable head-of-line job, in index order.
    ready: BTreeSet<u32>,
    len: usize,
    cursor: usize,
}

impl JobQueue {
    /// Empty queue with no tenants.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Add a tenant lane (called on registration).
    pub fn add_tenant(&mut self) {
        self.lanes.push(Lane::default());
    }

    /// Pending jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No pending jobs?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending jobs for one tenant (`O(1)`: the lane's length, not a
    /// scan of the queue).
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.lanes.get(tenant.idx()).map_or(0, |l| l.fifo.len())
    }

    /// Tenants currently schedulable (non-empty lane, not busy).
    pub fn ready_tenants(&self) -> usize {
        self.ready.len()
    }

    /// Enqueue an admitted job.
    pub fn push(&mut self, job: PendingJob) {
        let t = job.spec.tenant.idx();
        self.lanes[t].fifo.push_back(job);
        if self.lanes[t].ready() {
            self.ready.insert(t as u32);
        }
        self.len += 1;
    }

    /// Re-enqueue a timed-out job at the *head* of its tenant's lane: a
    /// communicator's collectives are ordered, so the retry must run
    /// before anything the tenant submitted after it.
    pub fn push_front(&mut self, job: PendingJob) {
        let t = job.spec.tenant.idx();
        self.lanes[t].fifo.push_front(job);
        if self.lanes[t].ready() {
            self.ready.insert(t as u32);
        }
        self.len += 1;
    }

    /// Mark a tenant's lane busy: it has a job in an in-flight batch, so
    /// its head-of-line job leaves the ready index until
    /// [`mark_idle`](JobQueue::mark_idle).
    pub fn mark_busy(&mut self, tenant: TenantId) {
        let t = tenant.idx();
        self.lanes[t].busy = true;
        self.ready.remove(&(t as u32));
    }

    /// Clear a tenant's busy flag (its batch committed); the lane
    /// re-enters the ready index if jobs are pending.
    pub fn mark_idle(&mut self, tenant: TenantId) {
        let t = tenant.idx();
        self.lanes[t].busy = false;
        if self.lanes[t].ready() {
            self.ready.insert(t as u32);
        }
    }

    /// Pick the next fair batch: starting from the rotating cursor, take
    /// the head-of-line job of each *ready* tenant whose group demand
    /// still fits in `group_budget`, stopping at `max_jobs` jobs. At
    /// most one job per tenant, and only the ready index is walked —
    /// `O(picked + skipped-for-budget)`, not `O(registered tenants)` —
    /// while visiting tenants in exactly the cursor-rotated ascending
    /// order the original full-scan scheduler used (the equivalence the
    /// closed-loop proptest pins).
    pub fn pick_batch(&mut self, max_jobs: usize, group_budget: usize) -> Vec<PendingJob> {
        let n = self.lanes.len();
        let mut picked = Vec::new();
        let mut budget = group_budget;
        if n == 0 || self.ready.is_empty() {
            return picked;
        }
        // Cursor-rotated ascending walk of the ready index: tenants at or
        // after the cursor first, then wrap. Materialized up front because
        // picking mutates the index.
        let start = self.cursor as u32;
        let order: Vec<u32> = self
            .ready
            .range(start..)
            .chain(self.ready.range(..start))
            .copied()
            .collect();
        for t in order {
            if picked.len() >= max_jobs {
                break;
            }
            let lane = &mut self.lanes[t as usize];
            let head = lane.fifo.front().expect("ready lane has a head");
            if head.group_demand as usize > budget {
                continue; // doesn't fit this batch; its turn comes first next time
            }
            budget -= head.group_demand as usize;
            let job = lane.fifo.pop_front().expect("front checked");
            if !lane.ready() {
                self.ready.remove(&t);
            }
            self.len -= 1;
            self.cursor = (t as usize + 1) % n;
            picked.push(job);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: u32, id: u64, demand: u32) -> PendingJob {
        PendingJob {
            id: JobId(id),
            spec: JobSpec {
                tenant: TenantId(t),
                kind: JobKind::Allgather,
                send_len: 4096,
            },
            submitted_ns: 0,
            group_demand: demand,
            attempt: 0,
        }
    }

    fn queue(tenants: u32) -> JobQueue {
        let mut q = JobQueue::new();
        for _ in 0..tenants {
            q.add_tenant();
        }
        q
    }

    #[test]
    fn batch_is_one_job_per_tenant() {
        let mut q = queue(3);
        q.push(job(0, 0, 1));
        q.push(job(0, 1, 1));
        q.push(job(1, 2, 1));
        let batch = q.pick_batch(8, 8);
        let ids: Vec<u64> = batch.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 2], "one job per tenant, FIFO within tenant");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cursor_rotates_fairly() {
        let mut q = queue(4);
        for t in 0..4 {
            q.push(job(t, t as u64, 1));
            q.push(job(t, 4 + t as u64, 1));
        }
        let b1 = q.pick_batch(2, 8);
        assert_eq!(b1[0].spec.tenant, TenantId(0));
        assert_eq!(b1[1].spec.tenant, TenantId(1));
        let b2 = q.pick_batch(2, 8);
        assert_eq!(
            b2[0].spec.tenant,
            TenantId(2),
            "next batch starts where the last stopped"
        );
        assert_eq!(b2[1].spec.tenant, TenantId(3));
    }

    #[test]
    fn push_front_preserves_communicator_order() {
        let mut q = queue(1);
        q.push(job(0, 5, 1)); // submitted after the retry victim
        q.push_front(job(0, 3, 1)); // the timed-out job coming back
        let batch = q.pick_batch(8, 8);
        assert_eq!(batch[0].id, JobId(3), "retry runs before newer work");
        let batch = q.pick_batch(8, 8);
        assert_eq!(batch[0].id, JobId(5));
        assert!(q.is_empty());
    }

    #[test]
    fn group_budget_caps_batch() {
        let mut q = queue(3);
        q.push(job(0, 0, 2));
        q.push(job(1, 1, 2));
        q.push(job(2, 2, 1));
        let batch = q.pick_batch(8, 3);
        // Tenant 0 (2 groups) + tenant 2 (1 group) fit; tenant 1 must wait.
        let ids: Vec<u64> = batch.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(q.len(), 1);
    }
}
