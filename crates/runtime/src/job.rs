//! Tenants, job specifications, admission control, and the pending queue.

use mcag_verbs::Rank;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A logical tenant (training job, user, framework instance) submitting
/// collectives to the shared runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// Tenant as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Runtime-unique job identifier, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Which collective a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// One root multicasts `send_len` bytes to every rank.
    Broadcast {
        /// The broadcasting rank.
        root: Rank,
    },
    /// Every rank contributes `send_len` bytes; all end with `N·P`.
    Allgather,
    /// The FSDP pair: multicast Allgather concurrent with an in-network
    /// Reduce-Scatter on the same ranks (Section II of the paper). Needs
    /// one extra multicast group for the reduction tree.
    AgRs,
}

impl JobKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Broadcast { .. } => "bcast",
            JobKind::Allgather => "allgather",
            JobKind::AgRs => "ag+rs",
        }
    }
}

/// One submitted collective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Collective kind.
    pub kind: JobKind,
    /// Bytes contributed per root (`N`).
    pub send_len: usize,
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The tenant id was never registered.
    UnknownTenant,
    /// The runtime-wide pending queue is at capacity.
    QueueFull,
    /// This tenant already has its quota of pending jobs.
    TenantQuota,
    /// `send_len` exceeds the admission policy's maximum.
    TooLarge,
    /// `send_len` is zero.
    Empty,
    /// A broadcast root outside the rank range.
    InvalidRoot,
    /// The job needs more multicast groups than the pool holds, so it
    /// could never be scheduled.
    GroupDemand,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::UnknownTenant => "unknown tenant",
            RejectReason::QueueFull => "runtime queue full",
            RejectReason::TenantQuota => "tenant pending-job quota exceeded",
            RejectReason::TooLarge => "message exceeds admission size limit",
            RejectReason::Empty => "empty message",
            RejectReason::InvalidRoot => "broadcast root out of range",
            RejectReason::GroupDemand => "job needs more groups than the pool holds",
        };
        f.write_str(s)
    }
}

/// Admission-control thresholds applied at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Max pending jobs across all tenants.
    pub max_queued_total: usize,
    /// Max pending jobs per tenant (back-pressure on noisy neighbours).
    pub max_queued_per_tenant: usize,
    /// Max `send_len` in bytes.
    pub max_send_len: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            max_queued_total: 1024,
            max_queued_per_tenant: 64,
            max_send_len: 64 << 20,
        }
    }
}

/// An admitted job waiting to be scheduled.
#[derive(Debug, Clone, Copy)]
pub struct PendingJob {
    /// Job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Virtual time of submission (ns).
    pub submitted_ns: u64,
    /// Distinct multicast groups the job pins while running.
    pub group_demand: u32,
}

/// Per-tenant FIFO queues drained fairly by the scheduler.
///
/// A tenant's jobs execute in submission order (a communicator's
/// collectives are ordered), so a batch takes **at most one job per
/// tenant**; the round-robin cursor rotates the starting tenant so no
/// tenant is structurally favoured.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    per_tenant: Vec<VecDeque<PendingJob>>,
    len: usize,
    cursor: usize,
}

impl JobQueue {
    /// Empty queue with no tenants.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Add a tenant lane (called on registration).
    pub fn add_tenant(&mut self) {
        self.per_tenant.push(VecDeque::new());
    }

    /// Pending jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No pending jobs?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending jobs for one tenant.
    pub fn queued_for(&self, tenant: TenantId) -> usize {
        self.per_tenant.get(tenant.idx()).map_or(0, VecDeque::len)
    }

    /// Enqueue an admitted job.
    pub fn push(&mut self, job: PendingJob) {
        self.per_tenant[job.spec.tenant.idx()].push_back(job);
        self.len += 1;
    }

    /// Pick the next fair batch: starting from the rotating cursor, take
    /// the head-of-line job of each tenant whose group demand still fits
    /// in `group_budget`, stopping at `max_jobs` jobs. One pass over the
    /// tenants, at most one job each.
    pub fn pick_batch(&mut self, max_jobs: usize, group_budget: usize) -> Vec<PendingJob> {
        let n = self.per_tenant.len();
        let mut picked = Vec::new();
        let mut budget = group_budget;
        if n == 0 {
            return picked;
        }
        let start = self.cursor;
        for off in 0..n {
            if picked.len() >= max_jobs {
                break;
            }
            let t = (start + off) % n;
            let Some(head) = self.per_tenant[t].front() else {
                continue;
            };
            if head.group_demand as usize > budget {
                continue; // doesn't fit this batch; its turn comes first next time
            }
            budget -= head.group_demand as usize;
            let job = self.per_tenant[t].pop_front().expect("front checked");
            self.len -= 1;
            self.cursor = (t + 1) % n;
            picked.push(job);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: u32, id: u64, demand: u32) -> PendingJob {
        PendingJob {
            id: JobId(id),
            spec: JobSpec {
                tenant: TenantId(t),
                kind: JobKind::Allgather,
                send_len: 4096,
            },
            submitted_ns: 0,
            group_demand: demand,
        }
    }

    fn queue(tenants: u32) -> JobQueue {
        let mut q = JobQueue::new();
        for _ in 0..tenants {
            q.add_tenant();
        }
        q
    }

    #[test]
    fn batch_is_one_job_per_tenant() {
        let mut q = queue(3);
        q.push(job(0, 0, 1));
        q.push(job(0, 1, 1));
        q.push(job(1, 2, 1));
        let batch = q.pick_batch(8, 8);
        let ids: Vec<u64> = batch.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 2], "one job per tenant, FIFO within tenant");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cursor_rotates_fairly() {
        let mut q = queue(4);
        for t in 0..4 {
            q.push(job(t, t as u64, 1));
            q.push(job(t, 4 + t as u64, 1));
        }
        let b1 = q.pick_batch(2, 8);
        assert_eq!(b1[0].spec.tenant, TenantId(0));
        assert_eq!(b1[1].spec.tenant, TenantId(1));
        let b2 = q.pick_batch(2, 8);
        assert_eq!(
            b2[0].spec.tenant,
            TenantId(2),
            "next batch starts where the last stopped"
        );
        assert_eq!(b2[1].spec.tenant, TenantId(3));
    }

    #[test]
    fn group_budget_caps_batch() {
        let mut q = queue(3);
        q.push(job(0, 0, 2));
        q.push(job(1, 1, 2));
        q.push(job(2, 2, 1));
        let batch = q.pick_batch(8, 3);
        // Tenant 0 (2 groups) + tenant 2 (1 group) fit; tenant 1 must wait.
        let ids: Vec<u64> = batch.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(q.len(), 1);
    }
}
