//! The runtime scheduler: admits jobs, batches them fairly across
//! tenants, arbitrates the multicast-group table, and drives each batch
//! over a fresh DES fabric while a virtual clock threads the batches into
//! one continuous service timeline.
//!
//! ## Execution model
//!
//! Time is virtual nanoseconds. A **batch** is dispatched by taking at
//! most one head-of-line job per tenant (round-robin over a rotating
//! cursor) until [`RuntimeConfig::max_inflight`] jobs are picked or the
//! batch's distinct multicast-group demand would exceed the pool
//! capacity. Group acquisition charges subnet-manager programming time
//! (`build`/`rebuild`) on the clock *before* data flies; the batch then
//! runs to quiescence on a dedicated [`Fabric`] whose group table is
//! capped at the pool capacity, so the resource model is enforced at the
//! switch level too. Jobs in one batch genuinely contend: they share
//! every NIC's round-robin QP arbiter and every fabric link.
//!
//! ## Wave execution
//!
//! A batch's lifecycle is split into three phases: **formation** (pick
//! jobs, acquire/pin multicast groups, charge SM programming time — all
//! order-sensitive and cheap), **simulation** (the expensive fabric run,
//! a self-contained [`Send`] job), and **merge** (thread the virtual
//! clock, emit [`JobRecord`]s). Formation never reads a simulation
//! result — the queue and the group pool only see submissions and
//! acquire/unpin pairs — so [`Runtime::run_to_completion_jobs`] forms
//! every batch first, runs the formed simulations on the fork-join
//! executor, and merges in batch order. Per-batch seeds derive from the
//! batch index, so the resulting [`RuntimeReport`] is byte-identical to
//! the serial `jobs = 1` run for any worker count.

use crate::job::{
    AdmissionPolicy, JobId, JobKind, JobQueue, JobSpec, PendingJob, RejectReason, TenantId,
};
use crate::mux::{SlotApp, TenantMuxApp};
use crate::pool::{AcquireOutcome, GroupKey, McastGroupPool, PoolConfig};
use crate::stats::{JobRecord, RuntimeReport, TenantStats};
use mcag_core::protocol::QpLayout;
use mcag_core::ProtocolConfig;
use mcag_core::{des, CollectiveKind, CollectivePlan, ControlMsg, IncRsApp, McastRankApp};
use mcag_exec::par_map;
use mcag_simnet::{Fabric, FabricConfig, SimTime, Topology};
use mcag_verbs::{CollectiveId, McastGroupId, Rank, Transport};
use std::sync::Arc;

/// Group-key index reserved for a tenant's in-network-reduction tree
/// (subgroup trees use `0..S`).
const RS_GROUP_INDEX: u32 = u32::MAX;

/// Everything the runtime needs to know up front.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Fabric model shared by every batch (per-batch seeds derive from
    /// `fabric.seed`, so runs are deterministic end to end).
    pub fabric: FabricConfig,
    /// Protocol knobs applied to every job.
    pub proto: ProtocolConfig,
    /// Multicast-group pool (the switch table).
    pub pool: PoolConfig,
    /// Submit-time admission thresholds.
    pub admission: AdmissionPolicy,
    /// Max jobs dispatched into one batch.
    pub max_inflight: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            fabric: FabricConfig::ucc_default(),
            proto: ProtocolConfig::default(),
            pool: PoolConfig::default(),
            admission: AdmissionPolicy::default(),
            max_inflight: 8,
        }
    }
}

/// What one dispatched batch did (returned by
/// [`Runtime::run_next_batch`] for introspection; the per-job view lands
/// in [`JobRecord`]s).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch index.
    pub index: u64,
    /// Virtual time the batch was dispatched.
    pub started_ns: u64,
    /// Subnet-manager group programming time charged before launch.
    pub setup_ns: u64,
    /// Fabric time from launch to quiescence.
    pub batch_ns: u64,
    /// Jobs that ran.
    pub jobs: Vec<JobId>,
}

/// The long-lived multi-tenant collective runtime.
pub struct Runtime {
    topo: Topology,
    cfg: RuntimeConfig,
    pool: McastGroupPool,
    queue: JobQueue,
    tenants: Vec<TenantStats>,
    records: Vec<JobRecord>,
    now_ns: u64,
    next_job: u64,
    batches: u64,
    /// Batches formed so far (equals `batches` between waves; runs ahead
    /// of it while formed batches await simulation + merge). Per-batch
    /// fabric seeds derive from this index.
    formed: u64,
    delivered_bytes: u64,
    moved_bytes: u64,
}

/// A batch that passed formation (jobs picked, groups pinned and paid
/// for) and awaits simulation + merge.
struct FormedBatch {
    index: u64,
    picked: Vec<PendingJob>,
    /// `(hits, builds, rebuilds)` per picked job, recorded at acquire.
    per_job_groups: Vec<(u32, u32, u32)>,
    /// Subnet-manager group programming time charged before launch.
    setup_ns: u64,
    sim: BatchSim,
}

/// Self-contained description of one batch's fabric simulation. `Send`,
/// so formed batches can run on the fork-join executor; everything the
/// run needs (topology, seeded fabric config, plans) is owned here.
struct BatchSim {
    index: u64,
    topo: Topology,
    fabric: FabricConfig,
    proto: ProtocolConfig,
    /// One collective plan per batch slot (collective id `2i + 1`).
    plans: Vec<Arc<CollectivePlan>>,
    /// Whether slot `i` also runs the in-network Reduce-Scatter half
    /// (collective id `2i + 2`).
    with_rs: Vec<bool>,
}

/// What one simulated batch produced (simulated-time results only; the
/// merge phase threads them onto the virtual service timeline).
struct BatchOutcome {
    /// Fabric time from launch to quiescence.
    batch_ns: u64,
    /// Per-slot completion on the fabric clock: the last rank's AG
    /// release or RS delivery, whichever is later.
    slot_done_ns: Vec<u64>,
    /// Payload bytes moved across fabric links (switch-counter view).
    moved_bytes: u64,
}

/// **Simulation** (expensive, order-free): run one formed batch on a
/// fresh fabric to quiescence and harvest per-slot completion times from
/// the apps' owned sinks. A pure function of the [`BatchSim`] — no
/// runtime state — so any number of batches can execute concurrently
/// without perturbing each other's results.
fn simulate_batch(sim: &BatchSim) -> BatchOutcome {
    let p = sim.topo.num_hosts() as u32;
    let n_workers = sim.fabric.host.rx_workers.max(1);
    let mut fab: Fabric<ControlMsg> = Fabric::new(sim.topo.clone(), sim.fabric.clone());
    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let headroom = sim.plans.len() as u64 + 1;

    // Per-slot fabric groups and cutoffs.
    struct Slot {
        groups: Vec<McastGroupId>,
        rs_group: Option<McastGroupId>,
        cutoff: u64,
    }
    let slots: Vec<Slot> = sim
        .plans
        .iter()
        .zip(&sim.with_rs)
        .map(|(plan, &with_rs)| {
            let groups: Vec<McastGroupId> = (0..plan.num_subgroups())
                .map(|_| fab.create_group(&members))
                .collect();
            let rs_group = with_rs.then(|| fab.create_group(&members));
            let cutoff = des::cutoff_ns(fab.topology(), plan, &sim.proto, headroom);
            Slot {
                groups,
                rs_group,
                cutoff,
            }
        })
        .collect();

    // SPMD app wiring: every rank hosts one endpoint per job, muxed by
    // QP ownership and token namespace.
    for &r in &members {
        let mut apps = Vec::with_capacity(slots.len());
        let mut qp_owner = Vec::new();
        for (i, (plan, slot)) in sim.plans.iter().zip(&slots).enumerate() {
            let ctrl = fab.add_qp(r, Transport::Rc, 0);
            qp_owner.push(i);
            let mut subgroup_qps = Vec::with_capacity(slot.groups.len());
            for (j, &g) in slot.groups.iter().enumerate() {
                let qp = fab.add_qp(r, Transport::Ud, (i + j) % n_workers);
                fab.attach(r, qp, g);
                subgroup_qps.push(qp);
                qp_owner.push(i);
            }
            let ag = McastRankApp::new(
                Arc::clone(plan),
                r,
                QpLayout {
                    ctrl,
                    subgroup_qps,
                    groups: slot.groups.clone(),
                },
                slot.cutoff,
            );
            let app = match slot.rs_group {
                Some(rsg) => {
                    let rs_qp = fab.add_qp(r, Transport::Rc, 0);
                    qp_owner.push(i);
                    let rs = IncRsApp::new(
                        p,
                        r,
                        plan.send_len(),
                        sim.proto.mtu,
                        sim.proto.imm,
                        CollectiveId(2 * i as u32 + 2),
                        rs_qp,
                        rsg,
                    );
                    SlotApp::AgRs { ag, rs, rs_qp }
                }
                None => SlotApp::Coll(ag),
            };
            apps.push(app);
        }
        fab.set_app(r, Box::new(TenantMuxApp::new(apps, qp_owner)));
    }

    // Batch watchdog: every job's cutoff already upper-bounds its drain
    // (headroom includes the batch size), so a batch still running
    // orders of magnitude past the summed cutoffs is livelocked. The
    // peek-based `run_until` stops cleanly at the deadline instead of
    // grinding toward the event cap.
    let total_cutoff: u64 = slots.iter().map(|s| s.cutoff).sum();
    let watchdog = SimTime::from_ns(total_cutoff.saturating_mul(des::WATCHDOG_CUTOFFS));
    let stats = fab.run_until(watchdog);
    assert!(
        stats.all_done(),
        "batch {} did not quiesce by {watchdog} (next event at {:?}): {stats:?}",
        sim.index,
        fab.next_event_time()
    );
    let moved_bytes = fab.traffic().total_data_bytes();

    // Harvest the owned per-app sinks: per slot, the last rank's AG
    // release and RS delivery.
    let mut slot_done_ns = vec![0u64; slots.len()];
    for &r in &members {
        let rank_slots = fab.take_app_as::<TenantMuxApp>(r).into_slots();
        for (i, slot_app) in rank_slots.into_iter().enumerate() {
            let done = match slot_app {
                SlotApp::Coll(ag) => ag.timing().t_done.map_or(0, SimTime::as_ns),
                SlotApp::AgRs { ag, rs, .. } => {
                    let ag_done = ag.timing().t_done.map_or(0, SimTime::as_ns);
                    let rs_done = rs.times().map_or(0, |(_, end)| end.as_ns());
                    ag_done.max(rs_done)
                }
            };
            slot_done_ns[i] = slot_done_ns[i].max(done);
        }
    }
    BatchOutcome {
        batch_ns: stats.end_time.as_ns(),
        slot_done_ns,
        moved_bytes,
    }
}

impl Runtime {
    /// Create a runtime serving collectives on `topo`.
    pub fn new(topo: Topology, cfg: RuntimeConfig) -> Runtime {
        assert!(topo.num_hosts() >= 2, "runtime needs at least two ranks");
        assert!(cfg.max_inflight >= 1, "max_inflight must be positive");
        let pool = McastGroupPool::new(cfg.pool);
        Runtime {
            topo,
            cfg,
            pool,
            queue: JobQueue::new(),
            tenants: Vec::new(),
            records: Vec::new(),
            now_ns: 0,
            next_job: 0,
            batches: 0,
            formed: 0,
            delivered_bytes: 0,
            moved_bytes: 0,
        }
    }

    /// Register a tenant; its id indexes the per-tenant stats.
    pub fn register_tenant(&mut self, name: &str) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantStats::new(name));
        self.queue.add_tenant();
        id
    }

    /// Current virtual time (ns).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Jobs waiting to be scheduled.
    pub fn pending_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Group-pool handle (counters, residency).
    pub fn pool(&self) -> &McastGroupPool {
        &self.pool
    }

    /// Distinct multicast groups a job pins while running: one tree per
    /// subgroup (clamped to the chunk count, as the plan does) plus the
    /// reduction tree for AG+RS jobs.
    pub fn group_demand(&self, kind: JobKind, send_len: usize) -> u32 {
        let chunks = (self.cfg.proto.mtu.chunks_for(send_len) as u32).max(1);
        let subs = self.cfg.proto.subgroups.clamp(1, chunks);
        subs + matches!(kind, JobKind::AgRs) as u32
    }

    /// Submit a collective. Admission control runs here: the job is
    /// either queued (`Ok`) or refused with a [`RejectReason`], counted
    /// against the tenant.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        kind: JobKind,
        send_len: usize,
    ) -> Result<JobId, RejectReason> {
        if tenant.idx() >= self.tenants.len() {
            return Err(RejectReason::UnknownTenant);
        }
        if let Err(reason) = self.admit(tenant, kind, send_len) {
            self.tenants[tenant.idx()].rejected += 1;
            return Err(reason);
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue.push(PendingJob {
            id,
            spec: JobSpec {
                tenant,
                kind,
                send_len,
            },
            submitted_ns: self.now_ns,
            group_demand: self.group_demand(kind, send_len),
        });
        self.tenants[tenant.idx()].submitted += 1;
        Ok(id)
    }

    fn admit(&self, tenant: TenantId, kind: JobKind, send_len: usize) -> Result<(), RejectReason> {
        if send_len == 0 {
            return Err(RejectReason::Empty);
        }
        if send_len > self.cfg.admission.max_send_len {
            return Err(RejectReason::TooLarge);
        }
        if let JobKind::Broadcast { root } = kind {
            if root.idx() >= self.topo.num_hosts() {
                return Err(RejectReason::InvalidRoot);
            }
        }
        if self.group_demand(kind, send_len) as usize > self.pool.capacity() {
            return Err(RejectReason::GroupDemand);
        }
        if self.queue.len() >= self.cfg.admission.max_queued_total {
            return Err(RejectReason::QueueFull);
        }
        if self.queue.queued_for(tenant) >= self.cfg.admission.max_queued_per_tenant {
            return Err(RejectReason::TenantQuota);
        }
        Ok(())
    }

    fn group_keys(&self, job: &PendingJob) -> Vec<GroupKey> {
        let tenant = job.spec.tenant.0;
        let subs = self.group_demand(JobKind::Allgather, job.spec.send_len);
        let mut keys: Vec<GroupKey> = (0..subs).map(|index| GroupKey { tenant, index }).collect();
        if matches!(job.spec.kind, JobKind::AgRs) {
            keys.push(GroupKey {
                tenant,
                index: RS_GROUP_INDEX,
            });
        }
        keys
    }

    /// Dispatch and run the next fair batch; `None` when the queue is
    /// empty. Advances the virtual clock past the batch.
    pub fn run_next_batch(&mut self) -> Option<BatchReport> {
        let formed = self.form_batch()?;
        let outcome = simulate_batch(&formed.sim);
        Some(self.merge_batch(formed, outcome))
    }

    /// **Formation** (order-sensitive, cheap): pick the fair batch,
    /// acquire and pin its multicast groups (charging SM programming
    /// time), and package the simulation as a self-contained `Send`
    /// value. Mutates only admission state — the job queue and the group
    /// pool — never anything a simulation produces, which is what makes
    /// forming several batches ahead of their simulations legal.
    fn form_batch(&mut self) -> Option<FormedBatch> {
        let picked = self
            .queue
            .pick_batch(self.cfg.max_inflight, self.pool.capacity());
        if picked.is_empty() {
            return None;
        }
        let index = self.formed;
        self.formed += 1;
        let proto = self.cfg.proto;
        let p = self.topo.num_hosts() as u32;

        // Program the batch's groups (pinned for the rest of formation),
        // charging subnet-manager time on the virtual clock.
        let mut setup_ns = 0u64;
        let mut per_job_groups: Vec<(u32, u32, u32)> = Vec::with_capacity(picked.len());
        for job in &picked {
            let (mut hits, mut builds, mut rebuilds) = (0u32, 0u32, 0u32);
            for key in self.group_keys(job) {
                let (outcome, cost) = self.pool.acquire(key);
                setup_ns += cost;
                match outcome {
                    AcquireOutcome::Hit => hits += 1,
                    AcquireOutcome::Built => builds += 1,
                    AcquireOutcome::Rebuilt => rebuilds += 1,
                }
            }
            per_job_groups.push((hits, builds, rebuilds));
        }
        // The batch's residency is decided; release the pins so the next
        // formed batch sees the same LRU order the serial interleave
        // (acquire → run → unpin → acquire …) would have produced.
        self.pool.unpin_all();

        // Collective ids 2i+1 (AG/Bcast) and 2i+2 (RS) keep every stream
        // distinct in the immediate bits.
        assert!(
            2 * picked.len() as u32 + 2 <= proto.imm.max_coll_id(),
            "batch of {} jobs exceeds the immediate-layout collective-id space",
            picked.len()
        );

        // Fabric config for the batch: per-batch seed, group table capped
        // at the pool capacity so overcommit would trip the switch model.
        let mut fabric = self.cfg.fabric.clone();
        fabric.seed = self.cfg.fabric.seed.wrapping_add(index);
        fabric.mcast_table_capacity = Some(self.pool.capacity());
        let plans = picked
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let kind = match job.spec.kind {
                    JobKind::Broadcast { root } => CollectiveKind::Broadcast { root },
                    JobKind::Allgather | JobKind::AgRs => CollectiveKind::Allgather,
                };
                Arc::new(CollectivePlan::new(
                    kind,
                    p,
                    job.spec.send_len,
                    proto.mtu,
                    proto.imm,
                    CollectiveId(2 * i as u32 + 1),
                    proto.subgroups,
                    proto.chains,
                ))
            })
            .collect();
        let with_rs = picked
            .iter()
            .map(|job| matches!(job.spec.kind, JobKind::AgRs))
            .collect();
        let sim = BatchSim {
            index,
            topo: self.topo.clone(),
            fabric,
            proto,
            plans,
            with_rs,
        };
        Some(FormedBatch {
            index,
            picked,
            per_job_groups,
            setup_ns,
            sim,
        })
    }

    /// **Merge** (order-sensitive, cheap): thread the batch onto the
    /// virtual service timeline and emit its [`JobRecord`]s. Called in
    /// batch order, so the clock and every report field are identical
    /// whether the simulations ran serially or on the executor.
    fn merge_batch(&mut self, formed: FormedBatch, outcome: BatchOutcome) -> BatchReport {
        let FormedBatch {
            index,
            picked,
            per_job_groups,
            setup_ns,
            sim,
        } = formed;
        let batch_start = self.now_ns;
        self.moved_bytes += outcome.moved_bytes;

        // Account every job on the virtual timeline: queueing ended at
        // dispatch; group programming happens before data flies.
        let dispatch_ns = batch_start + setup_ns;
        let mut job_ids = Vec::with_capacity(picked.len());
        for (i, job) in picked.iter().enumerate() {
            let delivered = delivered_bytes(job.spec.kind, &sim.plans[i]);
            let (group_hits, group_builds, group_rebuilds) = per_job_groups[i];
            let rec = JobRecord {
                id: job.id,
                tenant: job.spec.tenant,
                kind: job.spec.kind,
                send_len: job.spec.send_len,
                batch: index,
                submitted_ns: job.submitted_ns,
                started_ns: batch_start,
                finished_ns: dispatch_ns + outcome.slot_done_ns[i],
                delivered_bytes: delivered,
                group_hits,
                group_builds,
                group_rebuilds,
            };
            let ts = &mut self.tenants[job.spec.tenant.idx()];
            ts.completed += 1;
            ts.queue_ns_sum += rec.queue_ns();
            ts.service_ns_sum += rec.service_ns();
            ts.delivered_bytes += delivered;
            ts.last_finish_ns = ts.last_finish_ns.max(rec.finished_ns);
            self.delivered_bytes += delivered;
            job_ids.push(job.id);
            self.records.push(rec);
        }

        self.now_ns = dispatch_ns + outcome.batch_ns;
        self.batches += 1;
        BatchReport {
            index,
            started_ns: batch_start,
            setup_ns,
            batch_ns: outcome.batch_ns,
            jobs: job_ids,
        }
    }

    /// Drain the queue batch by batch and return the final report
    /// (serial reference path — identical to
    /// [`Runtime::run_to_completion_jobs`] with `jobs = 1`).
    pub fn run_to_completion(&mut self) -> RuntimeReport {
        while self.run_next_batch().is_some() {}
        self.report()
    }

    /// Drain the queue with up to `jobs` batch simulations in flight:
    /// batch *formation* stays sequential (admission and the group pool
    /// are order-sensitive and cheap), the expensive per-batch fabric
    /// runs execute on the fork-join executor, and results merge in
    /// batch order. Per-batch seeds derive from the batch index, so the
    /// returned report is **byte-identical** to [`run_to_completion`]
    /// (`Runtime::run_to_completion`) for every `jobs` value.
    pub fn run_to_completion_jobs(&mut self, jobs: usize) -> RuntimeReport {
        let mut formed = Vec::new();
        while let Some(fb) = self.form_batch() {
            formed.push(fb);
        }
        let outcomes = par_map(jobs, &formed, |fb| simulate_batch(&fb.sim));
        for (fb, outcome) in formed.into_iter().zip(outcomes) {
            self.merge_batch(fb, outcome);
        }
        self.report()
    }

    /// Snapshot of everything measured so far.
    pub fn report(&self) -> RuntimeReport {
        RuntimeReport {
            jobs: self.records.clone(),
            tenants: self.tenants.clone(),
            pool: self.pool.stats(),
            batches: self.batches,
            makespan_ns: self.now_ns,
            delivered_bytes: self.delivered_bytes,
            moved_bytes: self.moved_bytes,
        }
    }
}

/// Payload bytes delivered to hosts by one job.
fn delivered_bytes(kind: JobKind, plan: &CollectivePlan) -> u64 {
    let ag: u64 = (0..plan.num_ranks())
        .map(|r| plan.expected_psn_bytes(Rank(r)))
        .sum();
    // Each rank additionally receives its reduced shard (N bytes).
    let rs = match kind {
        JobKind::AgRs => plan.send_len() as u64 * plan.num_ranks() as u64,
        _ => 0,
    };
    ag + rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    fn star(p: usize) -> Topology {
        Topology::single_switch(p, LinkRate::CX3_56G, 100)
    }

    fn small_cfg() -> RuntimeConfig {
        RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            max_inflight: 4,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn single_job_completes() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("solo");
        rt.submit(t, JobKind::Allgather, 32 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.completed_jobs(), 1);
        assert_eq!(report.batches, 1);
        let rec = &report.jobs[0];
        assert_eq!(rec.queue_ns(), 0);
        assert!(rec.service_ns() > 0);
        // One group built, never hit.
        assert_eq!(report.pool.builds, 1);
        assert_eq!(report.pool.hits, 0);
    }

    #[test]
    fn mixed_kinds_share_one_batch() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let a = rt.register_tenant("bcast");
        let b = rt.register_tenant("ag");
        let c = rt.register_tenant("fsdp");
        rt.submit(a, JobKind::Broadcast { root: Rank(1) }, 16 << 10)
            .unwrap();
        rt.submit(b, JobKind::Allgather, 16 << 10).unwrap();
        rt.submit(c, JobKind::AgRs, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.completed_jobs(), 3);
        assert_eq!(report.batches, 1, "4 groups demanded, 4 slots: one batch");
        for rec in &report.jobs {
            assert!(rec.finished_ns > rec.started_ns);
            assert!(rec.delivered_bytes > 0);
        }
    }

    #[test]
    fn second_job_hits_the_pool() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("repeat");
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.batches, 2, "one job per tenant per batch");
        assert_eq!(report.pool.builds, 1);
        assert_eq!(report.pool.hits, 1, "second batch reuses the group");
        // The hit batch skips SM programming, so it finishes faster.
        assert!(report.jobs[1].service_ns() < report.jobs[0].service_ns());
    }

    #[test]
    fn clock_threads_batches() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("a");
        let u = rt.register_tenant("b");
        for _ in 0..2 {
            rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
            rt.submit(u, JobKind::Allgather, 16 << 10).unwrap();
        }
        let b0 = rt.run_next_batch().unwrap();
        assert_eq!(b0.started_ns, 0);
        let b1 = rt.run_next_batch().unwrap();
        assert_eq!(b1.started_ns, b0.setup_ns + b0.batch_ns);
        let report = rt.run_to_completion();
        // Second-batch jobs queued from t=0 until batch 1 dispatched.
        let late: Vec<_> = report.jobs.iter().filter(|j| j.batch == 1).collect();
        assert_eq!(late.len(), 2);
        for j in late {
            assert_eq!(j.queue_ns(), b1.started_ns);
        }
    }

    #[test]
    fn wave_execution_matches_serial_bit_for_bit() {
        let submit_all = |rt: &mut Runtime| {
            let a = rt.register_tenant("a");
            let b = rt.register_tenant("b");
            let c = rt.register_tenant("c");
            for _ in 0..3 {
                rt.submit(a, JobKind::Allgather, 16 << 10).unwrap();
                rt.submit(b, JobKind::Broadcast { root: Rank(2) }, 32 << 10)
                    .unwrap();
                rt.submit(c, JobKind::AgRs, 16 << 10).unwrap();
            }
        };
        let mut serial = Runtime::new(star(4), small_cfg());
        submit_all(&mut serial);
        let serial_report = serial.run_to_completion();
        for jobs in [1usize, 3] {
            let mut wave = Runtime::new(star(4), small_cfg());
            submit_all(&mut wave);
            let wave_report = wave.run_to_completion_jobs(jobs);
            assert_eq!(wave_report, serial_report, "jobs={jobs}");
        }
    }

    #[test]
    fn group_demand_counts_subgroups_and_rs() {
        let cfg = RuntimeConfig {
            proto: ProtocolConfig::parallel(4, 1),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(star(4), cfg);
        assert_eq!(rt.group_demand(JobKind::Allgather, 64 << 10), 4);
        assert_eq!(rt.group_demand(JobKind::AgRs, 64 << 10), 5);
        // One-chunk message clamps to a single subgroup.
        assert_eq!(rt.group_demand(JobKind::Allgather, 1024), 1);
    }
}
