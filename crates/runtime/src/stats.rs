//! Per-job records, per-tenant aggregates, and the runtime report.

use crate::job::{JobId, JobKind, TenantId};
use crate::pool::PoolStats;
use serde::{Deserialize, Serialize};

/// Lifecycle record of one completed job (all times on the virtual
/// runtime clock, ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Collective kind.
    pub kind: JobKind,
    /// Bytes per root.
    pub send_len: usize,
    /// Batch the job ran in.
    pub batch: u64,
    /// Submission time.
    pub submitted_ns: u64,
    /// Time the job's batch was dispatched (queueing ends here).
    pub started_ns: u64,
    /// Time the job's last rank released its buffer.
    pub finished_ns: u64,
    /// Payload bytes delivered to hosts by this job.
    pub delivered_bytes: u64,
    /// Multicast groups served from the pool without SM traffic.
    pub group_hits: u32,
    /// Groups programmed into free slots for this job.
    pub group_builds: u32,
    /// Groups programmed after evicting an LRU entry.
    pub group_rebuilds: u32,
}

impl JobRecord {
    /// Time spent waiting in the queue (ns).
    pub fn queue_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.submitted_ns)
    }

    /// Time from dispatch (incl. group setup) to completion (ns).
    pub fn service_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.started_ns)
    }

    /// End-to-end latency (ns).
    pub fn latency_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.submitted_ns)
    }
}

/// Aggregates for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name (as registered).
    pub name: String,
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Sum of queueing delays over completed jobs (ns).
    pub queue_ns_sum: u64,
    /// Sum of service times over completed jobs (ns).
    pub service_ns_sum: u64,
    /// Payload bytes delivered to hosts for this tenant.
    pub delivered_bytes: u64,
    /// Completion time of the tenant's last job (ns).
    pub last_finish_ns: u64,
}

impl TenantStats {
    pub(crate) fn new(name: &str) -> TenantStats {
        TenantStats {
            name: name.to_string(),
            submitted: 0,
            rejected: 0,
            completed: 0,
            queue_ns_sum: 0,
            service_ns_sum: 0,
            delivered_bytes: 0,
            last_finish_ns: 0,
        }
    }

    /// Mean queueing delay over completed jobs (ns).
    pub fn mean_queue_ns(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.queue_ns_sum as f64 / self.completed as f64
    }

    /// Mean service time over completed jobs (ns).
    pub fn mean_service_ns(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.service_ns_sum as f64 / self.completed as f64
    }
}

/// Snapshot of everything the runtime measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// One record per completed job, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Per-tenant aggregates, indexed by [`TenantId`].
    pub tenants: Vec<TenantStats>,
    /// Group-pool counters.
    pub pool: PoolStats,
    /// Batches dispatched.
    pub batches: u64,
    /// Virtual time when the last batch finished (ns).
    pub makespan_ns: u64,
    /// Payload bytes delivered to hosts across all jobs.
    pub delivered_bytes: u64,
    /// Payload bytes moved across all fabric links (each byte counted
    /// once per link crossed) — the switch-counter view.
    pub moved_bytes: u64,
}

impl RuntimeReport {
    /// Jobs completed.
    pub fn completed_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Group-pool hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.pool.hit_rate()
    }

    /// Sustained delivered goodput over the whole run, Tbit/s.
    pub fn sustained_tbps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        // bytes * 8 / ns == bits/ns == Gbit/s... careful: 1 byte/ns = 8 Gbit/s.
        self.delivered_bytes as f64 * 8.0 / self.makespan_ns as f64 / 1e3
    }

    /// Mean end-to-end latency across completed jobs (ns).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.jobs.iter().map(JobRecord::latency_ns).sum();
        sum as f64 / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_phase_math() {
        let r = JobRecord {
            id: JobId(0),
            tenant: TenantId(0),
            kind: JobKind::Allgather,
            send_len: 4096,
            batch: 0,
            submitted_ns: 100,
            started_ns: 400,
            finished_ns: 1000,
            delivered_bytes: 0,
            group_hits: 0,
            group_builds: 1,
            group_rebuilds: 0,
        };
        assert_eq!(r.queue_ns(), 300);
        assert_eq!(r.service_ns(), 600);
        assert_eq!(r.latency_ns(), 900);
    }

    #[test]
    fn tbps_units() {
        let rep = RuntimeReport {
            jobs: Vec::new(),
            tenants: Vec::new(),
            pool: PoolStats::default(),
            batches: 0,
            // 125 MB in 1 ms (= 125 GB/s) = 1 Tbit/s.
            makespan_ns: 1_000_000,
            delivered_bytes: 125_000_000,
            moved_bytes: 0,
        };
        assert!((rep.sustained_tbps() - 1.0).abs() < 1e-9);
    }
}
