//! Per-job records, per-tenant aggregates, and the runtime report.

use crate::job::{JobId, JobKind, RejectReason, TenantId};
use crate::pool::PoolStats;
use serde::{Deserialize, Serialize};

/// Lifecycle record of one completed job (all times on the virtual
/// runtime clock, ns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Collective kind.
    pub kind: JobKind,
    /// Bytes per root.
    pub send_len: usize,
    /// Batch the job ran in.
    pub batch: u64,
    /// Fabric partition (SM domain) the job's batch occupied (always 0
    /// on the closed-loop paths).
    pub partition: u32,
    /// Submission time.
    pub submitted_ns: u64,
    /// Time the job's batch was dispatched (queueing ends here).
    pub started_ns: u64,
    /// Time the job's last rank released its buffer.
    pub finished_ns: u64,
    /// Payload bytes delivered to hosts by this job.
    pub delivered_bytes: u64,
    /// Multicast groups served from the pool without SM traffic.
    pub group_hits: u32,
    /// Groups programmed into free slots for this job.
    pub group_builds: u32,
    /// Groups programmed after evicting an LRU entry.
    pub group_rebuilds: u32,
    /// Batch dispatches this job consumed (1 = first try completed;
    /// >1 = the reactive scheduler re-formed it after timeouts).
    pub attempts: u32,
    /// True when the job never completed: `finished_ns` is the censoring
    /// instant (its batch's recovery cutoff), not a completion.
    pub timed_out: bool,
    /// SM tree rebuilds charged to this job's final batch.
    pub sm_rebuilds: u32,
}

impl JobRecord {
    /// Time spent waiting in the queue (ns).
    pub fn queue_ns(&self) -> u64 {
        self.started_ns.saturating_sub(self.submitted_ns)
    }

    /// Time from dispatch (incl. group setup) to completion (ns).
    pub fn service_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.started_ns)
    }

    /// End-to-end latency (ns).
    pub fn latency_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.submitted_ns)
    }
}

/// Aggregates for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name (as registered).
    pub name: String,
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that never completed: censored at their batch's recovery
    /// cutoff (after retries were exhausted, on reactive runs).
    pub timed_out: u64,
    /// Sum of censored sojourns (submit → censoring instant) over
    /// timed-out jobs (ns) — the lower bound on the latency those jobs
    /// would have had, kept out of the completed-job means.
    pub censored_ns_sum: u64,
    /// Sum of queueing delays over completed jobs (ns).
    pub queue_ns_sum: u64,
    /// Sum of service times over completed jobs (ns).
    pub service_ns_sum: u64,
    /// Payload bytes delivered to hosts for this tenant.
    pub delivered_bytes: u64,
    /// Completion time of the tenant's last job (ns).
    pub last_finish_ns: u64,
}

impl TenantStats {
    pub(crate) fn new(name: &str) -> TenantStats {
        TenantStats {
            name: name.to_string(),
            submitted: 0,
            rejected: 0,
            completed: 0,
            timed_out: 0,
            censored_ns_sum: 0,
            queue_ns_sum: 0,
            service_ns_sum: 0,
            delivered_bytes: 0,
            last_finish_ns: 0,
        }
    }

    /// Mean queueing delay over completed jobs (ns).
    pub fn mean_queue_ns(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.queue_ns_sum as f64 / self.completed as f64
    }

    /// Mean service time over completed jobs (ns).
    pub fn mean_service_ns(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.service_ns_sum as f64 / self.completed as f64
    }
}

/// Admission refusals broken down by [`RejectReason`] — the attribution
/// the load-shedding study needs (a throttled job is service feedback;
/// a `TooLarge` job is a client error).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectCounts {
    /// Submissions naming an unregistered tenant.
    pub unknown_tenant: u64,
    /// Zero-byte submissions.
    pub empty: u64,
    /// `send_len` over the policy maximum.
    pub too_large: u64,
    /// Broadcast roots outside the rank range.
    pub invalid_root: u64,
    /// Group demand exceeding the pool capacity.
    pub group_demand: u64,
    /// Sojourn-EWMA admission throttle refusals.
    pub throttled: u64,
    /// Runtime-wide queue-depth refusals.
    pub queue_full: u64,
    /// Per-tenant quota refusals.
    pub tenant_quota: u64,
    /// Fault-degraded refusals: the reactive scheduler's retry backlog
    /// exceeded its bound, so new work was shed to protect recovery.
    pub degraded: u64,
}

impl RejectCounts {
    /// Attribute one refusal.
    pub fn count(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::UnknownTenant => self.unknown_tenant += 1,
            RejectReason::Empty => self.empty += 1,
            RejectReason::TooLarge => self.too_large += 1,
            RejectReason::InvalidRoot => self.invalid_root += 1,
            RejectReason::GroupDemand => self.group_demand += 1,
            RejectReason::Throttled => self.throttled += 1,
            RejectReason::QueueFull => self.queue_full += 1,
            RejectReason::TenantQuota => self.tenant_quota += 1,
            RejectReason::Degraded => self.degraded += 1,
        }
    }

    /// Refusals across all reasons.
    pub fn total(&self) -> u64 {
        self.unknown_tenant
            + self.empty
            + self.too_large
            + self.invalid_root
            + self.group_demand
            + self.throttled
            + self.queue_full
            + self.tenant_quota
            + self.degraded
    }
}

/// Occupancy aggregates for one fabric partition (SM domain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Batches committed on this partition.
    pub batches: u64,
    /// Virtual time the partition spent serving batches (group setup +
    /// fabric run), ns.
    pub busy_ns: u64,
    /// Packet copies lost to down links across this partition's batches.
    pub fault_drops: u64,
    /// Link downtime accrued during this partition's batches (ns,
    /// summed over links).
    pub downtime_ns: u64,
    /// Batches that hit their recovery cutoff on this partition.
    pub timeouts: u64,
}

impl PartitionStats {
    /// Fraction of `[0, makespan_ns)` this partition was busy.
    pub fn occupancy(&self, makespan_ns: u64) -> f64 {
        if makespan_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / makespan_ns as f64
    }
}

/// Recovery accounting for one run: all zero on a healthy fabric. On a
/// faulted fabric the timeout counters accrue in every mode, while the
/// retry/backoff/rebuild counters are the reactive scheduler's — an
/// oblivious run leaves them zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Batches that hit their recovery cutoff.
    pub timed_out_batches: u64,
    /// Job-slots censored at a batch cutoff (a job retried 3 times
    /// counts 3 here and once in `JobRecord`).
    pub timed_out_slots: u64,
    /// Timed-out jobs re-formed into a later batch.
    pub retried_jobs: u64,
    /// Timed-out jobs whose retry budget ran out (recorded censored).
    pub gave_up_jobs: u64,
    /// Multicast trees the SM re-routed around dead switches.
    pub sm_rebuilds: u64,
    /// Backoff delay injected between a timeout and the retry becoming
    /// eligible (ns, summed).
    pub backoff_ns_sum: u64,
}

/// Snapshot of everything the runtime measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// One record per completed job, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Per-tenant aggregates, indexed by [`TenantId`].
    pub tenants: Vec<TenantStats>,
    /// Group-pool counters.
    pub pool: PoolStats,
    /// Batches dispatched.
    pub batches: u64,
    /// Virtual time when the last batch finished (ns).
    pub makespan_ns: u64,
    /// Payload bytes delivered to hosts across all jobs.
    pub delivered_bytes: u64,
    /// Payload bytes moved across all fabric links (each byte counted
    /// once per link crossed) — the switch-counter view.
    pub moved_bytes: u64,
    /// Submission attempts, admitted + rejected — the offered load.
    pub offered_jobs: u64,
    /// Refusals by reason.
    pub rejects: RejectCounts,
    /// Per-partition occupancy, indexed by partition.
    pub partitions: Vec<PartitionStats>,
    /// Recovery accounting (zero on healthy/oblivious runs).
    pub retry: RetryStats,
}

impl RuntimeReport {
    /// Jobs completed (censored records excluded).
    pub fn completed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| !j.timed_out).count()
    }

    /// Jobs recorded censored: they never completed and their
    /// `finished_ns` is the censoring instant.
    pub fn timed_out_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.timed_out).count()
    }

    /// Group-pool hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.pool.hit_rate()
    }

    /// Sustained delivered goodput over the whole run, Tbit/s
    /// (the algorithmic bandwidth of the whole job mix).
    pub fn sustained_tbps(&self) -> f64 {
        mcag_models::algbw_gbps(self.delivered_bytes, self.makespan_ns) / 1e3
    }

    /// Mean end-to-end latency across completed jobs (ns).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.jobs.iter().map(JobRecord::latency_ns).sum();
        sum as f64 / self.jobs.len() as f64
    }

    /// Nearest-rank sojourn-time percentile over completed jobs (ns):
    /// `q` in `[0, 1]`, e.g. `0.99` for the p99 tail. Sojourn is the
    /// full queue + service latency. Returns 0 with no completions.
    pub fn sojourn_percentile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0, 1]: {q}");
        if self.jobs.is_empty() {
            return 0;
        }
        let mut lat: Vec<u64> = self.jobs.iter().map(JobRecord::latency_ns).collect();
        lat.sort_unstable();
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Offered arrival rate over the run, jobs per simulated second.
    pub fn offered_rate_per_s(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.offered_jobs as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Fraction of submission attempts refused, in `[0, 1]`.
    pub fn reject_rate(&self) -> f64 {
        if self.offered_jobs == 0 {
            return 0.0;
        }
        self.rejects.total() as f64 / self.offered_jobs as f64
    }

    /// Mean partition occupancy over the run, in `[0, 1]`: busy virtual
    /// time summed over partitions, over `makespan × partitions`.
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns == 0 || self.partitions.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.partitions.iter().map(|p| p.busy_ns).sum();
        busy as f64 / (self.makespan_ns as f64 * self.partitions.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_phase_math() {
        let r = JobRecord {
            id: JobId(0),
            tenant: TenantId(0),
            kind: JobKind::Allgather,
            send_len: 4096,
            batch: 0,
            partition: 0,
            submitted_ns: 100,
            started_ns: 400,
            finished_ns: 1000,
            delivered_bytes: 0,
            group_hits: 0,
            group_builds: 1,
            group_rebuilds: 0,
            attempts: 1,
            timed_out: false,
            sm_rebuilds: 0,
        };
        assert_eq!(r.queue_ns(), 300);
        assert_eq!(r.service_ns(), 600);
        assert_eq!(r.latency_ns(), 900);
    }

    #[test]
    fn tbps_units() {
        let rep = RuntimeReport {
            jobs: Vec::new(),
            tenants: Vec::new(),
            pool: PoolStats::default(),
            batches: 0,
            // 125 MB in 1 ms (= 125 GB/s) = 1 Tbit/s.
            makespan_ns: 1_000_000,
            delivered_bytes: 125_000_000,
            moved_bytes: 0,
            offered_jobs: 0,
            rejects: RejectCounts::default(),
            partitions: Vec::new(),
            retry: RetryStats::default(),
        };
        assert!((rep.sustained_tbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sojourn_percentile_nearest_rank() {
        let rec = |submitted_ns: u64, finished_ns: u64| JobRecord {
            id: JobId(0),
            tenant: TenantId(0),
            kind: JobKind::Allgather,
            send_len: 1,
            batch: 0,
            partition: 0,
            submitted_ns,
            started_ns: submitted_ns,
            finished_ns,
            delivered_bytes: 0,
            group_hits: 0,
            group_builds: 0,
            group_rebuilds: 0,
            attempts: 1,
            timed_out: false,
            sm_rebuilds: 0,
        };
        let rep = RuntimeReport {
            jobs: (1..=100).map(|i| rec(0, i * 10)).collect(),
            tenants: Vec::new(),
            pool: PoolStats::default(),
            batches: 0,
            makespan_ns: 1000,
            delivered_bytes: 0,
            moved_bytes: 0,
            offered_jobs: 120,
            rejects: RejectCounts::default(),
            partitions: vec![PartitionStats {
                batches: 4,
                busy_ns: 500,
                ..PartitionStats::default()
            }],
            retry: RetryStats::default(),
        };
        assert_eq!(rep.sojourn_percentile_ns(0.5), 500);
        assert_eq!(rep.sojourn_percentile_ns(0.99), 990);
        assert_eq!(rep.sojourn_percentile_ns(1.0), 1000);
        assert_eq!(rep.sojourn_percentile_ns(0.0), 10, "rank clamps to 1");
        assert!((rep.utilization() - 0.5).abs() < 1e-12);
        assert!((rep.offered_rate_per_s() - 120.0 * 1e6).abs() < 1.0);
    }

    #[test]
    fn reject_counts_attribute_reasons() {
        let mut rc = RejectCounts::default();
        rc.count(RejectReason::Throttled);
        rc.count(RejectReason::Throttled);
        rc.count(RejectReason::TooLarge);
        rc.count(RejectReason::QueueFull);
        assert_eq!(rc.throttled, 2);
        assert_eq!(rc.too_large, 1);
        assert_eq!(rc.total(), 4);
    }
}
