//! The per-rank multiplexer: one batch of tenant jobs shares every rank,
//! so a composite [`RankApp`] routes fabric callbacks to the right job's
//! protocol endpoint — completions by QP ownership, timers and TX-drain
//! signals by token namespace (slot `i` owns tokens
//! `[i·TOKEN_STRIDE, (i+1)·TOKEN_STRIDE)`).

use mcag_core::protocol::TOKEN_STRIDE;
use mcag_core::{ControlMsg, IncRsApp, McastRankApp, RS_TX_TOKEN};
use mcag_simnet::{Ctx, Payload, RankApp};
use mcag_verbs::{Cqe, QpNum};

/// One scheduled job's endpoint(s) on a rank.
pub(crate) enum SlotApp {
    /// Broadcast or Allgather.
    Coll(McastRankApp),
    /// The FSDP pair: Allgather + in-network Reduce-Scatter.
    AgRs {
        ag: McastRankApp,
        rs: IncRsApp,
        rs_qp: QpNum,
    },
}

impl SlotApp {
    fn released(&self) -> bool {
        match self {
            SlotApp::Coll(a) => a.is_released(),
            SlotApp::AgRs { ag, rs, .. } => ag.is_released() && rs.is_released(),
        }
    }
}

/// Composite rank app hosting every job of one batch.
pub(crate) struct TenantMuxApp {
    slots: Vec<SlotApp>,
    /// `qp_owner[qp]` = slot index owning that rank-local QP.
    qp_owner: Vec<usize>,
    marked: bool,
}

impl TenantMuxApp {
    /// Compose the batch's endpoints. Like `MultiCommApp::new`, this owns
    /// the composition convention: slot `i` gets token base
    /// `i·TOKEN_STRIDE` and auto-mark-done disabled — callers never set
    /// either by hand.
    pub(crate) fn new(mut slots: Vec<SlotApp>, qp_owner: Vec<usize>) -> TenantMuxApp {
        assert!(!slots.is_empty());
        for (i, slot) in slots.iter_mut().enumerate() {
            let base = i as u64 * TOKEN_STRIDE;
            match slot {
                SlotApp::Coll(a) => {
                    a.set_auto_mark_done(false);
                    a.set_token_base(base);
                }
                SlotApp::AgRs { ag, rs, .. } => {
                    ag.set_auto_mark_done(false);
                    ag.set_token_base(base);
                    rs.set_auto_mark_done(false);
                    rs.set_token_base(base);
                }
            }
        }
        TenantMuxApp {
            slots,
            qp_owner,
            marked: false,
        }
    }

    fn maybe_mark(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if !self.marked && self.slots.iter().all(SlotApp::released) {
            self.marked = true;
            ctx.mark_done();
        }
    }

    /// Decompose into the per-job endpoints (harvest path): entry `i` is
    /// batch slot `i`'s endpoint(s) on this rank, carrying the timings
    /// the scheduler folds into [`crate::stats::JobRecord`]s.
    pub(crate) fn into_slots(self) -> Vec<SlotApp> {
        self.slots
    }
}

impl RankApp<ControlMsg> for TenantMuxApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        for slot in &mut self.slots {
            match slot {
                SlotApp::Coll(a) => a.on_start(ctx),
                SlotApp::AgRs { ag, rs, .. } => {
                    ag.on_start(ctx);
                    rs.on_start(ctx);
                }
            }
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, payload: Payload<ControlMsg>) {
        let owner = self.qp_owner[cqe.qp.0 as usize];
        match &mut self.slots[owner] {
            SlotApp::Coll(a) => a.on_cqe(ctx, cqe, payload),
            SlotApp::AgRs { ag, rs, rs_qp } => {
                if cqe.qp == *rs_qp {
                    rs.on_cqe(ctx, cqe, payload);
                } else {
                    ag.on_cqe(ctx, cqe, payload);
                }
            }
        }
        self.maybe_mark(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        let owner = (token / TOKEN_STRIDE) as usize;
        match &mut self.slots[owner] {
            SlotApp::Coll(a) => a.on_timer(ctx, token),
            // The RS endpoint arms no timers; within a slot, timers are AG's.
            SlotApp::AgRs { ag, .. } => ag.on_timer(ctx, token),
        }
        self.maybe_mark(ctx);
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        let owner = (token / TOKEN_STRIDE) as usize;
        match &mut self.slots[owner] {
            SlotApp::Coll(a) => a.on_tx_drained(ctx, token),
            SlotApp::AgRs { ag, rs, .. } => {
                if token % TOKEN_STRIDE == RS_TX_TOKEN {
                    rs.on_tx_drained(ctx, token);
                } else {
                    ag.on_tx_drained(ctx, token);
                }
            }
        }
        self.maybe_mark(ctx);
    }
}
