//! Open-loop workload generation for the multi-tenant runtime.
//!
//! The closed-loop harness (pre-fill the queue, drain it) can measure
//! makespan but never *latency under load* — the quantity that decides
//! whether a shared in-network collective service is usable. This module
//! generates **arrival processes** on the virtual clock: seeded,
//! deterministic streams of `(arrival_ns, tenant, kind, send_len)` rows
//! that [`Runtime::submit_at`](crate::sched::Runtime::submit_at) admits
//! as virtual time advances, so the scheduler sees an offered load it
//! does not control.
//!
//! Three generators cover the usual experiment shapes:
//!
//! - **Poisson** — memoryless arrivals at a constant mean rate, the
//!   standard open-loop reference (exposes the saturation knee).
//! - **Modulated** — piecewise-constant rate phases cycling over the
//!   horizon: bursty / diurnal ramps where the offered load swings
//!   between overload and idle.
//! - **Trace replay** — explicit rows, for NCCL-style harness mixes
//!   (power-of-two size ladders swept across collective kinds) or
//!   captured schedules.
//!
//! # Determinism contract
//!
//! Every generator is a pure function of its config and seed. The
//! exponential sampler uses a **local, bit-exact logarithm**
//! ([`neg_ln_unit`]) built from IEEE arithmetic only — `f64::ln` routes
//! through the platform libm, whose last-ulp behaviour differs across
//! hosts, and a one-ulp difference in an interarrival gap would shift
//! every later virtual timestamp. With the local sampler, generated
//! workloads (and therefore `BENCH_load.json`) are byte-stable across
//! machines and worker counts.

use crate::job::{JobKind, TenantId};
use mcag_verbs::Rank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One open-loop submission: at virtual time `arrival_ns`, tenant
/// `tenant` offers a `kind` collective of `send_len` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Virtual arrival time (ns).
    pub arrival_ns: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Collective kind offered.
    pub kind: JobKind,
    /// Bytes per root.
    pub send_len: usize,
}

/// Aggregate arrival-rate process (across all tenants; each arrival is
/// then assigned to a tenant uniformly at random).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProcess {
    /// Memoryless arrivals: exponential interarrival gaps with the given
    /// mean. Offered rate = `1e9 / mean_interarrival_ns` jobs/s.
    Poisson {
        /// Mean gap between consecutive arrivals (ns).
        mean_interarrival_ns: u64,
    },
    /// Piecewise-constant modulated rate: phases cycle in order over the
    /// horizon (burst / lull / ramp shapes). Within a phase arrivals are
    /// Poisson at that phase's rate; at a phase boundary the next gap is
    /// redrawn at the new rate (memorylessness makes the truncated
    /// residual gap statistically irrelevant, and redrawing keeps the
    /// generator a pure fold over the rng stream).
    Modulated {
        /// Phases cycled in order; must be non-empty.
        phases: Vec<RatePhase>,
    },
}

/// One constant-rate phase of a [`RateProcess::Modulated`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// Phase duration (ns) before the next phase takes over.
    pub len_ns: u64,
    /// Mean interarrival gap while this phase is active (ns).
    pub mean_interarrival_ns: u64,
}

/// The NCCL-harness-style operation mix: weighted collective kinds over
/// a power-of-two message-size ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Relative weight of plain Allgather jobs.
    pub allgather_weight: u32,
    /// Relative weight of Broadcast jobs (root drawn uniformly from
    /// `0..ranks`).
    pub broadcast_weight: u32,
    /// Relative weight of fused Allgather + Reduce-Scatter jobs.
    pub agrs_weight: u32,
    /// Smallest rung of the size ladder (bytes; rounded up to a power of
    /// two internally).
    pub min_send_len: usize,
    /// Largest rung of the size ladder (bytes).
    pub max_send_len: usize,
    /// Rank count, for broadcast-root sampling.
    pub ranks: u32,
}

impl Default for OpMix {
    fn default() -> OpMix {
        OpMix {
            allgather_weight: 2,
            broadcast_weight: 1,
            agrs_weight: 1,
            min_send_len: 8 << 10,
            max_send_len: 256 << 10,
            ranks: 4,
        }
    }
}

impl OpMix {
    fn total_weight(&self) -> u64 {
        self.allgather_weight as u64 + self.broadcast_weight as u64 + self.agrs_weight as u64
    }

    /// Draw one `(kind, send_len)` pair.
    fn sample(&self, rng: &mut StdRng) -> (JobKind, usize) {
        let total = self.total_weight();
        assert!(total > 0, "op mix needs at least one positive weight");
        let pick = rng.next_u64() % total;
        let kind = if pick < self.allgather_weight as u64 {
            JobKind::Allgather
        } else if pick < self.allgather_weight as u64 + self.broadcast_weight as u64 {
            JobKind::Broadcast {
                root: Rank((rng.next_u64() % self.ranks.max(1) as u64) as u32),
            }
        } else {
            JobKind::AgRs
        };
        // Power-of-two ladder, uniform over the rungs.
        let lo = self.min_send_len.max(1).next_power_of_two();
        let hi = self.max_send_len.max(lo);
        let rungs = (hi / lo).ilog2() as u64 + 1;
        let rung = rng.next_u64() % rungs;
        (kind, lo << rung)
    }
}

/// A seeded open-loop workload: an arrival-rate process plus an op mix,
/// expanded over a horizon into a sorted arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Tenants arrivals are spread across (uniformly).
    pub tenants: u32,
    /// Generate arrivals in `[0, horizon_ns)`.
    pub horizon_ns: u64,
    /// Aggregate arrival-rate process.
    pub rate: RateProcess,
    /// Per-arrival kind/size mix.
    pub mix: OpMix,
    /// Generator seed; equal seeds give byte-identical streams.
    pub seed: u64,
}

impl Workload {
    /// Expand the workload into its arrival stream, sorted by time.
    ///
    /// A pure function of the config: the same `Workload` value yields
    /// the same rows on every host, every time.
    pub fn generate(&self) -> Vec<Arrival> {
        assert!(self.tenants > 0, "workload needs at least one tenant");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut now: u64 = 0;
        loop {
            let mean = self.mean_at(now);
            let gap = sample_exponential_ns(&mut rng, mean);
            // A phase boundary between `now` and the drawn arrival
            // re-rates the gap: jump to the boundary and redraw.
            if let Some(boundary) = self.next_boundary(now) {
                if now + gap >= boundary {
                    now = boundary;
                    continue;
                }
            }
            now += gap;
            if now >= self.horizon_ns {
                break;
            }
            let tenant = TenantId((rng.next_u64() % self.tenants as u64) as u32);
            let (kind, send_len) = self.mix.sample(&mut rng);
            out.push(Arrival {
                arrival_ns: now,
                tenant,
                kind,
                send_len,
            });
        }
        out
    }

    /// Mean interarrival gap in force at virtual time `t`.
    fn mean_at(&self, t: u64) -> u64 {
        match &self.rate {
            RateProcess::Poisson {
                mean_interarrival_ns,
            } => (*mean_interarrival_ns).max(1),
            RateProcess::Modulated { phases } => {
                assert!(!phases.is_empty(), "modulated rate needs phases");
                let cycle: u64 = phases.iter().map(|p| p.len_ns.max(1)).sum();
                let mut off = t % cycle;
                for p in phases {
                    let len = p.len_ns.max(1);
                    if off < len {
                        return p.mean_interarrival_ns.max(1);
                    }
                    off -= len;
                }
                unreachable!("offset within cycle")
            }
        }
    }

    /// Next phase boundary strictly after `t`, if the rate is modulated.
    fn next_boundary(&self, t: u64) -> Option<u64> {
        match &self.rate {
            RateProcess::Poisson { .. } => None,
            RateProcess::Modulated { phases } => {
                let cycle: u64 = phases.iter().map(|p| p.len_ns.max(1)).sum();
                let base = (t / cycle) * cycle;
                let mut edge = base;
                for p in phases {
                    edge += p.len_ns.max(1);
                    if edge > t {
                        return Some(edge);
                    }
                }
                Some(base + 2 * cycle) // t on the last edge; next cycle's end
            }
        }
    }
}

/// Build a trace from explicit `(arrival_ns, tenant, kind, send_len)`
/// rows — the replay path for captured or hand-built schedules. Rows are
/// stably sorted by arrival time (equal-time rows keep input order), so
/// replay is deterministic regardless of input ordering.
pub fn trace_from_rows(rows: &[(u64, u32, JobKind, usize)]) -> Vec<Arrival> {
    let mut out: Vec<Arrival> = rows
        .iter()
        .map(|&(arrival_ns, tenant, kind, send_len)| Arrival {
            arrival_ns,
            tenant: TenantId(tenant),
            kind,
            send_len,
        })
        .collect();
    out.sort_by_key(|a| a.arrival_ns);
    out
}

/// An NCCL-benchmark-style sweep trace: every tenant offers the full
/// power-of-two size ladder across the weighted kind cycle, with
/// arrivals spaced `gap_ns` apart round-robin across tenants — the
/// deterministic counterpart of [`Workload`] used by golden tests.
pub fn nccl_style_trace(tenants: u32, mix: OpMix, gap_ns: u64) -> Vec<Arrival> {
    let lo = mix.min_send_len.max(1).next_power_of_two();
    let hi = mix.max_send_len.max(lo);
    let rungs = (hi / lo).ilog2() + 1;
    let kinds = [
        JobKind::Allgather,
        JobKind::Broadcast { root: Rank(0) },
        JobKind::AgRs,
    ];
    let mut out = Vec::new();
    let mut t = gap_ns;
    for rung in 0..rungs {
        for k in 0..kinds.len() {
            for tenant in 0..tenants {
                out.push(Arrival {
                    arrival_ns: t,
                    tenant: TenantId(tenant),
                    kind: kinds[(k + tenant as usize) % kinds.len()],
                    send_len: lo << rung,
                });
                t += gap_ns;
            }
        }
    }
    out
}

/// Merge arrival streams into one sorted stream (stable: equal-time
/// rows keep the order of the concatenated inputs).
pub fn merge_arrivals(streams: &[Vec<Arrival>]) -> Vec<Arrival> {
    let mut out: Vec<Arrival> = streams.iter().flatten().copied().collect();
    out.sort_by_key(|a| a.arrival_ns);
    out
}

/// Draw an exponential interarrival gap with the given mean, rounded to
/// whole ns and clamped to ≥ 1 so virtual time always advances.
fn sample_exponential_ns(rng: &mut StdRng, mean_ns: u64) -> u64 {
    // 53 mantissa bits, +1 so u ∈ (0, 1] and the log argument is never 0.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    let gap = mean_ns as f64 * neg_ln_unit(u);
    ((gap + 0.5) as u64).max(1)
}

/// `-ln(u)` for `u ∈ (0, 1]`, computed with IEEE arithmetic only —
/// **bit-exact on every host** (no libm).
///
/// Decompose `u = m · 2^e` with `m ∈ [1, 2)` via the raw bit pattern,
/// then `ln u = e·ln 2 + ln m` with `ln m` from the atanh series
/// `ln m = 2·(t + t³/3 + t⁵/5 + …)`, `t = (m−1)/(m+1) ∈ [0, ⅓)`.
/// Twenty-two odd terms put the truncation error below one ulp for the
/// whole range; every operation is a correctly-rounded IEEE primitive,
/// so the result is a pure function of the input bits.
pub fn neg_ln_unit(u: f64) -> f64 {
    assert!(u > 0.0 && u <= 1.0, "neg_ln_unit domain is (0, 1]: {u}");
    if u == 1.0 {
        return 0.0;
    }
    let bits = u.to_bits();
    let raw_exp = ((bits >> 52) & 0x7FF) as i64;
    // Arrival samplers feed u ≥ 2⁻⁵³, far above the subnormal range.
    debug_assert!(raw_exp > 0, "subnormal input to neg_ln_unit");
    let e = raw_exp - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // Horner evaluation of Σ t^(2k)/(2k+1), k = 0..=21.
    let mut s = 1.0 / 43.0;
    let mut k = 21i32;
    while k > 0 {
        k -= 1;
        s = s * t2 + 1.0 / (2 * k + 1) as f64;
    }
    let ln_m = 2.0 * t * s;
    -(e as f64 * std::f64::consts::LN_2 + ln_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_ln_matches_libm_closely() {
        // The series must agree with the platform ln to ~1 ulp across the
        // sampler's input range (we only *require* determinism, but large
        // error would bias the arrival rate).
        for i in 1..=4096u64 {
            let u = i as f64 / 4096.0;
            let got = neg_ln_unit(u);
            let want = -u.ln();
            let tol = 1e-14 * want.abs().max(1.0);
            assert!((got - want).abs() <= tol, "u={u}: {got} vs {want}");
        }
        assert_eq!(neg_ln_unit(1.0), 0.0);
        // Smallest sampler input.
        let tiny = 1.0 / (1u64 << 53) as f64;
        let got = neg_ln_unit(tiny);
        assert!((got - 53.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn poisson_stream_is_seeded_and_sorted() {
        let wl = Workload {
            tenants: 4,
            horizon_ns: 50_000_000,
            rate: RateProcess::Poisson {
                mean_interarrival_ns: 100_000,
            },
            mix: OpMix::default(),
            seed: 7,
        };
        let a = wl.generate();
        let b = wl.generate();
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.iter().all(|r| r.arrival_ns < wl.horizon_ns));
        // Mean gap within 15% of nominal over ~500 samples.
        let span = a.last().unwrap().arrival_ns - a[0].arrival_ns;
        let mean = span as f64 / (a.len() - 1) as f64;
        assert!(
            (mean - 100_000.0).abs() < 15_000.0,
            "empirical mean gap {mean}"
        );
        let mut other_seed = wl;
        other_seed.seed = 8;
        assert_ne!(other_seed.generate(), a, "seed must matter");
    }

    #[test]
    fn modulated_phases_change_local_rate() {
        let wl = Workload {
            tenants: 2,
            horizon_ns: 40_000_000,
            rate: RateProcess::Modulated {
                phases: vec![
                    RatePhase {
                        len_ns: 10_000_000,
                        mean_interarrival_ns: 50_000, // burst
                    },
                    RatePhase {
                        len_ns: 10_000_000,
                        mean_interarrival_ns: 1_000_000, // lull
                    },
                ],
            },
            mix: OpMix::default(),
            seed: 11,
        };
        let rows = wl.generate();
        let in_burst = |t: u64| (t % 20_000_000) < 10_000_000;
        let burst = rows.iter().filter(|r| in_burst(r.arrival_ns)).count();
        let lull = rows.len() - burst;
        assert!(
            burst > 5 * lull.max(1),
            "burst phases must dominate: {burst} vs {lull}"
        );
    }

    #[test]
    fn mix_respects_size_ladder_and_kinds() {
        let wl = Workload {
            tenants: 3,
            horizon_ns: 100_000_000,
            rate: RateProcess::Poisson {
                mean_interarrival_ns: 200_000,
            },
            mix: OpMix {
                allgather_weight: 1,
                broadcast_weight: 1,
                agrs_weight: 0,
                min_send_len: 16 << 10,
                max_send_len: 64 << 10,
                ranks: 6,
            },
            seed: 3,
        };
        let rows = wl.generate();
        for r in &rows {
            assert!(r.send_len.is_power_of_two());
            assert!((16 << 10..=64 << 10).contains(&r.send_len));
            match r.kind {
                JobKind::AgRs => panic!("zero-weight kind sampled"),
                JobKind::Broadcast { root } => assert!(root.0 < 6),
                JobKind::Allgather => {}
            }
            assert!(r.tenant.0 < 3);
        }
    }

    #[test]
    fn trace_replay_sorts_rows() {
        let rows = trace_from_rows(&[
            (300, 1, JobKind::Allgather, 4096),
            (100, 0, JobKind::AgRs, 8192),
            (200, 2, JobKind::Broadcast { root: Rank(1) }, 1024),
        ]);
        assert_eq!(
            rows.iter().map(|r| r.arrival_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
    }

    #[test]
    fn nccl_trace_covers_ladder_times_kinds() {
        let mix = OpMix {
            min_send_len: 16 << 10,
            max_send_len: 64 << 10,
            ..OpMix::default()
        };
        let rows = nccl_style_trace(2, mix, 1_000);
        // 3 rungs × 3 kind slots × 2 tenants.
        assert_eq!(rows.len(), 18);
        assert!(rows.windows(2).all(|w| w[0].arrival_ns < w[1].arrival_ns));
        let sizes: std::collections::BTreeSet<usize> = rows.iter().map(|r| r.send_len).collect();
        assert_eq!(
            sizes.into_iter().collect::<Vec<_>>(),
            vec![16 << 10, 32 << 10, 64 << 10]
        );
    }

    #[test]
    fn merge_is_sorted_and_stable() {
        let a = vec![Arrival {
            arrival_ns: 100,
            tenant: TenantId(0),
            kind: JobKind::Allgather,
            send_len: 1,
        }];
        let b = vec![
            Arrival {
                arrival_ns: 50,
                tenant: TenantId(1),
                kind: JobKind::Allgather,
                send_len: 2,
            },
            Arrival {
                arrival_ns: 100,
                tenant: TenantId(1),
                kind: JobKind::Allgather,
                send_len: 3,
            },
        ];
        let merged = merge_arrivals(&[a, b]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].send_len, 2);
        assert_eq!(merged[1].send_len, 1, "stable: stream order on ties");
        assert_eq!(merged[2].send_len, 3);
    }
}
