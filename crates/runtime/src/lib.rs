//! # mcag-runtime — the multi-tenant collective runtime
//!
//! The paper's protocol leans on a scarce hardware resource: switch
//! multicast groups, programmed by the subnet manager at a cost of
//! hundreds of microseconds each and stored in a bounded table. The
//! one-shot drivers in `mcag-core` build a fresh world per call; a
//! production service instead keeps a **long-lived runtime** that many
//! logical tenants submit Broadcast / Allgather / AG+RS jobs to. This
//! crate provides that layer:
//!
//! * [`McastGroupPool`] — the bounded group table with LRU reuse,
//!   pinning for in-flight batches, and build/rebuild costs charged on
//!   the simulated clock;
//! * [`JobQueue`] + [`Runtime`] — admission control at submit time
//!   (queue depth, per-tenant quota, message size, group demand) and
//!   fair round-robin batching, at most one job per tenant per batch;
//! * [`RuntimeReport`] — per-job lifecycle records, per-tenant latency
//!   and queueing aggregates, offered-load and reject attribution,
//!   per-partition occupancy, pool hit rates, and sustained Tbit/s;
//! * [`arrivals`] — seeded open-loop workload generators (Poisson,
//!   modulated-rate ramps, trace replay) feeding [`Runtime::submit_at`]
//!   on the virtual clock, so latency-vs-offered-load curves can be
//!   measured instead of replayed.
//!
//! Batches run over the real `mcag-core` protocol state machines on one
//! shared `mcag-simnet` fabric per batch, so tenants contend for NIC
//! injection bandwidth and fabric links exactly as concurrent
//! communicators do in Section V-C of the paper. Everything is
//! deterministic: identical submission sequences produce identical
//! reports.
//!
//! ```
//! use mcag_runtime::{JobKind, Runtime, RuntimeConfig};
//! use mcag_simnet::Topology;
//! use mcag_verbs::LinkRate;
//!
//! let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
//! let mut rt = Runtime::new(topo, RuntimeConfig::default());
//! let tenant = rt.register_tenant("trainer-a");
//! rt.submit(tenant, JobKind::Allgather, 32 << 10).unwrap();
//! let report = rt.run_to_completion();
//! assert_eq!(report.completed_jobs(), 1);
//! assert!(report.makespan_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod job;
mod mux;
pub mod pool;
pub mod sched;
pub mod stats;

pub use arrivals::{
    merge_arrivals, nccl_style_trace, trace_from_rows, Arrival, OpMix, RatePhase, RateProcess,
    Workload,
};
pub use job::{AdmissionPolicy, JobId, JobKind, JobQueue, JobSpec, RejectReason, TenantId};
pub use mcag_offload::BackendKind;
pub use mcag_trace::{BatchSpan, JobSpan, Marker, RebuildSpan, RuntimeTrace, TraceSpec};
pub use pool::{AcquireOutcome, GroupKey, McastGroupPool, PoolConfig, PoolStats};
pub use sched::{BatchReport, ReactivePolicy, Runtime, RuntimeConfig};
pub use stats::{JobRecord, PartitionStats, RejectCounts, RetryStats, RuntimeReport, TenantStats};
