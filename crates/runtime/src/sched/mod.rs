//! The runtime scheduler: admits jobs, batches them fairly across
//! tenants, arbitrates the multicast-group table, and drives each batch
//! over a fresh DES fabric while a virtual clock threads the batches
//! into one continuous service timeline.
//!
//! ## Execution model
//!
//! Time is virtual nanoseconds. A **batch** is dispatched by taking at
//! most one head-of-line job per ready tenant (round-robin over a
//! rotating cursor on the queue's ready index) until
//! [`RuntimeConfig::max_inflight`] jobs are picked or the batch's
//! distinct multicast-group demand would exceed its group budget. Group
//! acquisition charges subnet-manager programming time
//! (`build`/`rebuild`) on the clock *before* data flies; the batch then
//! runs to quiescence on a dedicated [`Fabric`] whose group table is
//! capped at the pool capacity, so the resource model is enforced at the
//! switch level too. Jobs in one batch genuinely contend: they share
//! every NIC's round-robin QP arbiter and every fabric link.
//!
//! ## Phases: form / simulate / merge
//!
//! A batch's lifecycle is split across the submodules: **formation**
//! ([`form`] — pick jobs, acquire/pin multicast groups, charge SM
//! programming time; order-sensitive and cheap), **simulation**
//! ([`sim`] — the expensive fabric run, a self-contained [`Send`] job),
//! and **merge** ([`merge`] — thread the virtual clock, emit
//! [`JobRecord`](crate::stats::JobRecord)s). Formation never reads a
//! simulation result, so simulations may run out of order or
//! concurrently; merges commit in a fixed order, which makes every
//! report a pure function of the submission stream.
//!
//! ## Closed loop vs open loop
//!
//! The closed-loop drivers ([`Runtime::run_to_completion`],
//! [`Runtime::run_to_completion_jobs`]) drain a pre-filled queue batch
//! by batch — the replay-harness shape, kept bit-for-bit stable. The
//! **open-loop engine** ([`Runtime::run_open_loop_jobs`]) instead pulls
//! a seeded arrival stream ([`crate::arrivals`]) onto the virtual clock
//! via [`Runtime::submit_at`], and starts batches *resource-driven*:
//! whenever a fabric partition (an independent SM domain) is free and
//! the group pool has pinning headroom, the next fair batch forms and
//! launches immediately — so batches with disjoint group sets **overlap
//! on the virtual clock** across partitions (cross-batch pipelining).
//! Completions commit in virtual-time order (ties by batch index), and
//! per-batch seeds derive from the batch index, so reports are
//! byte-identical for any worker count.

mod form;
mod merge;
mod sim;

use crate::arrivals::Arrival;
use crate::job::{
    AdmissionPolicy, JobId, JobKind, JobQueue, JobSpec, PendingJob, RejectReason, TenantId,
};
use crate::pool::{McastGroupPool, PoolConfig};
use crate::stats::{PartitionStats, RejectCounts, RetryStats, RuntimeReport, TenantStats};
use form::{FormMode, FormedBatch};
use mcag_core::{des, ProtocolConfig};
use mcag_exec::par_map;
use mcag_offload::BackendKind;
use mcag_simnet::{FabricConfig, HostModel, LinkSchedule, Topology};
use mcag_trace::{Marker, RuntimeTrace, TraceSpec};
use sim::{simulate_batch, BatchOutcome};
use std::collections::BTreeSet;

#[allow(unused_imports)] // doc links
use mcag_simnet::Fabric;

/// How the scheduler reacts to fabric faults. `None` on
/// [`RuntimeConfig::reactive`] is the **oblivious** baseline: batches
/// are placed on the lowest free partition regardless of damage, and a
/// timed-out job is recorded censored. `Some` turns on the full
/// reaction: health-aware partition steering, mid-batch SM tree
/// rebuilds, timed-out jobs re-formed into later batches under capped
/// exponential backoff, and graceful admission degradation when the
/// retry backlog grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactivePolicy {
    /// Batch dispatches a job may consume before it is recorded
    /// censored (1 disables retries; the default allows 3 retries).
    pub max_attempts: u32,
    /// Backoff before the first retry becomes eligible (ns); attempt
    /// `k` waits `backoff_base_ns << (k-1)`, capped below.
    pub backoff_base_ns: u64,
    /// Ceiling on the per-retry backoff (ns).
    pub backoff_cap_ns: u64,
    /// Graceful degradation: while at least this many jobs sit in the
    /// retry backlog, new arrivals are refused with
    /// [`RejectReason::Degraded`]. `None` never degrades.
    pub degrade_retry_backlog: Option<usize>,
    /// Quarantine threshold on the partition-health score (0 = any
    /// known damage quarantines a partition while a healthier one is
    /// serving; see [`Runtime::partition_health_score`]).
    pub quarantine_score: u64,
    /// Mid-batch subnet-manager recovery: periodically diagnose
    /// fully-dead switches and re-route multicast trees around them
    /// (rebuild time billed at commit via the group pool).
    pub sm_rebuild: bool,
    /// SM diagnosis period, in multiples of the batch's summed per-job
    /// cutoffs.
    pub sm_check_cutoffs: u64,
    /// Half-life of the partition damage score on the virtual clock:
    /// every `health_halflife_ns` without fresh damage halves a
    /// partition's score (lazily, before placement decisions), so a
    /// quarantined partition whose outage ended is eventually
    /// un-quarantined and re-probed instead of idling forever. `None`
    /// (the default) never decays — the PR-8 behaviour.
    pub health_halflife_ns: Option<u64>,
}

impl Default for ReactivePolicy {
    fn default() -> ReactivePolicy {
        ReactivePolicy {
            max_attempts: 4,
            backoff_base_ns: 200_000,
            backoff_cap_ns: 1_600_000,
            degrade_retry_backlog: None,
            quarantine_score: 0,
            sm_rebuild: true,
            sm_check_cutoffs: 4,
            health_halflife_ns: None,
        }
    }
}

/// Everything the runtime needs to know up front.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Fabric model shared by every batch (per-batch seeds derive from
    /// `fabric.seed`, so runs are deterministic end to end).
    pub fabric: FabricConfig,
    /// Protocol knobs applied to every job.
    pub proto: ProtocolConfig,
    /// Multicast-group pool (the switch table).
    pub pool: PoolConfig,
    /// Submit-time admission thresholds.
    pub admission: AdmissionPolicy,
    /// Max jobs dispatched into one batch.
    pub max_inflight: usize,
    /// Independent fabric partitions (SM domains) the open-loop engine
    /// may run batches on concurrently — the cross-batch pipelining
    /// width. The closed-loop drivers always run on partition 0.
    pub partitions: usize,
    /// Flight-recorder spec: `Some` records batch/job spans and
    /// admission markers in the runtime, and threads the same spec into
    /// every batch fabric (overriding `fabric.trace`), whose packet
    /// events are merged onto the virtual clock in commit order. Harvest
    /// with [`Runtime::take_trace`]. `None` (the default) records
    /// nothing and adds one branch per would-be record.
    pub trace: Option<TraceSpec>,
    /// Per-partition fault schedules: when non-empty (length must equal
    /// [`partitions`](RuntimeConfig::partitions)), every batch placed on
    /// partition `p` replays `partition_faults[p]` on its fabric, with
    /// event times relative to the batch's launch — the partition's
    /// standing hazard environment. Empty (the default) leaves
    /// [`fabric`](RuntimeConfig::fabric)`.faults` untouched.
    pub partition_faults: Vec<LinkSchedule>,
    /// Fault-reaction policy; `None` (the default) is the oblivious
    /// baseline — see [`ReactivePolicy`].
    pub reactive: Option<ReactivePolicy>,
    /// Per-partition offload backends: when non-empty (length must
    /// equal [`partitions`](RuntimeConfig::partitions)), every batch
    /// placed on partition `p` runs with `partition_backends[p]`'s
    /// compiled endpoint cost model (and, for in-switch backends, its
    /// aggregation-table bound) instead of
    /// [`fabric`](RuntimeConfig::fabric)`.host` — heterogeneous SM
    /// domains, e.g. one DPA partition and one host-CPU partition.
    /// Empty (the default) leaves the fabric's host model untouched.
    pub partition_backends: Vec<BackendKind>,
    /// Batch recovery cutoff, in multiples of the batch's summed
    /// per-job drain cutoffs: a batch still running past the cutoff is
    /// censored (timed out), never panicked. The default is the DES
    /// livelock watchdog's generous bound; fault studies shrink it so a
    /// casualty is declared on a recovery timescale.
    pub watchdog_cutoffs: u64,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            fabric: FabricConfig::ucc_default(),
            proto: ProtocolConfig::default(),
            pool: PoolConfig::default(),
            admission: AdmissionPolicy::default(),
            max_inflight: 8,
            partitions: 1,
            trace: None,
            partition_faults: Vec::new(),
            reactive: None,
            partition_backends: Vec::new(),
            watchdog_cutoffs: des::WATCHDOG_CUTOFFS,
        }
    }
}

/// What one dispatched batch did (returned by
/// [`Runtime::run_next_batch`] for introspection; the per-job view lands
/// in [`JobRecord`](crate::stats::JobRecord)s).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch index.
    pub index: u64,
    /// Virtual time the batch was dispatched.
    pub started_ns: u64,
    /// Subnet-manager group programming time charged before launch.
    pub setup_ns: u64,
    /// Fabric time from launch to quiescence.
    pub batch_ns: u64,
    /// Jobs that ran.
    pub jobs: Vec<JobId>,
}

/// A simulated batch waiting for its virtual completion time.
struct InflightBatch {
    formed: FormedBatch,
    outcome: BatchOutcome,
    /// Virtual completion: `started + setup + batch_ns`.
    done_ns: u64,
}

/// The long-lived multi-tenant collective runtime.
pub struct Runtime {
    topo: Topology,
    cfg: RuntimeConfig,
    pool: McastGroupPool,
    queue: JobQueue,
    tenants: Vec<TenantStats>,
    records: Vec<crate::stats::JobRecord>,
    now_ns: u64,
    next_job: u64,
    batches: u64,
    /// Batches formed so far (equals `batches` between waves; runs ahead
    /// of it while formed batches await simulation + merge). Per-batch
    /// fabric seeds derive from this index.
    formed: u64,
    delivered_bytes: u64,
    moved_bytes: u64,
    /// Scheduled open-loop arrivals, sorted by time; `arrival_cursor`
    /// marks the first not-yet-due row.
    arrivals: Vec<Arrival>,
    arrival_cursor: usize,
    /// Batches overlapping on the virtual clock (open-loop engine only).
    inflight: Vec<InflightBatch>,
    /// Per-partition occupancy aggregates, indexed by partition.
    partition_stats: Vec<PartitionStats>,
    /// EWMA (α = ¼) of completed-job sojourn time, feeding the
    /// admission throttle.
    sojourn_ewma_ns: u64,
    /// Submission attempts (admitted + rejected).
    offered: u64,
    rejects: RejectCounts,
    /// Timed-out jobs awaiting their backoff deadline, sorted by
    /// eligibility time (ties keep insertion = commit order). Their
    /// tenant lanes stay busy until re-queued, preserving communicator
    /// order.
    retry_queue: Vec<(u64, PendingJob)>,
    /// Per-partition damage score: static subnet-manager telemetry from
    /// `cfg.partition_faults` plus dynamic observations folded in at
    /// commit. The reactive scheduler steers batches toward the minimum.
    partition_health: Vec<u64>,
    /// Virtual instant each partition's score was last decayed to
    /// (lazy exponential decay under
    /// [`ReactivePolicy::health_halflife_ns`]).
    health_decayed_at: Vec<u64>,
    /// Per-partition offload backends compiled at construction (empty
    /// iff `cfg.partition_backends` is): the endpoint host model the
    /// partition's batches run with, plus the in-switch
    /// aggregation-table bound for SHARP-style backends.
    partition_hosts: Vec<(HostModel, Option<usize>)>,
    /// Recovery accounting, accumulated at commit.
    retry: RetryStats,
    /// Accumulating trace document (`Some` iff `cfg.trace` is).
    trace: Option<RuntimeTrace>,
}

impl Runtime {
    /// Create a runtime serving collectives on `topo`.
    pub fn new(topo: Topology, cfg: RuntimeConfig) -> Runtime {
        assert!(topo.num_hosts() >= 2, "runtime needs at least two ranks");
        assert!(cfg.max_inflight >= 1, "max_inflight must be positive");
        assert!(cfg.partitions >= 1, "need at least one fabric partition");
        assert!(
            cfg.partition_faults.is_empty() || cfg.partition_faults.len() == cfg.partitions,
            "partition_faults must name every partition ({} schedules for {} partitions)",
            cfg.partition_faults.len(),
            cfg.partitions
        );
        assert!(
            cfg.partition_backends.is_empty() || cfg.partition_backends.len() == cfg.partitions,
            "partition_backends must name every partition ({} backends for {} partitions)",
            cfg.partition_backends.len(),
            cfg.partitions
        );
        // Compile each partition's backend once: calibrating a host
        // model runs the backend's datapath engine, which must not
        // happen per batch formation.
        let chunk = cfg.proto.mtu.bytes();
        let partition_hosts: Vec<(HostModel, Option<usize>)> = cfg
            .partition_backends
            .iter()
            .map(|kind| (kind.host_model(chunk), kind.aggregation_entries()))
            .collect();
        let pool = McastGroupPool::new(cfg.pool);
        let partition_stats = vec![PartitionStats::default(); cfg.partitions];
        // Static SM telemetry: the subnet manager knows its own fault
        // schedules, so each partition starts with a damage score
        // summarizing the outages it will replay (one point per ms of
        // scheduled downtime plus a fixed charge per down transition).
        // Dynamic observations are folded in at commit.
        let mut partition_health = vec![0u64; cfg.partitions];
        for (p, sched) in cfg.partition_faults.iter().enumerate() {
            for (i, ev) in sched.events().iter().enumerate() {
                if !ev.up {
                    let next_up = sched.next_up_ns(i);
                    let outage_us = if next_up == u64::MAX {
                        1_000_000 // never recovers: a fixed large outage
                    } else {
                        (next_up - ev.at_ns) / 1_000
                    };
                    partition_health[p] += 1_000 + outage_us;
                }
            }
        }
        let trace = cfg.trace.as_ref().map(|_| RuntimeTrace::default());
        Runtime {
            topo,
            cfg,
            pool,
            queue: JobQueue::new(),
            tenants: Vec::new(),
            records: Vec::new(),
            now_ns: 0,
            next_job: 0,
            batches: 0,
            formed: 0,
            delivered_bytes: 0,
            moved_bytes: 0,
            arrivals: Vec::new(),
            arrival_cursor: 0,
            inflight: Vec::new(),
            partition_stats,
            sojourn_ewma_ns: 0,
            offered: 0,
            rejects: RejectCounts::default(),
            retry_queue: Vec::new(),
            health_decayed_at: vec![0; partition_health.len()],
            partition_health,
            partition_hosts,
            retry: RetryStats::default(),
            trace,
        }
    }

    /// Current damage score of one partition: static SM telemetry from
    /// its fault schedule plus dynamic observations (drops, downtime,
    /// timeouts) folded in as its batches commit. The reactive scheduler
    /// steers new batches toward the minimum-score free partition and
    /// quarantines partitions scoring above
    /// [`ReactivePolicy::quarantine_score`] while a healthier one is
    /// serving.
    pub fn partition_health_score(&self, partition: usize) -> u64 {
        self.partition_health[partition]
    }

    /// Timed-out jobs currently waiting out their retry backoff.
    pub fn retry_backlog(&self) -> usize {
        self.retry_queue.len()
    }

    /// Register a tenant; its id indexes the per-tenant stats.
    pub fn register_tenant(&mut self, name: &str) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantStats::new(name));
        self.queue.add_tenant();
        id
    }

    /// Current virtual time (ns).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Jobs waiting to be scheduled.
    pub fn pending_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Group-pool handle (counters, residency).
    pub fn pool(&self) -> &McastGroupPool {
        &self.pool
    }

    /// Distinct multicast groups a job pins while running: one tree per
    /// subgroup (clamped to the chunk count, as the plan does) plus the
    /// reduction tree for AG+RS jobs.
    pub fn group_demand(&self, kind: JobKind, send_len: usize) -> u32 {
        let chunks = (self.cfg.proto.mtu.chunks_for(send_len) as u32).max(1);
        let subs = self.cfg.proto.subgroups.clamp(1, chunks);
        subs + matches!(kind, JobKind::AgRs) as u32
    }

    /// Submit a collective at the current virtual time. Admission
    /// control runs here: the job is either queued (`Ok`) or refused
    /// with a [`RejectReason`], counted against the tenant.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        kind: JobKind,
        send_len: usize,
    ) -> Result<JobId, RejectReason> {
        let now = self.now_ns;
        self.admit_arrival(Arrival {
            arrival_ns: now,
            tenant,
            kind,
            send_len,
        })
    }

    /// Schedule one arrival at `at_ns ≥ now` on the virtual clock; the
    /// admission decision is taken when virtual time reaches `at_ns`
    /// during an open-loop run ([`Runtime::run_open_loop_jobs`]). This
    /// is how the [`crate::arrivals`] generators feed the runtime.
    pub fn submit_at(&mut self, at_ns: u64, tenant: TenantId, kind: JobKind, send_len: usize) {
        assert!(
            at_ns >= self.now_ns,
            "arrival at {at_ns} ns is in the past (now = {} ns)",
            self.now_ns
        );
        let arrival = Arrival {
            arrival_ns: at_ns,
            tenant,
            kind,
            send_len,
        };
        // Insert after any equal-time rows: arrival order is preserved
        // for simultaneous submissions.
        let pos = self
            .arrivals
            .partition_point(|a| a.arrival_ns <= at_ns)
            .max(self.arrival_cursor);
        self.arrivals.insert(pos, arrival);
    }

    /// Load a whole arrival stream (e.g. a generated
    /// [`Workload`](crate::arrivals::Workload) or a merged trace) for an
    /// open-loop run. Rows must not be in the past; they are merged,
    /// stably, with anything already scheduled.
    pub fn load_arrivals(&mut self, rows: &[Arrival]) {
        for &row in rows {
            self.submit_at(row.arrival_ns, row.tenant, row.kind, row.send_len);
        }
    }

    /// Open-loop arrivals not yet due.
    pub fn scheduled_arrivals(&self) -> usize {
        self.arrivals.len() - self.arrival_cursor
    }

    /// Admit one due arrival at the current virtual time.
    fn admit_arrival(&mut self, a: Arrival) -> Result<JobId, RejectReason> {
        self.offered += 1;
        if a.tenant.idx() >= self.tenants.len() {
            self.rejects.count(RejectReason::UnknownTenant);
            self.mark_reject(&a, RejectReason::UnknownTenant);
            return Err(RejectReason::UnknownTenant);
        }
        if let Err(reason) = self.admission_check(a.tenant, a.kind, a.send_len) {
            self.rejects.count(reason);
            self.tenants[a.tenant.idx()].rejected += 1;
            self.mark_reject(&a, reason);
            return Err(reason);
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue.push(PendingJob {
            id,
            spec: JobSpec {
                tenant: a.tenant,
                kind: a.kind,
                send_len: a.send_len,
            },
            submitted_ns: a.arrival_ns,
            group_demand: self.group_demand(a.kind, a.send_len),
            attempt: 0,
        });
        self.tenants[a.tenant.idx()].submitted += 1;
        Ok(id)
    }

    /// Record a refusal as a trace marker (throttle refusals carry the
    /// `"throttled"` reason).
    fn mark_reject(&mut self, a: &Arrival, reason: RejectReason) {
        if let Some(tr) = self.trace.as_mut() {
            tr.markers.push(Marker {
                at_ns: a.arrival_ns,
                tenant: a.tenant.0,
                reason: reason.label(),
            });
        }
    }

    fn admission_check(
        &self,
        tenant: TenantId,
        kind: JobKind,
        send_len: usize,
    ) -> Result<(), RejectReason> {
        if send_len == 0 {
            return Err(RejectReason::Empty);
        }
        if send_len > self.cfg.admission.max_send_len {
            return Err(RejectReason::TooLarge);
        }
        if let JobKind::Broadcast { root } = kind {
            if root.idx() >= self.topo.num_hosts() {
                return Err(RejectReason::InvalidRoot);
            }
        }
        if self.group_demand(kind, send_len) as usize > self.pool.capacity() {
            return Err(RejectReason::GroupDemand);
        }
        // Load shedding: while recent sojourn (EWMA over commits) is
        // over the threshold, refuse new work so queued jobs drain.
        if let Some(limit) = self.cfg.admission.throttle_sojourn_ns {
            if self.sojourn_ewma_ns > limit {
                return Err(RejectReason::Throttled);
            }
        }
        // Graceful degradation under sustained faults: while the retry
        // backlog is over the reactive policy's bound, shed new work so
        // recovery traffic drains first.
        if let Some(bound) = self
            .cfg
            .reactive
            .as_ref()
            .and_then(|r| r.degrade_retry_backlog)
        {
            if self.retry_queue.len() >= bound {
                return Err(RejectReason::Degraded);
            }
        }
        if self.queue.len() >= self.cfg.admission.max_queued_total {
            return Err(RejectReason::QueueFull);
        }
        if self.queue.queued_for(tenant) >= self.cfg.admission.max_queued_per_tenant {
            return Err(RejectReason::TenantQuota);
        }
        Ok(())
    }

    /// Dispatch and run the next fair batch; `None` when the queue is
    /// empty. Advances the virtual clock past the batch.
    pub fn run_next_batch(&mut self) -> Option<BatchReport> {
        self.admit_due_retries();
        let formed = self.form_batch(FormMode::Sequential)?;
        let outcome = simulate_batch(&formed.sim);
        let start = self.now_ns;
        Some(self.merge_batch(formed, outcome, start))
    }

    /// Drain the queue batch by batch and return the final report
    /// (serial reference path — identical to
    /// [`Runtime::run_to_completion_jobs`] with `jobs = 1` on
    /// retry-free runs).
    pub fn run_to_completion(&mut self) -> RuntimeReport {
        self.assert_no_scheduled_arrivals();
        loop {
            while self.run_next_batch().is_some() {}
            // Reactive runs may have parked timed-out jobs behind a
            // backoff deadline; jump the clock there and keep draining.
            match self.retry_queue.first() {
                Some(&(ready_ns, _)) => self.now_ns = self.now_ns.max(ready_ns),
                None => break,
            }
        }
        self.report()
    }

    /// Drain the queue with up to `jobs` batch simulations in flight:
    /// batch *formation* stays sequential (admission and the group pool
    /// are order-sensitive and cheap), the expensive per-batch fabric
    /// runs execute on the fork-join executor, and results merge in
    /// batch order. Per-batch seeds derive from the batch index, so the
    /// returned report is **byte-identical** for every `jobs` value.
    pub fn run_to_completion_jobs(&mut self, jobs: usize) -> RuntimeReport {
        self.assert_no_scheduled_arrivals();
        loop {
            let mut formed = Vec::new();
            while let Some(fb) = self.form_batch(FormMode::Sequential) {
                formed.push(fb);
            }
            if formed.is_empty() {
                // Only parked retries can remain; release the earliest.
                match self.retry_queue.first() {
                    Some(&(ready_ns, _)) => {
                        self.now_ns = self.now_ns.max(ready_ns);
                        self.admit_due_retries();
                        continue;
                    }
                    None => break,
                }
            }
            let outcomes = par_map(jobs, &formed, |fb| simulate_batch(&fb.sim));
            for (fb, outcome) in formed.into_iter().zip(outcomes) {
                let start = self.now_ns;
                self.merge_batch(fb, outcome, start);
            }
            self.admit_due_retries();
        }
        self.report()
    }

    fn assert_no_scheduled_arrivals(&self) {
        assert_eq!(
            self.scheduled_arrivals(),
            0,
            "open-loop arrivals are scheduled: drive them with run_open_loop / run_open_loop_jobs"
        );
    }

    /// Serial open-loop run (= [`Runtime::run_open_loop_jobs`] with one
    /// worker).
    pub fn run_open_loop(&mut self) -> RuntimeReport {
        self.run_open_loop_jobs(1)
    }

    /// The open-loop event engine: consume the scheduled arrival stream
    /// on the virtual clock, starting batches **resource-driven** — a
    /// batch forms and launches the moment a fabric partition is free
    /// and the group pool has pinning headroom — so disjoint-group
    /// batches overlap on the virtual clock across
    /// [`RuntimeConfig::partitions`] SM domains. Up to `jobs` batch
    /// simulations run concurrently on the fork-join executor; their
    /// results **commit in virtual completion-time order** (ties broken
    /// by batch index), so the report is byte-identical for any `jobs`.
    pub fn run_open_loop_jobs(&mut self, jobs: usize) -> RuntimeReport {
        assert!(jobs >= 1, "need at least one worker");
        loop {
            self.admit_due_arrivals();
            self.admit_due_retries();
            self.launch_ready(jobs);
            let next_done = self.inflight.iter().map(|b| b.done_ns).min();
            let next_arrival = self.arrivals.get(self.arrival_cursor).map(|a| a.arrival_ns);
            let next_retry = self.retry_queue.first().map(|&(ready_ns, _)| ready_ns);
            let t = [next_done, next_arrival, next_retry]
                .into_iter()
                .flatten()
                .min();
            let Some(t) = t else {
                // Nothing in flight, nothing to come, nothing parked.
                // Admission caps group demand at the pool capacity and
                // idle tenants at an empty engine are always ready, so
                // an empty launch here means an empty queue — unless
                // the reactive scheduler is quarantining every damaged
                // partition; the progress guarantee in
                // `free_partition` forbids that with nothing in flight.
                assert!(
                    self.queue.is_empty() && self.retry_queue.is_empty(),
                    "open-loop engine stalled with {} pending and {} parked jobs",
                    self.queue.len(),
                    self.retry_queue.len()
                );
                break;
            };
            self.now_ns = self.now_ns.max(t);
            if next_done == Some(t) {
                self.commit_due(t);
            }
        }
        self.report()
    }

    /// Re-queue every parked retry whose backoff deadline has passed, at
    /// the *head* of its tenant's lane (communicator order), and wake
    /// the lane.
    fn admit_due_retries(&mut self) {
        while let Some(&(ready_ns, job)) = self.retry_queue.first() {
            if ready_ns > self.now_ns {
                break;
            }
            self.retry_queue.remove(0);
            self.queue.push_front(job);
            self.queue.mark_idle(job.spec.tenant);
        }
    }

    /// Admit every scheduled arrival whose time has come.
    fn admit_due_arrivals(&mut self) {
        while let Some(&a) = self.arrivals.get(self.arrival_cursor) {
            if a.arrival_ns > self.now_ns {
                break;
            }
            self.arrival_cursor += 1;
            // Rejections are counted (per reason, per tenant) — an
            // open-loop generator has nowhere to return an error to.
            let _ = self.admit_arrival(a);
        }
    }

    /// Lazy exponential decay of the partition damage scores under
    /// [`ReactivePolicy::health_halflife_ns`]: each whole half-life
    /// elapsed since a partition's score last moved halves it (integer
    /// shift, so the score reaches exactly zero). Called before every
    /// placement decision; fresh damage folded in at commit restarts
    /// the clock via [`Runtime::bump_partition_health`].
    fn decay_partition_health(&mut self) {
        let halflife = match self
            .cfg
            .reactive
            .as_ref()
            .and_then(|r| r.health_halflife_ns)
        {
            Some(h) => h.max(1),
            None => return,
        };
        for p in 0..self.partition_health.len() {
            let elapsed = self.now_ns.saturating_sub(self.health_decayed_at[p]);
            let steps = elapsed / halflife;
            if steps == 0 {
                continue;
            }
            self.partition_health[p] >>= steps.min(63);
            self.health_decayed_at[p] += steps * halflife;
        }
    }

    /// Fold fresh damage into a partition's score and restart its decay
    /// half-life clock at the current virtual instant.
    fn bump_partition_health(&mut self, partition: usize, damage: u64) {
        self.partition_health[partition] += damage;
        self.health_decayed_at[partition] = self.now_ns;
    }

    /// Form and launch batches while a partition is free and the next
    /// fair batch fits the pool's pinning headroom.
    fn launch_ready(&mut self, jobs: usize) {
        self.decay_partition_health();
        let mut newly: Vec<FormedBatch> = Vec::new();
        while let Some(partition) = self.free_partition(&newly) {
            match self.form_batch(FormMode::Pipelined { partition }) {
                Some(fb) => newly.push(fb),
                None => break,
            }
        }
        if newly.is_empty() {
            return;
        }
        let outcomes = par_map(jobs, &newly, |fb| simulate_batch(&fb.sim));
        for (fb, outcome) in newly.into_iter().zip(outcomes) {
            // Mid-batch SM rebuilds extend the batch's occupancy (the
            // same detach + reprogram the pool bills for an eviction);
            // the pool charge itself lands at commit.
            let recovery_ns = self.pool.rebuild_cost_ns(outcome.sm_rebuilds);
            let done_ns = fb.started_ns + fb.setup_ns + outcome.batch_ns + recovery_ns;
            self.inflight.push(InflightBatch {
                formed: fb,
                outcome,
                done_ns,
            });
        }
    }

    /// The partition the next batch should occupy, or `None` when every
    /// acceptable partition is busy.
    ///
    /// Oblivious (the default): the lowest-index partition not occupied
    /// by an in-flight or just-formed batch. Reactive: the *lowest
    /// damage score* free partition (ties to the lowest index), and a
    /// free partition scoring above the quarantine threshold is left
    /// idle while any other batch is serving — feeding a known-damaged
    /// SM domain costs a watchdog timeout, so queueing is cheaper. With
    /// nothing at all in flight the best partition is used regardless of
    /// score: the engine must make progress even on an all-damaged
    /// fabric.
    fn free_partition(&self, pending: &[FormedBatch]) -> Option<u32> {
        let used: BTreeSet<u32> = self
            .inflight
            .iter()
            .map(|b| b.formed.partition)
            .chain(pending.iter().map(|fb| fb.partition))
            .collect();
        let reactive = match &self.cfg.reactive {
            Some(r) => r,
            None => return (0..self.cfg.partitions as u32).find(|p| !used.contains(p)),
        };
        let best = (0..self.cfg.partitions as u32)
            .filter(|p| !used.contains(p))
            .min_by_key(|&p| (self.partition_health[p as usize], p))?;
        let score = self.partition_health[best as usize];
        if score > reactive.quarantine_score && !used.is_empty() {
            return None;
        }
        Some(best)
    }

    /// Commit every in-flight batch completing at virtual time `t`, in
    /// batch-index order: release its group pins, idle its tenants, free
    /// its partition, and merge its records.
    fn commit_due(&mut self, t: u64) {
        let mut due: Vec<InflightBatch> = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].done_ns == t {
                due.push(self.inflight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|b| b.formed.index);
        for infl in due {
            let keys: Vec<_> = infl
                .formed
                .picked
                .iter()
                .flat_map(|job| self.group_keys(job))
                .collect();
            self.pool.unpin(&keys);
            // Tenant lanes are released per job inside the merge: a
            // completed (or given-up) job idles its lane, a job headed
            // for the retry queue keeps it busy so communicator order
            // holds across the retry.
            let start = infl.formed.started_ns;
            self.merge_batch(infl.formed, infl.outcome, start);
        }
    }

    /// Remove and return the accumulated trace, normalized (fabric
    /// events stable-sorted into virtual-time order). `None` when
    /// tracing is off — or already harvested; call once, after the run.
    pub fn take_trace(&mut self) -> Option<RuntimeTrace> {
        let mut tr = self.trace.take()?;
        tr.normalize();
        Some(tr)
    }

    /// Snapshot of everything measured so far.
    pub fn report(&self) -> RuntimeReport {
        RuntimeReport {
            jobs: self.records.clone(),
            tenants: self.tenants.clone(),
            pool: self.pool.stats(),
            batches: self.batches,
            makespan_ns: self.now_ns,
            delivered_bytes: self.delivered_bytes,
            moved_bytes: self.moved_bytes,
            offered_jobs: self.offered,
            rejects: self.rejects,
            partitions: self.partition_stats.clone(),
            retry: self.retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::{LinkRate, Rank};

    fn star(p: usize) -> Topology {
        Topology::single_switch(p, LinkRate::CX3_56G, 100)
    }

    fn small_cfg() -> RuntimeConfig {
        RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            max_inflight: 4,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn single_job_completes() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("solo");
        rt.submit(t, JobKind::Allgather, 32 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.completed_jobs(), 1);
        assert_eq!(report.batches, 1);
        let rec = &report.jobs[0];
        assert_eq!(rec.queue_ns(), 0);
        assert!(rec.service_ns() > 0);
        // One group built, never hit.
        assert_eq!(report.pool.builds, 1);
        assert_eq!(report.pool.hits, 0);
        // Offered-load accounting: one attempt, no rejects, partition 0
        // busy for the whole makespan.
        assert_eq!(report.offered_jobs, 1);
        assert_eq!(report.rejects.total(), 0);
        assert_eq!(report.partitions.len(), 1);
        assert_eq!(report.partitions[0].batches, 1);
        assert_eq!(report.partitions[0].busy_ns, report.makespan_ns);
    }

    #[test]
    fn mixed_kinds_share_one_batch() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let a = rt.register_tenant("bcast");
        let b = rt.register_tenant("ag");
        let c = rt.register_tenant("fsdp");
        rt.submit(a, JobKind::Broadcast { root: Rank(1) }, 16 << 10)
            .unwrap();
        rt.submit(b, JobKind::Allgather, 16 << 10).unwrap();
        rt.submit(c, JobKind::AgRs, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.completed_jobs(), 3);
        assert_eq!(report.batches, 1, "4 groups demanded, 4 slots: one batch");
        for rec in &report.jobs {
            assert!(rec.finished_ns > rec.started_ns);
            assert!(rec.delivered_bytes > 0);
        }
    }

    #[test]
    fn second_job_hits_the_pool() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("repeat");
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.batches, 2, "one job per tenant per batch");
        assert_eq!(report.pool.builds, 1);
        assert_eq!(report.pool.hits, 1, "second batch reuses the group");
        // The hit batch skips SM programming, so it finishes faster.
        assert!(report.jobs[1].service_ns() < report.jobs[0].service_ns());
    }

    #[test]
    fn clock_threads_batches() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("a");
        let u = rt.register_tenant("b");
        for _ in 0..2 {
            rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
            rt.submit(u, JobKind::Allgather, 16 << 10).unwrap();
        }
        let b0 = rt.run_next_batch().unwrap();
        assert_eq!(b0.started_ns, 0);
        let b1 = rt.run_next_batch().unwrap();
        assert_eq!(b1.started_ns, b0.setup_ns + b0.batch_ns);
        let report = rt.run_to_completion();
        // Second-batch jobs queued from t=0 until batch 1 dispatched.
        let late: Vec<_> = report.jobs.iter().filter(|j| j.batch == 1).collect();
        assert_eq!(late.len(), 2);
        for j in late {
            assert_eq!(j.queue_ns(), b1.started_ns);
        }
    }

    #[test]
    fn wave_execution_matches_serial_bit_for_bit() {
        let submit_all = |rt: &mut Runtime| {
            let a = rt.register_tenant("a");
            let b = rt.register_tenant("b");
            let c = rt.register_tenant("c");
            for _ in 0..3 {
                rt.submit(a, JobKind::Allgather, 16 << 10).unwrap();
                rt.submit(b, JobKind::Broadcast { root: Rank(2) }, 32 << 10)
                    .unwrap();
                rt.submit(c, JobKind::AgRs, 16 << 10).unwrap();
            }
        };
        let mut serial = Runtime::new(star(4), small_cfg());
        submit_all(&mut serial);
        let serial_report = serial.run_to_completion();
        for jobs in [1usize, 3] {
            let mut wave = Runtime::new(star(4), small_cfg());
            submit_all(&mut wave);
            let wave_report = wave.run_to_completion_jobs(jobs);
            assert_eq!(wave_report, serial_report, "jobs={jobs}");
        }
    }

    #[test]
    fn group_demand_counts_subgroups_and_rs() {
        let cfg = RuntimeConfig {
            proto: ProtocolConfig::parallel(4, 1),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::new(star(4), cfg);
        assert_eq!(rt.group_demand(JobKind::Allgather, 64 << 10), 4);
        assert_eq!(rt.group_demand(JobKind::AgRs, 64 << 10), 5);
        // One-chunk message clamps to a single subgroup.
        assert_eq!(rt.group_demand(JobKind::Allgather, 1024), 1);
    }

    #[test]
    fn open_loop_consumes_scheduled_arrivals() {
        let mut rt = Runtime::new(star(4), small_cfg());
        let t = rt.register_tenant("open");
        rt.submit_at(0, t, JobKind::Allgather, 16 << 10);
        rt.submit_at(5_000_000, t, JobKind::Allgather, 16 << 10);
        assert_eq!(rt.scheduled_arrivals(), 2);
        let report = rt.run_open_loop();
        assert_eq!(rt.scheduled_arrivals(), 0);
        assert_eq!(report.completed_jobs(), 2);
        assert_eq!(report.batches, 2);
        // The second arrival waited for its arrival time, not the queue.
        assert_eq!(report.jobs[1].submitted_ns, 5_000_000);
        assert!(report.jobs[1].started_ns >= 5_000_000);
    }

    #[test]
    fn pipelined_batches_overlap_on_virtual_clock() {
        // Two partitions, two tenants with disjoint group sets, one job
        // per batch: the engine must run them concurrently on the
        // virtual clock — the cross-batch pipelining acceptance check.
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(8),
            max_inflight: 1,
            partitions: 2,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(star(4), cfg);
        let a = rt.register_tenant("a");
        let b = rt.register_tenant("b");
        rt.submit_at(0, a, JobKind::Allgather, 64 << 10);
        rt.submit_at(0, b, JobKind::Allgather, 64 << 10);
        let report = rt.run_open_loop();
        assert_eq!(report.completed_jobs(), 2);
        assert_eq!(report.batches, 2);
        let (r0, r1) = (&report.jobs[0], &report.jobs[1]);
        assert_ne!(r0.partition, r1.partition, "disjoint SM domains");
        // Interval overlap on the virtual clock.
        assert!(
            r0.started_ns < r1.finished_ns && r1.started_ns < r0.finished_ns,
            "batches must overlap: [{}, {}) vs [{}, {})",
            r0.started_ns,
            r0.finished_ns,
            r1.started_ns,
            r1.finished_ns
        );
        // Both partitions did work, and the makespan beats the serial
        // sum of the two service times (the pipelining payoff).
        assert!(report.partitions.iter().all(|p| p.batches == 1));
        assert!(report.makespan_ns < r0.service_ns() + r1.service_ns());
        assert!(report.utilization() > 0.5);
    }

    #[test]
    fn open_loop_report_identical_across_worker_counts() {
        let run = |jobs: usize| {
            let cfg = RuntimeConfig {
                pool: PoolConfig::with_capacity(6),
                max_inflight: 2,
                partitions: 2,
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::new(star(4), cfg);
            let ids: Vec<TenantId> = (0..4)
                .map(|i| rt.register_tenant(&format!("t{i}")))
                .collect();
            for (i, &t) in ids.iter().enumerate() {
                for j in 0..3u64 {
                    rt.submit_at(j * 300_000, t, JobKind::Allgather, (8 << 10) << (i % 2));
                }
            }
            rt.run_open_loop_jobs(jobs)
        };
        let serial = run(1);
        let wave = run(4);
        assert_eq!(serial, wave);
        assert_eq!(format!("{serial:?}"), format!("{wave:?}"));
    }

    /// A schedule that downs every link of `topo` at t = 0, forever: the
    /// partition is unconditionally dead, so any batch placed on it is
    /// censored at its recovery cutoff.
    fn dead_fabric(topo: &Topology) -> LinkSchedule {
        use mcag_simnet::{LinkId, LinkStateEvent};
        LinkSchedule::new(
            (0..topo.num_links() as u32)
                .map(|l| LinkStateEvent::down(0, LinkId(l)))
                .collect(),
        )
    }

    #[test]
    fn faulted_batch_is_censored_not_panicked() {
        // Oblivious runtime on a dead fabric: the batch hits its
        // recovery cutoff and the job is recorded censored — no panic,
        // no silent drop.
        let topo = star(4);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            partition_faults: vec![dead_fabric(&topo)],
            watchdog_cutoffs: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let t = rt.register_tenant("victim");
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert_eq!(report.completed_jobs(), 0);
        assert_eq!(report.timed_out_jobs(), 1);
        let rec = &report.jobs[0];
        assert!(rec.timed_out);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.delivered_bytes, 0);
        assert!(rec.finished_ns > rec.started_ns, "censored at the cutoff");
        assert_eq!(report.tenants[t.idx()].timed_out, 1);
        assert_eq!(report.tenants[t.idx()].completed, 0);
        assert_eq!(report.delivered_bytes, 0);
        assert_eq!(report.retry.timed_out_batches, 1);
        assert_eq!(report.retry.timed_out_slots, 1);
        assert_eq!(report.retry.retried_jobs, 0, "oblivious: no retries");
        assert_eq!(report.partitions[0].timeouts, 1);
    }

    #[test]
    fn reactive_steering_avoids_damaged_partition() {
        // Partition 0 carries a permanent outage, partition 1 is clean.
        // The reactive scheduler's static SM telemetry quarantines the
        // damaged domain, so every batch lands on partition 1 and
        // nothing times out.
        let topo = star(4);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(8),
            max_inflight: 1,
            partitions: 2,
            partition_faults: vec![dead_fabric(&topo), LinkSchedule::empty()],
            reactive: Some(ReactivePolicy::default()),
            watchdog_cutoffs: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        assert!(rt.partition_health_score(0) > 0);
        assert_eq!(rt.partition_health_score(1), 0);
        let a = rt.register_tenant("a");
        let b = rt.register_tenant("b");
        for i in 0..3u64 {
            rt.submit_at(i * 200_000, a, JobKind::Allgather, 16 << 10);
            rt.submit_at(i * 200_000, b, JobKind::Allgather, 16 << 10);
        }
        let report = rt.run_open_loop();
        assert_eq!(report.completed_jobs(), 6);
        assert_eq!(report.timed_out_jobs(), 0);
        assert!(report.jobs.iter().all(|j| j.partition == 1));
        assert_eq!(report.partitions[0].batches, 0, "damaged domain idles");
        assert_eq!(report.retry, crate::stats::RetryStats::default());
    }

    #[test]
    fn reactive_retry_recovers_on_healthy_partition() {
        // Quarantine disabled: the scheduler still steers toward the
        // healthy partition but will feed the damaged one when it is the
        // only free domain. The sacrificed job times out, parks through
        // its backoff, and the retry completes on the healthy partition.
        let topo = star(4);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(8),
            max_inflight: 1,
            partitions: 2,
            partition_faults: vec![dead_fabric(&topo), LinkSchedule::empty()],
            reactive: Some(ReactivePolicy {
                quarantine_score: u64::MAX,
                ..ReactivePolicy::default()
            }),
            watchdog_cutoffs: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let a = rt.register_tenant("a");
        let b = rt.register_tenant("b");
        rt.submit_at(0, a, JobKind::Allgather, 16 << 10);
        rt.submit_at(0, b, JobKind::Allgather, 16 << 10);
        let report = rt.run_open_loop();
        assert_eq!(report.completed_jobs(), 2, "both jobs finish eventually");
        assert_eq!(report.timed_out_jobs(), 0);
        assert_eq!(report.retry.timed_out_batches, 1);
        assert_eq!(report.retry.retried_jobs, 1);
        assert_eq!(report.retry.gave_up_jobs, 0);
        assert!(report.retry.backoff_ns_sum > 0);
        let retried = report
            .jobs
            .iter()
            .find(|j| j.attempts == 2)
            .expect("one job was retried");
        assert_eq!(retried.partition, 1, "retry steered to the healthy domain");
        assert_eq!(report.partitions[0].timeouts, 1);
    }

    #[test]
    fn degraded_admission_sheds_under_retry_backlog() {
        // Single damaged partition, huge backoff: the first job parks in
        // the retry backlog, a later arrival is refused as Degraded
        // (distinct from Throttled), and the exhausted retry is recorded
        // censored.
        let topo = star(4);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            partition_faults: vec![dead_fabric(&topo)],
            reactive: Some(ReactivePolicy {
                max_attempts: 2,
                backoff_base_ns: 1_000_000_000_000,
                backoff_cap_ns: 1_000_000_000_000,
                degrade_retry_backlog: Some(1),
                ..ReactivePolicy::default()
            }),
            watchdog_cutoffs: 4,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let a = rt.register_tenant("a");
        let b = rt.register_tenant("b");
        rt.submit_at(0, a, JobKind::Allgather, 16 << 10);
        // Lands after the first batch is censored (well under the 1 ms
        // backoff), while the retry backlog holds one job.
        rt.submit_at(100_000_000_000, b, JobKind::Allgather, 16 << 10);
        let report = rt.run_open_loop();
        assert_eq!(report.rejects.degraded, 1, "arrival shed while degraded");
        assert_eq!(report.tenants[b.idx()].rejected, 1);
        assert_eq!(report.retry.retried_jobs, 1);
        assert_eq!(report.retry.gave_up_jobs, 1, "retry budget exhausted");
        assert_eq!(report.completed_jobs(), 0);
        assert_eq!(report.timed_out_jobs(), 1);
        assert_eq!(report.jobs[0].attempts, 2);
    }

    #[test]
    fn sm_rebuild_reroutes_trees_on_a_dead_spine() {
        // Two-spine fat tree with the multicast root's chassis dead from
        // t = 0: the reactive SM sweep diagnoses it mid-batch and
        // re-routes the tree over the surviving spine. The recovery is
        // observable in the pool counters (billed rebuild) and in
        // `RetryStats::sm_rebuilds`. A mid-batch rebuild cannot resurrect
        // multicast data already dropped — the sweep period is at least
        // one summed cutoff (~200 µs) while the datagrams fly in ~1 µs —
        // so each attempt rebuilds once and is still censored; end-to-end
        // recovery on a dead spine comes from steering retries onto
        // healthy partitions, which this single-partition setup denies.
        use mcag_simnet::{LinkId, LinkStateEvent, McastTree};
        use mcag_verbs::McastGroupId;
        let topo = Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100);
        let members: Vec<Rank> = (0..8).map(Rank).collect();
        let victim = McastTree::build(&topo, McastGroupId(0), &members).root();
        let faults = LinkSchedule::new(
            (0..topo.num_links() as u32)
                .map(LinkId)
                .filter(|&l| {
                    let lk = topo.link(l);
                    lk.src == victim || lk.dst == victim
                })
                .map(|l| LinkStateEvent::down(0, l))
                .collect(),
        );
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            partition_faults: vec![faults],
            reactive: Some(ReactivePolicy {
                sm_check_cutoffs: 1,
                ..ReactivePolicy::default()
            }),
            watchdog_cutoffs: 16,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let t = rt.register_tenant("survivor");
        rt.submit(t, JobKind::Allgather, 16 << 10).unwrap();
        let report = rt.run_to_completion();
        assert!(report.retry.sm_rebuilds >= 1, "SM re-routed the tree");
        assert_eq!(
            report.pool.rebuilds, report.retry.sm_rebuilds,
            "every SM re-route billed through the pool"
        );
        assert_eq!(
            report.retry.gave_up_jobs, 1,
            "no healthy partition to flee to"
        );
        if let [rec] = &report.jobs[..] {
            assert!(rec.timed_out, "dead spine censors every attempt");
            assert_eq!(rec.attempts, ReactivePolicy::default().max_attempts);
            // The record carries its *final* batch's rebuild count; the
            // report totals rebuilds across all attempts.
            assert_eq!(rec.sm_rebuilds, 1);
            assert_eq!(report.retry.sm_rebuilds, rec.attempts as u64);
        } else {
            panic!("expected exactly one record");
        }
    }

    #[test]
    fn reactive_is_identical_to_oblivious_on_healthy_fabric() {
        // With no faults the reactive machinery must be inert: same
        // steering (all scores zero → lowest index), no retries, no SM
        // sweeps — byte-identical reports.
        let run = |reactive: Option<ReactivePolicy>| {
            let cfg = RuntimeConfig {
                pool: PoolConfig::with_capacity(6),
                max_inflight: 2,
                partitions: 2,
                reactive,
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::new(star(4), cfg);
            let ids: Vec<TenantId> = (0..3)
                .map(|i| rt.register_tenant(&format!("t{i}")))
                .collect();
            for (i, &t) in ids.iter().enumerate() {
                for j in 0..3u64 {
                    rt.submit_at(j * 250_000, t, JobKind::Allgather, (8 << 10) << (i % 2));
                }
            }
            rt.run_open_loop()
        };
        let oblivious = run(None);
        let reactive = run(Some(ReactivePolicy::default()));
        assert_eq!(oblivious, reactive);
    }

    /// One brief outage: every link down at t = 0, restored at 1 µs.
    /// Static SM telemetry charges the partition for it, but batches
    /// placed there still complete (retransmits cover the blip).
    fn blip_fabric(topo: &Topology) -> LinkSchedule {
        use mcag_simnet::{LinkId, LinkStateEvent};
        LinkSchedule::new(
            (0..topo.num_links() as u32)
                .flat_map(|l| {
                    [
                        LinkStateEvent::down(0, LinkId(l)),
                        LinkStateEvent::up(1_000, LinkId(l)),
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn health_decay_unquarantines_a_recovered_partition() {
        // Partition 0 carries a brief historical outage (score > 0),
        // partition 1 is clean. Two tenants arrive together late enough
        // for many half-lives to elapse. Without decay, partition 0
        // stays quarantined forever: the second batch of every wave
        // queues behind partition 1 instead of running concurrently.
        // With a half-life, the stale score reaches zero and partition 0
        // is re-probed.
        let topo = star(4);
        let run = |halflife: Option<u64>| {
            let cfg = RuntimeConfig {
                pool: PoolConfig::with_capacity(8),
                max_inflight: 2,
                partitions: 2,
                partition_faults: vec![blip_fabric(&topo), LinkSchedule::empty()],
                reactive: Some(ReactivePolicy {
                    health_halflife_ns: halflife,
                    ..ReactivePolicy::default()
                }),
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::new(topo.clone(), cfg);
            assert!(
                rt.partition_health_score(0) > 0,
                "SM telemetry seeds damage"
            );
            let a = rt.register_tenant("a");
            let b = rt.register_tenant("b");
            for i in 0..3u64 {
                rt.submit_at(40_000_000 + i * 4_000_000, a, JobKind::Allgather, 16 << 10);
                rt.submit_at(40_000_000 + i * 4_000_000, b, JobKind::Allgather, 16 << 10);
            }
            rt.run_open_loop()
        };
        let frozen = run(None);
        assert_eq!(frozen.completed_jobs(), 6);
        assert_eq!(
            frozen.partitions[0].batches, 0,
            "without decay the stale score quarantines partition 0 forever"
        );
        let decayed = run(Some(1_000_000));
        assert_eq!(decayed.completed_jobs(), 6);
        assert!(
            decayed.partitions[0].batches > 0,
            "after ~40 half-lives the score is zero and partition 0 serves again"
        );
    }

    #[test]
    fn health_decay_halves_scores_on_the_virtual_clock() {
        // Direct check of the lazy integer decay: a blip partition
        // starts with a known score; after a run whose arrivals sit a
        // couple of half-lives out, the pre-placement decay has shifted
        // the score down (and a zero-score clean partition stays zero).
        let topo = star(4);
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            partitions: 2,
            partition_faults: vec![blip_fabric(&topo), LinkSchedule::empty()],
            reactive: Some(ReactivePolicy {
                health_halflife_ns: Some(10_000_000),
                ..ReactivePolicy::default()
            }),
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, cfg);
        let seeded = rt.partition_health_score(0);
        assert!(seeded > 0);
        let t = rt.register_tenant("late");
        // One arrival two half-lives out: placement decays both scores
        // before steering, and the clean partition 1 takes the batch, so
        // partition 0's score is exactly the seed shifted twice.
        rt.submit_at(20_000_000, t, JobKind::Allgather, 16 << 10);
        let report = rt.run_open_loop();
        assert_eq!(report.completed_jobs(), 1);
        assert!(report.jobs.iter().all(|j| j.partition == 1));
        assert_eq!(rt.partition_health_score(0), seeded >> 2);
        assert_eq!(rt.partition_health_score(1), 0);
    }

    #[test]
    fn partition_backends_steer_the_endpoint_cost_model() {
        // One partition, one job; only the backend differs. The BF3 DPA
        // drains CQEs faster than the single-core host-CPU baseline, so
        // the same collective finishes sooner — and the empty default
        // keeps the stock UCC host model (distinct from both).
        let run = |backends: Vec<BackendKind>| {
            let cfg = RuntimeConfig {
                pool: PoolConfig::with_capacity(4),
                partition_backends: backends,
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::new(star(4), cfg);
            let t = rt.register_tenant("x");
            rt.submit(t, JobKind::AgRs, 64 << 10).unwrap();
            rt.run_to_completion()
        };
        let base = run(Vec::new());
        let dpa = run(vec![BackendKind::DpaBf3]);
        let cpu = run(vec![BackendKind::HostCpu]);
        let sharp = run(vec![BackendKind::SharpSwitch]);
        for r in [&base, &dpa, &cpu, &sharp] {
            assert_eq!(r.completed_jobs(), 1);
        }
        assert!(
            dpa.makespan_ns < cpu.makespan_ns,
            "DPA endpoint model ({} ns) must beat the host-CPU baseline ({} ns)",
            dpa.makespan_ns,
            cpu.makespan_ns
        );
        // The in-switch backend's endpoints only post descriptors and
        // the aggregation-table bound holds on this small fabric.
        assert!(sharp.makespan_ns <= cpu.makespan_ns);
    }

    #[test]
    #[should_panic(expected = "partition_backends must name every partition")]
    fn mismatched_partition_backends_panic() {
        let cfg = RuntimeConfig {
            partitions: 2,
            partition_backends: vec![BackendKind::DpaBf3],
            ..RuntimeConfig::default()
        };
        Runtime::new(star(4), cfg);
    }

    #[test]
    fn throttle_sheds_load_under_overload() {
        // Threshold of 1 ns: any completed job trips the throttle, so
        // every arrival after the first commit is refused as Throttled.
        let cfg = RuntimeConfig {
            pool: PoolConfig::with_capacity(4),
            admission: AdmissionPolicy {
                throttle_sojourn_ns: Some(1),
                ..AdmissionPolicy::default()
            },
            max_inflight: 1,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(star(4), cfg);
        let t = rt.register_tenant("storm");
        // One arrival at t=0, then a burst far enough out to land after
        // the first job commits.
        rt.submit_at(0, t, JobKind::Allgather, 16 << 10);
        for i in 0..5u64 {
            rt.submit_at(20_000_000 + i, t, JobKind::Allgather, 16 << 10);
        }
        let report = rt.run_open_loop();
        assert_eq!(report.completed_jobs(), 1);
        assert_eq!(report.rejects.throttled, 5, "burst refused as Throttled");
        assert_eq!(report.offered_jobs, 6);
        assert_eq!(report.tenants[t.idx()].rejected, 5);
    }
}
