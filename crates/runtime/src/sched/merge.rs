//! **Merge** — the order-sensitive, cheap final phase of a batch's
//! lifecycle: thread the batch onto the virtual service timeline, emit
//! its [`JobRecord`]s, and fold its totals into the runtime aggregates.
//!
//! The merge rule is what makes out-of-order simulation deterministic:
//! batches may *simulate* in any order (or concurrently), but they
//! *commit* here in a fixed order — batch order for the closed-loop wave
//! paths, virtual completion-time order (ties broken by batch index) for
//! the open-loop engine — so the clock, the EWMA throttle state, and
//! every report field are pure functions of the submission stream.

use super::form::FormedBatch;
use super::sim::{delivered_bytes, BatchOutcome};
use super::{BatchReport, Runtime};
use crate::stats::JobRecord;
use mcag_trace::{BatchSpan, JobSpan};

impl Runtime {
    /// Commit one simulated batch at virtual time `batch_start`,
    /// emitting its job records. The closed-loop paths pass the current
    /// clock (batches run back to back); the open-loop engine passes the
    /// batch's formation time (batches overlap).
    pub(super) fn merge_batch(
        &mut self,
        formed: FormedBatch,
        outcome: BatchOutcome,
        batch_start: u64,
    ) -> BatchReport {
        let FormedBatch {
            index,
            picked,
            per_job_groups,
            setup_ns,
            partition,
            sim,
            ..
        } = formed;
        self.moved_bytes += outcome.moved_bytes;

        // Account every job on the virtual timeline: queueing ended at
        // dispatch; group programming happens before data flies.
        let dispatch_ns = batch_start + setup_ns;
        let mut job_ids = Vec::with_capacity(picked.len());
        for (i, job) in picked.iter().enumerate() {
            let delivered = delivered_bytes(job.spec.kind, &sim.plans[i]);
            let (group_hits, group_builds, group_rebuilds) = per_job_groups[i];
            let rec = JobRecord {
                id: job.id,
                tenant: job.spec.tenant,
                kind: job.spec.kind,
                send_len: job.spec.send_len,
                batch: index,
                partition,
                submitted_ns: job.submitted_ns,
                started_ns: batch_start,
                finished_ns: dispatch_ns + outcome.slot_done_ns[i],
                delivered_bytes: delivered,
                group_hits,
                group_builds,
                group_rebuilds,
            };
            let ts = &mut self.tenants[job.spec.tenant.idx()];
            ts.completed += 1;
            ts.queue_ns_sum += rec.queue_ns();
            ts.service_ns_sum += rec.service_ns();
            ts.delivered_bytes += delivered;
            ts.last_finish_ns = ts.last_finish_ns.max(rec.finished_ns);
            self.delivered_bytes += delivered;
            // Sojourn EWMA (α = ¼) feeding the admission throttle:
            // integer arithmetic, updated in commit order, so it is as
            // deterministic as the records themselves.
            self.sojourn_ewma_ns = (3 * self.sojourn_ewma_ns + rec.latency_ns()) / 4;
            if let Some(tr) = self.trace.as_mut() {
                tr.jobs.push(JobSpan {
                    job: rec.id.0,
                    tenant: rec.tenant.0,
                    partition,
                    batch: index,
                    submitted_ns: rec.submitted_ns,
                    started_ns: rec.started_ns,
                    finished_ns: rec.finished_ns,
                    pool_hits: group_hits,
                    pool_builds: group_builds,
                    pool_rebuilds: group_rebuilds,
                });
            }
            job_ids.push(job.id);
            self.records.push(rec);
        }

        let done_ns = dispatch_ns + outcome.batch_ns;
        if let Some(tr) = self.trace.as_mut() {
            // Merge runs in commit order, so both the span list and the
            // absorbed fabric events land deterministically for every
            // worker count.
            if let Some(sink) = outcome.trace {
                let (events, dropped) = sink.into_ordered();
                tr.absorb_fabric(events, dropped, dispatch_ns);
            }
            tr.batches.push(BatchSpan {
                batch: index,
                partition,
                jobs: job_ids.len() as u32,
                start_ns: batch_start,
                setup_ns,
                end_ns: done_ns,
            });
        }
        self.now_ns = self.now_ns.max(done_ns);
        self.batches += 1;
        let ps = &mut self.partition_stats[partition as usize];
        ps.batches += 1;
        ps.busy_ns += setup_ns + outcome.batch_ns;
        BatchReport {
            index,
            started_ns: batch_start,
            setup_ns,
            batch_ns: outcome.batch_ns,
            jobs: job_ids,
        }
    }
}
