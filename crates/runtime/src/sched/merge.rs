//! **Merge** — the order-sensitive, cheap final phase of a batch's
//! lifecycle: thread the batch onto the virtual service timeline, emit
//! its [`JobRecord`]s, and fold its totals into the runtime aggregates.
//!
//! The merge rule is what makes out-of-order simulation deterministic:
//! batches may *simulate* in any order (or concurrently), but they
//! *commit* here in a fixed order — batch order for the closed-loop wave
//! paths, virtual completion-time order (ties broken by batch index) for
//! the open-loop engine — so the clock, the EWMA throttle state, and
//! every report field are pure functions of the submission stream.
//!
//! This is also where the fault response is decided: a slot censored at
//! the batch's recovery cutoff either re-enters the scheduler through
//! the retry queue (reactive runs with attempts left) or is recorded as
//! a censored [`JobRecord`], and the batch's observed damage (drops,
//! downtime, the timeout itself) is folded into the partition-health
//! score that steers later placements.

use super::form::FormedBatch;
use super::sim::{delivered_bytes, BatchOutcome};
use super::{BatchReport, Runtime};
use crate::job::PendingJob;
use crate::stats::JobRecord;
use mcag_trace::{BatchSpan, JobSpan, Marker, RebuildSpan};

impl Runtime {
    /// Commit one simulated batch at virtual time `batch_start`,
    /// emitting its job records. The closed-loop paths pass the current
    /// clock (batches run back to back); the open-loop engine passes the
    /// batch's formation time (batches overlap).
    pub(super) fn merge_batch(
        &mut self,
        formed: FormedBatch,
        outcome: BatchOutcome,
        batch_start: u64,
    ) -> BatchReport {
        let FormedBatch {
            index,
            picked,
            per_job_groups,
            setup_ns,
            partition,
            sim,
            ..
        } = formed;
        self.moved_bytes += outcome.moved_bytes;
        let reactive = self.cfg.reactive;

        // Bill the batch's mid-run SM recovery (tree re-routes around
        // dead switches) exactly once, at commit: same detach +
        // reprogram cost as an eviction rebuild. `launch_ready` priced
        // the identical amount into `done_ns` when the batch went in
        // flight, so the occupancy window and the pool counters agree.
        let recovery_ns = self.pool.charge_rebuilds(outcome.sm_rebuilds);

        // Account every job on the virtual timeline: queueing ended at
        // dispatch; group programming happens before data flies.
        let dispatch_ns = batch_start + setup_ns;
        let done_ns = dispatch_ns + outcome.batch_ns + recovery_ns;
        let mut job_ids = Vec::with_capacity(picked.len());
        for (i, job) in picked.iter().enumerate() {
            job_ids.push(job.id);
            let censored = outcome.slot_timed_out[i];
            if censored {
                self.retry.timed_out_slots += 1;
            }

            // Reactive retry: a censored job with attempts left goes
            // back to the head of its tenant's lane after a capped
            // exponential backoff — no record yet, and the lane stays
            // busy so nothing the tenant submitted later can overtake
            // the retry (communicator order).
            if let Some(policy) = reactive.filter(|p| censored && job.attempt + 1 < p.max_attempts)
            {
                let attempt = job.attempt + 1;
                let backoff = policy
                    .backoff_base_ns
                    .saturating_mul(1 << (attempt - 1).min(20))
                    .min(policy.backoff_cap_ns);
                let ready_ns = done_ns + backoff;
                self.retry.retried_jobs += 1;
                self.retry.backoff_ns_sum += backoff;
                if let Some(tr) = self.trace.as_mut() {
                    tr.markers.push(Marker {
                        at_ns: done_ns,
                        tenant: job.spec.tenant.0,
                        reason: "job-retry",
                    });
                }
                let parked = PendingJob { attempt, ..*job };
                let pos = self.retry_queue.partition_point(|&(t, _)| t <= ready_ns);
                self.retry_queue.insert(pos, (ready_ns, parked));
                continue;
            }

            // Completed — or censored for good (oblivious runs, or the
            // retry budget ran out): the lane idles and a record lands.
            self.queue.mark_idle(job.spec.tenant);
            if censored && reactive.is_some() {
                self.retry.gave_up_jobs += 1;
            }
            let delivered = if censored {
                0
            } else {
                delivered_bytes(job.spec.kind, &sim.plans[i])
            };
            let (group_hits, group_builds, group_rebuilds) = per_job_groups[i];
            let rec = JobRecord {
                id: job.id,
                tenant: job.spec.tenant,
                kind: job.spec.kind,
                send_len: job.spec.send_len,
                batch: index,
                partition,
                submitted_ns: job.submitted_ns,
                started_ns: batch_start,
                finished_ns: dispatch_ns + outcome.slot_done_ns[i],
                delivered_bytes: delivered,
                group_hits,
                group_builds,
                group_rebuilds,
                attempts: job.attempt + 1,
                timed_out: censored,
                sm_rebuilds: outcome.sm_rebuilds,
            };
            let ts = &mut self.tenants[job.spec.tenant.idx()];
            if censored {
                ts.timed_out += 1;
                ts.censored_ns_sum += rec.latency_ns();
            } else {
                ts.completed += 1;
                ts.queue_ns_sum += rec.queue_ns();
                ts.service_ns_sum += rec.service_ns();
                ts.delivered_bytes += delivered;
                ts.last_finish_ns = ts.last_finish_ns.max(rec.finished_ns);
                self.delivered_bytes += delivered;
            }
            // Sojourn EWMA (α = ¼) feeding the admission throttle:
            // integer arithmetic, updated in commit order, so it is as
            // deterministic as the records themselves. Censored sojourns
            // count too — a fabric losing jobs should shed load, not
            // admit more.
            self.sojourn_ewma_ns = (3 * self.sojourn_ewma_ns + rec.latency_ns()) / 4;
            if let Some(tr) = self.trace.as_mut() {
                tr.jobs.push(JobSpan {
                    job: rec.id.0,
                    tenant: rec.tenant.0,
                    partition,
                    batch: index,
                    submitted_ns: rec.submitted_ns,
                    started_ns: rec.started_ns,
                    finished_ns: rec.finished_ns,
                    pool_hits: group_hits,
                    pool_builds: group_builds,
                    pool_rebuilds: group_rebuilds,
                });
            }
            self.records.push(rec);
        }

        if let Some(tr) = self.trace.as_mut() {
            // Merge runs in commit order, so both the span list and the
            // absorbed fabric events land deterministically for every
            // worker count.
            if let Some(sink) = outcome.trace {
                let (events, dropped) = sink.into_ordered();
                tr.absorb_fabric(events, dropped, dispatch_ns);
            }
            tr.batches.push(BatchSpan {
                batch: index,
                partition,
                jobs: job_ids.len() as u32,
                start_ns: batch_start,
                setup_ns,
                end_ns: done_ns,
            });
            if outcome.sm_rebuilds > 0 {
                tr.rebuilds.push(RebuildSpan {
                    at_ns: dispatch_ns,
                    partition,
                    batch: index,
                    groups: outcome.sm_rebuilds,
                });
            }
        }
        self.now_ns = self.now_ns.max(done_ns);
        self.batches += 1;
        self.retry.timed_out_batches += outcome.timed_out as u64;
        self.retry.sm_rebuilds += outcome.sm_rebuilds as u64;

        // Fold the batch's observed damage into the partition's health
        // score (commit order ⇒ deterministic): a timeout dominates,
        // drops and downtime grade partial damage. Routed through the
        // bump so fresh damage restarts the score's decay half-life
        // (a clean batch leaves the decay clock running).
        let damage = outcome.fault_drops * 1_000
            + outcome.downtime_ns / 1_000
            + (outcome.timed_out as u64) * 1_000_000;
        if damage > 0 {
            self.bump_partition_health(partition as usize, damage);
        }

        let ps = &mut self.partition_stats[partition as usize];
        ps.batches += 1;
        ps.busy_ns += setup_ns + outcome.batch_ns + recovery_ns;
        ps.fault_drops += outcome.fault_drops;
        ps.downtime_ns += outcome.downtime_ns;
        ps.timeouts += outcome.timed_out as u64;
        BatchReport {
            index,
            started_ns: batch_start,
            setup_ns,
            batch_ns: outcome.batch_ns + recovery_ns,
            jobs: job_ids,
        }
    }
}
