//! **Formation** — the order-sensitive, cheap phase of a batch's
//! lifecycle: pick the fair batch, acquire and pin its multicast groups
//! (charging subnet-manager programming time), and package the
//! simulation as a self-contained `Send` value.
//!
//! Formation mutates only admission state — the indexed job queue and
//! the group pool — never anything a simulation produces, which is what
//! makes forming several batches ahead of their simulations legal (the
//! closed-loop wave path) and what lets the open-loop engine hold
//! multiple formed batches in flight on disjoint fabric partitions.

use super::sim::BatchSim;
use super::Runtime;
use crate::job::{JobKind, PendingJob};
use crate::pool::{AcquireOutcome, GroupKey};
use mcag_core::{CollectiveKind, CollectivePlan};
use mcag_verbs::CollectiveId;
use std::sync::Arc;

/// Group-key index reserved for a tenant's in-network-reduction tree
/// (subgroup trees use `0..S`).
pub(super) const RS_GROUP_INDEX: u32 = u32::MAX;

/// How formation treats the shared admission state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum FormMode {
    /// Closed-loop waves: batches run one at a time on partition 0, so
    /// the whole pool capacity is the group budget, pins are released as
    /// soon as the batch's residency is decided (the serial
    /// acquire → run → unpin interleave), and tenants are not marked
    /// busy — the next batch is formed knowing this one will have
    /// committed first.
    Sequential,
    /// Open-loop pipelining: the batch overlaps others on the virtual
    /// clock, so its group budget is the pool's *pinning headroom*, its
    /// groups stay pinned until commit, and its tenants are marked busy
    /// so no later batch picks their next job out of order.
    Pipelined {
        /// Fabric partition (SM domain) the batch will occupy.
        partition: u32,
    },
}

/// A batch that passed formation (jobs picked, groups pinned and paid
/// for) and awaits simulation + merge.
pub(super) struct FormedBatch {
    pub(super) index: u64,
    pub(super) picked: Vec<PendingJob>,
    /// `(hits, builds, rebuilds)` per picked job, recorded at acquire.
    pub(super) per_job_groups: Vec<(u32, u32, u32)>,
    /// Subnet-manager group programming time charged before launch.
    pub(super) setup_ns: u64,
    /// Virtual time the batch was formed (= its dispatch start in the
    /// open-loop engine; the closed-loop paths compute start at merge).
    pub(super) started_ns: u64,
    /// Fabric partition the batch occupies (0 for closed-loop waves).
    pub(super) partition: u32,
    pub(super) sim: BatchSim,
}

impl Runtime {
    /// Every multicast-group key a job pins while running.
    pub(super) fn group_keys(&self, job: &PendingJob) -> Vec<GroupKey> {
        let tenant = job.spec.tenant.0;
        let subs = self.group_demand(JobKind::Allgather, job.spec.send_len);
        let mut keys: Vec<GroupKey> = (0..subs).map(|index| GroupKey { tenant, index }).collect();
        if matches!(job.spec.kind, JobKind::AgRs) {
            keys.push(GroupKey {
                tenant,
                index: RS_GROUP_INDEX,
            });
        }
        keys
    }

    /// Form the next batch under `mode`, or `None` if nothing
    /// schedulable fits the mode's group budget.
    pub(super) fn form_batch(&mut self, mode: FormMode) -> Option<FormedBatch> {
        let budget = match mode {
            FormMode::Sequential => self.pool.capacity(),
            FormMode::Pipelined { .. } => self.pool.headroom(),
        };
        let picked = self.queue.pick_batch(self.cfg.max_inflight, budget);
        if picked.is_empty() {
            return None;
        }
        let index = self.formed;
        self.formed += 1;
        let proto = self.cfg.proto;
        let p = self.topo.num_hosts() as u32;

        // Program the batch's groups (pinned from here on), charging
        // subnet-manager time on the virtual clock.
        let mut setup_ns = 0u64;
        let mut per_job_groups: Vec<(u32, u32, u32)> = Vec::with_capacity(picked.len());
        for job in &picked {
            let (mut hits, mut builds, mut rebuilds) = (0u32, 0u32, 0u32);
            for key in self.group_keys(job) {
                let (outcome, cost) = self.pool.acquire(key);
                setup_ns += cost;
                match outcome {
                    AcquireOutcome::Hit => hits += 1,
                    AcquireOutcome::Built => builds += 1,
                    AcquireOutcome::Rebuilt => rebuilds += 1,
                }
            }
            per_job_groups.push((hits, builds, rebuilds));
        }
        let partition = match mode {
            FormMode::Sequential => {
                // The batch's residency is decided; release the pins so
                // the next formed batch sees the same LRU order the
                // serial interleave (acquire → run → unpin → acquire …)
                // would have produced.
                self.pool.unpin_all();
                0
            }
            FormMode::Pipelined { partition } => {
                // Pins are held until commit; a tenant with a job in
                // flight must not enter another batch (a communicator's
                // collectives are ordered).
                for job in &picked {
                    self.queue.mark_busy(job.spec.tenant);
                }
                partition
            }
        };

        // Collective ids 2i+1 (AG/Bcast) and 2i+2 (RS) keep every stream
        // distinct in the immediate bits.
        assert!(
            2 * picked.len() as u32 + 2 <= proto.imm.max_coll_id(),
            "batch of {} jobs exceeds the immediate-layout collective-id space",
            picked.len()
        );

        // Fabric config for the batch: per-batch seed, group table capped
        // at the pool capacity so overcommit would trip the switch model.
        let mut fabric = self.cfg.fabric.clone();
        fabric.seed = self.cfg.fabric.seed.wrapping_add(index);
        fabric.mcast_table_capacity = Some(self.pool.capacity());
        // Batch-fabric tracing is governed by the runtime's spec: each
        // batch records into its own sink on its local clock, and the
        // merge phase shifts the events onto the virtual timeline.
        fabric.trace = self.cfg.trace.clone();
        // Partition hazard environment: every batch on a partition
        // replays that partition's fault schedule (times relative to the
        // batch's own launch), so a damaged SM domain stays damaged for
        // every batch routed onto it.
        if !self.cfg.partition_faults.is_empty() {
            fabric.faults = self.cfg.partition_faults[partition as usize].clone();
        }
        // Heterogeneous offload: a partition with a configured backend
        // runs its batches under that backend's compiled endpoint cost
        // model, and an in-switch backend additionally bounds the
        // switches' live aggregation states like the MGID table.
        if let Some((host, inc_cap)) = self.partition_hosts.get(partition as usize) {
            fabric.host = *host;
            fabric.inc_table_capacity = *inc_cap;
        }
        let (sm_rebuild, sm_check_cutoffs) = match &self.cfg.reactive {
            Some(r) => (r.sm_rebuild, r.sm_check_cutoffs),
            None => (false, 0),
        };
        let plans = picked
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let kind = match job.spec.kind {
                    JobKind::Broadcast { root } => CollectiveKind::Broadcast { root },
                    JobKind::Allgather | JobKind::AgRs => CollectiveKind::Allgather,
                };
                Arc::new(CollectivePlan::new(
                    kind,
                    p,
                    job.spec.send_len,
                    proto.mtu,
                    proto.imm,
                    CollectiveId(2 * i as u32 + 1),
                    proto.subgroups,
                    proto.chains,
                ))
            })
            .collect();
        let with_rs = picked
            .iter()
            .map(|job| matches!(job.spec.kind, JobKind::AgRs))
            .collect();
        let sim = BatchSim {
            topo: self.topo.clone(),
            fabric,
            proto,
            plans,
            with_rs,
            watchdog_cutoffs: self.cfg.watchdog_cutoffs,
            sm_rebuild,
            sm_check_cutoffs,
        };
        Some(FormedBatch {
            index,
            picked,
            per_job_groups,
            setup_ns,
            started_ns: self.now_ns,
            partition,
            sim,
        })
    }
}
