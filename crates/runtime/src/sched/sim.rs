//! **Simulation** — the expensive, order-free phase of a batch's
//! lifecycle: run one formed batch on a fresh DES fabric to quiescence
//! and harvest per-slot completion times. Everything here is a pure
//! function of a self-contained [`BatchSim`], which is what lets formed
//! batches execute out of order (and concurrently, via `mcag-exec`)
//! while the runtime commits their results in virtual-time order.

use crate::job::JobKind;
use crate::mux::{SlotApp, TenantMuxApp};
use mcag_core::protocol::QpLayout;
use mcag_core::ProtocolConfig;
use mcag_core::{des, CollectivePlan, ControlMsg, IncRsApp, McastRankApp};
use mcag_simnet::{Fabric, FabricConfig, SimTime, Topology, TraceSink};
use mcag_verbs::{CollectiveId, McastGroupId, Rank, Transport};
use std::sync::Arc;

/// Self-contained description of one batch's fabric simulation. `Send`,
/// so formed batches can run on the fork-join executor; everything the
/// run needs (topology, seeded fabric config, plans) is owned here.
pub(super) struct BatchSim {
    pub(super) topo: Topology,
    pub(super) fabric: FabricConfig,
    pub(super) proto: ProtocolConfig,
    /// One collective plan per batch slot (collective id `2i + 1`).
    pub(super) plans: Vec<Arc<CollectivePlan>>,
    /// Whether slot `i` also runs the in-network Reduce-Scatter half
    /// (collective id `2i + 2`).
    pub(super) with_rs: Vec<bool>,
    /// Recovery cutoff, in multiples of the batch's summed per-job
    /// cutoffs: a batch still running past this is censored, not
    /// panicked ([`RuntimeConfig::watchdog_cutoffs`]).
    ///
    /// [`RuntimeConfig::watchdog_cutoffs`]:
    ///     super::RuntimeConfig::watchdog_cutoffs
    pub(super) watchdog_cutoffs: u64,
    /// Reactive SM recovery: diagnose dead switches mid-run and re-route
    /// multicast trees around them ([`ReactivePolicy::sm_rebuild`]).
    ///
    /// [`ReactivePolicy::sm_rebuild`]: super::ReactivePolicy::sm_rebuild
    pub(super) sm_rebuild: bool,
    /// Diagnosis period for the SM sweep, in summed-cutoff multiples
    /// ([`ReactivePolicy::sm_check_cutoffs`]).
    ///
    /// [`ReactivePolicy::sm_check_cutoffs`]:
    ///     super::ReactivePolicy::sm_check_cutoffs
    pub(super) sm_check_cutoffs: u64,
}

/// What one simulated batch produced (simulated-time results only; the
/// merge phase threads them onto the virtual service timeline).
pub(super) struct BatchOutcome {
    /// Fabric time from launch to quiescence — or to the recovery
    /// cutoff, when the batch timed out.
    pub(super) batch_ns: u64,
    /// Per-slot completion on the fabric clock: the last rank's AG
    /// release or RS delivery, whichever is later. Censored slots carry
    /// the cutoff instant.
    pub(super) slot_done_ns: Vec<u64>,
    /// True when the batch hit its recovery cutoff with work pending.
    pub(super) timed_out: bool,
    /// Per-slot censoring flags: slot `i` never finished (some rank's
    /// collective was still open at the cutoff).
    pub(super) slot_timed_out: Vec<bool>,
    /// Payload bytes moved across fabric links (switch-counter view).
    pub(super) moved_bytes: u64,
    /// Packet copies lost to down links during the batch (0 on a
    /// healthy fabric).
    pub(super) fault_drops: u64,
    /// Link downtime accrued during the batch, summed over links (ns).
    pub(super) downtime_ns: u64,
    /// Multicast trees the SM re-routed around dead switches mid-run.
    pub(super) sm_rebuilds: u32,
    /// The batch fabric's harvested flight recorder (events on the
    /// batch's local clock; the merge phase shifts them).
    pub(super) trace: Option<TraceSink>,
}

/// Run one formed batch on a fresh fabric to quiescence and harvest
/// per-slot completion times from the apps' owned sinks. A pure function
/// of the [`BatchSim`] — no runtime state — so any number of batches can
/// execute concurrently without perturbing each other's results.
pub(super) fn simulate_batch(sim: &BatchSim) -> BatchOutcome {
    let p = sim.topo.num_hosts() as u32;
    let n_workers = sim.fabric.host.rx_workers.max(1);
    let mut fab: Fabric<ControlMsg> = Fabric::new(sim.topo.clone(), sim.fabric.clone());
    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let headroom = sim.plans.len() as u64 + 1;

    // Per-slot fabric groups and cutoffs.
    struct Slot {
        groups: Vec<McastGroupId>,
        rs_group: Option<McastGroupId>,
        cutoff: u64,
    }
    let slots: Vec<Slot> = sim
        .plans
        .iter()
        .zip(&sim.with_rs)
        .map(|(plan, &with_rs)| {
            let groups: Vec<McastGroupId> = (0..plan.num_subgroups())
                .map(|_| fab.create_group(&members))
                .collect();
            let rs_group = with_rs.then(|| fab.create_group(&members));
            let cutoff = des::cutoff_ns(fab.topology(), plan, &sim.proto, headroom);
            Slot {
                groups,
                rs_group,
                cutoff,
            }
        })
        .collect();

    // SPMD app wiring: every rank hosts one endpoint per job, muxed by
    // QP ownership and token namespace.
    for &r in &members {
        let mut apps = Vec::with_capacity(slots.len());
        let mut qp_owner = Vec::new();
        for (i, (plan, slot)) in sim.plans.iter().zip(&slots).enumerate() {
            let ctrl = fab.add_qp(r, Transport::Rc, 0);
            qp_owner.push(i);
            let mut subgroup_qps = Vec::with_capacity(slot.groups.len());
            for (j, &g) in slot.groups.iter().enumerate() {
                let qp = fab.add_qp(r, Transport::Ud, (i + j) % n_workers);
                fab.attach(r, qp, g);
                subgroup_qps.push(qp);
                qp_owner.push(i);
            }
            let ag = McastRankApp::new(
                Arc::clone(plan),
                r,
                QpLayout {
                    ctrl,
                    subgroup_qps,
                    groups: slot.groups.clone(),
                },
                slot.cutoff,
            );
            let app = match slot.rs_group {
                Some(rsg) => {
                    let rs_qp = fab.add_qp(r, Transport::Rc, 0);
                    qp_owner.push(i);
                    let rs = IncRsApp::new(
                        p,
                        r,
                        plan.send_len(),
                        sim.proto.mtu,
                        sim.proto.imm,
                        CollectiveId(2 * i as u32 + 2),
                        rs_qp,
                        rsg,
                    );
                    SlotApp::AgRs { ag, rs, rs_qp }
                }
                None => SlotApp::Coll(ag),
            };
            apps.push(app);
        }
        fab.set_app(r, Box::new(TenantMuxApp::new(apps, qp_owner)));
    }

    // Batch watchdog: every job's cutoff already upper-bounds its drain
    // (headroom includes the batch size), so a batch still running
    // orders of magnitude past the summed cutoffs is stuck — on a
    // healthy fabric that is a livelock, on a faulted one it is a
    // casualty. Either way the peek-based `run_until` stops cleanly at
    // the deadline and the batch is *censored*: reported with the
    // cutoff as its end time, never panicked, so the scheduler above
    // can retry or record the loss.
    let total_cutoff: u64 = slots.iter().map(|s| s.cutoff).sum();
    let watchdog = SimTime::from_ns(total_cutoff.saturating_mul(sim.watchdog_cutoffs.max(1)));
    let mut sm_rebuilds = 0u32;
    let stats = if sim.sm_rebuild && !sim.fabric.faults.is_empty() {
        // Reactive SM sweep: run in slices; at each checkpoint diagnose
        // fully-dead switches from the health snapshot and re-route any
        // multicast tree that crosses one. Checkpoint times are pure
        // functions of the batch's cutoffs, so recovery is as
        // deterministic as the failure.
        let step = total_cutoff.saturating_mul(sim.sm_check_cutoffs.max(1));
        let mut deadline = step.min(watchdog.as_ns());
        loop {
            let stats = fab.run_until(SimTime::from_ns(deadline));
            if stats.all_done() || deadline >= watchdog.as_ns() {
                break stats;
            }
            let dead = fab.dead_switches();
            if !dead.is_empty() {
                sm_rebuilds += fab.rebuild_groups_avoiding(&dead);
            }
            deadline = deadline.saturating_add(step).min(watchdog.as_ns());
        }
    } else {
        fab.run_until(watchdog)
    };
    let timed_out = !stats.all_done();
    let traffic = fab.traffic();
    let moved_bytes = traffic.total_data_bytes();
    let (fault_drops, downtime_ns) = if sim.fabric.faults.is_empty() {
        (0, 0)
    } else {
        (traffic.total_fault_drops(), traffic.total_downtime_ns())
    };

    // Harvest the owned per-app sinks: per slot, the last rank's AG
    // release and RS delivery. A slot where any rank never finished is
    // censored at the watchdog instant.
    let mut slot_done_ns = vec![0u64; slots.len()];
    let mut slot_timed_out = vec![false; slots.len()];
    for &r in &members {
        let rank_slots = fab.take_app_as::<TenantMuxApp>(r).into_slots();
        for (i, slot_app) in rank_slots.into_iter().enumerate() {
            let done = match slot_app {
                SlotApp::Coll(ag) => ag.timing().t_done.map(SimTime::as_ns),
                SlotApp::AgRs { ag, rs, .. } => {
                    let ag_done = ag.timing().t_done.map(SimTime::as_ns);
                    let rs_done = rs.times().map(|(_, end)| end.as_ns());
                    match (ag_done, rs_done) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    }
                }
            };
            match done {
                Some(t) => slot_done_ns[i] = slot_done_ns[i].max(t),
                None => slot_timed_out[i] = true,
            }
        }
    }
    for (done, &censored) in slot_done_ns.iter_mut().zip(&slot_timed_out) {
        if censored {
            *done = watchdog.as_ns();
        }
    }
    BatchOutcome {
        batch_ns: if timed_out {
            watchdog.as_ns()
        } else {
            stats.end_time.as_ns()
        },
        slot_done_ns,
        timed_out,
        slot_timed_out,
        moved_bytes,
        fault_drops,
        downtime_ns,
        sm_rebuilds,
        trace: fab.take_trace(),
    }
}

/// Payload bytes delivered to hosts by one job.
pub(super) fn delivered_bytes(kind: JobKind, plan: &CollectivePlan) -> u64 {
    let ag: u64 = (0..plan.num_ranks())
        .map(|r| plan.expected_psn_bytes(Rank(r)))
        .sum();
    // Each rank additionally receives its reduced shard (N bytes).
    let rs = match kind {
        JobKind::AgRs => plan.send_len() as u64 * plan.num_ranks() as u64,
        _ => 0,
    };
    ag + rs
}
