//! Offload-backend bench: one sweep cell per placement (endpoint-NIC
//! DPA vs SHARP in-switch reduction on the 16-rank AG+RS pair) plus
//! the full smoke grid at `jobs = 1` (see `mcag_bench::backendfigs`).

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_bench::backendfigs::{run_cell, sweep_digests, BackendCell, SweepCollective, SweepScale};
use mcag_offload::BackendKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cell = |backend| BackendCell {
        backend,
        coll: SweepCollective::AgRs,
        scale: SweepScale::Star16,
        send_len: 16 << 10,
    };
    let mut g = c.benchmark_group("fig_backends");
    g.sample_size(10);
    g.bench_function("agrs_dpa_endpoint", |b| {
        b.iter(|| black_box(run_cell(&cell(BackendKind::DpaBf3))))
    });
    g.bench_function("agrs_sharp_in_switch", |b| {
        b.iter(|| black_box(run_cell(&cell(BackendKind::SharpSwitch))))
    });
    g.bench_function("smoke_grid", |b| {
        b.iter(|| black_box(sweep_digests("smoke", 1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
