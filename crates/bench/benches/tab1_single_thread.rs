//! Table I bench: single-thread UD/UC datapath metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab1_single_thread");
    g.sample_size(10);
    let chunks = (8u64 << 20) / 4096;
    for kind in [KernelKind::DpaUd, KernelKind::DpaUc] {
        g.bench_function(format!("{kind:?}_1thr_8MiB"), |b| {
            let spec = DpaSpec::bf3();
            let k = Kernel::new(kind);
            b.iter(|| {
                black_box(run_datapath(
                    &spec,
                    &k,
                    1,
                    4096,
                    chunks,
                    ArrivalModel::Saturated,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
