//! Fig. 16 bench: 64 B chunk processing toward Tbit/s arrival rates.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_tbit_scaling");
    g.sample_size(10);
    for (kind, threads) in [
        (KernelKind::DpaUd, 16u32),
        (KernelKind::DpaUd, 128),
        (KernelKind::DpaUc, 128),
    ] {
        g.bench_function(format!("{kind:?}_{threads}thr_64B"), |b| {
            let spec = DpaSpec::bf3();
            let k = Kernel::new(kind);
            b.iter(|| {
                black_box(run_datapath(
                    &spec,
                    &k,
                    threads,
                    64,
                    2_000 * threads as u64,
                    ArrivalModel::Saturated,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
