//! Fig. 15 bench: UC multi-packet chunk sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_chunk_size");
    g.sample_size(10);
    for chunk_kib in [4usize, 16, 64] {
        g.bench_function(format!("uc_1thr_{chunk_kib}KiB_chunks"), |b| {
            let spec = DpaSpec::bf3();
            let k = Kernel::new(KernelKind::DpaUc);
            let chunk = chunk_kib << 10;
            let chunks = ((8usize << 20) / chunk) as u64 * 4;
            let arrival = ArrivalModel::LinkRate {
                gbps: 200.0,
                header_bytes: 64 * (chunk / 4096).max(1),
            };
            b.iter(|| black_box(run_datapath(&spec, &k, 1, chunk, chunks, arrival)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
