//! Fig. 2 bench: exact link-byte accounting of Allgather schedules on
//! the 1024-node radix-32 fat-tree.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_models::traffic::{allgather_traffic, AllgatherAlgo};
use mcag_simnet::Topology;
use mcag_verbs::LinkRate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let topo = Topology::fig2_cluster(LinkRate::NDR_400G);
    let mut g = c.benchmark_group("fig02_traffic_model");
    g.sample_size(10);
    for (name, algo) in [
        ("mcast", AllgatherAlgo::Mcast),
        ("ring", AllgatherAlgo::Ring),
        ("recursive_doubling", AllgatherAlgo::RecursiveDoubling),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(allgather_traffic(&topo, algo, 1 << 20)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
