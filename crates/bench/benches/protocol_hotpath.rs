//! Micro-benchmarks of the protocol's fast-path data structures: the
//! per-CQE work the DPA kernel performs (bitmap update, staging copy,
//! PSN decode) — the operations whose cost Table I models in cycles —
//! plus the simulator-throughput suite: event-queue churn (timer wheel
//! vs reference heap) and end-to-end DES events/sec on the 188-node
//! testbed and the 512-node fat-tree (`BENCH_simcore.json` scenarios).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcag_bench::simcore::{allgather_run, queue_churn_events_per_sec};
use mcag_core::{ChunkBitmap, Sequencer, StagingRing};
use mcag_simnet::{QueueBackend, Topology};
use mcag_verbs::{Chunker, CollectiveId, ImmLayout, LinkRate, Mtu};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_hotpath");

    g.throughput(Throughput::Elements(2048));
    g.bench_function("bitmap_set_2048", |b| {
        b.iter(|| {
            let mut bm = ChunkBitmap::new(2048);
            for i in 0..2048 {
                black_box(bm.set(i));
            }
            black_box(bm.is_complete())
        })
    });

    g.bench_function("bitmap_missing_runs_sparse", |b| {
        let mut bm = ChunkBitmap::new(1 << 20);
        for i in (0..1 << 20).step_by(97) {
            bm.set(i as u32);
        }
        b.iter(|| black_box(bm.missing_runs().count()))
    });

    g.throughput(Throughput::Bytes(4096));
    g.bench_function("staging_receive_copy_4KiB", |b| {
        let mut ring = StagingRing::new(64, Mtu::IB_4K);
        let data = vec![0xabu8; 4096];
        let mut user = vec![0u8; 4096 * 16];
        let mut psn = 0u32;
        b.iter(|| {
            let slot = ring.receive(psn % 16, &data).unwrap();
            black_box(ring.copy_out(slot, &mut user));
            psn += 1;
        })
    });

    g.throughput(Throughput::Elements(2048));
    g.bench_function("chunker_plan_8MiB", |b| {
        let ch = Chunker::new(8 << 20, Mtu::IB_4K, ImmLayout::DEFAULT, CollectiveId(1));
        b.iter(|| {
            let mut acc = 0usize;
            for pc in ch.iter() {
                acc += pc.len;
            }
            black_box(acc)
        })
    });

    g.throughput(Throughput::Elements(1024));
    g.bench_function("sequencer_schedule_1024", |b| {
        let s = Sequencer::new(1024, 8);
        b.iter(|| {
            let mut acc = 0u32;
            for r in 0..1024 {
                acc ^= s.chain_of(r) ^ s.step_of(r);
                if let Some(x) = s.successor(r) {
                    acc ^= x;
                }
            }
            black_box(acc)
        })
    });

    g.throughput(Throughput::Elements(1 << 16));
    g.bench_function("imm_pack_unpack_64k", |b| {
        let l = ImmLayout::DEFAULT;
        b.iter(|| {
            let mut acc = 0u32;
            for psn in 0..1u32 << 16 {
                let imm = l.pack(CollectiveId(3), psn);
                let (_, p) = l.unpack(imm);
                acc ^= p;
            }
            black_box(acc)
        })
    });

    g.finish();
}

/// Event-queue engines under a schedule/pop churn with an NIC-like delay
/// mix (the `event_queue` scenario of `BENCH_simcore.json`).
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const OPS: u64 = 1 << 16;
    g.throughput(Throughput::Elements(OPS));
    for (name, backend) in [
        ("wheel_churn_64k", QueueBackend::Wheel),
        ("heap_churn_64k", QueueBackend::Heap),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(queue_churn_events_per_sec(backend, OPS)))
        });
    }
    g.finish();
}

/// End-to-end simulator throughput: whole Allgather runs per iteration.
/// The wheel-vs-heap pair on the 188-node testbed is the acceptance
/// metric; the 512-node fat-tree is the post-optimization scale target.
fn bench_simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(2);
    // Same scenario setup as the BENCH_simcore.json generator.
    let run =
        |topo: Topology, backend: QueueBackend, n: usize| allgather_run(topo, backend, n).events;
    for (name, backend) in [
        ("allgather_188_wheel", QueueBackend::Wheel),
        ("allgather_188_heap", QueueBackend::Heap),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run(Topology::ucc_testbed(), backend, 64 << 10)))
        });
    }
    g.bench_function("allgather_512_fat_tree_wheel", |b| {
        b.iter(|| {
            black_box(run(
                Topology::fat_tree_512(LinkRate::NDR_400G),
                QueueBackend::Wheel,
                16 << 10,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench,
    bench_event_queue,
    bench_simulator_throughput
);
criterion_main!(benches);
