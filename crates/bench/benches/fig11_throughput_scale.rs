//! Fig. 11 bench: full 188-node collectives, multicast vs ring.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_baselines::{ring_allgather, run_p2p};
use mcag_core::{des, CollectiveKind, ProtocolConfig};
use mcag_simnet::{FabricConfig, Topology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_throughput_scale");
    g.sample_size(10);
    let n = 64usize << 10;
    g.bench_function("mcast_allgather_188_64KiB", |b| {
        b.iter(|| {
            black_box(des::run_collective(
                Topology::ucc_testbed(),
                FabricConfig::ucc_default(),
                ProtocolConfig::default(),
                CollectiveKind::Allgather,
                n,
            ))
        })
    });
    g.bench_function("ring_allgather_188_64KiB", |b| {
        b.iter(|| {
            black_box(run_p2p(
                Topology::ucc_testbed(),
                FabricConfig::ucc_default(),
                ring_allgather(188, n),
                16 << 10,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
