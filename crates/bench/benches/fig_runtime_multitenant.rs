//! Runtime-layer bench: multi-tenant scheduling, tenant count ×
//! group-pool capacity (see `mcag_bench::runtimefigs`).

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_bench::runtimefigs::run_scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_runtime_multitenant");
    g.sample_size(10);
    for tenants in [4usize, 8, 16] {
        for capacity in [2usize, 8] {
            g.bench_function(format!("tenants{tenants}_pool{capacity}"), |b| {
                b.iter(|| black_box(run_scenario(tenants, capacity)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
