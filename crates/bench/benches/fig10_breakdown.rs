//! Fig. 10 bench: Allgather with per-phase timing on a 16-rank fabric.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_core::{des, CollectiveKind, ProtocolConfig};
use mcag_simnet::{FabricConfig, Topology};
use mcag_verbs::LinkRate;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_breakdown");
    g.sample_size(10);
    for n in [16usize << 10, 256 << 10] {
        g.bench_function(format!("ag_16ranks_{}KiB", n >> 10), |b| {
            b.iter(|| {
                black_box(des::run_collective(
                    Topology::single_switch(16, LinkRate::CX3_56G, 300),
                    FabricConfig::ucc_default(),
                    ProtocolConfig::default(),
                    CollectiveKind::Allgather,
                    n,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
