//! Fig. 5 bench: single CPU core vs one multithreaded DPA core on the
//! 200 Gbit/s UD receive datapath.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use std::hint::black_box;

const LINK: ArrivalModel = ArrivalModel::LinkRate {
    gbps: 200.0,
    header_bytes: 64,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_cpu_vs_dpa");
    g.sample_size(10);
    let chunks = (1u64 << 20) / 4096;
    g.bench_function("cpu_ucx_ud_1thr", |b| {
        let spec = DpaSpec::host_cpu();
        let k = Kernel::new(KernelKind::CpuUdUcx);
        b.iter(|| black_box(run_datapath(&spec, &k, 1, 4096, chunks, LINK)))
    });
    g.bench_function("cpu_rc_custom_1thr", |b| {
        let spec = DpaSpec::host_cpu();
        let k = Kernel::new(KernelKind::CpuRcCustom);
        b.iter(|| black_box(run_datapath(&spec, &k, 1, 4096, chunks, LINK)))
    });
    g.bench_function("dpa_ud_16thr", |b| {
        let spec = DpaSpec::bf3();
        let k = Kernel::new(KernelKind::DpaUd);
        b.iter(|| black_box(run_datapath(&spec, &k, 16, 4096, chunks, LINK)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
