//! Flight-recorder bench: what attaching the trace sink costs on the
//! smoke-sized scenarios (see `mcag_bench::tracefigs`) — a traced
//! 188-node Allgather, the Perfetto-export round trip, and the traced
//! open-loop runtime run whose digests the smoke baseline pins.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_bench::tracefigs::{reference_chrome_trace, tracefigs_smoke};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_trace");
    g.sample_size(10);
    g.bench_function("chrome_export", |b| {
        b.iter(|| black_box(reference_chrome_trace().len()))
    });
    g.bench_function("tracefigs_smoke", |b| {
        b.iter(|| black_box(tracefigs_smoke()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
