//! Fault-injection bench: per-model single-seed sweep cells (see
//! `mcag_bench::faultfigs`) — tracks how much a faulted collective
//! costs to simulate, per fault model and recovery-cutoff headroom.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_bench::faultfigs::{run_job, FaultJob, FaultKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_faults");
    g.sample_size(10);
    for kind in FaultKind::ALL {
        for cutoff_headroom in [1u64, 4] {
            let job = FaultJob {
                kind,
                rate: 0.2,
                cutoff_headroom,
                seed: 7,
            };
            g.bench_function(format!("{}_cutoff{}", kind.label(), cutoff_headroom), |b| {
                b.iter(|| black_box(run_job("smoke", &job)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
