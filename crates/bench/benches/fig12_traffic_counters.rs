//! Fig. 12 bench: one counter-collection iteration on the 18-switch
//! testbed (multicast Allgather + switch-port aggregation).

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_core::{des, CollectiveKind, ProtocolConfig};
use mcag_simnet::{FabricConfig, Topology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_traffic_counters");
    g.sample_size(10);
    g.bench_function("mcast_ag_64KiB_with_counters", |b| {
        b.iter(|| {
            let out = des::run_collective(
                Topology::ucc_testbed(),
                FabricConfig::ucc_default(),
                ProtocolConfig::default(),
                CollectiveKind::Allgather,
                64 << 10,
            );
            black_box(out.traffic.switch_port_rxtx_bytes(&Topology::ucc_testbed()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
