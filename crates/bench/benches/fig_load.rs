//! Open-loop load-study bench: single knee-sweep cells of the
//! multi-tenant runtime (see `mcag_bench::loadfigs`) — tracks what one
//! arrival-driven open-loop run costs to simulate below, at, and past
//! the saturation knee, plus the 256-tenant indexed-scheduler cell.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_bench::loadfigs::{run_cell, LoadCell, BASE_INTERARRIVAL_NS};
use std::hint::black_box;

fn cell(label: &str, tenants: u32, mean: u64, target: u64) -> LoadCell {
    LoadCell {
        label: label.to_string(),
        tenants,
        capacity: 32,
        partitions: 2,
        mean_interarrival_ns: mean,
        burst: false,
        arrivals_target: target,
        throttle_sojourn_ns: None,
        seed: 7,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_load");
    g.sample_size(10);
    let b = BASE_INTERARRIVAL_NS;
    for (label, tenants, mean, target) in [
        ("knee_x0.5", 16, b * 2, 100),
        ("knee_x2", 16, b / 2, 100),
        ("knee_x8", 16, b / 8, 100),
        ("scale_t256", 256, b, 256),
    ] {
        g.bench_function(label, |bench| {
            let c = cell(label, tenants, mean, target);
            bench.iter(|| black_box(run_cell(&c)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
