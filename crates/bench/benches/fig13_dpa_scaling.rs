//! Fig. 13/14 bench: DPA receive-datapath thread scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use std::hint::black_box;

const LINK: ArrivalModel = ArrivalModel::LinkRate {
    gbps: 200.0,
    header_bytes: 64,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_dpa_scaling");
    g.sample_size(10);
    let chunks = (8u64 << 20) / 4096;
    for kind in [KernelKind::DpaUd, KernelKind::DpaUc] {
        for threads in [1u32, 4, 16] {
            g.bench_function(format!("{kind:?}_{threads}thr"), |b| {
                let spec = DpaSpec::bf3();
                let k = Kernel::new(kind);
                b.iter(|| black_box(run_datapath(&spec, &k, threads, 4096, chunks, LINK)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
