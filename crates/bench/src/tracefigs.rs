//! Flight-recorder baselines: determinism digests, Perfetto export
//! round-trips, and the zero-cost-when-off overhead measurement.
//!
//! Four cells:
//!
//! * `traced_ag188` — the paper's 188-node UCC-testbed Allgather with a
//!   recorder attached: event counts (offered / kept / ring-dropped) and
//!   the FNV digest of the link-utilization timeline, all simulated-time
//!   integers, byte-stable across hosts.
//! * `traced_fat_tree_512` — a traced 512-node fat-tree Allgather
//!   exported as Chrome trace-event JSON and round-tripped through the
//!   dependency-free parser; the cell pins the export's byte length.
//! * `runtime_jobs` — an open-loop multi-tenant run traced at `jobs = 1`
//!   and `jobs = 4`; the cell records the shared report/trace digests
//!   after asserting the two runs are byte-identical.
//! * `overhead` (full mode only) — best-of-N interleaved off/on runs of
//!   the 188-node Allgather against the recorded pre-instrumentation
//!   anchor, demonstrating that a disabled sink costs one branch.
//!
//! The full generator writes `BENCH_trace.json` (checked in; the
//! overhead block is a wall-clock snapshot from the recording host, like
//! `BENCH_simcore.json`). `tracefigs_smoke` writes
//! `BENCH_trace_smoke.json` with `"overhead": null` — every smoke field
//! is a simulated-time integer or digest, so CI regenerates the file
//! twice and asserts the bytes match.

use crate::data::FigData;
use crate::netfigs::sim_mtu_for;
use mcag_core::{des, CollectiveKind, CollectiveOutcome, ProtocolConfig};
use mcag_runtime::{JobKind, PoolConfig, Runtime, RuntimeConfig, RuntimeReport, RuntimeTrace};
use mcag_simnet::{FabricConfig, Topology};
use mcag_trace::{export_chrome, validate_json, ChromeOptions, LinkTimeline, TraceSpec};
use mcag_verbs::LinkRate;
use std::fmt::Write as _;

/// File the full-mode generator writes its machine-readable baseline to
/// (checked in — the trace subsystem's source of truth).
pub const BENCH_JSON: &str = "BENCH_trace.json";

/// File the bounded CI smoke writes instead; contains no wall-clock
/// numbers, so two smoke passes produce byte-identical files.
pub const BENCH_SMOKE_JSON: &str = "BENCH_trace_smoke.json";

/// Timeline bucketing used by every cell (64 µs of simulated time).
pub const TIMELINE_WINDOW_NS: u64 = 65_536;

/// Events/sec of the engine on the full-mode `allgather_188` scenario at
/// the commit *before* the trace instrumentation landed — best of three
/// runs on the host that produced the checked-in `BENCH_trace.json`.
/// The "before" anchor of the zero-cost-when-off argument; host-specific
/// (re-anchor elsewhere via the `TRACEFIGS_PRE_TRACE_EPS` override,
/// which [`pre_trace_anchor_eps`] prefers).
pub const PRE_TRACE_AG188_EVENTS_PER_SEC: f64 = 14.0e6;

/// The pre-instrumentation anchor in effect: the `TRACEFIGS_PRE_TRACE_EPS`
/// environment override when set, else the recorded
/// [`PRE_TRACE_AG188_EVENTS_PER_SEC`].
pub fn pre_trace_anchor_eps() -> f64 {
    std::env::var("TRACEFIGS_PRE_TRACE_EPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(PRE_TRACE_AG188_EVENTS_PER_SEC)
}

/// FNV-1a over a string (digest cells for byte-stability checks).
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One traced collective on `topo` with the given recorder spec.
fn traced_allgather(topo: Topology, send_len: usize, spec: TraceSpec) -> CollectiveOutcome {
    let mut cfg = FabricConfig::ucc_default();
    cfg.trace = Some(spec);
    let proto = ProtocolConfig {
        mtu: sim_mtu_for(send_len),
        ..ProtocolConfig::default()
    };
    let out = des::run_collective(topo, cfg, proto, CollectiveKind::Allgather, send_len);
    assert!(out.stats.all_done(), "traced scenario did not complete");
    out
}

/// What one traced collective contributes to the baseline.
struct TracedCell {
    name: &'static str,
    events_offered: u64,
    events_kept: usize,
    events_dropped: u64,
    sim_ns: u64,
    timeline_digest: u64,
    busiest_link: u32,
    busiest_busy_ns: u64,
}

fn traced_cell(name: &'static str, topo: Topology, send_len: usize) -> TracedCell {
    let num_links = topo.num_links();
    let mut out = traced_allgather(topo, send_len, TraceSpec::default());
    let sink = out.trace.take().expect("tracing was enabled");
    let (offered, kept) = (sink.offered(), sink.len());
    let dropped = sink.dropped();
    let (events, _) = sink.into_ordered();
    let sim_ns = out.completion_ns();
    let tl = LinkTimeline::build(&events, num_links, TIMELINE_WINDOW_NS, sim_ns);
    let (busiest_link, busiest_busy_ns) = tl.busiest(1).first().copied().unwrap_or((0, 0));
    TracedCell {
        name,
        events_offered: offered,
        events_kept: kept,
        events_dropped: dropped,
        sim_ns,
        timeline_digest: tl.digest(),
        busiest_link: busiest_link as u32,
        busiest_busy_ns,
    }
}

/// Export a traced 512-node fat-tree Allgather as a Chrome trace-event
/// JSON document (already round-tripped through [`validate_json`]).
/// Shared by the generator cell, the `figures --trace <path>` flag, and
/// CI's Perfetto-artifact step.
pub fn reference_chrome_trace() -> String {
    let topo = Topology::fat_tree_512(LinkRate::NDR_400G);
    let link_names: Vec<String> = (0..topo.num_links()).map(|l| format!("link{l}")).collect();
    let out = traced_allgather(topo, 8 << 10, TraceSpec::default());
    let sink = out.trace.expect("tracing was enabled");
    let (events, dropped) = sink.into_ordered();
    let tr = RuntimeTrace::from_fabric(events, dropped);
    let doc = export_chrome(
        &tr,
        &ChromeOptions {
            link_names,
            tenant_names: Vec::new(),
        },
    );
    validate_json(&doc).expect("chrome export must round-trip the JSON parser");
    doc
}

/// Write the reference Chrome trace to `path`; returns the byte length.
pub fn export_reference_trace(path: &str) -> std::io::Result<usize> {
    let doc = reference_chrome_trace();
    std::fs::write(path, &doc)?;
    Ok(doc.len())
}

/// A small open-loop multi-tenant scenario traced end to end.
fn traced_runtime(jobs: usize) -> (RuntimeReport, RuntimeTrace) {
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(6),
        max_inflight: 2,
        partitions: 2,
        trace: Some(TraceSpec::default()),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(Topology::single_switch(8, LinkRate::CX3_56G, 100), cfg);
    let tenants: Vec<_> = (0..3)
        .map(|i| rt.register_tenant(&format!("t{i}")))
        .collect();
    for (i, &t) in tenants.iter().enumerate() {
        for j in 0..2u64 {
            rt.submit_at(j * 400_000, t, JobKind::Allgather, (8 << 10) << (i % 2));
        }
    }
    let report = rt.run_open_loop_jobs(jobs);
    let trace = rt.take_trace().expect("tracing was enabled");
    (report, trace)
}

struct RuntimeCell {
    report_digest: u64,
    trace_digest: u64,
    fabric_events: usize,
    batch_spans: usize,
    job_spans: usize,
}

fn runtime_cell() -> RuntimeCell {
    let (r1, t1) = traced_runtime(1);
    let (r4, t4) = traced_runtime(4);
    assert_eq!(r1, r4, "open-loop report must not depend on worker count");
    assert_eq!(t1, t4, "trace must not depend on worker count");
    let report_digest = fnv(&format!("{r1:?}"));
    let trace_digest = fnv(&format!("{t1:?}"));
    assert_eq!(report_digest, fnv(&format!("{r4:?}")));
    assert_eq!(trace_digest, fnv(&format!("{t4:?}")));
    RuntimeCell {
        report_digest,
        trace_digest,
        fabric_events: t1.fabric.len(),
        batch_spans: t1.batches.len(),
        job_spans: t1.jobs.len(),
    }
}

/// Best-of-N interleaved off/on overhead measurement (full mode only —
/// wall clock, recorded as a snapshot from the baseline host).
struct Overhead {
    runs_each: u32,
    events: u64,
    off_eps: f64,
    on_eps: f64,
}

impl Overhead {
    /// Events/sec penalty of running with the recorder attached.
    fn on_overhead_pct(&self) -> f64 {
        (1.0 - self.on_eps / self.off_eps) * 100.0
    }

    /// Regression of the instrumented-but-disabled build against the
    /// pre-instrumentation anchor (negative = faster than the anchor).
    fn off_vs_anchor_pct(&self) -> f64 {
        (1.0 - self.off_eps / pre_trace_anchor_eps()) * 100.0
    }
}

fn measure_overhead(send_len: usize, runs_each: u32) -> Overhead {
    let proto = ProtocolConfig {
        mtu: sim_mtu_for(send_len),
        ..ProtocolConfig::default()
    };
    let run = |traced: bool| -> (u64, f64) {
        let mut cfg = FabricConfig::ucc_default();
        cfg.trace = traced.then(TraceSpec::default);
        let out = des::run_collective(
            Topology::ucc_testbed(),
            cfg,
            proto,
            CollectiveKind::Allgather,
            send_len,
        );
        assert!(out.stats.all_done());
        (out.stats.events, out.stats.events_per_sec())
    };
    let (mut off_eps, mut on_eps) = (0.0f64, 0.0f64);
    let mut events = 0u64;
    // Interleave off/on so slow host intervals hit both sides equally;
    // best-of-N discards scheduler noise (this is a throughput bound).
    for _ in 0..runs_each {
        let (ev_off, eps_off) = run(false);
        let (ev_on, eps_on) = run(true);
        assert_eq!(
            ev_off, ev_on,
            "tracing must not change the event stream, only observe it"
        );
        events = ev_off;
        off_eps = off_eps.max(eps_off);
        on_eps = on_eps.max(eps_on);
    }
    let oh = Overhead {
        runs_each,
        events,
        off_eps,
        on_eps,
    };
    // Catastrophic-slowdown guard only: wall clock on shared CI hosts is
    // too noisy for a hard 2% gate, so the precise numbers live in the
    // checked-in BENCH_trace.json snapshot instead.
    assert!(
        oh.off_eps > 0.2 * pre_trace_anchor_eps(),
        "disabled-sink run collapsed to {:.1}M events/sec",
        oh.off_eps / 1e6
    );
    oh
}

fn tracefigs_with(mode: &str, n188: usize, n512: usize) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let cells = [
        traced_cell("traced_ag188", Topology::ucc_testbed(), n188),
        traced_cell(
            "traced_fat_tree_512",
            Topology::fat_tree_512(LinkRate::NDR_400G),
            n512,
        ),
    ];
    let chrome = reference_chrome_trace();
    let chrome_digest = fnv(&chrome);
    let rt = runtime_cell();
    let overhead = (mode == "full").then(|| measure_overhead(n188, 5));
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut f = FigData::new(
        "tracefigs",
        "Flight recorder: determinism digests, Perfetto export, zero-cost-when-off",
        &["cell", "events", "kept", "dropped", "digest", "detail"],
    );
    for c in &cells {
        f.row(vec![
            c.name.into(),
            c.events_offered.to_string(),
            c.events_kept.to_string(),
            c.events_dropped.to_string(),
            format!("{:016x}", c.timeline_digest),
            format!(
                "busiest link {} busy {} ns of {} ns",
                c.busiest_link, c.busiest_busy_ns, c.sim_ns
            ),
        ]);
    }
    f.row(vec![
        "chrome_export".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{chrome_digest:016x}"),
        format!("{} bytes, JSON round-trip ok", chrome.len()),
    ]);
    f.row(vec![
        "runtime_jobs".into(),
        rt.fabric_events.to_string(),
        rt.batch_spans.to_string(),
        rt.job_spans.to_string(),
        format!("{:016x}", rt.trace_digest),
        format!("jobs=1 == jobs=4; report digest {:016x}", rt.report_digest),
    ]);
    if let Some(oh) = &overhead {
        f.row(vec![
            "overhead".into(),
            oh.events.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!(
                "off {:.1}M on {:.1}M ev/s (+{:.2}% traced; off vs anchor {:+.2}%)",
                oh.off_eps / 1e6,
                oh.on_eps / 1e6,
                oh.on_overhead_pct(),
                oh.off_vs_anchor_pct()
            ),
        ]);
    }
    f.note(format!(
        "mode={mode}; ring capacity {} events, timeline window {TIMELINE_WINDOW_NS} ns",
        TraceSpec::DEFAULT_CAPACITY
    ));
    f.note("digests and event counts are simulated-time integers: byte-stable across hosts");
    if overhead.is_some() {
        f.note(format!(
            "overhead is wall clock from the baseline host (pre-trace anchor {:.1}M ev/s)",
            pre_trace_anchor_eps() / 1e6
        ));
    }
    f.note(format!("machine-readable baseline written to {json_path}"));

    let json = render_json(
        mode,
        host_parallelism,
        &cells,
        chrome.len(),
        chrome_digest,
        &rt,
        overhead.as_ref(),
    );
    validate_json(&json).expect("baseline JSON must parse");
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer).
#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    host_parallelism: usize,
    cells: &[TracedCell],
    chrome_bytes: usize,
    chrome_digest: u64,
    rt: &RuntimeCell,
    overhead: Option<&Overhead>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures tracefigs\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(s, "  \"ring_capacity\": {},", TraceSpec::DEFAULT_CAPACITY);
    let _ = writeln!(s, "  \"timeline_window_ns\": {TIMELINE_WINDOW_NS},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(s, "      \"events_offered\": {},", c.events_offered);
        let _ = writeln!(s, "      \"events_kept\": {},", c.events_kept);
        let _ = writeln!(s, "      \"events_dropped\": {},", c.events_dropped);
        let _ = writeln!(s, "      \"sim_time_ns\": {},", c.sim_ns);
        let _ = writeln!(
            s,
            "      \"timeline_digest\": \"{:016x}\",",
            c.timeline_digest
        );
        let _ = writeln!(s, "      \"busiest_link\": {},", c.busiest_link);
        let _ = writeln!(s, "      \"busiest_busy_ns\": {}", c.busiest_busy_ns);
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"chrome_export\": {{");
    let _ = writeln!(s, "    \"scenario\": \"traced fat_tree_512 allgather\",");
    let _ = writeln!(s, "    \"bytes\": {chrome_bytes},");
    let _ = writeln!(s, "    \"digest\": \"{chrome_digest:016x}\",");
    let _ = writeln!(s, "    \"json_round_trip\": true");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"runtime_jobs\": {{");
    let _ = writeln!(s, "    \"jobs_compared\": [1, 4],");
    let _ = writeln!(s, "    \"identical\": true,");
    let _ = writeln!(s, "    \"report_digest\": \"{:016x}\",", rt.report_digest);
    let _ = writeln!(s, "    \"trace_digest\": \"{:016x}\",", rt.trace_digest);
    let _ = writeln!(s, "    \"fabric_events\": {},", rt.fabric_events);
    let _ = writeln!(s, "    \"batch_spans\": {},", rt.batch_spans);
    let _ = writeln!(s, "    \"job_spans\": {}", rt.job_spans);
    let _ = writeln!(s, "  }},");
    match overhead {
        Some(oh) => {
            let _ = writeln!(s, "  \"overhead\": {{");
            let _ = writeln!(s, "    \"scenario\": \"allgather_188\",");
            let _ = writeln!(s, "    \"runs_each\": {},", oh.runs_each);
            let _ = writeln!(s, "    \"events\": {},", oh.events);
            let _ = writeln!(s, "    \"off_events_per_sec\": {:.0},", oh.off_eps);
            let _ = writeln!(s, "    \"on_events_per_sec\": {:.0},", oh.on_eps);
            let _ = writeln!(s, "    \"on_overhead_pct\": {:.2},", oh.on_overhead_pct());
            let _ = writeln!(
                s,
                "    \"pre_trace_anchor_eps\": {:.0},",
                pre_trace_anchor_eps()
            );
            let _ = writeln!(
                s,
                "    \"off_vs_anchor_pct\": {:.2}",
                oh.off_vs_anchor_pct()
            );
            let _ = writeln!(s, "  }}");
        }
        None => {
            let _ = writeln!(s, "  \"overhead\": null");
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Full flight-recorder suite (the recorded baseline).
pub fn tracefigs() -> FigData {
    tracefigs_with("full", 256 << 10, 64 << 10)
}

/// Bounded CI smoke: same cells at smaller messages, no wall-clock
/// fields, written to [`BENCH_SMOKE_JSON`] — regenerate twice and the
/// bytes must match.
pub fn tracefigs_smoke() -> FigData {
    tracefigs_with("smoke", 32 << 10, 8 << 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_cell_is_deterministic() {
        let topo = || Topology::single_switch(8, LinkRate::CX3_56G, 100);
        let a = traced_cell("x", topo(), 16 << 10);
        let b = traced_cell("x", topo(), 16 << 10);
        assert!(a.events_offered > 0);
        assert_eq!(a.events_offered, b.events_offered);
        assert_eq!(a.timeline_digest, b.timeline_digest);
        assert_eq!(a.busiest_busy_ns, b.busiest_busy_ns);
    }

    #[test]
    fn tracing_leaves_results_untouched() {
        let topo = || Topology::single_switch(8, LinkRate::CX3_56G, 100);
        let mut plain_cfg = FabricConfig::ucc_default();
        let traced = traced_allgather(topo(), 16 << 10, TraceSpec::default());
        plain_cfg.trace = None;
        let plain = des::run_collective(
            topo(),
            plain_cfg,
            ProtocolConfig {
                mtu: sim_mtu_for(16 << 10),
                ..ProtocolConfig::default()
            },
            CollectiveKind::Allgather,
            16 << 10,
        );
        assert_eq!(traced.stats.events, plain.stats.events);
        assert_eq!(traced.completion_ns(), plain.completion_ns());
        // Compare the deterministic counters only — `TrafficReport` also
        // carries host wall clock, which legitimately differs per run.
        assert_eq!(
            format!("{:?}", traced.traffic.per_link()),
            format!("{:?}", plain.traffic.per_link())
        );
        assert_eq!(traced.traffic.rnr_per_rank(), plain.traffic.rnr_per_rank());
    }

    #[test]
    fn runtime_cell_matches_across_workers() {
        let rt = runtime_cell();
        assert!(rt.fabric_events > 0);
        assert_eq!(rt.job_spans, 6);
        assert!(rt.batch_spans >= 1);
    }

    #[test]
    fn smoke_json_is_byte_stable() {
        let topo = || Topology::single_switch(8, LinkRate::CX3_56G, 100);
        let mk = || {
            let cells = [traced_cell("c", topo(), 8 << 10)];
            let rt = RuntimeCell {
                report_digest: 1,
                trace_digest: 2,
                fabric_events: 3,
                batch_spans: 4,
                job_spans: 5,
            };
            render_json("smoke", 1, &cells, 10, 0xabc, &rt, None)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        validate_json(&a).expect("well-formed baseline JSON");
    }
}
