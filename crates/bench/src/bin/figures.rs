//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [ids…] [--ablations] [--jobs N] [--csv DIR] [--trace PATH]
//! ```
//!
//! With no ids, every artifact is produced in paper order. `--jobs N`
//! bounds the concurrent simulations inside each sweep generator
//! (default: the host's available parallelism); tables are byte-identical
//! for every `N` — the fork-join executor slots outputs by input index —
//! so `--jobs` only moves wall clock. `--csv DIR` additionally writes one
//! CSV per figure plus a `timings.csv` whose rows are uniformly
//! `<fig>[:<job>],<jobs>,<wall_ms>` (per-generator summaries and the
//! per-job cost-skew detail share one format — see
//! `mcag_bench::data::timing_row`). `--trace PATH` exports the reference
//! traced fat-tree-512 Allgather as Chrome trace-event JSON, ready to
//! open at <https://ui.perfetto.dev>. Every run ends with a wall-clock
//! summary table so perf PRs can diff generator runtime, not just
//! simulated-time results.

use mcag_bench::data::{timing_row, TIMINGS_CSV_HEADER};
use mcag_bench::{generate_with, tracefigs, ABLATIONS, ALL_FIGS, PERF};
use std::io::Write;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut jobs = mcag_exec::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv needs a directory"));
            }
            "--trace" => {
                trace_path = Some(args.next().expect("--trace needs an output path"));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("--jobs takes a positive integer");
                assert!(jobs >= 1, "--jobs takes a positive integer");
            }
            "--ablations" => {
                ids.extend(ABLATIONS.iter().map(|s| s.to_string()));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [ids…] [--ablations] [--jobs N] [--csv DIR] [--trace PATH]\nids: {}\nablations: {}\nperf: {}",
                    ALL_FIGS.join(" "),
                    ABLATIONS.join(" "),
                    PERF.join(" ")
                );
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if let Some(path) = &trace_path {
        let bytes = tracefigs::export_reference_trace(path).expect("write trace export");
        println!("wrote {bytes}-byte Chrome trace to {path} (open at https://ui.perfetto.dev)");
        if ids.is_empty() {
            return;
        }
    }
    if ids.is_empty() {
        ids = ALL_FIGS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut timings: Vec<(String, f64)> = Vec::with_capacity(ids.len());
    let mut job_timings: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let fig = generate_with(id, jobs);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        writeln!(out, "{}", fig.render()).unwrap();
        writeln!(out, "  [generated in {wall_ms:.1} ms]\n").unwrap();
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            std::fs::write(&path, fig.to_csv()).expect("write csv");
        }
        if !fig.job_wall_ms.is_empty() {
            job_timings.push((id.clone(), fig.job_wall_ms));
        }
        timings.push((id.clone(), wall_ms));
    }
    // Wall-clock summary: the generator-runtime trajectory of this tree.
    writeln!(out, "== generator wall-clock ({jobs} jobs)").unwrap();
    let total: f64 = timings.iter().map(|(_, ms)| ms).sum();
    for (id, ms) in &timings {
        writeln!(out, "  {id:<24} {ms:>10.1} ms").unwrap();
    }
    writeln!(out, "  {:<24} {total:>10.1} ms", "total").unwrap();
    if let Some(dir) = &csv_dir {
        let mut csv = format!("{TIMINGS_CSV_HEADER}\n");
        for (id, ms) in &timings {
            csv.push_str(&timing_row(id, None, jobs, *ms));
            csv.push('\n');
        }
        // Per-job wall times from sweep generators that measure their
        // individual simulations (`FigData::job_wall_ms`), as
        // `<figure>:<job>` rows — the cost-skew data behind
        // largest-first scheduling. Same helper, same shape.
        for (id, per_job) in &job_timings {
            for (label, ms) in per_job {
                csv.push_str(&timing_row(id, Some(label), jobs, *ms));
                csv.push('\n');
            }
        }
        std::fs::write(format!("{dir}/timings.csv"), csv).expect("write timings csv");
    }
}
