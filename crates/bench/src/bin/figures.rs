//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [ids…] [--csv DIR]
//! ```
//!
//! With no ids, every artifact is produced in paper order. `--csv DIR`
//! additionally writes one CSV per figure.

use mcag_bench::{generate, ABLATIONS, ALL_FIGS};
use std::io::Write;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv needs a directory"));
            }
            "--ablations" => {
                ids.extend(ABLATIONS.iter().map(|s| s.to_string()));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [ids…] [--ablations] [--csv DIR]\nids: {}\nablations: {}",
                    ALL_FIGS.join(" "),
                    ABLATIONS.join(" ")
                );
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_FIGS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let fig = generate(id);
        writeln!(out, "{}", fig.render()).unwrap();
        writeln!(out, "  [generated in {:.2?}]\n", t0.elapsed()).unwrap();
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            std::fs::write(&path, fig.to_csv()).expect("write csv");
        }
    }
}
