//! # mcag-bench — the evaluation harness
//!
//! One generator per table/figure of the paper's evaluation section.
//! Each returns a [`data::FigData`] (column headers + rows + notes) that
//! the `figures` binary prints (and optionally dumps as CSV); the
//! criterion benches under `benches/` wrap the same generators so
//! `cargo bench` exercises every experiment.
//!
//! | id     | paper artifact                                              |
//! |--------|-------------------------------------------------------------|
//! | fig2   | theoretical traffic savings on the 1024-node fat-tree        |
//! | fig3   | node-boundary data movement of {AG, RS} pairs                |
//! | fig5   | single CPU core vs one multithreaded DPA core                |
//! | fig7   | PSN bits vs receive buffer / bitmap footprint                |
//! | fig10  | protocol critical-path breakdown                             |
//! | fig11  | 188-node throughput: mcast vs P2P Broadcast/Allgather        |
//! | fig12  | switch-counter traffic reduction (18 switches)               |
//! | table1 | DPA single-thread datapath metrics                           |
//! | fig13  | DPA thread scaling, absolute throughput                      |
//! | fig14  | DPA thread scaling, fraction of 200 Gbit/s                   |
//! | fig15  | UC multi-packet chunk sizes                                  |
//! | fig16  | 64 B chunk rate toward 1.6 Tbit/s                            |
//! | appb   | measured {AG,RS} concurrent speedup vs `2 − 2/P`             |
//!
//! Beyond the paper, `simcore` / `simcore_smoke` measure the simulator
//! engine itself (timer wheel vs reference heap, 188- and 512-node
//! scenarios) and write the `BENCH_simcore.json` perf baseline.

#![warn(missing_docs)]

pub mod ablations;
pub mod data;
pub mod dpafigs;
pub mod modelfigs;
pub mod netfigs;
pub mod runtimefigs;
pub mod simcore;

pub use data::FigData;

/// All generator ids in paper order.
pub const ALL_FIGS: &[&str] = &[
    "fig2", "fig3", "fig5", "fig7", "fig10", "fig11", "fig12", "table1", "fig13", "fig14", "fig15",
    "fig16", "appb",
];

/// Ablation studies beyond the paper's figures (design-choice sweeps
/// called out in DESIGN.md). Run with `figures --ablations` or by id.
pub const ABLATIONS: &[&str] = &[
    "ablation_chains",
    "ablation_subgroups",
    "ablation_cutoff",
    "ablation_rq_depth",
    "ablation_multicomm",
    "runtime_multitenant",
];

/// Simulator-performance generators: measure the DES engine itself
/// (timer wheel vs reference heap) and write `BENCH_simcore.json`.
/// `simcore` is the recorded baseline; `simcore_smoke` is the bounded CI
/// variant.
pub const PERF: &[&str] = &["simcore", "simcore_smoke"];

/// Run one generator by id.
pub fn generate(id: &str) -> FigData {
    match id {
        "fig2" => modelfigs::fig2(),
        "fig3" => modelfigs::fig3(),
        "fig5" => dpafigs::fig5(),
        "fig7" => modelfigs::fig7(),
        "fig10" => netfigs::fig10(),
        "fig11" => netfigs::fig11(),
        "fig12" => netfigs::fig12(),
        "table1" => dpafigs::table1(),
        "fig13" => dpafigs::fig13(),
        "fig14" => dpafigs::fig14(),
        "fig15" => dpafigs::fig15(),
        "fig16" => dpafigs::fig16(),
        "appb" => netfigs::appb(),
        "ablation_chains" => ablations::ablation_chains(),
        "ablation_subgroups" => ablations::ablation_subgroups(),
        "ablation_cutoff" => ablations::ablation_cutoff(),
        "ablation_rq_depth" => ablations::ablation_rq_depth(),
        "ablation_multicomm" => ablations::ablation_multicomm(),
        "runtime_multitenant" => runtimefigs::runtime_multitenant(),
        "simcore" => simcore::simcore(),
        "simcore_smoke" => simcore::simcore_smoke(),
        other => {
            panic!("unknown figure id {other:?} (known: {ALL_FIGS:?} + {ABLATIONS:?} + {PERF:?})")
        }
    }
}
