//! # mcag-bench — the evaluation harness
//!
//! One generator per table/figure of the paper's evaluation section.
//! Each returns a [`data::FigData`] (column headers + rows + notes) that
//! the `figures` binary prints (and optionally dumps as CSV); the
//! criterion benches under `benches/` wrap the same generators so
//! `cargo bench` exercises every experiment.
//!
//! | id     | paper artifact                                              |
//! |--------|-------------------------------------------------------------|
//! | fig2   | theoretical traffic savings on the 1024-node fat-tree        |
//! | fig3   | node-boundary data movement of {AG, RS} pairs                |
//! | fig5   | single CPU core vs one multithreaded DPA core                |
//! | fig7   | PSN bits vs receive buffer / bitmap footprint                |
//! | fig10  | protocol critical-path breakdown                             |
//! | fig11  | 188-node throughput: mcast vs P2P Broadcast/Allgather        |
//! | fig12  | switch-counter traffic reduction (18 switches)               |
//! | table1 | DPA single-thread datapath metrics                           |
//! | fig13  | DPA thread scaling, absolute throughput                      |
//! | fig14  | DPA thread scaling, fraction of 200 Gbit/s                   |
//! | fig15  | UC multi-packet chunk sizes                                  |
//! | fig16  | 64 B chunk rate toward 1.6 Tbit/s                            |
//! | appb   | measured {AG,RS} concurrent speedup vs `2 − 2/P`             |
//!
//! Beyond the paper, `simcore` / `simcore_smoke` measure the simulator
//! engine itself (timer wheel vs reference heap, 188- and 512-node
//! scenarios) and write the `BENCH_simcore.json` perf baseline,
//! `parallel_scaling` / `parallel_scaling_smoke` measure the fork-join
//! sweep executor (jobs = 1/2/4 over the same simulation sweep) and
//! write `BENCH_parallel.json`, `faultfigs` / `faultfigs_smoke`
//! sweep fault model × failure rate × recovery cutoff across hundreds
//! of seeds and write the p50/p99/p999 completion-time tails to
//! `BENCH_faults.json`, and `loadfigs` / `loadfigs_smoke` drive the
//! open-loop multi-tenant runtime with seeded Poisson/bursty arrival
//! streams (rate × tenants × pool capacity, to the saturation knee and
//! past it) and write the sojourn/utilization baseline to
//! `BENCH_load.json`, while `tracefigs` / `tracefigs_smoke` attach the
//! flight recorder to the same scenarios — determinism digests of
//! link-utilization timelines, a Perfetto-export round trip, and the
//! zero-cost-when-off overhead cell — and write `BENCH_trace.json`,
//! and `recoveryfigs` / `recoveryfigs_smoke` compare oblivious vs
//! fault-aware scheduling on a damaged fabric partition (paired seeds,
//! pooled sojourn tails) and write `BENCH_recovery.json`, and
//! `backendfigs` / `backendfigs_smoke` sweep the in-network compute
//! backends (DPA, host CPU, FPGA SmartNIC, SHARP in-switch) over
//! backend × collective × scale with NCCL-convention algbw/busbw rows
//! and write `BENCH_backends.json`.
//!
//! Every sweep-shaped generator takes a `jobs` worker count and fans its
//! independent simulations out through [`mcag_exec::par_map`]; outputs
//! are slot-ordered, so tables are byte-identical for every `jobs`
//! value. [`generate`] runs serially; the `figures` binary passes
//! `--jobs` through [`generate_with`].

#![warn(missing_docs)]

pub mod ablations;
pub mod backendfigs;
pub mod data;
pub mod dpafigs;
pub mod faultfigs;
pub mod loadfigs;
pub mod modelfigs;
pub mod netfigs;
pub mod parallel;
pub mod recoveryfigs;
pub mod runtimefigs;
pub mod simcore;
pub mod tracefigs;

pub use data::FigData;

/// All generator ids in paper order.
pub const ALL_FIGS: &[&str] = &[
    "fig2", "fig3", "fig5", "fig7", "fig10", "fig11", "fig12", "table1", "fig13", "fig14", "fig15",
    "fig16", "appb",
];

/// Ablation studies beyond the paper's figures (design-choice sweeps
/// called out in DESIGN.md). Run with `figures --ablations` or by id.
pub const ABLATIONS: &[&str] = &[
    "ablation_chains",
    "ablation_subgroups",
    "ablation_cutoff",
    "ablation_rq_depth",
    "ablation_multicomm",
    "runtime_multitenant",
];

/// Simulator-performance and scenario-sweep generators: the DES engine
/// itself (timer wheel vs reference heap, `BENCH_simcore.json`), the
/// fork-join sweep executor (`BENCH_parallel.json`), and the seeded
/// failure sweeps with tail-latency reporting (`BENCH_faults.json`),
/// and the open-loop latency-vs-offered-load study of the multi-tenant
/// runtime (`BENCH_load.json`), and the flight-recorder baselines
/// (`BENCH_trace.json`). The unsuffixed ids are the recorded baselines;
/// `*_smoke` are the bounded CI variants.
pub const PERF: &[&str] = &[
    "simcore",
    "simcore_smoke",
    "parallel_scaling",
    "parallel_scaling_smoke",
    "faultfigs",
    "faultfigs_smoke",
    "loadfigs",
    "loadfigs_smoke",
    "tracefigs",
    "tracefigs_smoke",
    "recoveryfigs",
    "recoveryfigs_smoke",
    "backendfigs",
    "backendfigs_smoke",
];

/// Run one generator by id, serially (`jobs = 1`).
pub fn generate(id: &str) -> FigData {
    generate_with(id, 1)
}

/// Run one generator by id with up to `jobs` simulations in flight.
/// Sweep outputs are slot-ordered by [`mcag_exec::par_map`], so every
/// table is byte-identical to the serial run; only wall clock changes.
pub fn generate_with(id: &str, jobs: usize) -> FigData {
    match id {
        "fig2" => modelfigs::fig2(),
        "fig3" => modelfigs::fig3(),
        "fig5" => dpafigs::fig5(jobs),
        "fig7" => modelfigs::fig7(),
        "fig10" => netfigs::fig10(jobs),
        "fig11" => netfigs::fig11(jobs),
        "fig12" => netfigs::fig12(jobs),
        "table1" => dpafigs::table1(),
        "fig13" => dpafigs::fig13(jobs),
        "fig14" => dpafigs::fig14(jobs),
        "fig15" => dpafigs::fig15(jobs),
        "fig16" => dpafigs::fig16(jobs),
        "appb" => netfigs::appb(jobs),
        "ablation_chains" => ablations::ablation_chains(jobs),
        "ablation_subgroups" => ablations::ablation_subgroups(jobs),
        "ablation_cutoff" => ablations::ablation_cutoff(jobs),
        "ablation_rq_depth" => ablations::ablation_rq_depth(jobs),
        "ablation_multicomm" => ablations::ablation_multicomm(jobs),
        "runtime_multitenant" => runtimefigs::runtime_multitenant(jobs),
        "faultfigs" => faultfigs::faultfigs(),
        "faultfigs_smoke" => faultfigs::faultfigs_smoke(),
        "loadfigs" => loadfigs::loadfigs(),
        "loadfigs_smoke" => loadfigs::loadfigs_smoke(),
        "simcore" => simcore::simcore(),
        "simcore_smoke" => simcore::simcore_smoke(),
        "parallel_scaling" => parallel::parallel_scaling(),
        "parallel_scaling_smoke" => parallel::parallel_scaling_smoke(),
        "tracefigs" => tracefigs::tracefigs(),
        "tracefigs_smoke" => tracefigs::tracefigs_smoke(),
        "recoveryfigs" => recoveryfigs::recoveryfigs(),
        "recoveryfigs_smoke" => recoveryfigs::recoveryfigs_smoke(),
        "backendfigs" => backendfigs::backendfigs(),
        "backendfigs_smoke" => backendfigs::backendfigs_smoke(),
        other => {
            panic!("unknown figure id {other:?} (known: {ALL_FIGS:?} + {ABLATIONS:?} + {PERF:?})")
        }
    }
}
