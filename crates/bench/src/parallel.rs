//! Parallel-executor scaling: the wall-clock trajectory of the fork-join
//! sweep path (`mcag_exec::par_map`) on a fixed simulation sweep.
//!
//! The workload is the 188-node UCC-testbed sweep (Broadcast and
//! Allgather across message sizes — the shape of every Fig. 10–12 cell),
//! run to completion at `jobs = 1`, `2`, and `4`. Each pass records its
//! wall clock and a per-simulation digest (completion time, engine
//! events, link bytes); the generator **asserts the digests are
//! byte-identical across all `jobs` values** before reporting, so the
//! speedup table doubles as a determinism check.
//!
//! The full generator writes [`BENCH_JSON`] (checked in — the recorded
//! scaling baseline, including the recording host's available
//! parallelism, without which the speedup column cannot be interpreted);
//! `parallel_scaling_smoke` runs a bounded variant for CI and writes the
//! gitignored [`BENCH_SMOKE_JSON`].

use crate::data::FigData;
use crate::netfigs::sim_mtu_for;
use mcag_core::{des, CollectiveKind, ProtocolConfig};
use mcag_exec::{default_jobs, par_map};
use mcag_simnet::{FabricConfig, Topology};
use mcag_verbs::{LinkRate, Rank};
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable scaling
/// baseline to (checked in).
pub const BENCH_JSON: &str = "BENCH_parallel.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_parallel_smoke.json";

/// One simulation of the sweep workload: `(kind, send_len)` on the
/// mode's topology. Plain `Send + Sync` data — the compile-time
/// guarantee lives in `tests/send_safety.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepJob {
    /// Collective to run.
    pub kind: CollectiveKind,
    /// Bytes per root.
    pub send_len: usize,
}

/// Result digest of one simulation — everything that must be identical
/// across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepDigest {
    /// Simulated completion time (ns).
    pub completion_ns: u64,
    /// Engine events processed.
    pub events: u64,
    /// Payload bytes over all links.
    pub data_bytes: u64,
}

/// The sweep workload for `mode` (`"full"`: the 188-node UCC testbed;
/// `"smoke"`: a bounded 16-rank star for CI).
pub fn sweep_jobs(mode: &str) -> Vec<SweepJob> {
    let sizes: &[usize] = if mode == "full" {
        &[64 << 10, 128 << 10, 256 << 10]
    } else {
        &[8 << 10, 16 << 10, 32 << 10]
    };
    let mut jobs = Vec::new();
    for &send_len in sizes {
        for kind in [
            CollectiveKind::Broadcast { root: Rank(0) },
            CollectiveKind::Allgather,
        ] {
            jobs.push(SweepJob { kind, send_len });
        }
    }
    jobs
}

fn sweep_topology(mode: &str) -> Topology {
    if mode == "full" {
        Topology::ucc_testbed()
    } else {
        Topology::single_switch(16, LinkRate::CX3_56G, 100)
    }
}

/// Run the whole sweep with `jobs` workers, returning per-simulation
/// digests (slot-ordered) and the wall clock of the pass.
pub fn run_sweep(mode: &str, jobs: usize) -> (Vec<SweepDigest>, u64) {
    let specs = sweep_jobs(mode);
    let t0 = Instant::now();
    let digests = par_map(jobs, &specs, |job| {
        let proto = ProtocolConfig {
            mtu: sim_mtu_for(job.send_len),
            ..ProtocolConfig::default()
        };
        let out = des::run_collective(
            sweep_topology(mode),
            FabricConfig::ucc_default(),
            proto,
            job.kind,
            job.send_len,
        );
        assert!(out.stats.all_done(), "sweep job {job:?} did not complete");
        SweepDigest {
            completion_ns: out.completion_ns(),
            events: out.stats.events,
            data_bytes: out.traffic.total_data_bytes(),
        }
    });
    (digests, t0.elapsed().as_nanos() as u64)
}

struct Pass {
    jobs: usize,
    wall_ns: u64,
    speedup: f64,
}

fn parallel_with(mode: &str) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let job_counts = [1usize, 2, 4];
    let mut passes: Vec<Pass> = Vec::new();
    let mut reference: Option<Vec<SweepDigest>> = None;
    for &jobs in &job_counts {
        let (digests, wall_ns) = run_sweep(mode, jobs);
        match &reference {
            None => reference = Some(digests),
            Some(base) => assert_eq!(
                base, &digests,
                "jobs={jobs} produced different results than jobs=1 — determinism broken"
            ),
        }
        let speedup = passes
            .first()
            .map_or(1.0, |serial| serial.wall_ns as f64 / wall_ns.max(1) as f64);
        passes.push(Pass {
            jobs,
            wall_ns,
            speedup,
        });
    }

    let host = default_jobs();
    let n_sims = sweep_jobs(mode).len();
    let mut f = FigData::new(
        "parallel_scaling",
        "Fork-join sweep executor: figure-sweep wall clock vs worker count",
        &[
            "jobs",
            "wall (ms)",
            "speedup vs jobs=1",
            "results identical",
        ],
    );
    for p in &passes {
        f.row(vec![
            p.jobs.to_string(),
            format!("{:.1}", p.wall_ns as f64 / 1e6),
            format!("{:.2}x", p.speedup),
            "yes".into(), // asserted above; a mismatch panics
        ]);
    }
    f.note(format!(
        "mode={mode}; workload = {n_sims} independent collectives; digests \
         (completion ns, events, link bytes) asserted byte-identical across all jobs values"
    ));
    f.note(format!(
        "host available_parallelism = {host}; wall-clock speedup is bounded by it \
         (a 1-core host shows ~1.0x regardless of jobs)"
    ));
    f.note(format!("machine-readable baseline written to {json_path}"));

    let json = render_json(mode, host, n_sims, &passes);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer).
fn render_json(mode: &str, host_parallelism: usize, n_sims: usize, passes: &[Pass]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures parallel_scaling\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"{n_sims} independent Broadcast/Allgather simulations \
         ({} topology)\",",
        if mode == "full" {
            "188-node UCC testbed"
        } else {
            "16-rank star"
        }
    );
    let _ = writeln!(s, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(
        s,
        "  \"interpretation\": \"speedup is wall-clock of the jobs=1 pass over this pass, \
         measured on the recording host; it is bounded by host_parallelism (a 1-core \
         recording host reports ~1.0 for every jobs value). Result digests are asserted \
         byte-identical across all passes before this file is written.\","
    );
    let _ = writeln!(s, "  \"results_identical\": true,");
    let _ = writeln!(s, "  \"passes\": [");
    for (i, p) in passes.iter().enumerate() {
        let comma = if i + 1 < passes.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"jobs\": {}, \"wall_ns\": {}, \"speedup\": {:.3} }}{comma}",
            p.jobs, p.wall_ns, p.speedup
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full parallel-scaling suite (the recorded baseline).
pub fn parallel_scaling() -> FigData {
    parallel_with("full")
}

/// Bounded CI smoke: same pass structure on a 16-rank star; still
/// asserts cross-jobs determinism and writes [`BENCH_SMOKE_JSON`] (not
/// the checked-in full baseline).
pub fn parallel_scaling_smoke() -> FigData {
    parallel_with("smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_digests_identical_across_worker_counts() {
        let (d1, _) = run_sweep("smoke", 1);
        let (d4, _) = run_sweep("smoke", 4);
        assert_eq!(d1, d4);
        assert_eq!(d1.len(), sweep_jobs("smoke").len());
        for d in &d1 {
            assert!(d.completion_ns > 0 && d.events > 0 && d.data_bytes > 0);
        }
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let passes = [
            Pass {
                jobs: 1,
                wall_ns: 100,
                speedup: 1.0,
            },
            Pass {
                jobs: 4,
                wall_ns: 50,
                speedup: 2.0,
            },
        ];
        let j = render_json("test", 8, 6, &passes);
        assert!(j.contains("\"host_parallelism\": 8,"));
        assert!(j.contains("\"speedup\": 2.000 }"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
