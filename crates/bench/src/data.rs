//! Tabular results: the common output format of every figure generator.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One regenerated table/figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigData {
    /// Generator id (`fig11`, `table1`, …).
    pub id: String,
    /// Human title (what the paper's caption says).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: calibration caveats, expected shapes.
    pub notes: Vec<String>,
    /// Per-job wall times `(label, ms)` for sweep generators that
    /// measure individual simulations (cost-skew analysis). The
    /// `figures` binary appends these to `timings.csv` as
    /// `<id>:<label>` rows; they never enter rendered tables or
    /// determinism digests.
    pub job_wall_ms: Vec<(String, f64)>,
}

impl FigData {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> FigData {
        FigData {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            job_wall_ms: Vec::new(),
        }
    }

    /// Record one job's wall time (see [`FigData::job_wall_ms`]).
    pub fn job_timing(&mut self, label: impl Into<String>, wall_ms: f64) {
        self.job_wall_ms.push((label.into(), wall_ms));
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let _ = writeln!(
            out,
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Header of the `timings.csv` the `figures` binary writes under
/// `--csv`. Every row — per-generator summary and per-job detail alike —
/// comes from [`timing_row`], so the file stays uniform.
pub const TIMINGS_CSV_HEADER: &str = "figure,jobs,wall_ms";

/// One `timings.csv` row: `<fig>,<jobs>,<wall_ms>` for a generator
/// summary, `<fig>:<job>,<jobs>,<wall_ms>` for a per-job detail row
/// (the [`FigData::job_wall_ms`] cost-skew data).
pub fn timing_row(fig: &str, job: Option<&str>, jobs: usize, wall_ms: f64) -> String {
    match job {
        Some(j) => format!("{fig}:{j},{jobs},{wall_ms:.3}"),
        None => format!("{fig},{jobs},{wall_ms:.3}"),
    }
}

/// Format bytes with binary units.
pub fn human_bytes(b: u64) -> String {
    const U: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < U.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", U[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut f = FigData::new("x", "t", &["a", "long-header"]);
        f.row(vec!["1".into(), "2".into()]);
        f.note("hello");
        let r = f.render();
        assert!(r.contains("long-header"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut f = FigData::new("x", "t", &["a"]);
        f.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut f = FigData::new("x", "t", &["a,b", "c"]);
        f.row(vec!["v\"1".into(), "2".into()]);
        let csv = f.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"v\"\"1\""));
    }

    #[test]
    fn timing_rows_are_uniform() {
        assert_eq!(timing_row("fig11", None, 4, 12.3456), "fig11,4,12.346");
        assert_eq!(
            timing_row("faultfigs", Some("seed7"), 1, 0.5),
            "faultfigs:seed7,1,0.500"
        );
        // Both row shapes parse under the one header.
        assert_eq!(TIMINGS_CSV_HEADER.split(',').count(), 3);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(64 << 10), "64.0KiB");
        assert_eq!(human_bytes(8 << 20), "8.0MiB");
    }
}
