//! Ablations of the paper's design choices, beyond its figures:
//!
//! * `ablation_chains` — multicast parallelism `M` (Section IV-A): how
//!   many simultaneously broadcasting roots the sequencer allows;
//! * `ablation_subgroups` — packet parallelism (Section IV-C): multicast
//!   subgroups spread over receive workers;
//! * `ablation_cutoff` — the reliability cutoff timer `α`
//!   (Section III-C): α lands directly on lossy-run tail latency;
//! * `ablation_rq_depth` — receive-queue depth vs. RNR drops: why the
//!   protocol pre-posts and barriers before multicasting;
//! * `ablation_multicomm` — concurrent communicators sharing one fabric
//!   (Section V-C).

use crate::data::FigData;
use mcag_core::{des, run_concurrent_allgathers, CollectiveKind, ProtocolConfig};
use mcag_exec::par_map;
use mcag_simnet::{DropModel, FabricConfig, Topology};
use mcag_verbs::LinkRate;

fn star(p: usize) -> Topology {
    Topology::single_switch(p, LinkRate::CX3_56G, 100)
}

/// Chain-count sweep: completion time of a 32-rank Allgather. `jobs`
/// bounds the concurrent simulations.
pub fn ablation_chains(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "ablation_chains",
        "Multicast parallelism: broadcast chains M vs Allgather completion (32 ranks, 256 KiB)",
        &["chains M", "schedule steps R", "completion (us)", "vs M=1"],
    );
    let n = 256usize << 10;
    let ms = [1u32, 2, 4, 8, 16, 32];
    let runs = par_map(jobs, &ms, |&m| {
        let out = des::run_collective(
            star(32),
            FabricConfig::ucc_default(),
            ProtocolConfig {
                chains: m,
                ..ProtocolConfig::default()
            },
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done());
        (
            out.plan.sequencer().num_steps(),
            out.completion_ns() as f64 / 1e3,
        )
    });
    let base = runs[0].1; // M = 1 reference
    for (&m, &(steps, t)) in ms.iter().zip(&runs) {
        f.row(vec![
            m.to_string(),
            steps.to_string(),
            format!("{t:.1}"),
            format!("{:.2}x", base / t),
        ]);
    }
    f.note("receive paths are the bottleneck, so more concurrent roots shorten the schedule until activation handoffs stop mattering; the paper runs M=1 to bound incast on real switch buffers");
    f
}

/// Subgroup/worker sweep on a CPU-bound receive path. `jobs` bounds the
/// concurrent simulations.
pub fn ablation_subgroups(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "ablation_subgroups",
        "Packet parallelism: subgroups x RX workers vs completion (8 ranks, 1 MiB, slow per-CQE host)",
        &["subgroups", "rx workers", "completion (us)", "speedup vs 1x1"],
    );
    let n = 1usize << 20;
    let points = [(1u32, 1usize), (2, 2), (4, 4), (8, 4), (4, 1)];
    let times = par_map(jobs, &points, |&(subgroups, workers)| {
        let mut cfg = FabricConfig::ucc_default();
        // Make per-CQE processing the bottleneck (Fig. 5's regime): one
        // worker cannot keep up with the 56 Gbit/s arrival rate.
        cfg.host.rx_proc_ns_per_cqe = 900;
        cfg.host.rx_workers = workers;
        let out = des::run_collective(
            star(8),
            cfg,
            ProtocolConfig {
                subgroups,
                ..ProtocolConfig::default()
            },
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done());
        out.completion_ns() as f64 / 1e3
    });
    let base = times[0]; // (1 subgroup, 1 worker) reference
    for (&(subgroups, workers), &t) in points.iter().zip(&times) {
        f.row(vec![
            subgroups.to_string(),
            workers.to_string(),
            format!("{t:.1}"),
            format!("{:.2}x", base / t),
        ]);
    }
    f.note("subgroups only help when they land on distinct workers (thread-local bitmaps, Section IV-C): 4 subgroups on 1 worker buy nothing");
    f
}

/// Cutoff-timer sensitivity under fabric loss. `jobs` bounds the
/// concurrent simulations.
pub fn ablation_cutoff(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "ablation_cutoff",
        "Reliability cutoff alpha under 0.5% per-hop loss (8 ranks, 256 KiB)",
        &[
            "alpha (us)",
            "completion (us)",
            "fetched chunks",
            "duplicate chunks",
        ],
    );
    let n = 256usize << 10;
    let alphas = [1u64, 10, 50, 200, 1000, 5000];
    let rows = par_map(jobs, &alphas, |&alpha_us| {
        let mut cfg = FabricConfig::ucc_default();
        cfg.drops = DropModel::uniform(0.005);
        cfg.seed = 42;
        let out = des::run_collective(
            star(8),
            cfg,
            ProtocolConfig {
                cutoff_alpha_ns: alpha_us * 1000,
                ..ProtocolConfig::default()
            },
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done(), "alpha {alpha_us}us");
        let dups: u64 = out.timings.iter().map(|t| t.duplicate_chunks).sum();
        vec![
            alpha_us.to_string(),
            format!("{:.1}", out.completion_ns() as f64 / 1e3),
            out.total_fetched().to_string(),
            dups.to_string(),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("the driver arms the timer at ideal-drain + alpha, so recovery is never premature; every microsecond of alpha lands directly on the tail latency of lossy runs, while the fetched-chunk count stays constant — size alpha for sync jitter only (Section III-C)");
    f
}

/// Receive-queue depth vs RNR drops. `jobs` bounds the concurrent
/// simulations.
pub fn ablation_rq_depth(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "ablation_rq_depth",
        "RQ depth vs receiver-not-ready drops (8 ranks, 512 KiB, slow worker)",
        &["rq depth", "RNR drops", "fetched chunks", "completion (us)"],
    );
    let n = 512usize << 10;
    let depths = [16usize, 64, 256, 8192];
    let rows = par_map(jobs, &depths, |&depth| {
        let mut cfg = FabricConfig::ucc_default();
        cfg.host.rq_depth = depth;
        cfg.host.rx_proc_ns_per_cqe = 1200; // worker slower than the wire
        let out = des::run_collective(
            star(8),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done(), "depth {depth}");
        vec![
            depth.to_string(),
            out.rnr_drops.to_string(),
            out.total_fetched().to_string(),
            format!("{:.1}", out.completion_ns() as f64 / 1e3),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("shallow RQs overflow when the worker lags the wire; every RNR drop is recovered by the fetch ring at slow-path cost — the BlueField's 8192-deep RQ plus pre-posting avoids this (Section III-C)");
    f
}

/// Multi-communicator scaling (Section V-C). `jobs` bounds the
/// concurrent simulations.
pub fn ablation_multicomm(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "ablation_multicomm",
        "Concurrent communicators sharing one fabric (6 ranks, 128 KiB each)",
        &[
            "communicators",
            "batch completion (us)",
            "per-comm spread",
            "total payload (MiB)",
        ],
    );
    let ks = [1usize, 2, 4, 8];
    let rows = par_map(jobs, &ks, |&k| {
        let out = run_concurrent_allgathers(
            star(6),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            128 << 10,
            k,
        );
        assert!(out.stats.all_done());
        let times: Vec<u64> = (0..k).map(|c| out.comm_completion_ns(c)).collect();
        let (min, max) = (
            *times.iter().min().unwrap() as f64,
            *times.iter().max().unwrap() as f64,
        );
        vec![
            k.to_string(),
            format!("{:.1}", out.batch_completion_ns() as f64 / 1e3),
            format!("{:.2}", max / min),
            format!(
                "{:.1}",
                out.traffic.total_data_bytes() as f64 / (1 << 20) as f64
            ),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("round-robin QP arbitration keeps concurrent communicators within a few percent of each other; completion scales ~linearly with k as they share the wire");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_ablation_monotone_improvement() {
        let f = ablation_chains(2);
        let t_of = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        let first = t_of(&f.rows[0]);
        let last = t_of(f.rows.last().unwrap());
        assert!(last < first, "more chains should shorten the schedule");
    }

    #[test]
    fn subgroups_need_workers() {
        let f = ablation_subgroups(2);
        // (4 subgroups, 4 workers) must beat (4 subgroups, 1 worker).
        let t = |s: &str, w: &str| {
            f.rows.iter().find(|r| r[0] == s && r[1] == w).unwrap()[2]
                .parse::<f64>()
                .unwrap()
        };
        assert!(t("4", "4") < t("4", "1"));
    }

    #[test]
    fn cutoff_tradeoff_visible() {
        let f = ablation_cutoff(2);
        let t: Vec<f64> = f.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let fetched: Vec<u64> = f.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Alpha adds directly to lossy-run completion…
        assert!(t.last().unwrap() > &(t[0] * 2.0));
        // …while recovery itself is timer-independent.
        assert!(fetched.iter().all(|&x| x == fetched[0] && x > 0));
    }

    #[test]
    fn rq_depth_controls_rnr() {
        let f = ablation_rq_depth(2);
        let rnr: Vec<u64> = f.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(rnr[0] > 0, "shallow RQ should drop");
        assert_eq!(*rnr.last().unwrap(), 0, "8192-deep RQ should not drop");
        assert!(rnr.windows(2).all(|w| w[1] <= w[0]));
    }
}
