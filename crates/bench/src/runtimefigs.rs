//! Runtime-layer study: multi-tenant scheduling under a bounded
//! multicast-group table (`mcag-runtime`, beyond the paper's figures).
//!
//! Sweeps tenant count × group-pool capacity on an 8-rank star and
//! reports what the group table costs a shared service: pool hit rate,
//! eviction churn, mean queueing delay, mean end-to-end job latency, and
//! makespan. The workload is fixed per tenant count (three Allgathers
//! per tenant, skewed sizes), so columns are comparable down a capacity
//! column and across tenant rows.

use crate::data::FigData;
use mcag_exec::par_map;
use mcag_models::algbw_gbps;
use mcag_runtime::{JobKind, PoolConfig, Runtime, RuntimeConfig, RuntimeReport};
use mcag_simnet::Topology;
use mcag_verbs::LinkRate;

fn star(p: usize) -> Topology {
    Topology::single_switch(p, LinkRate::CX3_56G, 100)
}

/// Run `tenants` tenants (3 Allgathers each, 16–64 KiB) over a pool of
/// `capacity` groups.
pub fn run_scenario(tenants: usize, capacity: usize) -> RuntimeReport {
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(capacity),
        max_inflight: capacity.min(8),
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(star(8), cfg);
    let ids: Vec<_> = (0..tenants)
        .map(|i| rt.register_tenant(&format!("t{i}")))
        .collect();
    for (i, &t) in ids.iter().enumerate() {
        for j in 0..3 {
            let send_len = (16 << 10) << ((i + j) % 3);
            rt.submit(t, JobKind::Allgather, send_len)
                .expect("admission");
        }
    }
    rt.run_to_completion()
}

/// Tenant-count × pool-capacity sweep. Each scenario is an independent
/// runtime (its own queue, pool, and per-batch fabrics), fanned out over
/// `jobs` workers; within a scenario the batches run serially so the
/// virtual clock is identical to the `jobs = 1` sweep.
pub fn runtime_multitenant(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "runtime_multitenant",
        "Multi-tenant runtime: group-pool capacity vs hit rate, queueing, and latency (8 ranks, 3 AGs/tenant)",
        &[
            "tenants",
            "pool cap",
            "batches",
            "hit rate",
            "evictions",
            "mean queue (us)",
            "mean latency (us)",
            "makespan (ms)",
            "algbw (Gbit/s)",
        ],
    );
    let mut scenarios = Vec::new();
    for tenants in [4usize, 8, 16] {
        for capacity in [2usize, 4, 8, 16] {
            scenarios.push((tenants, capacity));
        }
    }
    let rows = par_map(jobs, &scenarios, |&(tenants, capacity)| {
        let r = run_scenario(tenants, capacity);
        assert_eq!(r.completed_jobs(), tenants * 3, "all jobs must finish");
        let queue_us: f64 = r
            .jobs
            .iter()
            .map(|j| j.queue_ns() as f64 / 1e3)
            .sum::<f64>()
            / r.jobs.len() as f64;
        vec![
            tenants.to_string(),
            capacity.to_string(),
            r.batches.to_string(),
            format!("{:.1}%", r.hit_rate() * 100.0),
            r.pool.evictions.to_string(),
            format!("{queue_us:.1}"),
            format!("{:.1}", r.mean_latency_ns() / 1e3),
            format!("{:.2}", r.makespan_ns as f64 / 1e6),
            format!("{:.1}", algbw_gbps(r.delivered_bytes, r.makespan_ns)),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("hit rate grows monotonically with capacity (LRU inclusion); once the table holds every tenant's trees, rebuild churn disappears and queueing is pure fabric contention");
    f.note("small pools also shrink batches (a batch pins at most `capacity` groups), so capacity starves parallelism twice: SM reprogramming time and fewer concurrent jobs");
    f
}
