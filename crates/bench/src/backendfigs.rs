//! Backend study: **the in-network compute design space** — the same
//! collectives on the same fabrics, with the receive-side compute
//! placed on four different devices, reported as NCCL-convention
//! algorithmic and bus bandwidth so rows are comparable to
//! real-cluster `nccl-tests` numbers.
//!
//! Each cell is a backend × collective × scale triple. The backend
//! ([`mcag_offload::BackendKind`]) compiles into the per-CQE endpoint
//! cost model the DES fabric charges (`FabricConfig.host`) plus, for
//! the in-switch backend, the bounded aggregation-table capacity
//! (`FabricConfig.inc_table_capacity`). Broadcast and Allgather run
//! the paper's multicast protocol end to end; the AG+RS pair runs the
//! concurrent `{AG_mc, RS}` workload, with the Reduce-Scatter's
//! operands converging **in the switches** for the SHARP backend
//! ([`mcag_core::run_concurrent_ag_rs`]) and **on the endpoints** for
//! every NIC-resident backend
//! ([`mcag_core::run_concurrent_ag_rs_endpoint`]) — the wire-traffic
//! asymmetry that gives in-switch reduction its bus-bandwidth edge.
//!
//! The sweep runs twice, `jobs = 1` then `jobs = 4`, and **asserts the
//! two passes' digests byte-identical** before writing anything. Two
//! more gates run before the JSON is written: the DPA backend's
//! Table-I datapath metrics must be **bit-for-bit identical** to the
//! pre-refactor `mcag_dpa::run_datapath` (the re-homing contract), and
//! the SHARP backend must show a **bus-bandwidth advantage** for AG+RS
//! at the largest swept scale. All digest quantities are
//! simulated-time integers, so the full-mode [`BENCH_JSON`] baseline
//! reproduces byte-identically on any host; `backendfigs_smoke` is
//! the bounded CI variant writing the gitignored [`BENCH_SMOKE_JSON`].

use crate::data::{human_bytes, FigData};
use crate::netfigs::sim_mtu_for;
use mcag_core::{
    des, run_concurrent_ag_rs, run_concurrent_ag_rs_endpoint, CollectiveKind, ProtocolConfig,
};
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use mcag_exec::par_map;
use mcag_models::{algbw_gbps, busbw_gbps, CollectiveOp};
use mcag_offload::{BackendKind, DatapathTransport, Placement};
use mcag_simnet::{FabricConfig, Topology};
use mcag_verbs::{LinkRate, Rank};
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable backend
/// baseline to (checked in).
pub const BENCH_JSON: &str = "BENCH_backends.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_backends_smoke.json";

/// Chunk count of the Table-I-style datapath section (the paper's
/// steady-state measurement length, matching `dpafigs`).
pub const DATAPATH_CHUNKS: u64 = 40_000;

/// The collectives the study sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepCollective {
    /// One root's buffer to every rank (multicast protocol).
    Broadcast,
    /// Every rank's buffer to every rank (multicast protocol).
    Allgather,
    /// Concurrent `{AG_mc, RS}`: in-switch RS for the SHARP backend,
    /// endpoint RS for NIC-resident backends.
    AgRs,
}

impl SweepCollective {
    /// All collectives, sweep order.
    pub const ALL: [SweepCollective; 3] = [
        SweepCollective::Broadcast,
        SweepCollective::Allgather,
        SweepCollective::AgRs,
    ];

    /// Table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            SweepCollective::Broadcast => "broadcast",
            SweepCollective::Allgather => "allgather",
            SweepCollective::AgRs => "ag_rs",
        }
    }

    /// NCCL bus-bandwidth shape: the concurrent `{AG, RS}` pair is the
    /// AllReduce decomposition, so it carries the AllReduce factor.
    pub fn op(self) -> CollectiveOp {
        match self {
            SweepCollective::Broadcast => CollectiveOp::Broadcast,
            SweepCollective::Allgather => CollectiveOp::Allgather,
            SweepCollective::AgRs => CollectiveOp::AllReduce,
        }
    }
}

/// The fabric scales the study sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScale {
    /// 16 ranks on one switch, ConnectX-3 56G (the small testbed shape).
    Star16,
    /// 128 ranks, two-level leaf/spine at NDR 400G.
    FatTree128,
    /// 512 ranks, three-level fat-tree at NDR 400G (the
    /// `BENCH_simcore.json` scale scenario).
    FatTree512,
}

impl SweepScale {
    /// All scales, sweep order.
    pub const ALL: [SweepScale; 3] = [
        SweepScale::Star16,
        SweepScale::FatTree128,
        SweepScale::FatTree512,
    ];

    /// Table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            SweepScale::Star16 => "star_16",
            SweepScale::FatTree128 => "fat_tree_128",
            SweepScale::FatTree512 => "fat_tree_512",
        }
    }

    /// Build the fabric.
    pub fn topology(self) -> Topology {
        match self {
            SweepScale::Star16 => Topology::single_switch(16, LinkRate::CX3_56G, 100),
            SweepScale::FatTree128 => {
                Topology::fat_tree_two_level(128, 8, 4, 2, LinkRate::NDR_400G, 300)
            }
            SweepScale::FatTree512 => Topology::fat_tree_512(LinkRate::NDR_400G),
        }
    }

    /// Per-rank send length for `coll` in `mode`. Event counts scale
    /// with ranks × chunks, so the per-rank buffer shrinks as the
    /// fabric grows (the AG+RS pair additionally multiplies by `P−1`
    /// operand shards on the endpoint path).
    pub fn send_len(self, coll: SweepCollective, mode: &str) -> usize {
        if mode != "full" {
            return 16 << 10;
        }
        match (self, coll) {
            (SweepScale::Star16, _) => 256 << 10,
            (SweepScale::FatTree128, _) => 64 << 10,
            (SweepScale::FatTree512, SweepCollective::AgRs) => 16 << 10,
            (SweepScale::FatTree512, _) => 64 << 10,
        }
    }
}

/// One simulation of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct BackendCell {
    /// Which compute device the receive path runs on.
    pub backend: BackendKind,
    /// Which collective.
    pub coll: SweepCollective,
    /// Which fabric.
    pub scale: SweepScale,
    /// Per-rank send length (bytes).
    pub send_len: usize,
}

/// Everything about one cell that must be identical across worker
/// counts — simulated-time integers only; bandwidths are derived at
/// render time from these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDigest {
    /// Ranks in the collective.
    pub ranks: u32,
    /// Completion time on the virtual clock (ns).
    pub completion_ns: u64,
    /// Collective data size for algbw (NCCL convention: the root
    /// buffer for Broadcast, the gathered `N·P` buffer for Allgather,
    /// the reduced `N·P` vector for the AG+RS pair).
    pub data_bytes: u64,
    /// Payload bytes that crossed fabric links (all copies).
    pub wire_bytes: u64,
    /// DES engine events consumed.
    pub events: u64,
}

/// Run one cell to its digest: compile the backend into the fabric's
/// endpoint cost model (and aggregation-table bound, if in-switch),
/// then run the collective end to end.
pub fn run_cell(cell: &BackendCell) -> CellDigest {
    let topo = cell.scale.topology();
    let p = topo.num_hosts() as u32;
    let n = cell.send_len;
    let mtu = sim_mtu_for(n);
    let be = cell.backend.instantiate();
    let mut cfg = FabricConfig::ucc_default();
    cfg.host = be.host_model(mtu.bytes());
    cfg.inc_table_capacity = be.limits().aggregation_entries;
    let proto = ProtocolConfig {
        mtu,
        ..ProtocolConfig::default()
    };
    match cell.coll {
        SweepCollective::Broadcast | SweepCollective::Allgather => {
            let kind = if cell.coll == SweepCollective::Broadcast {
                CollectiveKind::Broadcast { root: Rank(0) }
            } else {
                CollectiveKind::Allgather
            };
            let data_bytes = match cell.coll {
                SweepCollective::Broadcast => n as u64,
                _ => n as u64 * p as u64,
            };
            let out = des::run_collective(topo, cfg, proto, kind, n);
            assert!(
                out.stats.all_done(),
                "{} {} {} did not complete",
                cell.backend.label(),
                cell.coll.label(),
                cell.scale.label()
            );
            CellDigest {
                ranks: p,
                completion_ns: out.completion_ns(),
                data_bytes,
                wire_bytes: out.traffic.total_data_bytes(),
                events: out.stats.events,
            }
        }
        SweepCollective::AgRs => {
            // Fully parallel chains (every root multicasts its own
            // subgroup), the Appendix-B configuration of the pair.
            let proto = ProtocolConfig { chains: p, ..proto };
            let out = if be.placement() == Placement::InSwitch {
                run_concurrent_ag_rs(topo, cfg, proto, n)
            } else {
                run_concurrent_ag_rs_endpoint(topo, cfg, proto, n)
            };
            assert!(
                out.stats.all_done(),
                "{} ag_rs {} did not complete",
                cell.backend.label(),
                cell.scale.label()
            );
            CellDigest {
                ranks: p,
                completion_ns: out.pair_completion_ns(),
                data_bytes: n as u64 * p as u64,
                wire_bytes: out.traffic.total_data_bytes(),
                events: out.stats.events,
            }
        }
    }
}

/// The sweep grid for `mode`, backend-major then collective then
/// scale (the table's row order). Smoke skips the 512-rank fabric.
pub fn sweep_cells(mode: &str) -> Vec<BackendCell> {
    let scales: &[SweepScale] = if mode == "full" {
        &SweepScale::ALL
    } else {
        &[SweepScale::Star16, SweepScale::FatTree128]
    };
    let mut cells = Vec::new();
    for backend in BackendKind::ALL {
        for coll in SweepCollective::ALL {
            for &scale in scales {
                cells.push(BackendCell {
                    backend,
                    coll,
                    scale,
                    send_len: scale.send_len(coll, mode),
                });
            }
        }
    }
    cells
}

/// Run the `mode` grid at `jobs` workers and return slot-ordered
/// digests (the golden determinism test drives this directly).
pub fn sweep_digests(mode: &str, jobs: usize) -> Vec<CellDigest> {
    let cells = sweep_cells(mode);
    par_map(jobs, &cells, run_cell)
}

/// One backend's Table-I-style datapath row: single context, 4 KiB
/// chunks, saturated arrivals — the device-level half of the cost
/// model, independent of any fabric.
struct DatapathRow {
    backend: BackendKind,
    transport: DatapathTransport,
    gib_per_s: f64,
    ns_per_cqe: f64,
    rx_proc_ns_per_cqe: u64,
    setup_ns: u64,
    contexts: u32,
    placement: &'static str,
}

fn datapath_rows() -> Vec<DatapathRow> {
    let mut rows = Vec::new();
    for backend in BackendKind::ALL {
        let be = backend.instantiate();
        for transport in [DatapathTransport::Uc, DatapathTransport::Ud] {
            let m = be.datapath(transport, 1, 4096, DATAPATH_CHUNKS, ArrivalModel::Saturated);
            rows.push(DatapathRow {
                backend,
                transport,
                gib_per_s: m.gib_per_s,
                ns_per_cqe: m.wall_ns / m.chunks as f64,
                rx_proc_ns_per_cqe: be.host_model(4096).rx_proc_ns_per_cqe,
                setup_ns: be.setup_ns(),
                contexts: be.limits().contexts,
                placement: match be.placement() {
                    Placement::EndpointNic => "endpoint NIC",
                    Placement::HostCore => "host core",
                    Placement::InSwitch => "in-switch",
                },
            });
        }
    }
    rows
}

/// The re-homing contract: the DPA backend's datapath must be
/// bit-for-bit the pre-refactor `run_datapath` at the Table-I
/// operating point (single thread, 4 KiB chunks, saturated).
fn assert_dpa_table1_identical() {
    let be = BackendKind::DpaBf3.instantiate();
    let spec = DpaSpec::bf3();
    for (transport, kind) in [
        (DatapathTransport::Uc, KernelKind::DpaUc),
        (DatapathTransport::Ud, KernelKind::DpaUd),
    ] {
        let via_trait = be.datapath(transport, 1, 4096, DATAPATH_CHUNKS, ArrivalModel::Saturated);
        let direct = run_datapath(
            &spec,
            &Kernel::new(kind),
            1,
            4096,
            DATAPATH_CHUNKS,
            ArrivalModel::Saturated,
        );
        assert_eq!(
            via_trait, direct,
            "DPA backend must reproduce run_datapath bit-for-bit ({transport:?})"
        );
    }
}

fn backendfigs_with(mode: &str) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let cells = sweep_cells(mode);

    // Gate 1: the re-homed DPA model is bit-identical to the original.
    assert_dpa_table1_identical();

    // Two passes, jobs = 1 then jobs = 4; digests must be
    // byte-identical (the determinism half of the acceptance bar).
    let mut passes: Vec<(usize, u64)> = Vec::new();
    let mut reference: Option<Vec<CellDigest>> = None;
    for workers in [1usize, 4] {
        let t0 = Instant::now();
        let digests = par_map(workers, &cells, run_cell);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        match &reference {
            None => reference = Some(digests),
            Some(base) => assert_eq!(
                base, &digests,
                "jobs=4 produced different backend-sweep results than jobs=1 — determinism broken"
            ),
        }
        passes.push((workers, wall_ns));
    }
    let digests = reference.expect("at least one pass ran");

    // Gate 2: in-switch reduction must out-busbw every endpoint
    // backend for AG+RS at the largest swept scale.
    let top = cells.last().expect("non-empty grid").scale;
    let busbw_of = |backend: BackendKind| -> f64 {
        cells
            .iter()
            .zip(&digests)
            .find(|(c, _)| {
                c.backend == backend && c.coll == SweepCollective::AgRs && c.scale == top
            })
            .map(|(_, d)| {
                busbw_gbps(
                    SweepCollective::AgRs.op(),
                    d.ranks,
                    d.data_bytes,
                    d.completion_ns,
                )
            })
            .expect("grid covers every backend at the top scale")
    };
    let sharp = busbw_of(BackendKind::SharpSwitch);
    for backend in [
        BackendKind::DpaBf3,
        BackendKind::HostCpu,
        BackendKind::FpgaSmartNic,
    ] {
        let endpoint = busbw_of(backend);
        assert!(
            sharp > endpoint,
            "SHARP AG+RS busbw must beat {} at {}: {sharp:.1} vs {endpoint:.1} Gbit/s",
            backend.label(),
            top.label(),
        );
    }

    let dp_rows = datapath_rows();

    let mut f = FigData::new(
        "backendfigs",
        "In-network compute backends: algorithmic/bus bandwidth by backend, collective, and scale",
        &[
            "backend",
            "collective",
            "scale",
            "ranks",
            "size",
            "time (us)",
            "algbw (Gbit/s)",
            "busbw (Gbit/s)",
            "wire bytes",
        ],
    );
    for (c, d) in cells.iter().zip(&digests) {
        f.row(vec![
            c.backend.label().to_string(),
            c.coll.label().to_string(),
            c.scale.label().to_string(),
            d.ranks.to_string(),
            human_bytes(c.send_len as u64),
            format!("{:.1}", d.completion_ns as f64 / 1e3),
            format!("{:.1}", algbw_gbps(d.data_bytes, d.completion_ns)),
            format!(
                "{:.1}",
                busbw_gbps(c.coll.op(), d.ranks, d.data_bytes, d.completion_ns)
            ),
            human_bytes(d.wire_bytes),
        ]);
    }
    f.note(format!(
        "mode={mode}; NCCL conventions — algbw = collective size / time, busbw = algbw × factor \
         (Broadcast 1, AG (P−1)/P, AG+RS pair 2(P−1)/P as the AllReduce decomposition)",
    ));
    f.note(
        "each backend compiles into the per-CQE endpoint cost model the fabric charges; the \
         SHARP backend additionally reduces in the switches (bounded aggregation table), so its \
         AG+RS pair moves less wire data than any endpoint-reduction backend",
    );
    f.note(
        "gates asserted before writing: DPA backend bit-identical to pre-refactor run_datapath \
         at the Table-I point; SHARP AG+RS busbw beats every endpoint backend at the largest \
         scale; jobs=1 and jobs=4 digests byte-identical",
    );
    for (workers, wall_ns) in &passes {
        f.note(format!(
            "pass jobs={workers}: {:.1} ms wall (results asserted identical across passes)",
            *wall_ns as f64 / 1e6
        ));
    }
    f.note(format!(
        "machine-readable backend baseline written to {json_path}"
    ));

    let json = render_json(mode, &cells, &digests, &dp_rows);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer). Every
/// digest quantity is a simulated-time integer and every float is a
/// pure function of them, so the file is byte-identical across hosts
/// and repeated runs — CI diffs two smoke passes to enforce it.
fn render_json(
    mode: &str,
    cells: &[BackendCell],
    digests: &[CellDigest],
    dp_rows: &[DatapathRow],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures backendfigs\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"interpretation\": \"one row per (backend, collective, scale) cell; the backend \
         compiles into the endpoint per-CQE cost model (and, in-switch only, the bounded \
         aggregation table) of an otherwise identical fabric. algbw/busbw follow nccl-tests \
         conventions; ag_rs runs the concurrent {{AG_mc, RS}} pair with in-switch reduction for \
         sharp_switch and endpoint reduction for NIC-resident backends. Each cell ran at jobs=1 \
         and jobs=4 and the digests were asserted byte-identical before this file was \
         written.\","
    );
    let _ = writeln!(s, "  \"results_identical\": true,");
    let _ = writeln!(s, "  \"dpa_table1_identical\": true,");
    let _ = writeln!(s, "  \"sharp_agrs_busbw_advantage\": true,");
    let _ = writeln!(s, "  \"datapath\": [");
    for (i, r) in dp_rows.iter().enumerate() {
        let comma = if i + 1 < dp_rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"backend\": \"{}\", \"transport\": \"{:?}\", \"placement\": \"{}\", \
             \"gib_per_s\": {:.3}, \"ns_per_cqe\": {:.3}, \"rx_proc_ns_per_cqe\": {}, \
             \"setup_ns\": {}, \"contexts\": {} }}{comma}",
            r.backend.label(),
            r.transport,
            r.placement,
            r.gib_per_s,
            r.ns_per_cqe,
            r.rx_proc_ns_per_cqe,
            r.setup_ns,
            r.contexts,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (c, d)) in cells.iter().zip(digests).enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"backend\": \"{}\", \"collective\": \"{}\", \"scale\": \"{}\", \
             \"ranks\": {}, \"send_len\": {}, \"completion_ns\": {}, \"data_bytes\": {}, \
             \"wire_bytes\": {}, \"events\": {}, \"algbw_gbps\": {:.3}, \"busbw_gbps\": {:.3} \
             }}{comma}",
            c.backend.label(),
            c.coll.label(),
            c.scale.label(),
            d.ranks,
            c.send_len,
            d.completion_ns,
            d.data_bytes,
            d.wire_bytes,
            d.events,
            algbw_gbps(d.data_bytes, d.completion_ns),
            busbw_gbps(c.coll.op(), d.ranks, d.data_bytes, d.completion_ns),
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full backend study (the recorded baseline): 4 backends × 3
/// collectives × 3 scales up to the 512-rank fat-tree, twice
/// (jobs = 1 and 4).
pub fn backendfigs() -> FigData {
    backendfigs_with("full")
}

/// Bounded CI smoke: the same 4 backends × 3 collectives on the two
/// smaller fabrics at 16 KiB; still asserts the DPA identity, the
/// SHARP AG+RS win, and cross-jobs determinism, and writes
/// [`BENCH_SMOKE_JSON`] (not the checked-in full baseline).
pub fn backendfigs_smoke() -> FigData {
    backendfigs_with("smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_every_backend_collective_pair() {
        for mode in ["full", "smoke"] {
            let cells = sweep_cells(mode);
            for backend in BackendKind::ALL {
                for coll in SweepCollective::ALL {
                    assert!(
                        cells.iter().any(|c| c.backend == backend && c.coll == coll),
                        "{mode} grid misses {} × {}",
                        backend.label(),
                        coll.label()
                    );
                }
            }
        }
        let full = sweep_cells("full");
        assert_eq!(full.len(), 4 * 3 * 3);
        assert!(full
            .iter()
            .any(|c| c.scale == SweepScale::FatTree512 && c.coll == SweepCollective::AgRs));
        assert!(sweep_cells("smoke").len() < full.len());
    }

    #[test]
    fn dpa_backend_is_bit_identical_to_run_datapath() {
        assert_dpa_table1_identical();
    }

    #[test]
    fn single_cell_is_deterministic_and_backend_sensitive() {
        let mk = |backend| BackendCell {
            backend,
            coll: SweepCollective::Allgather,
            scale: SweepScale::Star16,
            send_len: 16 << 10,
        };
        let dpa = run_cell(&mk(BackendKind::DpaBf3));
        assert_eq!(dpa, run_cell(&mk(BackendKind::DpaBf3)));
        let cpu = run_cell(&mk(BackendKind::HostCpu));
        assert!(
            dpa.completion_ns < cpu.completion_ns,
            "DPA offload must finish the same Allgather before the host-CPU baseline: {} vs {}",
            dpa.completion_ns,
            cpu.completion_ns
        );
    }

    #[test]
    fn sharp_agrs_reduces_wire_traffic_vs_endpoint() {
        let mk = |backend| BackendCell {
            backend,
            coll: SweepCollective::AgRs,
            scale: SweepScale::Star16,
            send_len: 16 << 10,
        };
        let sharp = run_cell(&mk(BackendKind::SharpSwitch));
        let fpga = run_cell(&mk(BackendKind::FpgaSmartNic));
        assert!(
            sharp.wire_bytes < fpga.wire_bytes,
            "in-switch reduction must move less payload: {} vs {}",
            sharp.wire_bytes,
            fpga.wire_bytes
        );
        assert!(sharp.completion_ns < fpga.completion_ns);
    }
}
