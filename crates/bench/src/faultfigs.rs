//! Failure sweeps with tail-latency reporting — the "Don't Let a Few
//! Network Failures Slow the Entire AllReduce" experiment on this
//! codebase's multicast collectives.
//!
//! The grid is **fault model × failure rate × recovery-cutoff headroom**,
//! each cell run over hundreds of independent seeds (every seed draws
//! its own victim links/switches through `mcag-faults`), reported as
//! **p50/p99/p999 completion time** — means hide exactly the tail this
//! experiment exists to expose. Timed-out seeds are censored at the
//! watchdog deadline and counted separately.
//!
//! The sweep runs twice, at `jobs = 1` and `jobs = 4`, through
//! [`mcag_exec::par_map_ordered`] (largest-first claim order: the
//! expensive high-headroom / switch-failure seeds overlap the cheap
//! bulk), and **asserts the two passes' digests are byte-identical**
//! before writing anything — the tail table doubles as a determinism
//! check of the whole fault stack. The full mode writes the checked-in
//! [`BENCH_JSON`]; `faultfigs_smoke` is the bounded CI variant writing
//! the gitignored [`BENCH_SMOKE_JSON`]. Both JSON files contain only
//! simulated-time quantities, so repeated runs on any host produce
//! byte-identical files (CI diffs two passes to enforce this); wall
//! clocks go to the table notes and `timings.csv` instead.

use crate::data::FigData;
use crate::netfigs::sim_mtu_for;
use mcag_core::des::{self, RunBounds};
use mcag_core::{CollectiveKind, ProtocolConfig};
use mcag_exec::par_map_ordered;
use mcag_faults::{FaultModel, FaultPlan};
use mcag_simnet::{FabricConfig, Topology};
use mcag_verbs::LinkRate;
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable tail
/// baseline to (checked in).
pub const BENCH_JSON: &str = "BENCH_faults.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_faults_smoke.json";

/// Watchdog grant for every sweep run, in cutoffs: long enough for
/// multi-round ring recovery after an outage, short enough that a
/// wedged seed costs bounded simulated time.
pub const SWEEP_WATCHDOG_CUTOFFS: u64 = 64;

/// The three failure processes the sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Bandwidth asymmetry: a fraction of directed links at 1/4 rate.
    Degraded,
    /// Port up/down duty cycling on a fraction of cables.
    Flapping,
    /// Whole switches dark for a window, then recovered.
    SwitchFail,
}

impl FaultKind {
    /// All kinds, sweep order.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::Degraded,
        FaultKind::Flapping,
        FaultKind::SwitchFail,
    ];

    /// Table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Degraded => "degraded",
            FaultKind::Flapping => "flapping",
            FaultKind::SwitchFail => "switch",
        }
    }
}

/// One simulation of the sweep: a grid cell plus the seed that draws
/// its victims.
#[derive(Debug, Clone, Copy)]
pub struct FaultJob {
    /// Failure process under test.
    pub kind: FaultKind,
    /// Failure rate (fraction of links/ports; switch count via ceil).
    pub rate: f64,
    /// Recovery-cutoff headroom ([`RunBounds::cutoff_headroom`]).
    pub cutoff_headroom: u64,
    /// Victim-selection seed ([`FaultPlan::seed`]).
    pub seed: u64,
}

/// Everything about one run that must be identical across worker
/// counts (wall clock deliberately excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDigest {
    /// Completion time, censored at the watchdog deadline on timeout.
    pub completion_ns: u64,
    /// Whether the watchdog tripped.
    pub timed_out: bool,
    /// Engine events processed.
    pub events: u64,
    /// Packet copies lost to down links.
    pub fault_drops: u64,
    /// Summed per-link downtime the run observed.
    pub downtime_ns: u64,
    /// Chunks recovered over the unicast ring.
    pub fetched: u64,
}

/// The fault timeline for one job. Windows are sized against the
/// healthy completion time of the sweep collective (~100 µs), so every
/// model disturbs the datapath phase and recovers within the watchdog.
pub fn sweep_plan(job: &FaultJob, topo: &Topology) -> FaultPlan {
    let plan = FaultPlan::new(job.seed);
    match job.kind {
        FaultKind::Degraded => plan.with(FaultModel::DegradedLink {
            fraction: job.rate,
            bw_num: 1,
            bw_den: 4,
            start_ns: 5_000,
            duration_ns: 200_000,
        }),
        FaultKind::Flapping => plan.with(FaultModel::FlappingPort {
            fraction: job.rate,
            period_ns: 40_000,
            down_ns: 10_000,
            start_ns: 0,
            end_ns: 400_000,
        }),
        FaultKind::SwitchFail => plan.with(FaultModel::SwitchFailure {
            switches: (job.rate * topo.num_switches() as f64).ceil().max(1.0) as u32,
            start_ns: 10_000,
            downtime_ns: 150_000,
        }),
    }
}

fn sweep_topology(mode: &str) -> Topology {
    if mode == "full" {
        Topology::fat_tree_two_level(16, 4, 2, 1, LinkRate::CX3_56G, 100)
    } else {
        Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100)
    }
}

fn sweep_send_len(mode: &str) -> usize {
    if mode == "full" {
        32 << 10
    } else {
        16 << 10
    }
}

/// Run one sweep job to its digest.
pub fn run_job(mode: &str, job: &FaultJob) -> FaultDigest {
    let topo = sweep_topology(mode);
    let mut cfg = FabricConfig::ucc_default();
    cfg.faults = sweep_plan(job, &topo).compile(&topo);
    let send_len = sweep_send_len(mode);
    let proto = ProtocolConfig {
        mtu: sim_mtu_for(send_len),
        ..ProtocolConfig::default()
    };
    let out = des::run_collective_bounded(
        topo,
        cfg,
        proto,
        CollectiveKind::Allgather,
        send_len,
        RunBounds {
            cutoff_headroom: job.cutoff_headroom,
            watchdog_cutoffs: SWEEP_WATCHDOG_CUTOFFS,
        },
    );
    FaultDigest {
        completion_ns: out.censored_completion_ns(),
        timed_out: out.timed_out(),
        events: out.stats.events,
        fault_drops: out.traffic.total_fault_drops(),
        downtime_ns: out.traffic.total_downtime_ns(),
        fetched: out.total_fetched(),
    }
}

/// Claim-order weight: a deterministic cost proxy (disruptive models
/// and high headroom burn more simulated time), so `par_map_ordered`
/// front-loads the likely-expensive seeds.
pub fn job_weight(job: &FaultJob) -> u64 {
    let model = match job.kind {
        FaultKind::Degraded => 1,
        FaultKind::Flapping => 2,
        FaultKind::SwitchFail => 3,
    };
    model * 1_000 + job.cutoff_headroom * 10 + (job.rate * 100.0) as u64
}

/// The sweep grid for `mode`, in cell-major order (seeds innermost).
pub fn sweep_jobs(mode: &str) -> Vec<FaultJob> {
    let (rates, cutoffs, seeds): (&[f64], &[u64], u64) = if mode == "full" {
        (&[0.05, 0.20], &[1, 4], 200)
    } else {
        (&[0.20], &[1, 4], 24)
    };
    let mut jobs = Vec::new();
    for kind in FaultKind::ALL {
        for &rate in rates {
            for &cutoff_headroom in cutoffs {
                for seed in 0..seeds {
                    jobs.push(FaultJob {
                        kind,
                        rate,
                        cutoff_headroom,
                        seed,
                    });
                }
            }
        }
    }
    jobs
}

/// Nearest-rank quantile of an ascending-sorted slice.
pub fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

struct Cell {
    kind: FaultKind,
    rate: f64,
    cutoff_headroom: u64,
    seeds: usize,
    timeouts: usize,
    p50: u64,
    p99: u64,
    p999: u64,
    mean: u64,
    max: u64,
    fault_drops: u64,
    fetched: u64,
}

fn aggregate(jobs: &[FaultJob], digests: &[FaultDigest]) -> Vec<Cell> {
    // Cells in first-appearance (sweep) order.
    let mut cells: Vec<(FaultKind, f64, u64)> = Vec::new();
    for j in jobs {
        let key = (j.kind, j.rate, j.cutoff_headroom);
        if !cells.contains(&key) {
            cells.push(key);
        }
    }
    cells
        .into_iter()
        .map(|(kind, rate, cutoff_headroom)| {
            let picked: Vec<&FaultDigest> = jobs
                .iter()
                .zip(digests)
                .filter(|(j, _)| {
                    j.kind == kind && j.rate == rate && j.cutoff_headroom == cutoff_headroom
                })
                .map(|(_, d)| d)
                .collect();
            let mut comp: Vec<u64> = picked.iter().map(|d| d.completion_ns).collect();
            comp.sort_unstable();
            Cell {
                kind,
                rate,
                cutoff_headroom,
                seeds: picked.len(),
                timeouts: picked.iter().filter(|d| d.timed_out).count(),
                p50: quantile_ns(&comp, 0.50),
                p99: quantile_ns(&comp, 0.99),
                p999: quantile_ns(&comp, 0.999),
                mean: comp.iter().sum::<u64>() / comp.len() as u64,
                max: *comp.last().unwrap(),
                fault_drops: picked.iter().map(|d| d.fault_drops).sum(),
                fetched: picked.iter().map(|d| d.fetched).sum(),
            }
        })
        .collect()
}

fn faultfigs_with(mode: &str) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let jobs = sweep_jobs(mode);

    // Two passes, jobs = 1 then jobs = 4; digests must be
    // byte-identical (the determinism half of the acceptance bar).
    let mut passes: Vec<(usize, u64)> = Vec::new();
    let mut reference: Option<Vec<FaultDigest>> = None;
    let mut last_timed = Vec::new();
    for workers in [1usize, 4] {
        let t0 = Instant::now();
        let timed = par_map_ordered(
            workers,
            &jobs,
            |i, _| job_weight(&jobs[i]),
            |j| run_job(mode, j),
        );
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let digests: Vec<FaultDigest> = timed.iter().map(|t| t.value).collect();
        match &reference {
            None => reference = Some(digests),
            Some(base) => assert_eq!(
                base, &digests,
                "jobs=4 produced different fault-sweep results than jobs=1 — determinism broken"
            ),
        }
        passes.push((workers, wall_ns));
        last_timed = timed;
    }
    let digests = reference.expect("at least one pass ran");
    let cells = aggregate(&jobs, &digests);

    let topo = sweep_topology(mode);
    let mut f = FigData::new(
        "faultfigs",
        "Failure sweep: completion-time tail vs fault model × rate × recovery cutoff",
        &[
            "model",
            "rate",
            "cutoff headroom",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "timeouts",
            "fault drops",
        ],
    );
    for c in &cells {
        f.row(vec![
            c.kind.label().to_string(),
            format!("{:.2}", c.rate),
            c.cutoff_headroom.to_string(),
            format!("{:.1}", c.p50 as f64 / 1e3),
            format!("{:.1}", c.p99 as f64 / 1e3),
            format!("{:.1}", c.p999 as f64 / 1e3),
            format!("{}/{}", c.timeouts, c.seeds),
            c.fault_drops.to_string(),
        ]);
    }
    f.note(format!(
        "mode={mode}; {} Allgather of {} KiB per rank; {} jobs per pass; \
         timed-out seeds censored at the {SWEEP_WATCHDOG_CUTOFFS}-cutoff watchdog",
        topo.name(),
        sweep_send_len(mode) >> 10,
        jobs.len(),
    ));
    for (workers, wall_ns) in &passes {
        f.note(format!(
            "pass jobs={workers}: {:.1} ms wall (results asserted identical across passes)",
            *wall_ns as f64 / 1e6
        ));
    }
    f.note(format!(
        "machine-readable tail baseline written to {json_path}"
    ));
    // Per-seed wall times (from the final, parallel pass) for cost-skew
    // analysis; the figures binary lands these in timings.csv.
    for (j, t) in jobs.iter().zip(&last_timed) {
        f.job_timing(
            format!(
                "{}_r{:.2}_c{}_s{}",
                j.kind.label(),
                j.rate,
                j.cutoff_headroom,
                j.seed
            ),
            t.wall_ns as f64 / 1e6,
        );
    }

    let json = render_json(mode, &topo, jobs.len(), &cells);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer). Only
/// simulated-time quantities appear, so the file is byte-identical
/// across hosts and repeated runs — CI asserts exactly that.
fn render_json(mode: &str, topo: &Topology, n_jobs: usize, cells: &[Cell]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures faultfigs\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"topology\": \"{}\",", topo.name());
    let _ = writeln!(
        s,
        "  \"collective\": \"Allgather, {} KiB per rank\",",
        sweep_send_len(mode) >> 10
    );
    let _ = writeln!(s, "  \"jobs_per_pass\": {n_jobs},");
    let _ = writeln!(s, "  \"watchdog_cutoffs\": {SWEEP_WATCHDOG_CUTOFFS},");
    let _ = writeln!(
        s,
        "  \"interpretation\": \"one row per (model, failure rate, recovery-cutoff headroom) \
         cell; quantiles are nearest-rank over that cell's seeds with timeouts censored at \
         the watchdog deadline. The sweep ran at jobs=1 and jobs=4 and the per-seed digests \
         were asserted byte-identical before this file was written; it contains only \
         simulated-time quantities and reproduces byte-identically on any host.\","
    );
    let _ = writeln!(s, "  \"results_identical\": true,");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"model\": \"{}\", \"rate\": {:.2}, \"cutoff_headroom\": {}, \
             \"seeds\": {}, \"timeouts\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"fault_drops\": {}, \
             \"fetched_chunks\": {} }}{comma}",
            c.kind.label(),
            c.rate,
            c.cutoff_headroom,
            c.seeds,
            c.timeouts,
            c.p50,
            c.p99,
            c.p999,
            c.mean,
            c.max,
            c.fault_drops,
            c.fetched,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full failure sweep (the recorded tail baseline): 3 models × 2 rates
/// × 2 cutoffs × 200 seeds, twice (jobs = 1 and 4).
pub fn faultfigs() -> FigData {
    faultfigs_with("full")
}

/// Bounded CI smoke: same grid shape on a smaller fabric with 24 seeds
/// per cell; still asserts cross-jobs determinism and writes
/// [`BENCH_SMOKE_JSON`] (not the checked-in full baseline).
pub fn faultfigs_smoke() -> FigData {
    faultfigs_with("smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=200).collect();
        assert_eq!(quantile_ns(&v, 0.50), 100);
        assert_eq!(quantile_ns(&v, 0.99), 198);
        assert_eq!(quantile_ns(&v, 0.999), 200);
        assert_eq!(quantile_ns(&[7], 0.5), 7);
    }

    #[test]
    fn sweep_grid_covers_all_models_and_axes() {
        let jobs = sweep_jobs("full");
        assert_eq!(jobs.len(), 3 * 2 * 2 * 200);
        for kind in FaultKind::ALL {
            assert!(jobs.iter().any(|j| j.kind == kind));
        }
        let smoke = sweep_jobs("smoke");
        assert_eq!(smoke.len(), 3 * 2 * 24);
    }

    #[test]
    fn fault_jobs_are_deterministic_across_worker_counts() {
        // A thin slice of the smoke grid, jobs=1 vs jobs=4.
        let jobs: Vec<FaultJob> = sweep_jobs("smoke")
            .into_iter()
            .filter(|j| j.seed < 3)
            .collect();
        let one: Vec<FaultDigest> = par_map_ordered(
            1,
            &jobs,
            |i, _| job_weight(&jobs[i]),
            |j| run_job("smoke", j),
        )
        .into_iter()
        .map(|t| t.value)
        .collect();
        let four: Vec<FaultDigest> = par_map_ordered(
            4,
            &jobs,
            |i, _| job_weight(&jobs[i]),
            |j| run_job("smoke", j),
        )
        .into_iter()
        .map(|t| t.value)
        .collect();
        assert_eq!(one, four);
        // Faults actually bit: some seed lost a datagram or degraded a link.
        assert!(one.iter().any(|d| d.fault_drops > 0 || d.downtime_ns > 0));
    }

    #[test]
    fn most_smoke_seeds_recover() {
        let jobs: Vec<FaultJob> = sweep_jobs("smoke")
            .into_iter()
            .filter(|j| j.seed < 4 && j.cutoff_headroom == 1)
            .collect();
        let digests: Vec<FaultDigest> = jobs.iter().map(|j| run_job("smoke", j)).collect();
        let done = digests.iter().filter(|d| !d.timed_out).count();
        assert!(
            done * 2 > digests.len(),
            "most faulted runs should still complete: {done}/{}",
            digests.len()
        );
    }
}
