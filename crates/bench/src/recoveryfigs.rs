//! Recovery study: **what a fault-aware scheduler buys** — the same
//! damaged fabric, scheduled obliviously vs reactively, reported as the
//! sojourn-time tail of a multi-tenant open-loop workload.
//!
//! Every cell is a fault model × rate × scheduler triple run over
//! hundreds of independent seeds. Each seed drives one open-loop run on
//! a two-partition runtime whose partition 0 carries the seed's
//! compiled `mcag-faults` schedule as its standing hazard environment
//! (every batch routed there replays it relative to its own launch)
//! while partition 1 is clean — the "one damaged SM domain" scenario.
//! The **oblivious** scheduler steers by partition index and eats the
//! watchdog-censored batches; the **reactive** scheduler reads the same
//! fault telemetry the SM has (the compiled schedule), quarantines the
//! damaged partition, and retries any censored stragglers with backoff.
//! The headline is the pooled per-job p999: reactive must beat
//! oblivious under both the flapping-port and switch-failure models at
//! matched rates — asserted before anything is written.
//!
//! The sweep runs twice, `jobs = 1` then `jobs = 4`, and **asserts the
//! two passes' digests byte-identical** before writing anything. All
//! reported quantities are simulated-time integers, so the full-mode
//! [`BENCH_JSON`] baseline reproduces byte-identically on any host;
//! `recoveryfigs_smoke` is the bounded CI variant writing the
//! gitignored [`BENCH_SMOKE_JSON`].

use crate::data::FigData;
use crate::faultfigs::quantile_ns;
use mcag_exec::par_map;
use mcag_faults::{FaultModel, FaultPlan};
use mcag_runtime::{
    OpMix, PoolConfig, RateProcess, ReactivePolicy, Runtime, RuntimeConfig, RuntimeReport, Workload,
};
use mcag_simnet::{LinkSchedule, Topology};
use mcag_verbs::LinkRate;
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable recovery
/// baseline to (checked in).
pub const BENCH_JSON: &str = "BENCH_recovery.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_recovery_smoke.json";

/// Watchdog grant for every run, in summed-cutoff multiples: tight
/// enough that a censored batch costs bounded simulated time, loose
/// enough that healthy batches never graze it.
pub const SWEEP_WATCHDOG_CUTOFFS: u64 = 8;

/// The failure processes the study compares (the two the acceptance
/// bar names: both must show a reactive p999 win at matched rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFault {
    /// Port up/down duty cycling on a fraction of partition 0's cables.
    Flapping,
    /// Whole switches dark for an outage window covering the batch.
    SwitchFail,
}

impl RecoveryFault {
    /// All kinds, sweep order.
    pub const ALL: [RecoveryFault; 2] = [RecoveryFault::Flapping, RecoveryFault::SwitchFail];

    /// Table/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryFault::Flapping => "flapping",
            RecoveryFault::SwitchFail => "switch",
        }
    }
}

/// One simulation of the sweep: a grid cell plus the seed that draws
/// its victims and its arrival stream.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRun {
    /// Failure process on partition 0.
    pub model: RecoveryFault,
    /// Failure rate (fraction of ports; switch count via ceil).
    pub rate: f64,
    /// Reactive scheduling (steering + quarantine + retry) vs
    /// partition-index-oblivious.
    pub reactive: bool,
    /// Victim-selection and workload seed.
    pub seed: u64,
}

/// Everything about one run that must be identical across worker
/// counts — simulated-time integers only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryDigest {
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs recorded censored (never completed).
    pub censored: u64,
    /// Timed-out jobs re-formed into a later batch (reactive only).
    pub retried: u64,
    /// Retried jobs whose budget ran out (reactive only).
    pub gave_up: u64,
    /// Multicast trees the SM re-routed mid-batch (reactive only).
    pub sm_rebuilds: u64,
    /// Batches that hit the recovery cutoff.
    pub timed_out_batches: u64,
    /// Packet copies lost to down links.
    pub fault_drops: u64,
    /// Virtual time of the last commit (ns).
    pub makespan_ns: u64,
    /// Per-record sojourn (submit → finish/censor), completion order.
    pub latencies_ns: Vec<u64>,
}

fn digest(report: &RuntimeReport) -> RecoveryDigest {
    RecoveryDigest {
        admitted: report.tenants.iter().map(|t| t.submitted).sum(),
        completed: report.completed_jobs() as u64,
        censored: report.timed_out_jobs() as u64,
        retried: report.retry.retried_jobs,
        gave_up: report.retry.gave_up_jobs,
        sm_rebuilds: report.retry.sm_rebuilds,
        timed_out_batches: report.retry.timed_out_batches,
        fault_drops: report.partitions.iter().map(|p| p.fault_drops).sum(),
        makespan_ns: report.makespan_ns,
        latencies_ns: report.jobs.iter().map(|j| j.latency_ns()).collect(),
    }
}

fn sweep_topology() -> Topology {
    Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100)
}

/// Partition 0's standing hazard for one run. Windows are sized against
/// the batch lifetime (healthy batches finish in well under 200 µs, the
/// flap/outage windows span milliseconds), so every batch steered onto
/// the damaged partition launches into active damage.
pub fn hazard_plan(run: &RecoveryRun, topo: &Topology) -> FaultPlan {
    let plan = FaultPlan::new(0xFA01 + run.seed);
    match run.model {
        RecoveryFault::Flapping => plan.with(FaultModel::FlappingPort {
            fraction: run.rate,
            period_ns: 40_000,
            down_ns: 30_000,
            start_ns: 0,
            end_ns: 8_000_000,
        }),
        RecoveryFault::SwitchFail => plan.with(FaultModel::SwitchFailure {
            switches: (run.rate * topo.num_switches() as f64).ceil().max(1.0) as u32,
            start_ns: 2_000,
            downtime_ns: 5_000_000,
        }),
    }
}

/// Run one sweep cell-seed to its digest: two partitions, partition 0
/// damaged, a seeded Poisson multi-tenant stream, oblivious or reactive
/// scheduling over the identical fabric and workload.
pub fn run_one(run: &RecoveryRun) -> RecoveryDigest {
    let topo = sweep_topology();
    let hazard = hazard_plan(run, &topo).compile(&topo);
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(32),
        max_inflight: 4,
        partitions: 2,
        partition_faults: vec![hazard, LinkSchedule::empty()],
        reactive: run.reactive.then(ReactivePolicy::default),
        watchdog_cutoffs: SWEEP_WATCHDOG_CUTOFFS,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(topo, cfg);
    for i in 0..6 {
        rt.register_tenant(&format!("t{i}"));
    }
    let workload = Workload {
        tenants: 6,
        horizon_ns: 600_000 * 12,
        rate: RateProcess::Poisson {
            mean_interarrival_ns: 600_000,
        },
        mix: OpMix {
            allgather_weight: 2,
            broadcast_weight: 1,
            agrs_weight: 1,
            min_send_len: 4 << 10,
            max_send_len: 16 << 10,
            ranks: 8,
        },
        seed: 0x10AD + run.seed,
    };
    rt.load_arrivals(&workload.generate());
    digest(&rt.run_open_loop())
}

/// The sweep grid for `mode`, cell-major (seeds innermost); oblivious
/// and reactive runs of one `(model, rate, seed)` share the identical
/// hazard schedule and arrival stream, so every comparison is paired.
pub fn sweep_runs(mode: &str) -> Vec<RecoveryRun> {
    let (rates, seeds): (&[f64], u64) = if mode == "full" {
        (&[0.1, 0.3], 200)
    } else {
        (&[0.3], 24)
    };
    let mut runs = Vec::new();
    for model in RecoveryFault::ALL {
        for &rate in rates {
            for reactive in [false, true] {
                for seed in 0..seeds {
                    runs.push(RecoveryRun {
                        model,
                        rate,
                        reactive,
                        seed,
                    });
                }
            }
        }
    }
    runs
}

struct Cell {
    model: RecoveryFault,
    rate: f64,
    reactive: bool,
    seeds: usize,
    jobs: u64,
    completed: u64,
    censored: u64,
    retried: u64,
    gave_up: u64,
    sm_rebuilds: u64,
    timed_out_batches: u64,
    fault_drops: u64,
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

fn aggregate(runs: &[RecoveryRun], digests: &[RecoveryDigest]) -> Vec<Cell> {
    let mut keys: Vec<(RecoveryFault, f64, bool)> = Vec::new();
    for r in runs {
        let key = (r.model, r.rate, r.reactive);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys.into_iter()
        .map(|(model, rate, reactive)| {
            let picked: Vec<&RecoveryDigest> = runs
                .iter()
                .zip(digests)
                .filter(|(r, _)| r.model == model && r.rate == rate && r.reactive == reactive)
                .map(|(_, d)| d)
                .collect();
            let mut lat: Vec<u64> = picked
                .iter()
                .flat_map(|d| d.latencies_ns.iter().copied())
                .collect();
            lat.sort_unstable();
            assert!(!lat.is_empty(), "cell produced no job records");
            Cell {
                model,
                rate,
                reactive,
                seeds: picked.len(),
                jobs: lat.len() as u64,
                completed: picked.iter().map(|d| d.completed).sum(),
                censored: picked.iter().map(|d| d.censored).sum(),
                retried: picked.iter().map(|d| d.retried).sum(),
                gave_up: picked.iter().map(|d| d.gave_up).sum(),
                sm_rebuilds: picked.iter().map(|d| d.sm_rebuilds).sum(),
                timed_out_batches: picked.iter().map(|d| d.timed_out_batches).sum(),
                fault_drops: picked.iter().map(|d| d.fault_drops).sum(),
                p50: quantile_ns(&lat, 0.50),
                p99: quantile_ns(&lat, 0.99),
                p999: quantile_ns(&lat, 0.999),
                max: *lat.last().unwrap(),
            }
        })
        .collect()
}

fn recoveryfigs_with(mode: &str) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let runs = sweep_runs(mode);

    // Two passes, jobs = 1 then jobs = 4; digests must be
    // byte-identical (the determinism half of the acceptance bar).
    let mut passes: Vec<(usize, u64)> = Vec::new();
    let mut reference: Option<Vec<RecoveryDigest>> = None;
    for workers in [1usize, 4] {
        let t0 = Instant::now();
        let digests = par_map(workers, &runs, run_one);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        match &reference {
            None => reference = Some(digests),
            Some(base) => assert_eq!(
                base, &digests,
                "jobs=4 produced different recovery-sweep results than jobs=1 — determinism broken"
            ),
        }
        passes.push((workers, wall_ns));
    }
    let digests = reference.expect("at least one pass ran");
    let cells = aggregate(&runs, &digests);

    // The acceptance bar: under both named fault models, at every
    // matched rate, the reactive scheduler's pooled p999 beats the
    // oblivious one's.
    for pair in cells.chunks(2) {
        let [obl, rea] = pair else { unreachable!() };
        assert!(!obl.reactive && rea.reactive, "cell order broken");
        assert!(
            rea.p999 < obl.p999,
            "reactive p999 must beat oblivious under {} @ {}: {} vs {} ns",
            obl.model.label(),
            obl.rate,
            rea.p999,
            obl.p999,
        );
    }

    let mut f = FigData::new(
        "recoveryfigs",
        "Recovery study: oblivious vs reactive scheduling on a damaged partition (sojourn tail)",
        &[
            "model",
            "rate",
            "sched",
            "seeds",
            "jobs",
            "censored",
            "retried",
            "gave up",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "max (us)",
        ],
    );
    for c in &cells {
        f.row(vec![
            c.model.label().to_string(),
            format!("{:.2}", c.rate),
            if c.reactive { "reactive" } else { "oblivious" }.to_string(),
            c.seeds.to_string(),
            c.jobs.to_string(),
            c.censored.to_string(),
            c.retried.to_string(),
            c.gave_up.to_string(),
            format!("{:.1}", c.p50 as f64 / 1e3),
            format!("{:.1}", c.p99 as f64 / 1e3),
            format!("{:.1}", c.p999 as f64 / 1e3),
            format!("{:.1}", c.max as f64 / 1e3),
        ]);
    }
    f.note(format!(
        "mode={mode}; two-partition runtime, partition 0 replays the seed's compiled fault \
         schedule per batch, partition 1 clean; paired seeds — oblivious and reactive runs of a \
         cell share the identical hazard and arrival stream",
    ));
    f.note(
        "oblivious steers by partition index and records watchdog-censored jobs; reactive \
         quarantines the damaged partition on SM fault telemetry and retries censored \
         stragglers with capped exponential backoff",
    );
    f.note(format!(
        "acceptance asserted before writing: reactive p999 < oblivious p999 for every \
         (model, rate) pair; watchdog = {SWEEP_WATCHDOG_CUTOFFS}x summed cutoffs",
    ));
    for (workers, wall_ns) in &passes {
        f.note(format!(
            "pass jobs={workers}: {:.1} ms wall (results asserted identical across passes)",
            *wall_ns as f64 / 1e6
        ));
    }
    f.note(format!(
        "machine-readable recovery baseline written to {json_path}"
    ));

    let json = render_json(mode, &cells);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer). Only
/// simulated-time integers appear, so the file is byte-identical across
/// hosts and repeated runs — CI diffs two smoke passes to enforce it.
fn render_json(mode: &str, cells: &[Cell]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures recoveryfigs\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"topology\": \"fat-tree 8 hosts / 2 leaves / 2 spines CX3_56G\","
    );
    let _ = writeln!(s, "  \"watchdog_cutoffs\": {SWEEP_WATCHDOG_CUTOFFS},");
    let _ = writeln!(
        s,
        "  \"interpretation\": \"one row per (fault model, rate, scheduler) cell; latencies are \
         per-job sojourns (submit to finish, censored jobs carry their censoring instant) pooled \
         over all seeds, percentiles nearest-rank. Oblivious and reactive rows of a pair share \
         identical per-seed hazards and arrival streams. Each cell ran at jobs=1 and jobs=4 and \
         the digests were asserted byte-identical before this file was written.\","
    );
    let _ = writeln!(s, "  \"results_identical\": true,");
    let _ = writeln!(s, "  \"reactive_p999_beats_oblivious\": true,");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"model\": \"{}\", \"rate\": {:.2}, \"scheduler\": \"{}\", \"seeds\": {}, \
             \"jobs\": {}, \"completed\": {}, \"censored\": {}, \"retried\": {}, \
             \"gave_up\": {}, \"sm_rebuilds\": {}, \"timed_out_batches\": {}, \
             \"fault_drops\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {} }}{comma}",
            c.model.label(),
            c.rate,
            if c.reactive { "reactive" } else { "oblivious" },
            c.seeds,
            c.jobs,
            c.completed,
            c.censored,
            c.retried,
            c.gave_up,
            c.sm_rebuilds,
            c.timed_out_batches,
            c.fault_drops,
            c.p50,
            c.p99,
            c.p999,
            c.max,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full recovery study (the recorded baseline): flapping and
/// switch-failure models × two rates × both schedulers, 200 seeds per
/// cell, twice (jobs = 1 and 4).
pub fn recoveryfigs() -> FigData {
    recoveryfigs_with("full")
}

/// Bounded CI smoke: both models at the high rate, 24 seeds per cell;
/// still asserts cross-jobs determinism and the reactive p999 win, and
/// writes [`BENCH_SMOKE_JSON`] (not the checked-in full baseline).
pub fn recoveryfigs_smoke() -> FigData {
    recoveryfigs_with("smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_pair_oblivious_with_reactive() {
        for mode in ["full", "smoke"] {
            let runs = sweep_runs(mode);
            // Every (model, rate, seed) appears exactly once per
            // scheduler, so cell aggregation sees paired halves and the
            // acceptance check can chunk cells two at a time.
            let (obl, rea): (Vec<&RecoveryRun>, Vec<&RecoveryRun>) =
                runs.iter().partition(|r| !r.reactive);
            assert_eq!(obl.len(), rea.len());
            for model in RecoveryFault::ALL {
                assert!(runs.iter().any(|r| r.model == model));
            }
        }
        assert!(sweep_runs("full").len() >= 2 * sweep_runs("smoke").len());
    }

    #[test]
    fn paired_runs_share_hazard_and_differ_only_in_scheduling() {
        let topo = sweep_topology();
        let mk = |reactive| RecoveryRun {
            model: RecoveryFault::SwitchFail,
            rate: 0.3,
            reactive,
            seed: 7,
        };
        let a = hazard_plan(&mk(false), &topo).compile(&topo);
        let b = hazard_plan(&mk(true), &topo).compile(&topo);
        assert_eq!(a.events(), b.events(), "paired hazards must match");
        assert!(!a.is_empty());
    }

    #[test]
    fn single_run_is_deterministic_and_reactive_beats_oblivious() {
        let mk = |reactive| RecoveryRun {
            model: RecoveryFault::SwitchFail,
            rate: 0.3,
            reactive,
            seed: 3,
        };
        let obl = run_one(&mk(false));
        assert_eq!(obl, run_one(&mk(false)));
        let rea = run_one(&mk(true));
        assert!(obl.censored > 0, "oblivious must eat censored jobs");
        assert_eq!(rea.gave_up, 0, "reactive has a clean partition to flee to");
        let max = |d: &RecoveryDigest| d.latencies_ns.iter().copied().max().unwrap();
        assert!(max(&rea) < max(&obl));
    }
}
