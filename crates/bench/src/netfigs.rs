//! Fabric-scale figures on the simulated 188-node UCC testbed:
//! Fig. 10 (critical-path breakdown), Fig. 11 (throughput at scale),
//! Fig. 12 (switch-counter traffic savings), Appendix B (measured
//! concurrent {AG, RS} speedup).
//!
//! Every sweep here is embarrassingly parallel — one self-contained
//! simulation per parameter point — and fans out through
//! [`mcag_exec::par_map`]: pass `jobs > 1` to use several cores, with
//! tables byte-identical to the serial run (slot-ordered outputs,
//! per-sim seeds).

use crate::data::{human_bytes, FigData};
use mcag_baselines::{
    binary_tree_broadcast, knomial_broadcast, pipelined_chain_broadcast, ring_allgather,
    ring_reduce_scatter, run_p2p, run_p2p_concurrent, scatter_allgather_broadcast,
};
use mcag_core::{des, run_concurrent_ag_rs, CollectiveKind, ProtocolConfig};
use mcag_exec::{par_map, par_map_ordered};
use mcag_simnet::{FabricConfig, Topology};
use mcag_verbs::{LinkRate, Mtu, Rank};

/// Coarsen the simulated chunk size for large buffers so event counts
/// stay tractable: target ≤ ~192 chunks per root buffer. Timing stays
/// faithful because large-message collectives are bandwidth-dominated;
/// per-CQE costs matter at small sizes, where the true 4 KiB MTU is used.
pub fn sim_mtu_for(n: usize) -> Mtu {
    let mut m = 4096usize;
    while n / m > 192 && m < (256 << 10) {
        m *= 2;
    }
    Mtu::new(m)
}

/// Segmentation for unicast baselines with the same ≤~192 segment target.
pub fn seg_for(n: usize) -> usize {
    sim_mtu_for(n).bytes()
}

fn mcast_proto(n: usize) -> ProtocolConfig {
    ProtocolConfig {
        mtu: sim_mtu_for(n),
        ..ProtocolConfig::default()
    }
}

/// A scaled-down UCC-style topology for rank sweeps.
fn scaled_topo(p: usize) -> Topology {
    if p <= 16 {
        Topology::single_switch(p, LinkRate::CX3_56G, 300)
    } else {
        let leaves = p.div_ceil(16);
        let spines = (leaves / 2).max(1);
        Topology::fat_tree_two_level(p, leaves, spines, 3, LinkRate::CX3_56G, 300)
    }
}

/// Fig. 10: where the Allgather critical path goes as scale and message
/// size grow. `jobs` bounds the concurrent simulations.
pub fn fig10(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig10",
        "Allgather critical-path breakdown (mean across ranks)",
        &[
            "ranks",
            "message",
            "RNR sync",
            "mcast datapath",
            "final sync",
        ],
    );
    let mut cells = Vec::new();
    for p in [4usize, 16, 64, 188] {
        for n in [16usize << 10, 256 << 10, 4 << 20] {
            cells.push((p, n));
        }
    }
    // Cost skews hard toward the big corner (188 ranks x 4 MiB), so
    // claim largest-first: event count grows with ranks x chunks.
    let timed = par_map_ordered(
        jobs,
        &cells,
        |_, &(p, n)| (p as u64) * (n / sim_mtu_for(n).bytes()).max(1) as u64,
        |&(p, n)| {
            let out = des::run_collective(
                scaled_topo(p),
                FabricConfig::ucc_default(),
                mcast_proto(n),
                CollectiveKind::Allgather,
                n,
            );
            assert!(out.stats.all_done(), "p={p} n={n}");
            let (s, d, fin) = out.mean_breakdown_ns();
            let tot = (s + d + fin).max(1.0);
            vec![
                p.to_string(),
                human_bytes(n as u64),
                format!("{:.1}%", 100.0 * s / tot),
                format!("{:.1}%", 100.0 * d / tot),
                format!("{:.1}%", 100.0 * fin / tot),
            ]
        },
    );
    for t in &timed {
        f.row(t.value.clone());
    }
    f.note("paper: from 16 nodes upward, 99% of progress-path time is the non-blocking multicast datapath for large messages");
    for (&(p, n), t) in cells.iter().zip(&timed) {
        f.job_timing(
            format!("p{}_{}", p, human_bytes(n as u64)),
            t.wall_ns as f64 / 1e6,
        );
    }
    f
}

/// Fig. 11: per-process receive throughput at the full 188-node scale.
/// Each `(message size, algorithm)` cell is an independent simulation,
/// fanned out over `jobs` workers.
pub fn fig11(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig11",
        "188-node per-rank receive throughput (Gbit/s), mean [CV]",
        &[
            "message",
            "bcast mcast",
            "bcast chain(pipe)",
            "bcast scatter-AG",
            "bcast 4-nomial",
            "bcast binary-tree",
            "AG mcast",
            "AG ring",
        ],
    );
    let p = 188u32;
    let root = Rank(0);
    /// One simulation cell of the Fig. 11 grid.
    #[derive(Clone, Copy)]
    enum Algo {
        McastBcast,
        ChainPipe,
        ScatterAg,
        Knomial,
        BinaryTree,
        McastAg,
        Ring,
    }
    const ALGOS: [Algo; 7] = [
        Algo::McastBcast,
        Algo::ChainPipe,
        Algo::ScatterAg,
        Algo::Knomial,
        Algo::BinaryTree,
        Algo::McastAg,
        Algo::Ring,
    ];
    impl Algo {
        fn label(self) -> &'static str {
            match self {
                Algo::McastBcast => "bcast_mcast",
                Algo::ChainPipe => "bcast_chain",
                Algo::ScatterAg => "bcast_scatter_ag",
                Algo::Knomial => "bcast_4nomial",
                Algo::BinaryTree => "bcast_btree",
                Algo::McastAg => "ag_mcast",
                Algo::Ring => "ag_ring",
            }
        }
        /// Relative cost per byte, for largest-first claim order: the
        /// P2P schedules simulate every unicast segment (the pipelined
        /// chain at ~n/512 segments is the worst), the ring moves
        /// (p-1)x the data, multicast sends each chunk once.
        fn weight_factor(self) -> u64 {
            match self {
                Algo::ChainPipe => 8,
                Algo::Ring => 6,
                Algo::ScatterAg => 4,
                Algo::Knomial | Algo::BinaryTree => 2,
                Algo::McastBcast | Algo::McastAg => 1,
            }
        }
    }
    let sizes = [16usize << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let mut cells = Vec::new();
    for &n in &sizes {
        for a in ALGOS {
            cells.push((n, a));
        }
    }
    let rendered = par_map_ordered(
        jobs,
        &cells,
        |_, &(n, algo)| n as u64 * algo.weight_factor(),
        |&(n, algo)| {
            let seg = seg_for(n);
            let cfg = FabricConfig::ucc_default();
            let bcast_gbps = |o: &mcag_baselines::P2POutcome| {
                let v = o.recv_gbps(0, |r| if r == root { 0 } else { n as u64 });
                v.iter().sum::<f64>() / v.len() as f64
            };
            match algo {
                Algo::McastBcast => {
                    let bc = des::run_collective(
                        Topology::ucc_testbed(),
                        cfg,
                        mcast_proto(n),
                        CollectiveKind::Broadcast { root },
                        n,
                    );
                    assert!(bc.stats.all_done());
                    format!("{:.1} [{:.2}]", bc.mean_recv_gbps(), bc.recv_gbps_cv())
                }
                Algo::McastAg => {
                    let ag = des::run_collective(
                        Topology::ucc_testbed(),
                        cfg,
                        mcast_proto(n),
                        CollectiveKind::Allgather,
                        n,
                    );
                    assert!(ag.stats.all_done());
                    format!("{:.1} [{:.2}]", ag.mean_recv_gbps(), ag.recv_gbps_cv())
                }
                Algo::ChainPipe => {
                    // Deep chains need fine segments or the pipeline-fill
                    // latency (depth x segment time) dominates — as in real
                    // NCCL rings.
                    let chain_seg = (n / 512).clamp(4096, 16 << 10);
                    let chain = run_p2p(
                        Topology::ucc_testbed(),
                        cfg,
                        pipelined_chain_broadcast(p, root, n, chain_seg),
                        chain_seg,
                    );
                    format!("{:.1}", bcast_gbps(&chain))
                }
                Algo::ScatterAg => {
                    let sag = run_p2p(
                        Topology::ucc_testbed(),
                        cfg,
                        scatter_allgather_broadcast(p, root, n),
                        seg,
                    );
                    format!("{:.1}", bcast_gbps(&sag))
                }
                Algo::Knomial => {
                    let knom = run_p2p(
                        Topology::ucc_testbed(),
                        cfg,
                        knomial_broadcast(p, root, n, 4),
                        seg,
                    );
                    format!("{:.1}", bcast_gbps(&knom))
                }
                Algo::BinaryTree => {
                    let btree = run_p2p(
                        Topology::ucc_testbed(),
                        cfg,
                        binary_tree_broadcast(p, root, n),
                        seg,
                    );
                    format!("{:.1}", bcast_gbps(&btree))
                }
                Algo::Ring => {
                    let ring = run_p2p(Topology::ucc_testbed(), cfg, ring_allgather(p, n), seg);
                    let v = ring.recv_gbps(0, |_| (n as u64) * (p as u64 - 1));
                    format!("{:.1}", v.iter().sum::<f64>() / v.len() as f64)
                }
            }
        },
    );
    for (i, &n) in sizes.iter().enumerate() {
        let mut row = vec![human_bytes(n as u64)];
        row.extend(
            rendered[i * ALGOS.len()..(i + 1) * ALGOS.len()]
                .iter()
                .map(|t| t.value.clone()),
        );
        f.row(row);
    }
    f.note("paper: mcast Broadcast beats the best P2P scheme by up to 1.3x (our pipelined-chain/scatter-AG baselines bracket UCC's bandwidth-optimized bcast) and binary tree by up to 4.75x");
    f.note("paper: mcast Allgather matches ring at 128-256 KiB (both receive-bound); mcast shows much lower variability (CV)");
    for (&(n, algo), t) in cells.iter().zip(&rendered) {
        f.job_timing(
            format!("{}_{}", algo.label(), human_bytes(n as u64)),
            t.wall_ns as f64 / 1e6,
        );
    }
    f
}

/// Fig. 12: switch port counters across the 18 switches, 64 KiB messages,
/// 10 iterations. Each `(algorithm, iteration)` is an independent
/// simulation, fanned out over `jobs` workers.
pub fn fig12(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig12",
        "Traffic across all 18 switches (port RX+TX counters; 64 KiB, 10 iterations)",
        &[
            "collective",
            "algorithm",
            "switch-port bytes",
            "savings vs P2P",
        ],
    );
    let p = 188u32;
    let n = 64usize << 10;
    let iters = 10usize;
    let root = Rank(0);
    let seg = seg_for(n);

    // One job per (series, iteration): 4 series x `iters` independent
    // simulations, each returning its switch-port byte count. Per-iter
    // seeds match `des::run_iterations` (base seed + iteration).
    #[derive(Clone, Copy)]
    enum Series {
        McastBcast,
        McastAg,
        P2pBcast,
        P2pAg,
    }
    let mut sims = Vec::new();
    for series in [
        Series::McastBcast,
        Series::McastAg,
        Series::P2pBcast,
        Series::P2pAg,
    ] {
        for i in 0..iters {
            sims.push((series, i));
        }
    }
    let bytes = par_map(jobs, &sims, |&(series, i)| {
        let mut cfg = FabricConfig::ucc_default();
        cfg.seed = cfg.seed.wrapping_add(i as u64);
        let topo = Topology::ucc_testbed();
        match series {
            Series::McastBcast => des::run_collective(
                topo,
                cfg,
                mcast_proto(n),
                CollectiveKind::Broadcast { root },
                n,
            )
            .traffic
            .switch_port_rxtx_bytes(&Topology::ucc_testbed()),
            Series::McastAg => {
                des::run_collective(topo, cfg, mcast_proto(n), CollectiveKind::Allgather, n)
                    .traffic
                    .switch_port_rxtx_bytes(&Topology::ucc_testbed())
            }
            Series::P2pBcast => run_p2p(topo, cfg, knomial_broadcast(p, root, n, 4), seg)
                .traffic
                .switch_port_rxtx_bytes(&Topology::ucc_testbed()),
            Series::P2pAg => run_p2p(topo, cfg, ring_allgather(p, n), seg)
                .traffic
                .switch_port_rxtx_bytes(&Topology::ucc_testbed()),
        }
    });
    let series_sum = |s: usize| -> u64 { bytes[s * iters..(s + 1) * iters].iter().sum() };
    let (bc_mc, ag_mc, bc_p2p, ag_p2p) =
        (series_sum(0), series_sum(1), series_sum(2), series_sum(3));

    f.row(vec![
        "Broadcast".into(),
        "mcast (ours)".into(),
        human_bytes(bc_mc),
        format!("{:.2}x", bc_p2p as f64 / bc_mc as f64),
    ]);
    f.row(vec![
        "Broadcast".into(),
        "4-nomial (P2P)".into(),
        human_bytes(bc_p2p),
        "1.00x".into(),
    ]);
    f.row(vec![
        "Allgather".into(),
        "mcast (ours)".into(),
        human_bytes(ag_mc),
        format!("{:.2}x", ag_p2p as f64 / ag_mc as f64),
    ]);
    f.row(vec![
        "Allgather".into(),
        "ring (P2P)".into(),
        human_bytes(ag_p2p),
        "1.00x".into(),
    ]);
    f.note("paper: 1.5x-2x reduction in data movement measured from switch port counters");
    f
}

/// Appendix B: measured speedup of `{AG_mc, RS_inc}` over
/// `{AG_ring, RS_ring}` against the model `S = 2 − 2/P`, one job per
/// rank count.
pub fn appb(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "appb",
        "Concurrent {Allgather, Reduce-Scatter}: measured vs modeled speedup (N = 256 KiB)",
        &[
            "ranks",
            "ring+ring (us)",
            "mcast+INC (us)",
            "speedup",
            "model 2-2/P",
        ],
    );
    let n = 256usize << 10;
    let ps = [4u32, 8, 16, 32];
    let rows = par_map(jobs, &ps, |&p| {
        let topo = || Topology::single_switch(p as usize, LinkRate::CX3_56G, 100);
        let ring = run_p2p_concurrent(
            topo(),
            FabricConfig::ideal(),
            vec![ring_allgather(p, n), ring_reduce_scatter(p, n)],
            seg_for(n),
        );
        assert!(ring.stats.all_done());
        let t_ring = ring.flow_completion_ns(0).max(ring.flow_completion_ns(1));
        let opt = run_concurrent_ag_rs(
            topo(),
            FabricConfig::ideal(),
            ProtocolConfig {
                chains: p,
                mtu: sim_mtu_for(n),
                ..ProtocolConfig::default()
            },
            n,
        );
        assert!(opt.stats.all_done());
        let t_opt = opt.pair_completion_ns();
        vec![
            p.to_string(),
            format!("{:.1}", t_ring as f64 / 1e3),
            format!("{:.1}", t_opt as f64 / 1e3),
            format!("{:.2}", t_ring as f64 / t_opt as f64),
            format!("{:.2}", 2.0 - 2.0 / p as f64),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("the reduction itself happens inside the simulated switches (SHARP-style); both pairs share NIC round-robin arbitration and links");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_mtu_targets_chunk_budget() {
        assert_eq!(sim_mtu_for(64 << 10).bytes(), 4096);
        assert_eq!(sim_mtu_for(1 << 20).bytes(), 8192);
        assert!(sim_mtu_for(64 << 20).bytes() <= 256 << 10);
        for n in [4 << 10, 1 << 20, 8 << 20] {
            let m = sim_mtu_for(n);
            assert!(n / m.bytes() <= 192, "{n}");
        }
    }

    #[test]
    fn fig10_small_scale_smoke() {
        // Full fig10 runs in the binary; smoke-test one cell here.
        let out = des::run_collective(
            scaled_topo(8),
            FabricConfig::ucc_default(),
            mcast_proto(64 << 10),
            CollectiveKind::Allgather,
            64 << 10,
        );
        assert!(out.stats.all_done());
    }

    #[test]
    fn appb_speedup_grows_with_p() {
        let f = appb(2);
        let speedups: Vec<f64> = f
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0] - 0.08),
            "speedup not growing: {speedups:?}"
        );
        let last = *speedups.last().unwrap();
        assert!(last > 1.4, "32-rank speedup only {last}");
    }
}
