//! Analytic figures: Fig. 2 (traffic model), Fig. 3 (node boundary),
//! Fig. 7 (PSN sizing).

use crate::data::{human_bytes, FigData};
use mcag_models::node_boundary::{node_boundary, pair_boundary, Collective};
use mcag_models::sizing::{fig7_sweep, BitmapSizing, DPA_LLC_BYTES, GPU_MEMORY_REFS};
use mcag_models::traffic::{allgather_traffic, AllgatherAlgo};
use mcag_simnet::Topology;
use mcag_verbs::LinkRate;

/// Fig. 2: total link traffic of one Allgather on modeled fat-trees,
/// multicast vs. unicast schedules.
pub fn fig2() -> FigData {
    let mut f = FigData::new(
        "fig2",
        "Theoretical traffic of Allgather algorithms on fat-trees (N = 1 MiB per rank)",
        &[
            "cluster",
            "ranks",
            "algorithm",
            "total link bytes",
            "per-rank send",
            "vs mcast",
        ],
    );
    let n: u64 = 1 << 20;
    let clusters: Vec<(&str, Topology)> = vec![
        (
            "2-level 128h",
            Topology::fat_tree_two_level(128, 8, 4, 1, LinkRate::NDR_400G, 300),
        ),
        (
            "2-level 512h",
            Topology::fat_tree_two_level(512, 32, 16, 1, LinkRate::NDR_400G, 300),
        ),
        (
            "3-level 1024h radix-32",
            Topology::fig2_cluster(LinkRate::NDR_400G),
        ),
    ];
    for (name, topo) in &clusters {
        let p = topo.num_hosts() as u64;
        let mc = allgather_traffic(topo, AllgatherAlgo::Mcast, n);
        let algos: Vec<(&str, AllgatherAlgo)> = if p.is_power_of_two() {
            vec![
                ("mcast (ours)", AllgatherAlgo::Mcast),
                ("ring", AllgatherAlgo::Ring),
                ("recursive-doubling", AllgatherAlgo::RecursiveDoubling),
                ("linear", AllgatherAlgo::Linear),
            ]
        } else {
            vec![
                ("mcast (ours)", AllgatherAlgo::Mcast),
                ("ring", AllgatherAlgo::Ring),
                ("linear", AllgatherAlgo::Linear),
            ]
        };
        for (aname, algo) in algos {
            let t = allgather_traffic(topo, algo, n);
            f.row(vec![
                name.to_string(),
                p.to_string(),
                aname.to_string(),
                human_bytes(t.total_link_bytes),
                human_bytes(t.host_send_bytes / p),
                format!(
                    "{:.2}x",
                    t.total_link_bytes as f64 / mc.total_link_bytes as f64
                ),
            ]);
        }
    }
    f.note("paper: multicast moves every byte over every link once; P2P schedules move ~1.5-2x more through the fabric (Fig. 2/12)");
    f.note("per-rank send volume: N for multicast (constant in P), N*(P-1) for every unicast algorithm (Insight 1)");
    f
}

/// Fig. 3: per-NIC send/receive volumes of {AG, RS} configurations.
pub fn fig3() -> FigData {
    let mut f = FigData::new(
        "fig3",
        "Data movement at the training-node boundary (P = 1024, N = 8 MiB shards)",
        &["configuration", "collective", "NIC send", "NIC recv"],
    );
    let (p, n) = (1024u32, 8u64 << 20);
    let rows: Vec<(&str, &str, Collective)> = vec![
        (
            "{ring, ring}",
            "Allgather (ring)",
            Collective::AllgatherRing,
        ),
        (
            "{ring, ring}",
            "Reduce-Scatter (ring)",
            Collective::ReduceScatterRing,
        ),
        (
            "{mcast, INC}",
            "Allgather (mcast)",
            Collective::AllgatherMcast,
        ),
        (
            "{mcast, INC}",
            "Reduce-Scatter (INC)",
            Collective::ReduceScatterInc,
        ),
    ];
    for (cfg, cname, c) in rows {
        let b = node_boundary(c, p, n);
        f.row(vec![
            cfg.to_string(),
            cname.to_string(),
            human_bytes(b.send_bytes),
            human_bytes(b.recv_bytes),
        ]);
    }
    let rr = pair_boundary(
        Collective::AllgatherRing,
        Collective::ReduceScatterRing,
        p,
        n,
    );
    let opt = pair_boundary(
        Collective::AllgatherMcast,
        Collective::ReduceScatterInc,
        p,
        n,
    );
    f.row(vec![
        "{ring, ring} total".into(),
        "-".into(),
        human_bytes(rr.send_bytes),
        human_bytes(rr.recv_bytes),
    ]);
    f.row(vec![
        "{mcast, INC} total".into(),
        "-".into(),
        human_bytes(opt.send_bytes),
        human_bytes(opt.recv_bytes),
    ]);
    f.note("the bandwidth-optimal pair loads each NIC direction with N*P instead of 2*N*(P-1): the collectives do not share bottlenecks (Insight 2)");
    f
}

/// Fig. 7: receive-buffer and bitmap sizes vs. PSN bits.
pub fn fig7() -> FigData {
    let mut f = FigData::new(
        "fig7",
        "Max Allgather receive buffer and bitmap size vs PSN bits (4 KiB MTU)",
        &[
            "PSN bits",
            "coll-id bits",
            "max recv buffer",
            "bitmap",
            "fits DPA LLC (1.5MB)",
        ],
    );
    for s in fig7_sweep(4096) {
        if s.psn_bits < 16 {
            continue;
        }
        f.row(vec![
            s.psn_bits.to_string(),
            s.coll_bits.to_string(),
            human_bytes(s.max_recv_buffer),
            human_bytes(s.bitmap_bytes),
            if s.fits(DPA_LLC_BYTES) { "yes" } else { "no" }.to_string(),
        ]);
    }
    for (name, mem) in GPU_MEMORY_REFS {
        f.note(format!(
            "device memory reference: {name} = {}",
            human_bytes(*mem)
        ));
    }
    let max = BitmapSizing::new(23, 4096);
    f.note(format!(
        "largest power-of-two fit in the LLC: {} bits -> {} buffer ({} bitmap); \
         filling all 1.5 MB addresses ~51.5 GB as the paper states",
        max.psn_bits,
        human_bytes(max.max_recv_buffer),
        human_bytes(max.bitmap_bytes),
    ));
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_all_clusters_and_sane_ratios() {
        let f = fig2();
        assert!(f.rows.len() >= 9);
        // Every non-mcast row's ratio vs mcast must exceed 1.
        for row in &f.rows {
            if row[2] != "mcast (ours)" {
                let ratio: f64 = row[5].trim_end_matches('x').parse().unwrap();
                assert!(ratio > 1.0, "{row:?}");
            }
        }
    }

    #[test]
    fn fig3_totals_halve() {
        let f = fig3();
        assert_eq!(f.rows.len(), 6);
    }

    #[test]
    fn fig7_covers_default_layout() {
        let f = fig7();
        assert!(f.rows.iter().any(|r| r[0] == "24"));
    }
}
