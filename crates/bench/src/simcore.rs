//! Simulator-core throughput: the perf trajectory of the DES engine.
//!
//! Three scenarios, each run on the timer-wheel engine and (where the
//! baseline is tractable) the reference binary-heap engine:
//!
//! * `event_queue` — a pure schedule/pop churn microbenchmark with an
//!   NIC-like delay mix (mostly sub-4 µs, some cross-level, some
//!   far-future timers).
//! * `allgather_188` — the paper's full 188-node UCC-testbed Allgather,
//!   end to end, measured in engine events per wall-clock second.
//! * `allgather_512_fat_tree` — a 512-node three-level fat-tree
//!   Allgather, the scale that motivated the wheel/slab overhaul.
//!
//! The full generator writes `BENCH_simcore.json` into the working
//! directory with before/after numbers so future perf PRs can diff
//! against this baseline. `simcore_smoke` runs the same shapes at
//! bounded sizes for CI and writes `BENCH_simcore_smoke.json` so it
//! never clobbers the checked-in full-mode baseline.
//!
//! Unlike the sweep generators, these scenarios run **serially even
//! under `figures --jobs N`**: each one measures engine events per
//! *wall-clock* second, and concurrent scenario runs would contend for
//! cores and corrupt the recorded baseline. The parallel executor's own
//! wall-clock trajectory is measured deliberately by the
//! `parallel_scaling` generator (`BENCH_parallel.json`).

use crate::data::FigData;
use crate::netfigs::sim_mtu_for;
use mcag_core::{des, CollectiveKind, ProtocolConfig};
use mcag_simnet::{EventQueue, FabricConfig, QueueBackend, Topology};
use mcag_verbs::LinkRate;
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable baseline to
/// (checked in — the perf trajectory's source of truth).
pub const BENCH_JSON: &str = "BENCH_simcore.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_simcore_smoke.json";

/// Events/sec of the pre-overhaul engine (`BinaryHeap` queue, per-hop
/// boxed packets, deep multicast clones, payload-carrying event enum) on
/// the full-mode `allgather_188` scenario — measured at the commit
/// preceding the DES overhaul, best of four runs on the host that
/// produced the checked-in `BENCH_simcore.json`. This is the "before"
/// anchor of the perf trajectory; the live binary-heap engine run is a
/// weaker baseline because it already benefits from the slab packet
/// path.
///
/// The anchor is host-specific. To re-anchor on another machine, check
/// out the pre-overhaul commit, time `des::run_collective` on the
/// 188-node 256 KiB Allgather there, and export the result as
/// `SIMCORE_PRE_OVERHAUL_EPS` when regenerating the baseline —
/// [`pre_overhaul_anchor_eps`] prefers that override.
pub const PRE_OVERHAUL_AG188_EVENTS_PER_SEC: f64 = 6.9e6;

/// The pre-overhaul anchor in effect: the `SIMCORE_PRE_OVERHAUL_EPS`
/// environment override when set (a locally re-measured anchor),
/// otherwise the recorded [`PRE_OVERHAUL_AG188_EVENTS_PER_SEC`].
pub fn pre_overhaul_anchor_eps() -> f64 {
    std::env::var("SIMCORE_PRE_OVERHAUL_EPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(PRE_OVERHAUL_AG188_EVENTS_PER_SEC)
}

/// Outcome of one scenario on one engine.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Engine that produced this run.
    pub backend: QueueBackend,
    /// Events the engine processed.
    pub events: u64,
    /// Engine throughput in events per wall-clock second.
    pub events_per_sec: f64,
    /// Simulated completion time of the collective (0 for microbenches).
    pub sim_ns: u64,
    /// Peak pending-event count of the queue.
    pub peak_queue_depth: usize,
}

fn backend_name(b: QueueBackend) -> &'static str {
    match b {
        QueueBackend::Wheel => "timer-wheel",
        QueueBackend::Heap => "binary-heap",
    }
}

/// Pure event-queue churn: hold a steady window of pending events and
/// measure schedule+pop pairs per second. The delay mix mirrors a
/// collective run: mostly NIC-serialization-scale delays (near wheel),
/// some in the millisecond range (far wheel), a few cutoff-scale timers
/// (overflow).
pub fn queue_churn_events_per_sec(backend: QueueBackend, ops: u64) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..4096u64 {
        q.schedule_in(next() % 4096, i);
    }
    let t0 = Instant::now();
    for _ in 0..ops {
        let popped = q.pop().expect("steady-state queue drained");
        let r = next();
        let delay = match r % 100 {
            0..=84 => r % 4096,              // NIC/switch hop scale
            85..=97 => 4096 + r % (1 << 22), // cross-level cascades
            _ => (1 << 24) + r % (1 << 28),  // cutoff-timer scale
        };
        q.schedule_in(delay, popped.1);
    }
    let wall = t0.elapsed().as_nanos().max(1) as f64;
    // One op = one pop + one schedule, i.e. one event through the queue.
    ops as f64 * 1e9 / wall
}

/// One end-to-end multicast Allgather on `topo`, returning engine
/// stats. Shared by the JSON generator and the `protocol_hotpath`
/// criterion bench so both measure the identical scenario setup.
pub fn allgather_run(topo: Topology, backend: QueueBackend, send_len: usize) -> EngineRun {
    let mut cfg = FabricConfig::ucc_default();
    cfg.event_queue = backend;
    let proto = ProtocolConfig {
        mtu: sim_mtu_for(send_len),
        ..ProtocolConfig::default()
    };
    let out = des::run_collective(topo, cfg, proto, CollectiveKind::Allgather, send_len);
    assert!(out.stats.all_done(), "simcore scenario did not complete");
    EngineRun {
        backend,
        events: out.stats.events,
        events_per_sec: out.stats.events_per_sec(),
        sim_ns: out.completion_ns(),
        peak_queue_depth: out.stats.peak_queue_depth,
    }
}

struct Scenario {
    name: &'static str,
    runs: Vec<EngineRun>,
    /// Recorded pre-overhaul events/sec, when this exact scenario has a
    /// measured "before" anchor (full-mode `allgather_188` only).
    pre_overhaul: Option<f64>,
}

impl Scenario {
    fn wheel(&self) -> &EngineRun {
        self.runs
            .iter()
            .find(|r| r.backend == QueueBackend::Wheel)
            .expect("every scenario runs the wheel engine")
    }

    fn heap(&self) -> Option<&EngineRun> {
        self.runs.iter().find(|r| r.backend == QueueBackend::Heap)
    }

    /// Wheel throughput over heap throughput (None without a baseline).
    fn speedup(&self) -> Option<f64> {
        self.heap()
            .map(|h| self.wheel().events_per_sec / h.events_per_sec.max(1e-9))
    }
}

fn simcore_with(mode: &str, micro_ops: u64, n188: usize, n512: usize) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let mut scenarios = Vec::new();

    // Microbenchmark: synthesize EngineRun records from the churn loop.
    let mut micro_runs = Vec::new();
    for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
        let eps = queue_churn_events_per_sec(backend, micro_ops);
        assert!(eps > 0.0, "microbench reported zero events/sec");
        micro_runs.push(EngineRun {
            backend,
            events: micro_ops,
            events_per_sec: eps,
            sim_ns: 0,
            peak_queue_depth: 4096,
        });
    }
    scenarios.push(Scenario {
        name: "event_queue",
        runs: micro_runs,
        pre_overhaul: None,
    });

    // The paper's 188-node testbed, both engines (the acceptance metric).
    scenarios.push(Scenario {
        name: "allgather_188",
        runs: vec![
            allgather_run(Topology::ucc_testbed(), QueueBackend::Wheel, n188),
            allgather_run(Topology::ucc_testbed(), QueueBackend::Heap, n188),
        ],
        // The recorded anchor was measured at full-mode sizes only.
        pre_overhaul: (mode == "full").then_some(pre_overhaul_anchor_eps()),
    });

    // 512-node fat-tree: wheel only — the scenario this PR makes
    // tractable; the heap baseline is recorded at 188 nodes.
    scenarios.push(Scenario {
        name: "allgather_512_fat_tree",
        runs: vec![allgather_run(
            Topology::fat_tree_512(LinkRate::NDR_400G),
            QueueBackend::Wheel,
            n512,
        )],
        pre_overhaul: None,
    });

    let mut f = FigData::new(
        "simcore",
        "Simulator-core throughput: timer-wheel engine vs reference binary heap",
        &[
            "scenario",
            "engine",
            "events",
            "events/sec",
            "peak queue",
            "sim time (us)",
            "speedup vs heap",
        ],
    );
    for sc in &scenarios {
        let speedup = sc.speedup();
        for run in &sc.runs {
            assert!(run.events_per_sec > 0.0, "{}: zero events/sec", sc.name);
            let speedup_cell = match (run.backend, speedup) {
                (QueueBackend::Wheel, Some(s)) => format!("{s:.2}x"),
                (QueueBackend::Wheel, None) => "-".into(),
                (QueueBackend::Heap, _) => "1.00x".into(),
            };
            f.row(vec![
                sc.name.into(),
                backend_name(run.backend).into(),
                run.events.to_string(),
                format!("{:.3}M", run.events_per_sec / 1e6),
                run.peak_queue_depth.to_string(),
                format!("{:.1}", run.sim_ns as f64 / 1e3),
                speedup_cell,
            ]);
        }
    }
    f.note(format!(
        "mode={mode}; before = binary-heap engine, after = timer-wheel + slab packet path"
    ));
    if let Some(sc) = scenarios.iter().find(|s| s.pre_overhaul.is_some()) {
        let pre = sc.pre_overhaul.unwrap_or(1.0);
        f.note(format!(
            "{}: recorded pre-overhaul engine (heap + per-hop clones) ran at {:.1}M events/sec \
             on this scenario => {:.2}x end-to-end",
            sc.name,
            pre / 1e6,
            sc.wheel().events_per_sec / pre
        ));
    }
    f.note(format!("machine-readable baseline written to {json_path}"));

    let json = render_json(mode, &scenarios);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer).
fn render_json(mode: &str, scenarios: &[Scenario]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures simcore\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"before_engine\": \"binary-heap\",");
    let _ = writeln!(s, "  \"after_engine\": \"timer-wheel\",");
    let _ = writeln!(
        s,
        "  \"pre_overhaul_anchor\": \"events/sec of the pre-overhaul engine measured once on \
         the baseline recording host; speedup_vs_pre_overhaul is only meaningful for runs on \
         that host — cross-host, compare the engines measured in this same file instead\","
    );
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, sc) in scenarios.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", sc.name);
        let w = sc.wheel();
        let _ = writeln!(s, "      \"events\": {},", w.events);
        let _ = writeln!(s, "      \"sim_time_ns\": {},", w.sim_ns);
        let _ = writeln!(s, "      \"peak_queue_depth\": {},", w.peak_queue_depth);
        let _ = writeln!(
            s,
            "      \"after_events_per_sec\": {:.0},",
            w.events_per_sec
        );
        match sc.heap() {
            Some(h) => {
                let _ = writeln!(
                    s,
                    "      \"before_events_per_sec\": {:.0},",
                    h.events_per_sec
                );
                let _ = writeln!(s, "      \"speedup\": {:.3},", sc.speedup().unwrap_or(0.0));
            }
            None => {
                let _ = writeln!(s, "      \"before_events_per_sec\": null,");
                let _ = writeln!(s, "      \"speedup\": null,");
            }
        }
        match sc.pre_overhaul {
            Some(pre) => {
                let _ = writeln!(s, "      \"pre_overhaul_events_per_sec\": {pre:.0},");
                let _ = writeln!(
                    s,
                    "      \"speedup_vs_pre_overhaul\": {:.3}",
                    w.events_per_sec / pre
                );
            }
            None => {
                let _ = writeln!(s, "      \"pre_overhaul_events_per_sec\": null,");
                let _ = writeln!(s, "      \"speedup_vs_pre_overhaul\": null");
            }
        }
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full simulator-throughput suite (the recorded baseline).
pub fn simcore() -> FigData {
    simcore_with("full", 2_000_000, 256 << 10, 64 << 10)
}

/// Bounded CI smoke: same scenarios, smaller iteration counts and
/// messages; still asserts a nonzero events/sec on every row and writes
/// [`BENCH_SMOKE_JSON`] (not the checked-in full baseline).
pub fn simcore_smoke() -> FigData {
    simcore_with("smoke", 200_000, 32 << 10, 8 << 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_reports_nonzero_on_both_engines() {
        for b in [QueueBackend::Wheel, QueueBackend::Heap] {
            assert!(queue_churn_events_per_sec(b, 20_000) > 0.0, "{b:?}");
        }
    }

    #[test]
    fn small_allgather_reports_engine_stats() {
        let topo = Topology::single_switch(8, LinkRate::CX3_56G, 100);
        let run = allgather_run(topo, QueueBackend::Wheel, 16 << 10);
        assert!(run.events > 0);
        assert!(run.events_per_sec > 0.0);
        assert!(run.peak_queue_depth > 0);
        assert!(run.sim_ns > 0);
    }

    #[test]
    fn json_shape_is_wellformed_enough() {
        let sc = Scenario {
            name: "x",
            runs: vec![
                EngineRun {
                    backend: QueueBackend::Wheel,
                    events: 10,
                    events_per_sec: 5.0,
                    sim_ns: 1,
                    peak_queue_depth: 2,
                },
                EngineRun {
                    backend: QueueBackend::Heap,
                    events: 10,
                    events_per_sec: 2.5,
                    sim_ns: 1,
                    peak_queue_depth: 2,
                },
            ],
            pre_overhaul: Some(1.0),
        };
        let j = render_json("test", &[sc]);
        assert!(j.contains("\"speedup\": 2.000,"));
        assert!(j.contains("\"before_events_per_sec\": 2,"));
        assert!(j.contains("\"speedup_vs_pre_overhaul\": 5.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
