//! DPA-testbed figures: Fig. 5 (CPU vs DPA), Table I, Figs. 13–16.
//!
//! The thread-count and message-size sweeps are independent cycle-level
//! simulations and fan out through [`mcag_exec::par_map`]; tables are
//! byte-identical for every `jobs` value.

use crate::data::FigData;
use mcag_dpa::{run_datapath, ArrivalModel, DpaSpec, Kernel, KernelKind};
use mcag_exec::par_map;

const LINK: ArrivalModel = ArrivalModel::LinkRate {
    gbps: 200.0,
    header_bytes: 64,
};
/// Payload ceiling of a 200 Gbit/s link at 4 KiB chunks + 64 B headers.
fn payload_ceiling(chunk: usize) -> f64 {
    200.0 * chunk as f64 / (chunk as f64 + 64.0)
}

/// Steady-state chunk count for throughput measurements.
const CHUNKS: u64 = 40_000;

/// Fig. 5: single-threaded CPU datapaths vs one multithreaded DPA core,
/// across message sizes. `jobs` bounds the concurrent simulations.
pub fn fig5(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig5",
        "Receive throughput vs message size: 1 CPU core vs 1 DPA core (200 Gbit/s link)",
        &[
            "message",
            "cpu ucx-ud (Gbit/s)",
            "cpu rc-custom (Gbit/s)",
            "dpa ud 16thr (Gbit/s)",
        ],
    );
    let cpu = DpaSpec::host_cpu();
    let dpa = DpaSpec::bf3();
    let ucx = Kernel::new(KernelKind::CpuUdUcx);
    let rc = Kernel::new(KernelKind::CpuRcCustom);
    let ud = Kernel::new(KernelKind::DpaUd);
    // Per-message control overhead (rendezvous handshake for the CPU
    // stacks, kernel activation for DPA).
    let cpu_msg_ovh_ns = 2_000.0;
    let dpa_msg_ovh_ns = 1_000.0;
    let pows = [14usize, 16, 18, 20, 21, 22, 23];
    let rows = par_map(jobs, &pows, |&pow| {
        let n = 1usize << pow;
        let chunks = (n / 4096).max(1) as u64;
        let tput = |spec: &DpaSpec, k: &Kernel, threads: u32, ovh: f64| {
            let m = run_datapath(spec, k, threads, 4096, chunks, LINK);
            n as f64 * 8.0 / (m.wall_ns + ovh)
        };
        vec![
            crate::data::human_bytes(n as u64),
            format!("{:.1}", tput(&cpu, &ucx, 1, cpu_msg_ovh_ns)),
            format!("{:.1}", tput(&cpu, &rc, 1, cpu_msg_ovh_ns)),
            format!("{:.1}", tput(&dpa, &ud, 16, dpa_msg_ovh_ns)),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("paper: one CPU core sustains ~1/2-2/3 of 200G even without software reliability; a single 16-thread DPA core reaches line rate");
    f.note(format!(
        "payload ceiling at 4 KiB chunks: {:.1} Gbit/s",
        payload_ceiling(4096)
    ));
    f
}

/// Table I: single-thread datapath metrics.
pub fn table1() -> FigData {
    let mut f = FigData::new(
        "table1",
        "DPA single-thread performance (8 MiB receive buffer, 4 KiB chunks)",
        &[
            "datapath",
            "throughput (GiB/s)",
            "instructions/CQE",
            "cycles/CQE",
            "IPC",
            "paper (GiB/s, I/CQE, cyc/CQE, IPC)",
        ],
    );
    let spec = DpaSpec::bf3();
    for (kind, paper) in [
        (KernelKind::DpaUc, "11.9, 66, 598, 0.11"),
        (KernelKind::DpaUd, "5.2, 113, 1084, 0.10"),
    ] {
        let k = Kernel::new(kind);
        let m = run_datapath(&spec, &k, 1, 4096, CHUNKS, ArrivalModel::Saturated);
        f.row(vec![
            format!("{kind:?}"),
            format!("{:.1}", m.gib_per_s),
            format!("{:.0}", m.instr_per_cqe),
            format!("{:.0}", m.cycles_per_cqe),
            format!("{:.2}", m.ipc),
            paper.to_string(),
        ]);
    }
    f.note("both datapaths are load/store bound (IPC ~ 0.1): exactly the latency the DPA's hardware multithreading exists to hide");
    f
}

/// Fig. 13: absolute throughput vs DPA threads (8 MiB buffers, 4 KiB
/// chunks), with the single CPU core as reference. `jobs` bounds the
/// concurrent simulations.
pub fn fig13(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig13",
        "Throughput scaling with DPA threads (8 MiB receive buffer, 4 KiB chunks)",
        &["threads", "ud (GiB/s)", "uc (GiB/s)"],
    );
    let spec = DpaSpec::bf3();
    let ud = Kernel::new(KernelKind::DpaUd);
    let uc = Kernel::new(KernelKind::DpaUc);
    let threads = [1u32, 2, 4, 8, 12, 16];
    let rows = par_map(jobs, &threads, |&t| {
        let mu = run_datapath(&spec, &ud, t, 4096, CHUNKS, LINK);
        let mc = run_datapath(&spec, &uc, t, 4096, CHUNKS, LINK);
        vec![
            t.to_string(),
            format!("{:.1}", mu.gib_per_s),
            format!("{:.1}", mc.gib_per_s),
        ]
    });
    for row in rows {
        f.row(row);
    }
    let cpu = run_datapath(
        &DpaSpec::host_cpu(),
        &Kernel::new(KernelKind::CpuRcCustom),
        1,
        4096,
        CHUNKS,
        LINK,
    );
    f.row(vec![
        "1 x86 core".into(),
        format!("{:.1}", cpu.gib_per_s),
        "-".into(),
    ]);
    f.note("paper: UC saturates with 4 threads, UD with 8-16; one DPA core (16 threads) outperforms the CPU core by ~25%+");
    f
}

/// Fig. 14: the same scaling normalized to the 200 Gbit/s peak. `jobs`
/// bounds the concurrent simulations.
pub fn fig14(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig14",
        "DPA throughput as fraction of 200 Gbit/s peak (4 KiB chunks)",
        &["threads", "ud", "uc"],
    );
    let spec = DpaSpec::bf3();
    let ud = Kernel::new(KernelKind::DpaUd);
    let uc = Kernel::new(KernelKind::DpaUc);
    let threads = [1u32, 2, 4, 8, 16];
    let rows = par_map(jobs, &threads, |&t| {
        let mu = run_datapath(&spec, &ud, t, 4096, CHUNKS, LINK);
        let mc = run_datapath(&spec, &uc, t, 4096, CHUNKS, LINK);
        vec![
            t.to_string(),
            format!("{:.2}", mu.goodput_gbps / 200.0),
            format!("{:.2}", mc.goodput_gbps / 200.0),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("paper: with 1/256 of DPA capacity the datapaths reach 1/2 (UC) and 1/5 (UD) of peak");
    f
}

/// Fig. 15: UC multi-packet chunk sizes (8 MiB buffer). `jobs` bounds
/// the concurrent simulations.
pub fn fig15(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig15",
        "UC transport throughput with multi-packet chunks (8 MiB buffer)",
        &[
            "chunk",
            "1 thread (Gbit/s)",
            "2 threads (Gbit/s)",
            "4 threads (Gbit/s)",
        ],
    );
    let spec = DpaSpec::bf3();
    let uc = Kernel::new(KernelKind::DpaUc);
    let chunk_kibs = [4usize, 8, 16, 32, 64];
    let rows = par_map(jobs, &chunk_kibs, |&chunk_kib| {
        let chunk = chunk_kib << 10;
        let chunks = ((8usize << 20) / chunk).max(1) as u64 * 16;
        let arrival = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64 * (chunk / 4096).max(1), // headers per MTU packet
        };
        let mut cells = vec![format!("{}KiB", chunk_kib)];
        for t in [1u32, 2, 4] {
            let m = run_datapath(&spec, &uc, t, chunk, chunks, arrival);
            cells.push(format!("{:.1}", m.goodput_gbps));
        }
        cells
    });
    for row in rows {
        f.row(row);
    }
    f.note("paper: with larger chunks the CQE rate falls and fewer threads sustain line rate — multi-packet UC multicast is the low-overhead endpoint");
    f
}

/// Fig. 16: sustained 64 B chunk processing rate toward Tbit/s links.
/// `jobs` bounds the concurrent simulations.
pub fn fig16(jobs: usize) -> FigData {
    let mut f = FigData::new(
        "fig16",
        "Sustained chunk rate with 64 B chunks (saturated queues)",
        &[
            "threads",
            "ud (Mchunks/s)",
            "uc (Mchunks/s)",
            "1.6 Tbit/s needs",
        ],
    );
    let spec = DpaSpec::bf3();
    let ud = Kernel::new(KernelKind::DpaUd);
    let uc = Kernel::new(KernelKind::DpaUc);
    let need = 1.6e12 / 8.0 / 4096.0 / 1e6; // Mchunks/s at 4 KiB MTU
    let threads = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let rows = par_map(jobs, &threads, |&t| {
        let chunks = 4_000 * t as u64;
        let mu = run_datapath(&spec, &ud, t, 64, chunks, ArrivalModel::Saturated);
        let mc = run_datapath(&spec, &uc, t, 64, chunks, ArrivalModel::Saturated);
        vec![
            t.to_string(),
            format!("{:.1}", mu.chunks_per_sec / 1e6),
            format!("{:.1}", mc.chunks_per_sec / 1e6),
            format!("{:.1}M/s", need),
        ]
    });
    for row in rows {
        f.row(row);
    }
    f.note("paper: 128 threads (half the DPA) sustain the 1.6 Tbit/s-equivalent arrival rate of ~48.8 M chunks/s");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_close_to_paper() {
        let f = table1();
        assert_eq!(f.rows.len(), 2);
        let uc_gib: f64 = f.rows[0][1].parse().unwrap();
        let ud_gib: f64 = f.rows[1][1].parse().unwrap();
        assert!((uc_gib - 11.9).abs() < 1.2, "UC {uc_gib}");
        assert!((ud_gib - 5.2).abs() < 0.6, "UD {ud_gib}");
    }

    #[test]
    fn fig13_final_rows_saturate() {
        let f = fig13(2);
        let last_dpa = &f.rows[f.rows.len() - 2];
        let ud16: f64 = last_dpa[1].parse().unwrap();
        assert!(ud16 > 21.0, "UD@16thr = {ud16} GiB/s");
    }

    #[test]
    fn fig16_hits_tbit_rate() {
        let f = fig16(2);
        let last = f.rows.last().unwrap();
        let ud: f64 = last[1].parse().unwrap();
        let uc: f64 = last[2].parse().unwrap();
        assert!(ud >= 48.8 && uc >= 48.8, "ud {ud} uc {uc}");
    }
}
