//! Latency-vs-offered-load study of the open-loop multi-tenant runtime
//! (`mcag-runtime`, beyond the paper's figures): the experiment the
//! closed-loop `runtime_multitenant` sweep cannot run, because a
//! pre-filled queue has no notion of *offered* load.
//!
//! Every cell is one open-loop run: a seeded Poisson (or bursty
//! modulated) arrival stream over an NCCL-style op/size mix, driven
//! through the resource-driven scheduler with cross-batch pipelining
//! across two fabric partitions. The grid covers four questions:
//!
//! * **knee** — arrival rate swept ×0.25…×8 around the service capacity:
//!   sojourn time (queue + service) is flat below the knee and explodes
//!   past it, the classic open-loop saturation curve;
//! * **scale** — tenant count swept to 1024+ mostly-idle tenants (the
//!   indexed scheduler keeps wave formation O(ready tenants));
//! * **cap** — group-pool capacity vs sojourn at fixed rate (SM rebuild
//!   churn as a service-time inflation);
//! * **pipe / shed** — partitions 1 vs 2 at the same overload (the
//!   cross-batch pipelining payoff), and the sojourn-EWMA admission
//!   throttle off vs on at sustained overload (shedding arrivals keeps
//!   the p99 of *admitted* jobs bounded).
//!
//! The sweep runs twice, `jobs = 1` then `jobs = 4`, and **asserts the
//! two passes' digests byte-identical** before writing anything. All
//! reported quantities are simulated-time integers (the arrival
//! generators use a local bit-exact logarithm, never libm), so the
//! full-mode [`BENCH_JSON`] baseline reproduces byte-identically on any
//! host; `loadfigs_smoke` is the bounded CI variant writing the
//! gitignored [`BENCH_SMOKE_JSON`].

use crate::data::FigData;
use mcag_exec::par_map;
use mcag_runtime::{
    AdmissionPolicy, OpMix, PoolConfig, RatePhase, RateProcess, Runtime, RuntimeConfig,
    RuntimeReport, Workload,
};
use mcag_simnet::Topology;
use mcag_verbs::LinkRate;
use std::fmt::Write as _;
use std::time::Instant;

/// File the full-mode generator writes its machine-readable
/// latency-vs-load baseline to (checked in).
pub const BENCH_JSON: &str = "BENCH_load.json";

/// File the bounded CI smoke writes instead, so a smoke run never
/// clobbers the checked-in full-mode baseline.
pub const BENCH_SMOKE_JSON: &str = "BENCH_load_smoke.json";

/// The "1×" mean interarrival gap (ns) the knee sweep is anchored on,
/// chosen so the sweep's ×0.25…×8 rate multipliers straddle the service
/// capacity of the 4-rank / 2-partition reference cell.
pub const BASE_INTERARRIVAL_NS: u64 = 40_000;

/// NCCL-style op/size mix every cell offers: AG-heavy with broadcast
/// and fused AG+RS minorities over an 8–32 KiB power-of-two ladder.
const MIX: OpMix = OpMix {
    allgather_weight: 2,
    broadcast_weight: 1,
    agrs_weight: 1,
    min_send_len: 8 << 10,
    max_send_len: 32 << 10,
    ranks: 4,
};

/// One open-loop scenario of the load grid.
#[derive(Debug, Clone)]
pub struct LoadCell {
    /// Row label (`knee_x2`, `scale_t1024`, …).
    pub label: String,
    /// Registered tenants (arrivals spread uniformly).
    pub tenants: u32,
    /// Group-pool capacity.
    pub capacity: usize,
    /// Fabric partitions (cross-batch pipelining width).
    pub partitions: usize,
    /// Mean interarrival gap (ns).
    pub mean_interarrival_ns: u64,
    /// Bursty modulated rate (×4 / ÷4 phases) instead of plain Poisson.
    pub burst: bool,
    /// Arrivals targeted over the horizon (`horizon = mean × target`).
    pub arrivals_target: u64,
    /// Sojourn-EWMA admission throttle, if enabled.
    pub throttle_sojourn_ns: Option<u64>,
    /// Workload seed.
    pub seed: u64,
}

/// Everything about one cell's run that must be identical across worker
/// counts — simulated-time integers only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadDigest {
    /// Submission attempts (the offered load).
    pub offered: u64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Refusals, all reasons.
    pub rejected: u64,
    /// Refusals by the sojourn-EWMA throttle.
    pub throttled: u64,
    /// Refusals by queue depth (global + per-tenant).
    pub queue_limited: u64,
    /// Batches committed.
    pub batches: u64,
    /// Virtual time of the last completion (ns).
    pub makespan_ns: u64,
    /// Mean sojourn (queue + service) over completed jobs (ns).
    pub mean_sojourn_ns: u64,
    /// Nearest-rank p50 sojourn (ns).
    pub p50_sojourn_ns: u64,
    /// Nearest-rank p99 sojourn (ns).
    pub p99_sojourn_ns: u64,
    /// Mean partition occupancy, permille.
    pub util_permille: u64,
    /// Group-pool hits.
    pub pool_hits: u64,
    /// Group-pool rebuilds (LRU churn).
    pub pool_rebuilds: u64,
}

fn digest(report: &RuntimeReport) -> LoadDigest {
    let completed = report.completed_jobs() as u64;
    let sojourn_sum: u64 = report.jobs.iter().map(|j| j.latency_ns()).sum();
    LoadDigest {
        offered: report.offered_jobs,
        admitted: report.tenants.iter().map(|t| t.submitted).sum(),
        completed,
        rejected: report.rejects.total(),
        throttled: report.rejects.throttled,
        queue_limited: report.rejects.queue_full + report.rejects.tenant_quota,
        batches: report.batches,
        makespan_ns: report.makespan_ns,
        mean_sojourn_ns: sojourn_sum.checked_div(completed).unwrap_or(0),
        p50_sojourn_ns: report.sojourn_percentile_ns(0.50),
        p99_sojourn_ns: report.sojourn_percentile_ns(0.99),
        util_permille: (report.utilization() * 1000.0).round() as u64,
        pool_hits: report.pool.hits,
        pool_rebuilds: report.pool.rebuilds,
    }
}

/// Run one cell: build the runtime, generate and load the seeded
/// arrival stream, drive the open-loop engine, digest the report.
pub fn run_cell(cell: &LoadCell) -> LoadDigest {
    let cfg = RuntimeConfig {
        pool: PoolConfig::with_capacity(cell.capacity),
        admission: AdmissionPolicy {
            throttle_sojourn_ns: cell.throttle_sojourn_ns,
            ..AdmissionPolicy::default()
        },
        max_inflight: 8,
        partitions: cell.partitions,
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(Topology::single_switch(4, LinkRate::CX3_56G, 100), cfg);
    for i in 0..cell.tenants {
        rt.register_tenant(&format!("t{i}"));
    }
    let mean = cell.mean_interarrival_ns;
    let rate = if cell.burst {
        // Diurnal-style duty cycle: 50-gap bursts at 4× the rate
        // alternating with 50-gap lulls at ¼ — same average rate.
        RateProcess::Modulated {
            phases: vec![
                RatePhase {
                    len_ns: 50 * mean,
                    mean_interarrival_ns: (mean / 4).max(1),
                },
                RatePhase {
                    len_ns: 50 * mean,
                    mean_interarrival_ns: mean * 4,
                },
            ],
        }
    } else {
        RateProcess::Poisson {
            mean_interarrival_ns: mean,
        }
    };
    let workload = Workload {
        tenants: cell.tenants,
        horizon_ns: mean * cell.arrivals_target,
        rate,
        mix: MIX,
        seed: cell.seed,
    };
    rt.load_arrivals(&workload.generate());
    digest(&rt.run_open_loop())
}

/// The load grid for `mode`, in row order.
pub fn load_cells(mode: &str) -> Vec<LoadCell> {
    let full = mode == "full";
    let target: u64 = if full { 400 } else { 100 };
    let mut cells = Vec::new();
    let mut seed = 40u64;
    let mut push = |label: String,
                    tenants: u32,
                    capacity: usize,
                    partitions: usize,
                    mean: u64,
                    burst: bool,
                    arrivals_target: u64,
                    throttle: Option<u64>| {
        seed += 1;
        cells.push(LoadCell {
            label,
            tenants,
            capacity,
            partitions,
            mean_interarrival_ns: mean,
            burst,
            arrivals_target,
            throttle_sojourn_ns: throttle,
            seed,
        });
    };

    // Saturation knee: offered rate × {0.25 … 8} around the base rate
    // (rate ×k ⇔ interarrival ÷k).
    let b = BASE_INTERARRIVAL_NS;
    let knee: &[(u64, &str)] = if full {
        &[
            (b * 4, "x0.25"),
            (b * 2, "x0.5"),
            (b, "x1"),
            (b / 2, "x2"),
            (b / 4, "x4"),
            (b / 8, "x8"),
        ]
    } else {
        &[(b * 2, "x0.5"), (b / 2, "x2"), (b / 8, "x8")]
    };
    for &(mean, name) in knee {
        push(format!("knee_{name}"), 16, 32, 2, mean, false, target, None);
    }

    // Tenant scaling: mostly-idle tenants, ~1 arrival each; the ≥1000
    // cell runs in the smoke budget (indexed-queue acceptance).
    let scales: &[u32] = if full { &[64, 256, 1024] } else { &[1024] };
    for &t in scales {
        push(
            format!("scale_t{t}"),
            t,
            64,
            2,
            BASE_INTERARRIVAL_NS,
            false,
            t as u64,
            None,
        );
    }

    // Pool capacity at fixed 1× rate: rebuild churn inflates service.
    if full {
        for cap in [8usize, 16, 64] {
            push(
                format!("cap_{cap}"),
                16,
                cap,
                2,
                BASE_INTERARRIVAL_NS,
                false,
                target,
                None,
            );
        }
        // Bursty modulated arrivals at 1× average rate.
        push(
            "burst_x1".to_string(),
            16,
            32,
            2,
            BASE_INTERARRIVAL_NS,
            true,
            target,
            None,
        );
    }

    // Cross-batch pipelining: same ×2 overload, 1 vs 2 partitions.
    for parts in [1usize, 2] {
        push(
            format!("pipe_p{parts}"),
            16,
            32,
            parts,
            BASE_INTERARRIVAL_NS / 2,
            false,
            target,
            None,
        );
    }

    // Admission throttling at ×4 overload: shed vs queue. The window is
    // stretched (vs the knee cells) so the overload is *sustained* —
    // the sojourn EWMA only climbs as late jobs commit, so a short
    // burst would end before the throttle could react.
    let shed_target = target * if full { 2 } else { 4 };
    for (label, throttle) in [("shed_off", None), ("shed_on", Some(300_000u64))] {
        push(
            label.to_string(),
            16,
            32,
            2,
            BASE_INTERARRIVAL_NS / 4,
            false,
            shed_target,
            throttle,
        );
    }
    cells
}

fn loadfigs_with(mode: &str) -> FigData {
    let json_path = if mode == "full" {
        BENCH_JSON
    } else {
        BENCH_SMOKE_JSON
    };
    let cells = load_cells(mode);

    // Two passes, jobs = 1 then jobs = 4; digests must be
    // byte-identical (the determinism half of the acceptance bar).
    let mut passes: Vec<(usize, u64)> = Vec::new();
    let mut reference: Option<Vec<LoadDigest>> = None;
    for workers in [1usize, 4] {
        let t0 = Instant::now();
        let digests = par_map(workers, &cells, run_cell);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        match &reference {
            None => reference = Some(digests),
            Some(base) => assert_eq!(
                base, &digests,
                "jobs=4 produced different load-sweep results than jobs=1 — determinism broken"
            ),
        }
        passes.push((workers, wall_ns));
    }
    let digests = reference.expect("at least one pass ran");

    // Self-checks on the curve shapes the study exists to show.
    let by_label = |l: &str| {
        cells
            .iter()
            .zip(&digests)
            .find(|(c, _)| c.label == l)
            .map(|(_, d)| *d)
            .expect("cell present")
    };
    let knee_lo = by_label(if mode == "full" {
        "knee_x0.25"
    } else {
        "knee_x0.5"
    });
    let knee_hi = by_label("knee_x8");
    assert!(
        knee_hi.p50_sojourn_ns > 4 * knee_lo.p50_sojourn_ns.max(1),
        "no saturation knee: p50 {} ns below vs {} ns past the knee",
        knee_lo.p50_sojourn_ns,
        knee_hi.p50_sojourn_ns
    );
    let (pipe1, pipe2) = (by_label("pipe_p1"), by_label("pipe_p2"));
    assert!(
        pipe2.p99_sojourn_ns < pipe1.p99_sojourn_ns,
        "cross-batch pipelining must cut the overload tail: p99 {} vs {}",
        pipe2.p99_sojourn_ns,
        pipe1.p99_sojourn_ns
    );
    let (shed_off, shed_on) = (by_label("shed_off"), by_label("shed_on"));
    assert!(shed_on.throttled > 0, "throttle never fired at ×4 overload");
    assert!(
        shed_on.p99_sojourn_ns < shed_off.p99_sojourn_ns,
        "shedding must bound the admitted-job tail: p99 {} vs {}",
        shed_on.p99_sojourn_ns,
        shed_off.p99_sojourn_ns
    );

    let mut f = FigData::new(
        "loadfigs",
        "Open-loop load study: sojourn vs offered rate x tenants x pool capacity (4 ranks, NCCL-style mix)",
        &[
            "cell",
            "tenants",
            "cap",
            "parts",
            "rate (j/ms)",
            "offered",
            "done",
            "shed",
            "p50 (us)",
            "p99 (us)",
            "util",
            "makespan (ms)",
        ],
    );
    for (c, d) in cells.iter().zip(&digests) {
        f.row(vec![
            c.label.clone(),
            c.tenants.to_string(),
            c.capacity.to_string(),
            c.partitions.to_string(),
            format!("{:.1}", 1e6 / c.mean_interarrival_ns as f64),
            d.offered.to_string(),
            d.completed.to_string(),
            format!("{} ({} thr)", d.rejected, d.throttled),
            format!("{:.1}", d.p50_sojourn_ns as f64 / 1e3),
            format!("{:.1}", d.p99_sojourn_ns as f64 / 1e3),
            format!("{:.1}%", d.util_permille as f64 / 10.0),
            format!("{:.2}", d.makespan_ns as f64 / 1e6),
        ]);
    }
    f.note(format!(
        "mode={mode}; open-loop Poisson/modulated arrivals over an 8-32 KiB AG/bcast/AG+RS mix \
         on a 4-rank star; resource-driven batching pipelines disjoint-group batches across \
         fabric partitions, commits in virtual-time order",
    ));
    f.note(
        "knee_* sweeps offered rate past the service capacity: p50/p99 sojourn is flat below \
         the knee and explodes past it; shed_on bounds the admitted-job tail by refusing \
         arrivals (Throttled) while shed_off queues them",
    );
    for (workers, wall_ns) in &passes {
        f.note(format!(
            "pass jobs={workers}: {:.1} ms wall (results asserted identical across passes)",
            *wall_ns as f64 / 1e6
        ));
    }
    f.note(format!(
        "machine-readable load baseline written to {json_path}"
    ));

    let json = render_json(mode, &cells, &digests);
    if let Err(e) = std::fs::write(json_path, &json) {
        f.note(format!("could not write {json_path}: {e}"));
    }
    f
}

/// Hand-rolled JSON (the offline serde shim has no serializer). Only
/// simulated-time integers appear, so the file is byte-identical across
/// hosts and repeated runs — CI asserts exactly that.
fn render_json(mode: &str, cells: &[LoadCell], digests: &[LoadDigest]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"generator\": \"figures loadfigs\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"topology\": \"star-4 CX3_56G\",");
    let _ = writeln!(
        s,
        "  \"mix\": \"AG:2 bcast:1 AG+RS:1 over 8-32 KiB power-of-two ladder\","
    );
    let _ = writeln!(s, "  \"base_interarrival_ns\": {BASE_INTERARRIVAL_NS},");
    let _ = writeln!(
        s,
        "  \"interpretation\": \"one row per open-loop cell; sojourn = queue + service on the \
         virtual clock, percentiles nearest-rank over completed jobs. Each cell ran at jobs=1 \
         and jobs=4 and the digests were asserted byte-identical before this file was written; \
         arrival streams use a local bit-exact logarithm (no libm), so the file reproduces \
         byte-identically on any host.\","
    );
    let _ = writeln!(s, "  \"results_identical\": true,");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, (c, d)) in cells.iter().zip(digests).enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"cell\": \"{}\", \"tenants\": {}, \"capacity\": {}, \"partitions\": {}, \
             \"mean_interarrival_ns\": {}, \"burst\": {}, \"throttle_sojourn_ns\": {}, \
             \"offered\": {}, \"admitted\": {}, \"completed\": {}, \"rejected\": {}, \
             \"throttled\": {}, \"queue_limited\": {}, \"batches\": {}, \"makespan_ns\": {}, \
             \"mean_sojourn_ns\": {}, \"p50_sojourn_ns\": {}, \"p99_sojourn_ns\": {}, \
             \"utilization_permille\": {}, \"pool_hits\": {}, \"pool_rebuilds\": {} }}{comma}",
            c.label,
            c.tenants,
            c.capacity,
            c.partitions,
            c.mean_interarrival_ns,
            c.burst,
            c.throttle_sojourn_ns.unwrap_or(0),
            d.offered,
            d.admitted,
            d.completed,
            d.rejected,
            d.throttled,
            d.queue_limited,
            d.batches,
            d.makespan_ns,
            d.mean_sojourn_ns,
            d.p50_sojourn_ns,
            d.p99_sojourn_ns,
            d.util_permille,
            d.pool_hits,
            d.pool_rebuilds,
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Full load study (the recorded baseline): knee, tenant-scaling,
/// capacity, burst, pipelining, and shedding cells, twice (jobs = 1
/// and 4).
pub fn loadfigs() -> FigData {
    loadfigs_with("full")
}

/// Bounded CI smoke: three knee points, the 1024-tenant cell, the
/// pipelining pair, and the shedding pair; still asserts cross-jobs
/// determinism and writes [`BENCH_SMOKE_JSON`] (not the checked-in
/// full baseline).
pub fn loadfigs_smoke() -> FigData {
    loadfigs_with("smoke")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_acceptance_axes() {
        let full = load_cells("full");
        let smoke = load_cells("smoke");
        // ≥1000-tenant cell in BOTH budgets, knee sweep spanning ≥16×
        // in rate, throttle on/off pair, partitions 1 vs 2 pair.
        for cells in [&full, &smoke] {
            assert!(cells.iter().any(|c| c.tenants >= 1000));
            assert!(cells.iter().any(|c| c.throttle_sojourn_ns.is_some()));
            assert!(cells.iter().any(|c| c.partitions == 1));
            assert!(cells.iter().any(|c| c.partitions == 2));
            let rates: Vec<u64> = cells
                .iter()
                .filter(|c| c.label.starts_with("knee_"))
                .map(|c| c.mean_interarrival_ns)
                .collect();
            let (lo, hi) = (*rates.iter().min().unwrap(), *rates.iter().max().unwrap());
            assert!(hi / lo >= 16, "knee span {hi}/{lo}");
        }
        assert!(full.iter().any(|c| c.burst));
        // Seeds are distinct (independent streams per cell).
        let mut seeds: Vec<u64> = full.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), full.len());
    }

    #[test]
    fn cells_are_deterministic() {
        let cell = LoadCell {
            label: "probe".into(),
            tenants: 8,
            capacity: 16,
            partitions: 2,
            mean_interarrival_ns: 50_000,
            burst: false,
            arrivals_target: 24,
            throttle_sojourn_ns: None,
            seed: 7,
        };
        let a = run_cell(&cell);
        let b = run_cell(&cell);
        assert_eq!(a, b);
        assert!(a.completed > 0);
        assert!(a.offered >= a.completed);
        assert!(a.util_permille <= 1000);
    }
}
