//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` open directly) plus a dependency-free JSON
//! validator for round-trip tests.
//!
//! Layout of the exported document:
//!
//! * **pid 1 "fabric links"** — one track (tid) per directed link;
//!   `Inject`/`Egress` busy intervals as complete (`"X"`) slices, drops
//!   and fault transitions as instants (`"i"`).
//! * **pid 2 "engine"** — `Deliver` instants per rank and the sampled
//!   event-queue depth as a counter (`"C"`) series.
//! * **pid 3 "scheduler"** — one track per fabric partition; batch
//!   lifecycle slices.
//! * **pid 4 "tenants"** — one track per tenant; job execution slices,
//!   with flow arrows (`"s"`/`"f"`) from submit to dispatch so queueing
//!   is visible, and admission-reject instants.
//!
//! Timestamps are simulated nanoseconds rendered as microseconds with
//! integer math (`ns/1000 . ns%1000`), so the export is byte-identical
//! across hosts.

use crate::event::TraceEvent;
use crate::span::RuntimeTrace;

/// Optional display names for the export. Indexes are link / tenant ids;
/// anything beyond the provided names falls back to a numeric label.
#[derive(Debug, Clone, Default)]
pub struct ChromeOptions {
    /// `link_names[link]` labels that link's track.
    pub link_names: Vec<String>,
    /// `tenant_names[tenant]` labels that tenant's track.
    pub tenant_names: Vec<String>,
}

/// Simulated nanoseconds as a Chrome `ts`/`dur` microsecond value,
/// integer math only (`123456` ns → `"123.456"`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const PID_FABRIC: u32 = 1;
const PID_ENGINE: u32 = 2;
const PID_SCHED: u32 = 3;
const PID_TENANTS: u32 = 4;

/// Render a [`RuntimeTrace`] as a Chrome trace-event JSON document.
/// Open the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`.
pub fn export_chrome(trace: &RuntimeTrace, opts: &ChromeOptions) -> String {
    let mut evs: Vec<String> = Vec::new();
    for (pid, name) in [
        (PID_FABRIC, "fabric links"),
        (PID_ENGINE, "engine"),
        (PID_SCHED, "scheduler"),
        (PID_TENANTS, "tenants"),
    ] {
        evs.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":"{name}"}}}}"#
        ));
    }
    for (link, name) in opts.link_names.iter().enumerate() {
        evs.push(format!(
            r#"{{"ph":"M","pid":{PID_FABRIC},"tid":{link},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            esc(name)
        ));
    }
    for (tenant, name) in opts.tenant_names.iter().enumerate() {
        evs.push(format!(
            r#"{{"ph":"M","pid":{PID_TENANTS},"tid":{tenant},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            esc(name)
        ));
    }

    for ev in &trace.fabric {
        match *ev {
            TraceEvent::Inject {
                start_ns,
                ser_ns,
                link,
                src,
                bytes,
            } => evs.push(format!(
                r#"{{"ph":"X","pid":{PID_FABRIC},"tid":{link},"ts":{},"dur":{},"name":"inject r{src}","args":{{"bytes":{bytes}}}}}"#,
                us(start_ns),
                us(ser_ns)
            )),
            TraceEvent::Egress {
                start_ns,
                ser_ns,
                link,
                bytes,
            } => evs.push(format!(
                r#"{{"ph":"X","pid":{PID_FABRIC},"tid":{link},"ts":{},"dur":{},"name":"tx","args":{{"bytes":{bytes}}}}}"#,
                us(start_ns),
                us(ser_ns)
            )),
            TraceEvent::Deliver {
                at_ns,
                rank,
                qp,
                bytes,
            } => evs.push(format!(
                r#"{{"ph":"i","pid":{PID_ENGINE},"tid":{rank},"ts":{},"s":"t","name":"deliver","args":{{"qp":{qp},"bytes":{bytes}}}}}"#,
                us(at_ns)
            )),
            TraceEvent::Drop { at_ns, link, cause } => evs.push(format!(
                r#"{{"ph":"i","pid":{PID_FABRIC},"tid":{link},"ts":{},"s":"t","name":"drop:{}"}}"#,
                us(at_ns),
                cause.label()
            )),
            TraceEvent::Fault { at_ns, link, up } => evs.push(format!(
                r#"{{"ph":"i","pid":{PID_FABRIC},"tid":{link},"ts":{},"s":"t","name":"{}"}}"#,
                us(at_ns),
                if up { "fault-up" } else { "fault-down" }
            )),
            TraceEvent::QueueDepth { at_ns, depth } => evs.push(format!(
                r#"{{"ph":"C","pid":{PID_ENGINE},"tid":0,"ts":{},"name":"queue-depth","args":{{"depth":{depth}}}}}"#,
                us(at_ns)
            )),
        }
    }

    for b in &trace.batches {
        evs.push(format!(
            r#"{{"ph":"X","pid":{PID_SCHED},"tid":{},"ts":{},"dur":{},"name":"batch {}","args":{{"jobs":{},"setup_ns":{}}}}}"#,
            b.partition,
            us(b.start_ns),
            us(b.end_ns.saturating_sub(b.start_ns)),
            b.batch,
            b.jobs,
            b.setup_ns
        ));
    }

    for j in &trace.jobs {
        evs.push(format!(
            r#"{{"ph":"X","pid":{PID_TENANTS},"tid":{},"ts":{},"dur":{},"name":"job {}","args":{{"batch":{},"partition":{},"pool_hits":{},"pool_builds":{},"pool_rebuilds":{}}}}}"#,
            j.tenant,
            us(j.started_ns),
            us(j.finished_ns.saturating_sub(j.started_ns)),
            j.job,
            j.batch,
            j.partition,
            j.pool_hits,
            j.pool_builds,
            j.pool_rebuilds
        ));
        // Flow arrow submit → dispatch: queueing made visible.
        evs.push(format!(
            r#"{{"ph":"s","pid":{PID_TENANTS},"tid":{},"ts":{},"cat":"job","id":{},"name":"sojourn"}}"#,
            j.tenant,
            us(j.submitted_ns),
            j.job
        ));
        evs.push(format!(
            r#"{{"ph":"f","bp":"e","pid":{PID_TENANTS},"tid":{},"ts":{},"cat":"job","id":{},"name":"sojourn"}}"#,
            j.tenant,
            us(j.started_ns),
            j.job
        ));
    }

    for m in &trace.markers {
        let tid = if m.tenant == u32::MAX { 0 } else { m.tenant };
        // Retry markers are recovery actions, not admission decisions.
        let name = if m.reason == "job-retry" {
            "job-retry".to_string()
        } else {
            format!("reject:{}", esc(m.reason))
        };
        evs.push(format!(
            r#"{{"ph":"i","pid":{PID_TENANTS},"tid":{tid},"ts":{},"s":"t","name":"{name}"}}"#,
            us(m.at_ns)
        ));
    }

    for r in &trace.rebuilds {
        evs.push(format!(
            r#"{{"ph":"i","pid":{PID_SCHED},"tid":{},"ts":{},"s":"p","name":"sm-rebuild","args":{{"batch":{},"groups":{}}}}}"#,
            r.partition,
            us(r.at_ns),
            r.batch,
            r.groups
        ));
    }

    let mut out = String::with_capacity(evs.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&evs.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Validate that `s` is one well-formed JSON value (the whole string,
/// modulo surrounding whitespace). Dependency-free recursive-descent
/// check used by the round-trip tests and the smoke generator.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at offset {pos}")),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b[pos..].starts_with(lit) {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> (usize, bool) {
        let s = p;
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        (p, p > s)
    };
    let (p, ok) = digits(b, pos);
    if !ok {
        return Err(format!("bad number at offset {start}"));
    }
    pos = p;
    if b.get(pos) == Some(&b'.') {
        let (p, ok) = digits(b, pos + 1);
        if !ok {
            return Err(format!("bad fraction at offset {pos}"));
        }
        pos = p;
    }
    if matches!(b.get(pos), Some(b'e') | Some(b'E')) {
        let mut p = pos + 1;
        if matches!(b.get(p), Some(b'+') | Some(b'-')) {
            p += 1;
        }
        let (p, ok) = digits(b, p);
        if !ok {
            return Err(format!("bad exponent at offset {pos}"));
        }
        pos = p;
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'"');
    pos += 1;
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                match b.get(pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                    Some(b'u') => {
                        let hex = b
                            .get(pos + 2..pos + 6)
                            .ok_or_else(|| format!("short \\u escape at offset {pos}"))?;
                        if !hex.iter().all(|c| c.is_ascii_hexdigit()) {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        pos += 6;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                };
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'{');
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'[');
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropCause;
    use crate::span::{BatchSpan, JobSpan, Marker, RebuildSpan};

    fn sample_trace() -> RuntimeTrace {
        let mut tr = RuntimeTrace::from_fabric(
            vec![
                TraceEvent::Inject {
                    start_ns: 1000,
                    ser_ns: 512,
                    link: 0,
                    src: 3,
                    bytes: 4096,
                },
                TraceEvent::Egress {
                    start_ns: 1512,
                    ser_ns: 512,
                    link: 7,
                    bytes: 4096,
                },
                TraceEvent::Deliver {
                    at_ns: 2500,
                    rank: 5,
                    qp: 1,
                    bytes: 4096,
                },
                TraceEvent::Drop {
                    at_ns: 2600,
                    link: 7,
                    cause: DropCause::Rnr,
                },
                TraceEvent::Fault {
                    at_ns: 3000,
                    link: 7,
                    up: false,
                },
                TraceEvent::QueueDepth {
                    at_ns: 3100,
                    depth: 42,
                },
            ],
            2,
        );
        tr.batches.push(BatchSpan {
            batch: 0,
            partition: 1,
            jobs: 2,
            start_ns: 500,
            setup_ns: 200,
            end_ns: 4000,
        });
        tr.jobs.push(JobSpan {
            job: 0,
            tenant: 2,
            partition: 1,
            batch: 0,
            submitted_ns: 100,
            started_ns: 500,
            finished_ns: 3900,
            pool_hits: 1,
            pool_builds: 1,
            pool_rebuilds: 0,
        });
        tr.markers.push(Marker {
            at_ns: 4100,
            tenant: 0,
            reason: "throttled",
        });
        tr.markers.push(Marker {
            at_ns: 4200,
            tenant: 1,
            reason: "job-retry",
        });
        tr.rebuilds.push(RebuildSpan {
            at_ns: 4300,
            partition: 1,
            batch: 0,
            groups: 3,
        });
        tr
    }

    #[test]
    fn export_round_trips_through_validator() {
        let opts = ChromeOptions {
            link_names: vec!["h0.up".into()],
            tenant_names: vec!["t0".into(), "t1".into(), "t\"2\"".into()],
        };
        let doc = export_chrome(&sample_trace(), &opts);
        validate_json(&doc).expect("export must be valid JSON");
        assert!(doc.contains(r#""ts":1.000"#), "integer-µs inject ts");
        assert!(doc.contains("queue-depth"));
        assert!(doc.contains("reject:throttled"));
        assert!(doc.contains(r#""name":"job-retry""#), "retry marker");
        assert!(!doc.contains("reject:job-retry"), "retries are not rejects");
        assert!(doc.contains(r#""name":"sm-rebuild""#));
        assert!(doc.contains(r#""groups":3"#));
        assert!(doc.contains(r#"t\"2\""#), "names are escaped");
    }

    #[test]
    fn export_is_deterministic() {
        let opts = ChromeOptions::default();
        assert_eq!(
            export_chrome(&sample_trace(), &opts),
            export_chrome(&sample_trace(), &opts)
        );
    }

    #[test]
    fn microsecond_formatting_is_integer_math() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(123_456), "123.456");
        assert_eq!(us(1_000_000_007), "1000000.007");
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            r#"{"a":[1,2.5,-3e4,true,false,null,"s\"xA"]}"#,
            " { \"k\" : { } } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "{'a':1}",
            "[01x]",
            "\"unterminated",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
