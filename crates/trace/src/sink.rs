//! The flight recorder: a bounded ring buffer of trace events.

use crate::event::TraceEvent;
use serde::{Deserialize, Serialize};

/// Plain-data trace configuration.
///
/// This is what rides on `FabricConfig`/`RuntimeConfig` (keeping their
/// `Clone + PartialEq + Serialize` derives); the fabric allocates the
/// live [`TraceSink`] from it when a run starts, exactly as the fault
/// layer only allocates per-link state when its schedule is non-empty.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Ring capacity in events. Memory is flat at
    /// `capacity × size_of::<TraceEvent>()` (≤ 32 B/event); overflow
    /// overwrites the oldest events and counts them as dropped.
    pub capacity: usize,
    /// Sample the engine's pending-event count every this many processed
    /// events (`0` disables depth sampling).
    pub queue_sample_every: u64,
}

impl TraceSpec {
    /// Default ring capacity (64 Ki events ≈ 2 MiB).
    pub const DEFAULT_CAPACITY: usize = 64 << 10;

    /// Default queue-depth sample period.
    pub const DEFAULT_SAMPLE_EVERY: u64 = 1024;

    /// Spec with an explicit ring capacity and the default sample period.
    pub fn with_capacity(capacity: usize) -> TraceSpec {
        assert!(capacity >= 1, "trace ring needs at least one slot");
        TraceSpec {
            capacity,
            queue_sample_every: Self::DEFAULT_SAMPLE_EVERY,
        }
    }
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

/// The flight recorder: events sink into a fixed ring; when it wraps,
/// the oldest events are overwritten (the recorder keeps the most recent
/// window, as a flight recorder does) and the loss is counted — memory
/// stays flat no matter how long the run is, and results are never
/// perturbed because recording only ever appends to this buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSink {
    spec: TraceSpec,
    ring: Vec<TraceEvent>,
    /// Oldest slot once the ring is full (also the next write position).
    head: usize,
    /// Events offered over the sink's lifetime.
    offered: u64,
}

impl TraceSink {
    /// Fresh recorder for `spec`.
    pub fn new(spec: TraceSpec) -> TraceSink {
        assert!(spec.capacity >= 1, "trace ring needs at least one slot");
        // The ring grows lazily up to capacity: short runs never touch
        // most of a large allocation, long runs amortize it away.
        TraceSink {
            ring: Vec::with_capacity(spec.capacity.min(1024)),
            spec,
            head: 0,
            offered: 0,
        }
    }

    /// The spec this sink was allocated from.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// Record one event (ring write + counter bump).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.offered += 1;
        if self.ring.len() < self.spec.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head += 1;
            if self.head == self.spec.capacity {
                self.head = 0;
            }
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything was dropped —
    /// impossible, the ring keeps the newest events).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events offered over the sink's lifetime.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events lost to ring overflow (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.offered - self.ring.len() as u64
    }

    /// Events in record order (oldest kept event first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.ring.split_at(self.head.min(self.ring.len()));
        older.iter().chain(newer.iter())
    }

    /// Consume the sink: `(events in record order, dropped count)`.
    pub fn into_ordered(mut self) -> (Vec<TraceEvent>, u64) {
        let dropped = self.dropped();
        if self.head > 0 && self.ring.len() == self.spec.capacity {
            self.ring.rotate_left(self.head);
        }
        (self.ring, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth(at_ns: u64) -> TraceEvent {
        TraceEvent::QueueDepth { at_ns, depth: 0 }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let mut s = TraceSink::new(TraceSpec::with_capacity(8));
        for t in 0..5 {
            s.record(depth(t));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.dropped(), 0);
        let (evs, dropped) = s.into_ordered();
        assert_eq!(dropped, 0);
        let times: Vec<u64> = evs.iter().map(|e| e.at_ns()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let mut s = TraceSink::new(TraceSpec::with_capacity(4));
        for t in 0..10 {
            s.record(depth(t));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.offered(), 10);
        assert_eq!(s.dropped(), 6);
        let iter_times: Vec<u64> = s.iter().map(|e| e.at_ns()).collect();
        assert_eq!(iter_times, vec![6, 7, 8, 9], "newest window, in order");
        let (evs, dropped) = s.into_ordered();
        assert_eq!(dropped, 6);
        let times: Vec<u64> = evs.iter().map(|e| e.at_ns()).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn exact_capacity_drops_nothing() {
        let mut s = TraceSink::new(TraceSpec::with_capacity(3));
        for t in 0..3 {
            s.record(depth(t));
        }
        assert_eq!(s.dropped(), 0);
        let (evs, _) = s.into_ordered();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        TraceSpec::with_capacity(0);
    }
}
