//! Runtime spans: the scheduler's side of the trace.
//!
//! The fabric records packet-level events; the runtime records *spans* —
//! batch lifecycles and per-job sojourns on the virtual clock — plus
//! instant markers for admission rejects and throttling. Spans are
//! low-volume (one per batch/job, not per packet), so they live in plain
//! `Vec`s with no ring bound.

use crate::event::TraceEvent;

/// One batch's lifecycle on the virtual clock: formed/dispatched at
/// `start_ns`, subnet-manager group programming until
/// `start_ns + setup_ns`, fabric run to quiescence at `end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpan {
    /// Batch index (formation order).
    pub batch: u64,
    /// Fabric partition (SM domain) the batch occupied.
    pub partition: u32,
    /// Jobs dispatched in the batch.
    pub jobs: u32,
    /// Virtual dispatch time.
    pub start_ns: u64,
    /// SM group programming time charged before data flew.
    pub setup_ns: u64,
    /// Virtual completion (quiescence) time.
    pub end_ns: u64,
}

/// One job's sojourn: submit → start (batch dispatch) → complete, with
/// the attribution the scheduler already tracks per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpan {
    /// Job id (admission order).
    pub job: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Fabric partition the job ran on.
    pub partition: u32,
    /// Batch that carried it.
    pub batch: u64,
    /// Admission time on the virtual clock.
    pub submitted_ns: u64,
    /// Batch dispatch time (queueing ends here).
    pub started_ns: u64,
    /// Completion time (slot completion on the virtual clock).
    pub finished_ns: u64,
    /// Multicast groups reused from the pool.
    pub pool_hits: u32,
    /// Groups freshly built (SM programming paid).
    pub pool_builds: u32,
    /// Groups rebuilt after eviction.
    pub pool_rebuilds: u32,
}

impl JobSpan {
    /// Submit-to-complete time.
    pub fn sojourn_ns(&self) -> u64 {
        self.finished_ns - self.submitted_ns
    }

    /// Time spent queued before the batch dispatched.
    pub fn queue_ns(&self) -> u64 {
        self.started_ns - self.submitted_ns
    }
}

/// One subnet-manager recovery action: mid-batch, dead switches were
/// diagnosed and `groups` multicast trees were re-routed around them
/// (rebuild cost charged on the virtual clock by the scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildSpan {
    /// Virtual time the rebuild was charged at (batch dispatch time).
    pub at_ns: u64,
    /// Fabric partition (SM domain) the rebuild happened in.
    pub partition: u32,
    /// Batch whose run triggered the diagnosis.
    pub batch: u64,
    /// Multicast groups re-routed.
    pub groups: u32,
}

/// Instant marker: an admission decision that refused work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// When the arrival was refused.
    pub at_ns: u64,
    /// Tenant whose arrival was refused (`u32::MAX` when unknown).
    pub tenant: u32,
    /// Short reject reason ("throttled", "queue-full", …) — throttle
    /// markers are the `"throttled"` ones.
    pub reason: &'static str,
}

/// The merged trace of one run: fabric packet events on the virtual
/// clock plus scheduler spans and markers.
///
/// The runtime appends each batch's harvested fabric events (shifted by
/// the batch's dispatch time) and spans **in commit order**, which is
/// deterministic for every worker count; [`RuntimeTrace::normalize`]
/// then stable-sorts fabric events by timestamp, so the final document
/// is in virtual-time order and byte-identical at any `jobs`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeTrace {
    /// Packet-lifecycle events on the virtual clock.
    pub fabric: Vec<TraceEvent>,
    /// Fabric events lost to per-batch ring overflow, summed.
    pub fabric_dropped: u64,
    /// One span per committed batch, in commit order.
    pub batches: Vec<BatchSpan>,
    /// One span per completed job, in commit order.
    pub jobs: Vec<JobSpan>,
    /// Admission reject/throttle markers, in decision order. Reactive
    /// runs also append `"job-retry"` markers here when a timed-out job
    /// is re-formed into a later batch.
    pub markers: Vec<Marker>,
    /// SM tree-rebuild actions, in commit order.
    pub rebuilds: Vec<RebuildSpan>,
}

impl RuntimeTrace {
    /// Wrap a single fabric's harvested sink output (no runtime spans) —
    /// the shape a standalone `run_collective` trace takes.
    pub fn from_fabric(events: Vec<TraceEvent>, dropped: u64) -> RuntimeTrace {
        RuntimeTrace {
            fabric: events,
            fabric_dropped: dropped,
            ..RuntimeTrace::default()
        }
    }

    /// Append one batch's fabric events, shifting its local clock (every
    /// batch fabric starts at 0) onto the virtual timeline.
    pub fn absorb_fabric(&mut self, events: Vec<TraceEvent>, dropped: u64, offset_ns: u64) {
        self.fabric_dropped += dropped;
        self.fabric
            .extend(events.into_iter().map(|e| e.shifted(offset_ns)));
    }

    /// Stable-sort fabric events into virtual-time order. Commit order
    /// is deterministic, so the stable sort is too.
    pub fn normalize(&mut self) {
        self.fabric.sort_by_key(TraceEvent::at_ns);
    }

    /// The job with the largest sojourn (ties: earliest submit, then
    /// lowest id — fully deterministic).
    pub fn longest_job(&self) -> Option<&JobSpan> {
        self.jobs
            .iter()
            .max_by_key(|j| (j.sojourn_ns(), std::cmp::Reverse((j.submitted_ns, j.job))))
    }

    /// Virtual-time horizon covered by the trace (latest span end or
    /// fabric event).
    pub fn horizon_ns(&self) -> u64 {
        let spans = self.batches.iter().map(|b| b.end_ns);
        let jobs = self.jobs.iter().map(|j| j.finished_ns);
        let fabric = self.fabric.iter().map(TraceEvent::at_ns);
        spans.chain(jobs).chain(fabric).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submitted: u64, finished: u64) -> JobSpan {
        JobSpan {
            job: id,
            tenant: 0,
            partition: 0,
            batch: 0,
            submitted_ns: submitted,
            started_ns: submitted,
            finished_ns: finished,
            pool_hits: 0,
            pool_builds: 0,
            pool_rebuilds: 0,
        }
    }

    #[test]
    fn absorb_shifts_and_counts() {
        let mut tr = RuntimeTrace::default();
        tr.absorb_fabric(
            vec![TraceEvent::QueueDepth {
                at_ns: 10,
                depth: 1,
            }],
            3,
            1000,
        );
        tr.absorb_fabric(vec![TraceEvent::QueueDepth { at_ns: 5, depth: 2 }], 0, 500);
        assert_eq!(tr.fabric_dropped, 3);
        tr.normalize();
        let times: Vec<u64> = tr.fabric.iter().map(TraceEvent::at_ns).collect();
        assert_eq!(times, vec![505, 1010]);
        assert_eq!(tr.horizon_ns(), 1010);
    }

    #[test]
    fn longest_job_breaks_ties_deterministically() {
        let mut tr = RuntimeTrace {
            jobs: vec![job(0, 0, 50), job(1, 10, 60), job(2, 20, 70)],
            ..RuntimeTrace::default()
        };
        // All sojourns are 50; the earliest submit (lowest id) wins.
        assert_eq!(tr.longest_job().unwrap().job, 0);
        tr.jobs.push(job(3, 0, 90));
        assert_eq!(tr.longest_job().unwrap().job, 3);
    }
}
