//! Link-utilization timelines: per-link busy fraction over fixed windows.
//!
//! The compact, byte-stable companion to the Chrome export: instead of
//! one track entry per packet, each link gets one integer permille per
//! time window. This is what the bench baselines digest and what the
//! `figures` summaries print.

use crate::event::TraceEvent;

/// Per-link busy-time accounting over fixed windows of simulated time.
///
/// Built from the `Inject`/`Egress` events' busy intervals
/// (`[start_ns, start_ns + ser_ns)`); everything is integer math on
/// simulated nanoseconds, so the same events produce the same timeline
/// on every host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkTimeline {
    window_ns: u64,
    windows: usize,
    /// `busy_permille[link][window]` ∈ 0..=1000.
    busy_permille: Vec<Vec<u16>>,
    /// Total busy nanoseconds per link (clipped to the horizon).
    busy_ns: Vec<u64>,
}

impl LinkTimeline {
    /// Build a timeline over `num_links` directed links, bucketing busy
    /// intervals into `window_ns`-wide windows up to `horizon_ns`
    /// (intervals past the horizon are clipped). `window_ns == 0` or an
    /// empty horizon yields a zero-window timeline.
    pub fn build(
        events: &[TraceEvent],
        num_links: usize,
        window_ns: u64,
        horizon_ns: u64,
    ) -> LinkTimeline {
        let windows = if window_ns == 0 {
            0
        } else {
            (horizon_ns.div_ceil(window_ns)) as usize
        };
        let mut busy = vec![vec![0u64; windows]; num_links];
        let mut busy_ns = vec![0u64; num_links];
        for ev in events {
            let (start, ser, link) = match *ev {
                TraceEvent::Inject {
                    start_ns,
                    ser_ns,
                    link,
                    ..
                }
                | TraceEvent::Egress {
                    start_ns,
                    ser_ns,
                    link,
                    ..
                } => (start_ns, ser_ns, link as usize),
                _ => continue,
            };
            if link >= num_links {
                continue;
            }
            let end = (start + ser).min(horizon_ns);
            if end <= start {
                continue;
            }
            busy_ns[link] += end - start;
            if windows == 0 {
                continue;
            }
            // Spread the interval over every window it overlaps.
            let mut at = start;
            while at < end {
                let w = (at / window_ns) as usize;
                let w_end = ((w as u64 + 1) * window_ns).min(end);
                busy[link][w] += w_end - at;
                at = w_end;
            }
        }
        let busy_permille = busy
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|ns| ((ns * 1000) / window_ns.max(1)).min(1000) as u16)
                    .collect()
            })
            .collect();
        LinkTimeline {
            window_ns,
            windows,
            busy_permille,
            busy_ns,
        }
    }

    /// Window width in simulated nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of windows per link.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.busy_permille.len()
    }

    /// Busy permille per window for one link.
    pub fn link(&self, link: usize) -> &[u16] {
        &self.busy_permille[link]
    }

    /// Total busy nanoseconds per link (horizon-clipped).
    pub fn busy_ns(&self) -> &[u64] {
        &self.busy_ns
    }

    /// The `n` busiest links as `(link, busy_ns)`, busiest first; ties
    /// break toward the lower link index so the order is deterministic.
    pub fn busiest(&self, n: usize) -> Vec<(usize, u64)> {
        let mut ranked: Vec<(usize, u64)> = self
            .busy_ns
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, ns)| ns > 0)
            .collect();
        ranked.sort_by_key(|&(link, ns)| (std::cmp::Reverse(ns), link));
        ranked.truncate(n);
        ranked
    }

    /// FNV-1a digest over the full permille matrix plus per-link busy
    /// totals — one u64 that changes when any cell does. Used by the
    /// bench baselines to pin the timeline without checking in the
    /// whole matrix.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.window_ns);
        eat(self.windows as u64);
        for row in &self.busy_permille {
            for &cell in row {
                eat(cell as u64);
            }
        }
        for &ns in &self.busy_ns {
            eat(ns);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn egress(start_ns: u64, ser_ns: u64, link: u32) -> TraceEvent {
        TraceEvent::Egress {
            start_ns,
            ser_ns,
            link,
            bytes: 64,
        }
    }

    #[test]
    fn buckets_split_across_windows() {
        // One 150 ns interval on link 0 starting at 50: windows of 100 ns
        // see 50 ns then 100 ns busy.
        let evs = [egress(50, 150, 0)];
        let tl = LinkTimeline::build(&evs, 2, 100, 300);
        assert_eq!(tl.windows(), 3);
        assert_eq!(tl.link(0), &[500, 1000, 0]);
        assert_eq!(tl.link(1), &[0, 0, 0]);
        assert_eq!(tl.busy_ns(), &[150, 0]);
    }

    #[test]
    fn horizon_clips_and_busiest_ranks() {
        let evs = [egress(0, 100, 0), egress(0, 400, 1), egress(0, 50, 2)];
        let tl = LinkTimeline::build(&evs, 3, 100, 200);
        // Link 1's interval is clipped to the 200 ns horizon.
        assert_eq!(tl.busy_ns(), &[100, 200, 50]);
        assert_eq!(tl.busiest(2), vec![(1, 200), (0, 100)]);
    }

    #[test]
    fn busiest_breaks_ties_by_link_index() {
        let evs = [egress(0, 100, 3), egress(0, 100, 1)];
        let tl = LinkTimeline::build(&evs, 4, 100, 100);
        assert_eq!(tl.busiest(4), vec![(1, 100), (3, 100)]);
    }

    #[test]
    fn digest_tracks_content() {
        let a = LinkTimeline::build(&[egress(0, 100, 0)], 2, 100, 200);
        let b = LinkTimeline::build(&[egress(0, 100, 0)], 2, 100, 200);
        let c = LinkTimeline::build(&[egress(0, 101, 0)], 2, 100, 200);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn zero_window_keeps_totals_only() {
        let tl = LinkTimeline::build(&[egress(0, 100, 0)], 1, 0, 200);
        assert_eq!(tl.windows(), 0);
        assert_eq!(tl.busy_ns(), &[100]);
    }
}
