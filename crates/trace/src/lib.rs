//! # mcag-trace — the flight recorder
//!
//! Time-resolved observability for the DES fabric and the multi-tenant
//! runtime: every other crate reports end-of-run aggregates
//! (`TrafficReport`, `RuntimeReport`); this one records *when* things
//! happened on the simulated clock, so a p999 stall or an idle multicast
//! tree can be seen rather than inferred — the time-resolved view behind
//! the paper's Fig. 10–12 arguments about link occupancy and pipeline
//! overlap.
//!
//! The crate sits **below** the simulator in the dependency graph: events
//! carry raw link/rank/tenant ids (`u32`) and simulated nanoseconds
//! (`u64`), never simulator types, so `mcag-simnet`, `mcag-core`,
//! `mcag-runtime`, and `mcag-bench` can all depend on it without cycles.
//!
//! ## Pieces
//!
//! * [`TraceSpec`] — plain-data configuration (ring capacity, queue-depth
//!   sample period) that lives on `FabricConfig`/`RuntimeConfig`; configs
//!   keep their `Clone + PartialEq + Serialize` derives because the live
//!   recorder never touches them.
//! * [`TraceSink`] — the flight recorder proper: a bounded ring buffer of
//!   [`TraceEvent`]s with a drop counter. Memory is flat at
//!   `capacity × size_of::<TraceEvent>()`; overflow overwrites the oldest
//!   events (a flight recorder keeps the most recent window) and counts
//!   what it lost. Recording never perturbs simulation results.
//! * [`RuntimeTrace`] — merged per-run document: fabric events shifted
//!   onto the runtime's virtual clock plus batch/job spans and
//!   admission markers, committed in deterministic order so the trace is
//!   byte-identical at any worker count.
//! * [`LinkTimeline`] — per-link busy fraction over fixed windows
//!   (integer permille — byte-stable across hosts), the compact form the
//!   bench baselines digest.
//! * [`chrome`] — Chrome trace-event JSON export (opens directly in
//!   Perfetto: links as tracks, jobs as flows, faults as instants) and a
//!   dependency-free JSON validator for round-trip tests.
//!
//! ## Determinism contract
//!
//! Everything recorded is simulated time or integer ids; exporters use
//! integer-only formatting. Two runs with the same seeds produce
//! byte-identical traces on any host, and the runtime merge commits
//! worker results in virtual-time order, so traces are byte-identical
//! for every `jobs` value.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod sink;
pub mod span;
pub mod timeline;

pub use chrome::{export_chrome, validate_json, ChromeOptions};
pub use event::{DropCause, TraceEvent};
pub use sink::{TraceSink, TraceSpec};
pub use span::{BatchSpan, JobSpan, Marker, RebuildSpan, RuntimeTrace};
pub use timeline::LinkTimeline;
