//! Packet-lifecycle trace events.
//!
//! One event per observable step of a packet's life on the fabric —
//! inject at the NIC, egress at each switch hop, delivery or loss at the
//! destination — plus link fault transitions and sampled event-queue
//! depth. Events are small `Copy` values (raw ids + simulated
//! nanoseconds) so the recorder's ring buffer stays flat and the
//! hot-path cost of a record is a couple of stores.

/// Why a packet copy was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Corrupted on a link traversal (the fabric's random loss model).
    Corruption,
    /// Egress port was down under the fault schedule.
    FaultDown,
    /// Receiver-not-ready: the destination QP had no free receive slot.
    Rnr,
    /// Forced drop injected by the test harness (`DropModel::forced`).
    Forced,
}

impl DropCause {
    /// Short label for exports.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Corruption => "corruption",
            DropCause::FaultDown => "fault-down",
            DropCause::Rnr => "rnr",
            DropCause::Forced => "forced",
        }
    }
}

/// One recorded observation on the simulated clock.
///
/// Transmission events ([`TraceEvent::Inject`], [`TraceEvent::Egress`])
/// carry the busy interval `[start_ns, start_ns + ser_ns)` they occupy
/// on their link — the raw material of [`crate::LinkTimeline`] and the
/// Perfetto link tracks — so packet lifecycle and link occupancy come
/// from one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered the fabric on a NIC's uplink.
    Inject {
        /// When serialization onto the wire began.
        start_ns: u64,
        /// Serialization time under the link's effective bandwidth.
        ser_ns: u64,
        /// Directed link index (the host's uplink).
        link: u32,
        /// Injecting rank.
        src: u32,
        /// Wire bytes (payload + headers).
        bytes: u32,
    },
    /// A packet copy was transmitted from a switch egress port.
    Egress {
        /// When serialization onto the wire began.
        start_ns: u64,
        /// Serialization time under the link's effective bandwidth.
        ser_ns: u64,
        /// Directed link index of the egress.
        link: u32,
        /// Wire bytes (payload + headers).
        bytes: u32,
    },
    /// A packet was delivered: its CQE finished receive-side processing.
    Deliver {
        /// CQE completion time on the simulated clock.
        at_ns: u64,
        /// Destination rank.
        rank: u32,
        /// Rank-local QP index the completion surfaced on.
        qp: u32,
        /// Payload bytes.
        bytes: u32,
    },
    /// A packet copy was lost.
    Drop {
        /// When the copy was lost.
        at_ns: u64,
        /// Link the loss is accounted to.
        link: u32,
        /// Why.
        cause: DropCause,
    },
    /// A scheduled link-state transition took effect.
    Fault {
        /// Transition time.
        at_ns: u64,
        /// Affected directed link.
        link: u32,
        /// New state: `true` = up (possibly degraded), `false` = down.
        up: bool,
    },
    /// Sampled event-queue depth (every `TraceSpec::queue_sample_every`
    /// processed events).
    QueueDepth {
        /// Sample time.
        at_ns: u64,
        /// Pending events in the engine queue.
        depth: u32,
    },
}

impl TraceEvent {
    /// Primary timestamp: when the event begins on the simulated clock.
    pub fn at_ns(&self) -> u64 {
        match *self {
            TraceEvent::Inject { start_ns, .. } | TraceEvent::Egress { start_ns, .. } => start_ns,
            TraceEvent::Deliver { at_ns, .. }
            | TraceEvent::Drop { at_ns, .. }
            | TraceEvent::Fault { at_ns, .. }
            | TraceEvent::QueueDepth { at_ns, .. } => at_ns,
        }
    }

    /// The same event shifted `offset_ns` later — how a batch fabric's
    /// local clock (every batch starts at 0) is threaded onto the
    /// runtime's virtual timeline at merge.
    pub fn shifted(self, offset_ns: u64) -> TraceEvent {
        let mut ev = self;
        match &mut ev {
            TraceEvent::Inject { start_ns, .. } | TraceEvent::Egress { start_ns, .. } => {
                *start_ns += offset_ns;
            }
            TraceEvent::Deliver { at_ns, .. }
            | TraceEvent::Drop { at_ns, .. }
            | TraceEvent::Fault { at_ns, .. }
            | TraceEvent::QueueDepth { at_ns, .. } => *at_ns += offset_ns,
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_moves_every_variant() {
        let evs = [
            TraceEvent::Inject {
                start_ns: 5,
                ser_ns: 1,
                link: 0,
                src: 0,
                bytes: 64,
            },
            TraceEvent::Egress {
                start_ns: 5,
                ser_ns: 1,
                link: 0,
                bytes: 64,
            },
            TraceEvent::Deliver {
                at_ns: 5,
                rank: 0,
                qp: 0,
                bytes: 64,
            },
            TraceEvent::Drop {
                at_ns: 5,
                link: 0,
                cause: DropCause::Rnr,
            },
            TraceEvent::Fault {
                at_ns: 5,
                link: 0,
                up: true,
            },
            TraceEvent::QueueDepth { at_ns: 5, depth: 3 },
        ];
        for ev in evs {
            assert_eq!(ev.at_ns(), 5);
            assert_eq!(ev.shifted(100).at_ns(), 105);
        }
    }

    #[test]
    fn events_stay_small() {
        // The ring buffer's memory bound assumes a compact event; a
        // growing variant would silently fatten every recorder.
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
    }
}
