//! The per-rank protocol state machine for multicast Broadcast/Allgather
//! on the discrete-event fabric.
//!
//! One state machine implements both collectives (they share the plan,
//! datapath, and reliability machinery; only the root list differs). The
//! lifecycle follows Fig. 9:
//!
//! 1. **RNR synchronization** — receives are pre-posted (the fabric model
//!    pre-posts the RQ), then the recursive-doubling barrier runs over the
//!    reliable control QP.
//! 2. **Multicast datapath** — step-0 roots fragment and multicast their
//!    buffer across the subgroup QPs; when a root's send path drains it
//!    passes the activation signal to its chain successor. Leaves set
//!    bitmap bits as CQEs surface.
//! 3. **Reliability** — a cutoff timer (`N/B_link + α`) arms when the
//!    multicast phase begins; if it fires with holes in the bitmap, the
//!    rank requests its missing PSN ranges from its *left* ring neighbor,
//!    which ACKs the ranges it can serve immediately and defers the rest
//!    until its own recovery completes (the recursive scheme); served
//!    ranges are fetched with one-sided RDMA Reads.
//! 4. **Final handshake** — a complete rank sends the final packet to its
//!    left neighbor; holding both local completeness and the right
//!    neighbor's final packet releases the receive buffer.

use crate::barrier::{BarrierAction, BarrierState};
use crate::bitmap::ChunkBitmap;
use crate::msg::ControlMsg;
use crate::plan::CollectivePlan;
use mcag_simnet::{Ctx, Payload, RankApp, SimTime};
use mcag_verbs::{Cqe, CqeOpcode, McastGroupId, QpNum, Rank};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Timer token for the reliability cutoff.
const TIMER_CUTOFF: u64 = 1;
/// Base TX-drain token: token `TX_DONE_BASE + j` means subgroup `j`'s
/// send queue drained; the root's multicast is finished when all
/// subgroup queues have drained.
const TX_DONE_BASE: u64 = 16;
/// Token-space stride between protocol instances sharing one rank
/// (multiple communicators, Section V-C): instance `i` uses tokens
/// `[i*TOKEN_STRIDE, (i+1)*TOKEN_STRIDE)`.
pub const TOKEN_STRIDE: u64 = 1024;

/// Per-rank phase timestamps and datapath statistics, the raw material of
/// Fig. 10 (critical-path breakdown) and Fig. 11 (throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTiming {
    /// Collective start.
    pub t_start: SimTime,
    /// RNR synchronization (barrier) completed.
    pub t_barrier: Option<SimTime>,
    /// Own multicast finished draining (roots only).
    pub t_tx_done: Option<SimTime>,
    /// Receive buffer complete (all chunks present).
    pub t_complete: Option<SimTime>,
    /// Final handshake done; buffer released to the application.
    pub t_done: Option<SimTime>,
    /// Chunks recovered through the slow path.
    pub fetched_chunks: u64,
    /// Duplicate datagrams discarded by the bitmap.
    pub duplicate_chunks: u64,
    /// Recovery activations (cutoff timer firings that found holes).
    pub recovery_rounds: u32,
}

impl RankTiming {
    /// RNR-synchronization phase duration (ns).
    pub fn sync_ns(&self) -> u64 {
        self.t_barrier.map_or(0, |t| t.since(self.t_start))
    }

    /// Multicast datapath phase duration (ns): barrier end → buffer
    /// complete (and own send drained, for roots).
    pub fn datapath_ns(&self) -> u64 {
        let (Some(b), Some(c)) = (self.t_barrier, self.t_complete) else {
            return 0;
        };
        let end = match self.t_tx_done {
            Some(t) => t.max(c),
            None => c,
        };
        end.since(b)
    }

    /// Final-synchronization phase duration (ns).
    pub fn final_sync_ns(&self) -> u64 {
        let (Some(c), Some(d)) = (self.t_complete, self.t_done) else {
            return 0;
        };
        let start = match self.t_tx_done {
            Some(t) => t.max(c),
            None => c,
        };
        d.since(start)
    }

    /// Total collective duration (ns).
    pub fn total_ns(&self) -> u64 {
        self.t_done.map_or(0, |t| t.since(self.t_start))
    }
}

/// QP layout shared by every rank (SPMD): QP 0 is the reliable control
/// ring; QPs `1..=S` are the UD multicast subgroup QPs.
#[derive(Debug, Clone)]
pub struct QpLayout {
    /// Reliable (RC) control QP.
    pub ctrl: QpNum,
    /// One UD QP per multicast subgroup.
    pub subgroup_qps: Vec<QpNum>,
    /// One multicast group per subgroup.
    pub groups: Vec<McastGroupId>,
}

/// The protocol endpoint: implements [`RankApp`] over the DES fabric.
pub struct McastRankApp {
    plan: Arc<CollectivePlan>,
    me: Rank,
    qps: QpLayout,
    cutoff_ns: u64,
    bitmap: ChunkBitmap,
    barrier: BarrierState,
    /// Phase timestamps, owned by the app and harvested by the driver
    /// after the run ([`McastRankApp::timing`]) — no shared result sink,
    /// so a fully wired simulation stays `Send`.
    timing: RankTiming,

    mcast_started: bool,
    tx_done: bool,
    complete: bool,
    final_sent: bool,
    final_received: bool,
    released: bool,

    /// If true (default), call `mark_done` on release; composite apps
    /// running several protocols on one rank turn this off and mark done
    /// themselves when every sub-protocol has finished.
    auto_mark_done: bool,
    /// Offset added to all timer/drain tokens so that several protocol
    /// instances (communicators) on one rank never collide.
    token_base: u64,
    /// Subgroup send queues still draining (roots only).
    pending_drains: u32,
    /// Reads in flight: tag → global-PSN range being fetched.
    outstanding_reads: HashMap<u64, Range<u32>>,
    next_tag: u64,
    /// Requests this rank could not fully serve yet: requester → ranges
    /// still owed (sent as a supplementary ACK once complete).
    pending_serve: Vec<(Rank, Vec<Range<u32>>)>,
}

impl McastRankApp {
    /// Build the endpoint for `me`. `cutoff_ns` is the reliability
    /// timeout (`expected_bytes / B_link + α`, precomputed by the
    /// driver). Final timings are read back with [`McastRankApp::timing`]
    /// once the run completes.
    pub fn new(plan: Arc<CollectivePlan>, me: Rank, qps: QpLayout, cutoff_ns: u64) -> McastRankApp {
        let p = plan.num_ranks();
        let mut bitmap = ChunkBitmap::new(plan.total_chunks() as usize);
        // The local block is already in place (zero-copy: the send buffer
        // region of the receive buffer is the rank's own contribution).
        if let Some(idx) = plan.root_index(me) {
            for psn in plan.root_psn_range(idx) {
                bitmap.set(psn);
            }
        }
        McastRankApp {
            barrier: BarrierState::new(me, p),
            plan,
            me,
            qps,
            cutoff_ns,
            bitmap,
            timing: RankTiming::default(),
            mcast_started: false,
            tx_done: false,
            complete: false,
            final_sent: false,
            final_received: false,
            released: false,
            auto_mark_done: true,
            token_base: 0,
            pending_drains: 0,
            outstanding_reads: HashMap::new(),
            next_tag: 1,
            pending_serve: Vec::new(),
        }
    }

    /// Disable the automatic `mark_done` on release (composite drivers).
    pub fn set_auto_mark_done(&mut self, auto: bool) {
        self.auto_mark_done = auto;
    }

    /// Namespace this instance's timer/drain tokens (communicator index
    /// times [`TOKEN_STRIDE`]); composite apps route events back by
    /// `token / TOKEN_STRIDE`.
    pub fn set_token_base(&mut self, base: u64) {
        self.token_base = base;
    }

    /// Has this rank released its receive buffer (collective finished)?
    pub fn is_released(&self) -> bool {
        self.released
    }

    /// This rank's phase timestamps and datapath statistics so far
    /// (complete once the rank released). Drivers harvest this after the
    /// run via [`mcag_simnet::Fabric::take_app_as`].
    pub fn timing(&self) -> RankTiming {
        self.timing
    }

    fn left(&self) -> Rank {
        self.me.ring_left(self.plan.num_ranks())
    }

    fn run_barrier_actions(&mut self, ctx: &mut Ctx<'_, ControlMsg>, actions: Vec<BarrierAction>) {
        for a in actions {
            match a {
                BarrierAction::Send { to, round } => {
                    let m = ControlMsg::Barrier { round };
                    let len = m.wire_payload();
                    ctx.post_msg(to, self.qps.ctrl, m, len);
                }
                BarrierAction::Done => self.on_barrier_done(ctx),
            }
        }
    }

    fn on_barrier_done(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.timing.t_barrier = Some(ctx.now());
        // Entering the multicast phase: leaves start polling and arm the
        // cutoff timer (Section III-C). Roots with no inbound data skip it.
        if self.plan.expected_chunks(self.me) > 0 {
            ctx.set_timer(self.cutoff_ns, self.token_base + TIMER_CUTOFF);
        }
        if let Some(idx) = self.plan.root_index(self.me) {
            if self.plan.sequencer().starts_immediately(idx) {
                self.start_multicast(ctx);
            }
        }
        self.check_complete(ctx);
    }

    fn start_multicast(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        assert!(!self.mcast_started, "{} double activation", self.me);
        self.mcast_started = true;
        let idx = self
            .plan
            .root_index(self.me)
            .expect("non-root rank activated");
        // Zero-copy fragmentation: one datagram per chunk, PSN in the
        // immediate field, spread across the subgroup QPs.
        for local in 0..self.plan.chunks_per_root() {
            let psn = self.plan.global_psn(idx, local);
            let sub = self.plan.subgroup_of(local) as usize;
            ctx.post_mcast_chunk(
                self.qps.subgroup_qps[sub],
                self.qps.groups[sub],
                self.plan.imm_for(psn),
                self.me,
                psn,
                self.plan.chunk_len(psn),
            );
        }
        self.pending_drains = self.qps.subgroup_qps.len() as u32;
        for (j, &qp) in self.qps.subgroup_qps.iter().enumerate() {
            ctx.notify_tx_drained(qp, self.token_base + TX_DONE_BASE + j as u64);
        }
    }

    fn handle_chunk(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe) {
        let imm = cqe.imm.expect("multicast datagram without immediate");
        let (coll, psn) = self.plan.imm_layout().unpack(imm);
        assert_eq!(coll, self.plan.coll_id(), "crossed collective traffic");
        if self.bitmap.set(psn) {
            self.check_complete(ctx);
        } else {
            self.timing.duplicate_chunks += 1;
        }
    }

    fn handle_ctrl(&mut self, ctx: &mut Ctx<'_, ControlMsg>, src: Rank, msg: ControlMsg) {
        match msg {
            ControlMsg::Barrier { round } => {
                let actions = self.barrier.on_msg(round);
                self.run_barrier_actions(ctx, actions);
            }
            ControlMsg::Activate => self.start_multicast(ctx),
            ControlMsg::FinalPkt => {
                assert_eq!(
                    src,
                    self.me.ring_right(self.plan.num_ranks()),
                    "final packet from a non-neighbor"
                );
                self.final_received = true;
                self.maybe_release(ctx);
            }
            ControlMsg::FetchReq { ranges } => self.serve_fetch(ctx, src, ranges),
            ControlMsg::FetchAck { ranges } => self.issue_reads(ctx, ranges),
        }
    }

    /// Split `ranges` by current bitmap state; ACK the servable part now
    /// and owe the rest. Owed ranges are re-examined on every bitmap
    /// update ([`Self::resolve_pending_serves`]), so chunks propagate
    /// around the recovery ring hop-by-hop as they land — the recursive
    /// scheme of Section III-C. Waiting for *completeness* instead would
    /// deadlock when every rank misses a chunk its left neighbor also
    /// misses.
    fn serve_fetch(
        &mut self,
        ctx: &mut Ctx<'_, ControlMsg>,
        requester: Rank,
        ranges: Vec<Range<u32>>,
    ) {
        let mut have = Vec::new();
        let mut owe = Vec::new();
        for r in ranges {
            split_by_bitmap(&self.bitmap, r, &mut have, &mut owe);
        }
        if !have.is_empty() {
            let m = ControlMsg::FetchAck { ranges: have };
            let len = m.wire_payload();
            ctx.post_msg(requester, self.qps.ctrl, m, len);
        }
        if !owe.is_empty() {
            self.pending_serve.push((requester, owe));
        }
    }

    /// Serve any owed ranges that have since become available.
    fn resolve_pending_serves(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if self.pending_serve.is_empty() {
            return;
        }
        let mut still_pending = Vec::new();
        for (requester, ranges) in std::mem::take(&mut self.pending_serve) {
            let mut have = Vec::new();
            let mut owe = Vec::new();
            for r in ranges {
                split_by_bitmap(&self.bitmap, r, &mut have, &mut owe);
            }
            if !have.is_empty() {
                let m = ControlMsg::FetchAck { ranges: have };
                let len = m.wire_payload();
                ctx.post_msg(requester, self.qps.ctrl, m, len);
            }
            if !owe.is_empty() {
                still_pending.push((requester, owe));
            }
        }
        self.pending_serve = still_pending;
    }

    /// RDMA-Read the still-missing parts of the ACKed ranges from the
    /// left neighbor's receive buffer (identical layout on every rank).
    fn issue_reads(&mut self, ctx: &mut Ctx<'_, ControlMsg>, ranges: Vec<Range<u32>>) {
        let left = self.left();
        let mut still_missing = Vec::new();
        for r in ranges {
            let mut have = Vec::new();
            split_by_bitmap(&self.bitmap, r, &mut have, &mut still_missing);
        }
        for r in still_missing {
            // Also skip ranges already being fetched.
            if self
                .outstanding_reads
                .values()
                .any(|o| o.start < r.end && r.start < o.end)
            {
                continue;
            }
            let bytes: usize = (r.start..r.end).map(|p| self.plan.chunk_len(p)).sum();
            let tag = self.next_tag;
            self.next_tag += 1;
            self.outstanding_reads.insert(tag, r);
            ctx.post_rdma_read(self.qps.ctrl, left, bytes, tag);
        }
    }

    fn handle_read_done(&mut self, ctx: &mut Ctx<'_, ControlMsg>, tag: u64) {
        let range = self
            .outstanding_reads
            .remove(&tag)
            .expect("read completion with unknown tag");
        let newly = self.bitmap.set_range(range);
        self.timing.fetched_chunks += newly as u64;
        self.check_complete(ctx);
    }

    fn check_complete(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        // Chunks that just landed may settle debts to recovering peers.
        self.resolve_pending_serves(ctx);
        if self.complete || !self.bitmap.is_complete() {
            self.maybe_finalize(ctx);
            return;
        }
        self.complete = true;
        self.timing.t_complete = Some(ctx.now());
        self.maybe_finalize(ctx);
    }

    fn maybe_finalize(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if self.final_sent || !self.complete {
            return;
        }
        // Roots must also have drained their own multicast before they can
        // declare themselves finished.
        if self.plan.root_index(self.me).is_some() && !self.tx_done {
            return;
        }
        self.final_sent = true;
        let m = ControlMsg::FinalPkt;
        let len = m.wire_payload();
        ctx.post_msg(self.left(), self.qps.ctrl, m, len);
        self.maybe_release(ctx);
    }

    fn maybe_release(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if self.released || !self.final_sent || !self.final_received {
            return;
        }
        self.released = true;
        self.timing.t_done = Some(ctx.now());
        if self.auto_mark_done {
            ctx.mark_done();
        }
    }

    fn start_recovery(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        let runs: Vec<Range<u32>> = self.bitmap.missing_runs().collect();
        debug_assert!(!runs.is_empty());
        self.timing.recovery_rounds += 1;
        let m = ControlMsg::FetchReq { ranges: runs };
        let len = m.wire_payload();
        ctx.post_msg(self.left(), self.qps.ctrl, m, len);
    }
}

impl RankApp<ControlMsg> for McastRankApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.timing.t_start = ctx.now();
        let actions = self.barrier.start();
        self.run_barrier_actions(ctx, actions);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, payload: Payload<ControlMsg>) {
        match (cqe.opcode, payload) {
            (CqeOpcode::Recv, Payload::Msg(m)) => {
                let src = cqe.src.expect("control message without source");
                self.handle_ctrl(ctx, src, m);
            }
            (CqeOpcode::Recv, Payload::Chunk { .. }) => self.handle_chunk(ctx, cqe),
            (CqeOpcode::RdmaReadDone, _) => self.handle_read_done(ctx, cqe.wr_id),
            (op, p) => panic!("{} got unexpected completion {op:?}/{p:?}", self.me),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        assert_eq!(token, self.token_base + TIMER_CUTOFF);
        if self.complete {
            return; // timer raced with completion — nothing to recover
        }
        self.start_recovery(ctx);
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        assert!(
            token >= self.token_base + TX_DONE_BASE,
            "unexpected drain token {token}"
        );
        assert!(self.pending_drains > 0);
        self.pending_drains -= 1;
        if self.pending_drains > 0 {
            return; // other subgroup queues still draining
        }
        self.tx_done = true;
        self.timing.t_tx_done = Some(ctx.now());
        let idx = self.plan.root_index(self.me).expect("non-root TX drain");
        if let Some(succ) = self.plan.sequencer().successor(idx) {
            let to = self.plan.roots()[succ as usize];
            let m = ControlMsg::Activate;
            let len = m.wire_payload();
            ctx.post_msg(to, self.qps.ctrl, m, len);
        }
        self.maybe_finalize(ctx);
    }
}

/// Split `range` into maximal sub-ranges of present (`have`) and missing
/// (`miss`) chunks according to `bitmap`.
fn split_by_bitmap(
    bitmap: &ChunkBitmap,
    range: Range<u32>,
    have: &mut Vec<Range<u32>>,
    miss: &mut Vec<Range<u32>>,
) {
    let mut i = range.start;
    while i < range.end {
        let present = bitmap.get(i);
        let start = i;
        while i < range.end && bitmap.get(i) == present {
            i += 1;
        }
        if present {
            have.push(start..i);
        } else {
            miss.push(start..i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_by_bitmap_partitions() {
        let mut bm = ChunkBitmap::new(10);
        for i in [2, 3, 7] {
            bm.set(i);
        }
        let (mut have, mut miss) = (Vec::new(), Vec::new());
        split_by_bitmap(&bm, 0..10, &mut have, &mut miss);
        assert_eq!(have, vec![2..4, 7..8]);
        assert_eq!(miss, vec![0..2, 4..7, 8..10]);
    }

    #[test]
    fn split_by_bitmap_subrange() {
        let mut bm = ChunkBitmap::new(10);
        bm.set(5);
        let (mut have, mut miss) = (Vec::new(), Vec::new());
        split_by_bitmap(&bm, 4..7, &mut have, &mut miss);
        assert_eq!(have, vec![5..6]);
        assert_eq!(miss, vec![4..5, 6..7]);
    }

    #[test]
    fn timing_phase_math() {
        let t = RankTiming {
            t_start: SimTime(100),
            t_barrier: Some(SimTime(300)),
            t_tx_done: Some(SimTime(900)),
            t_complete: Some(SimTime(800)),
            t_done: Some(SimTime(1000)),
            ..Default::default()
        };
        assert_eq!(t.sync_ns(), 200);
        // Datapath runs until max(tx_done, complete) = 900.
        assert_eq!(t.datapath_ns(), 600);
        assert_eq!(t.final_sync_ns(), 100);
        assert_eq!(t.total_ns(), 900);
    }
}
