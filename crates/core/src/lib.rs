//! # mcag-core — bandwidth-optimal multicast Broadcast and Allgather
//!
//! The primary contribution of Khalilov et al. (SC'24): a reliable
//! constant-time Broadcast protocol built on unreliable hardware
//! multicast, composed into a bandwidth-optimal Allgather.
//!
//! ## Architecture
//!
//! * [`bitmap`] — the receive bitmap tracking per-chunk delivery; its
//!   zero runs drive selective recovery fetches.
//! * [`staging`] — the MTU-slot staging ring that makes the receive path
//!   tolerant to loss and out-of-order delivery (real byte movement; used
//!   by the threaded memfabric backend and validated here).
//! * [`sequencer`] — the distributed broadcast sequencer (Appendix A):
//!   `M` parallel chains of roots passing activation signals.
//! * [`plan`] — global PSN space, subgroup split, and root/block layout
//!   shared by Broadcast and Allgather.
//! * [`barrier`] — recursive-doubling RNR synchronization.
//! * [`msg`] — slow-path control messages (barrier, activation, final
//!   handshake, fetch request/ACK).
//! * [`protocol`] — the per-rank state machine tying it all together.
//! * [`des`] — the discrete-event driver producing timings and traffic
//!   reports for the paper's UCC-testbed experiments.
//!
//! ## Quick start
//!
//! ```
//! use mcag_core::{des, CollectiveKind, ProtocolConfig};
//! use mcag_simnet::{FabricConfig, Topology};
//!
//! let out = des::run_collective(
//!     Topology::single_switch(8, mcag_verbs::LinkRate::CX3_56G, 100),
//!     FabricConfig::ucc_default(),
//!     ProtocolConfig::default(),
//!     CollectiveKind::Allgather,
//!     64 << 10, // 64 KiB per rank
//! );
//! assert!(out.stats.all_done());
//! println!("mean recv throughput: {:.1} Gbit/s", out.mean_recv_gbps());
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod bitmap;
pub mod concurrent;
pub mod config;
pub mod des;
pub mod msg;
pub mod multicomm;
pub mod plan;
pub mod protocol;
pub mod sequencer;
pub mod staging;

pub use bitmap::ChunkBitmap;
pub use concurrent::{
    run_concurrent_ag_rs, run_concurrent_ag_rs_endpoint, run_endpoint_reduce_scatter,
    run_inc_reduce_scatter, AgRsDuplexApp, AgRsEndpointDuplexApp, EndpointRsApp, IncRsApp,
    RS_TX_TOKEN,
};
pub use config::ProtocolConfig;
pub use des::{cutoff_ns, run_collective, run_iterations, CollectiveOutcome};
pub use msg::ControlMsg;
pub use multicomm::{run_concurrent_allgathers, MultiCommApp, MultiCommOutcome};
pub use plan::{CollectiveKind, CollectivePlan};
pub use protocol::{McastRankApp, QpLayout, RankTiming};
pub use sequencer::Sequencer;
pub use staging::StagingRing;
