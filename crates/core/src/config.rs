//! Protocol-level configuration knobs.

use mcag_verbs::{ImmLayout, Mtu};
use serde::{Deserialize, Serialize};

/// Tunables of the multicast collective protocol (Section IV's three
/// parallelism axes plus the reliability timer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Datagram payload capacity (4 KiB in all testbed runs).
    pub mtu: Mtu,
    /// Immediate-field split between collective id and PSN.
    pub imm: ImmLayout,
    /// Multicast subgroups per root buffer (packet parallelism): each
    /// subgroup is its own multicast tree + QP, pinned to an RX worker.
    pub subgroups: u32,
    /// Parallel broadcast chains `M` (multicast parallelism). The paper's
    /// evaluation uses 1 ("one actively multicasting root").
    pub chains: u32,
    /// Fixed slack `α` added to the cutoff timer on top of the ideal
    /// drain time `N/B_link` (Section III-C, "Cutoff timer"), covering
    /// RNR-synchronization time and network noise.
    pub cutoff_alpha_ns: u64,
    /// Additional cutoff slack per schedule step (chains hand off
    /// activation signals `R` times; each handoff adds latency).
    pub cutoff_per_step_ns: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            mtu: Mtu::IB_4K,
            imm: ImmLayout::DEFAULT,
            subgroups: 1,
            chains: 1,
            cutoff_alpha_ns: 200_000,   // 200 µs
            cutoff_per_step_ns: 10_000, // 10 µs per activation handoff
        }
    }
}

impl ProtocolConfig {
    /// Paper's UCC-testbed configuration: 1 worker per datapath, single
    /// subgroup, single active root.
    pub fn ucc_paper() -> ProtocolConfig {
        ProtocolConfig::default()
    }

    /// A configuration exercising all parallelism axes (multiple subgroups
    /// and chains) — used by scaling studies and stress tests.
    pub fn parallel(subgroups: u32, chains: u32) -> ProtocolConfig {
        ProtocolConfig {
            subgroups,
            chains,
            ..ProtocolConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let c = ProtocolConfig::ucc_paper();
        assert_eq!(c.mtu, Mtu::IB_4K);
        assert_eq!(c.subgroups, 1);
        assert_eq!(c.chains, 1);
    }

    #[test]
    fn parallel_configs() {
        let c = ProtocolConfig::parallel(4, 2);
        assert_eq!(c.subgroups, 4);
        assert_eq!(c.chains, 2);
    }
}
