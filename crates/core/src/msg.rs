//! Slow-path control messages exchanged over the reliable (RC) ring.
//!
//! These correspond to the violet control-path arrows of Fig. 9: the RNR
//! synchronization barrier, the chain activation signal, the final
//! handshake packet, and the fetch-request/ACK pair of the reliability
//! layer. All of them are small (tens of bytes on the wire) and reliable;
//! none of them sit on the multicast fast path.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Approximate wire payload sizes for control messages, used for traffic
/// accounting (the real backend sends tiny RC messages; 16 B of payload
/// plus the 64 B header model is generous).
pub const CTRL_MSG_BYTES: usize = 16;

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// One round of the recursive-doubling RNR-synchronization barrier.
    Barrier {
        /// Dissemination round index.
        round: u8,
    },
    /// Chain activation: the sender finished multicasting; the receiver
    /// (its chain successor) may start.
    Activate,
    /// Final-handshake packet: the sender has its receive buffer complete.
    /// Sent to the *left* ring neighbor; receiving one from the *right*
    /// neighbor (plus being complete locally) releases the buffer.
    FinalPkt,
    /// Reliability: request for the listed global-PSN ranges, sent to the
    /// left ring neighbor after the cutoff timer found holes.
    FetchReq {
        /// Missing global-PSN ranges.
        ranges: Vec<Range<u32>>,
    },
    /// Reliability: the sender *has* the listed ranges — the requester may
    /// RDMA-Read them from its receive buffer. Ranges the neighbor was
    /// itself missing arrive in later supplementary ACKs once its own
    /// recovery completes (the recursive scheme of Section III-C).
    FetchAck {
        /// Servable global-PSN ranges.
        ranges: Vec<Range<u32>>,
    },
}

impl ControlMsg {
    /// Payload bytes to account on the wire for this message.
    pub fn wire_payload(&self) -> usize {
        match self {
            ControlMsg::Barrier { .. } | ControlMsg::Activate | ControlMsg::FinalPkt => {
                CTRL_MSG_BYTES
            }
            // 8 bytes per range descriptor, 16 B fixed.
            ControlMsg::FetchReq { ranges } | ControlMsg::FetchAck { ranges } => {
                CTRL_MSG_BYTES + 8 * ranges.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(ControlMsg::Activate.wire_payload(), 16);
        assert_eq!(ControlMsg::Barrier { round: 3 }.wire_payload(), 16);
        let req = ControlMsg::FetchReq {
            ranges: vec![0..4, 9..12],
        };
        assert_eq!(req.wire_payload(), 32);
    }
}
