//! Recursive-doubling dissemination barrier — the RNR synchronization
//! step (Section III-C: "We pre-post the network receive queue [...] and
//! then perform the barrier synchronization before the root starts
//! broadcasting"; Section V: "employ the recursive-doubling barrier in
//! the RNR synchronization step").
//!
//! The state machine is transport-agnostic: [`BarrierState::start`] and
//! [`BarrierState::on_msg`] return the sends the caller must perform (and
//! possibly a final `Done`). In round `k`, rank `r` signals
//! `(r + 2^k) mod P` and waits for the round-`k` signal from
//! `(r − 2^k) mod P`; after `⌈log2 P⌉` rounds everyone is synchronized.
//! Rounds from "future" peers may arrive early and are banked — when the
//! missing round finally lands, all consecutively-banked rounds are
//! consumed at once, which is why actions come as a list.

use mcag_verbs::Rank;

/// Progress of one rank through the dissemination barrier.
#[derive(Debug, Clone)]
pub struct BarrierState {
    rank: u32,
    p: u32,
    rounds: u8,
    current: u8,
    /// Banked arrivals, indexed by round.
    pending: Vec<bool>,
    done: bool,
}

/// What the caller must do after a barrier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAction {
    /// Send a round-`round` barrier message to `to`.
    Send {
        /// Destination rank.
        to: Rank,
        /// Round to tag the message with.
        round: u8,
    },
    /// Barrier complete for this rank.
    Done,
}

impl BarrierState {
    /// A barrier over `p` ranks, from `rank`'s perspective.
    pub fn new(rank: Rank, p: u32) -> BarrierState {
        assert!(p >= 1 && rank.0 < p);
        let rounds = if p == 1 {
            0
        } else {
            (32 - (p - 1).leading_zeros()) as u8 // ceil(log2 p)
        };
        BarrierState {
            rank: rank.0,
            p,
            rounds,
            current: 0,
            pending: vec![false; rounds as usize],
            done: p == 1,
        }
    }

    /// Total rounds (`⌈log2 P⌉`).
    pub fn rounds(&self) -> u8 {
        self.rounds
    }

    /// Has this rank cleared the barrier?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Begin: the round-0 send (or immediate `Done` for one rank).
    pub fn start(&mut self) -> Vec<BarrierAction> {
        if self.done {
            return vec![BarrierAction::Done];
        }
        vec![self.send_action()]
    }

    /// A round-`round` barrier message arrived. Returns the sends to
    /// perform (possibly several, if this unblocked banked rounds), ending
    /// with `Done` when the barrier clears. Early messages return an empty
    /// list.
    pub fn on_msg(&mut self, round: u8) -> Vec<BarrierAction> {
        assert!(!self.done, "barrier message after completion");
        assert!(
            (round as usize) < self.pending.len(),
            "round {round} out of range"
        );
        assert!(
            !self.pending[round as usize],
            "duplicate barrier message for round {round}"
        );
        self.pending[round as usize] = true;
        let mut actions = Vec::new();
        while self.current < self.rounds && self.pending[self.current as usize] {
            self.current += 1;
            if self.current == self.rounds {
                self.done = true;
                actions.push(BarrierAction::Done);
            } else {
                actions.push(self.send_action());
            }
        }
        actions
    }

    fn send_action(&self) -> BarrierAction {
        let k = self.current;
        let to = (self.rank + (1u32 << k)) % self.p;
        BarrierAction::Send {
            to: Rank(to),
            round: k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Drive all P barrier instances through an in-memory message queue,
    /// delivering in a pseudo-random order to model network reordering
    /// across peers.
    fn simulate(p: u32, shuffle_seed: u64) -> Vec<bool> {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut states: Vec<BarrierState> = (0..p).map(|r| BarrierState::new(Rank(r), p)).collect();
        let mut inflight: VecDeque<(u32, u32, u8)> = VecDeque::new(); // (src, dst, round)
        for r in 0..p {
            for a in states[r as usize].start() {
                if let BarrierAction::Send { to, round } = a {
                    inflight.push_back((r, to.0, round));
                }
            }
        }
        let mut guard = 0;
        while !inflight.is_empty() {
            guard += 1;
            assert!(guard < 1_000_000, "barrier livelock");
            let pick = (rng.random::<u64>() % inflight.len() as u64) as usize;
            let (_src, dst, round) = inflight.remove(pick).unwrap();
            for a in states[dst as usize].on_msg(round) {
                if let BarrierAction::Send { to, round } = a {
                    inflight.push_back((dst, to.0, round));
                }
            }
        }
        states.iter().map(|s| s.is_done()).collect()
    }

    #[test]
    fn round_counts() {
        assert_eq!(BarrierState::new(Rank(0), 1).rounds(), 0);
        assert_eq!(BarrierState::new(Rank(0), 2).rounds(), 1);
        assert_eq!(BarrierState::new(Rank(0), 5).rounds(), 3);
        assert_eq!(BarrierState::new(Rank(0), 188).rounds(), 8);
        assert_eq!(BarrierState::new(Rank(0), 1024).rounds(), 10);
    }

    #[test]
    fn single_rank_trivially_done() {
        let mut b = BarrierState::new(Rank(0), 1);
        assert_eq!(b.start(), vec![BarrierAction::Done]);
        assert!(b.is_done());
    }

    #[test]
    fn two_ranks_one_round() {
        let mut a = BarrierState::new(Rank(0), 2);
        let mut b = BarrierState::new(Rank(1), 2);
        assert_eq!(
            a.start(),
            vec![BarrierAction::Send {
                to: Rank(1),
                round: 0
            }]
        );
        assert_eq!(
            b.start(),
            vec![BarrierAction::Send {
                to: Rank(0),
                round: 0
            }]
        );
        assert_eq!(a.on_msg(0), vec![BarrierAction::Done]);
        assert_eq!(b.on_msg(0), vec![BarrierAction::Done]);
    }

    #[test]
    fn banked_rounds_consumed_in_batch() {
        // Rank 0 of 8: rounds 1 and 2 arrive before round 0.
        let mut b = BarrierState::new(Rank(0), 8);
        b.start();
        assert!(b.on_msg(1).is_empty());
        assert!(b.on_msg(2).is_empty());
        let actions = b.on_msg(0);
        assert_eq!(
            actions,
            vec![
                BarrierAction::Send {
                    to: Rank(2),
                    round: 1
                },
                BarrierAction::Send {
                    to: Rank(4),
                    round: 2
                },
                BarrierAction::Done,
            ]
        );
        assert!(b.is_done());
    }

    #[test]
    fn all_complete_at_various_sizes() {
        for p in [2u32, 3, 4, 5, 7, 8, 16, 63, 188] {
            let done = simulate(p, 42);
            assert!(done.into_iter().all(|d| d), "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate barrier message")]
    fn duplicate_round_rejected() {
        let mut b = BarrierState::new(Rank(0), 4);
        b.start();
        b.on_msg(1);
        b.on_msg(1);
    }

    proptest! {
        #[test]
        fn completes_under_any_delivery_order(p in 2u32..96, seed: u64) {
            let done = simulate(p, seed);
            prop_assert!(done.into_iter().all(|d| d));
        }
    }
}
