//! Driver: sets up a discrete-event fabric, installs the protocol
//! endpoints, runs the collective, and packages the outcome (timings,
//! traffic counters, drop statistics) for analysis — the simulated
//! equivalent of an OSU-benchmark iteration with switch-counter
//! collection (Section VI-B methodology).

use crate::msg::ControlMsg;
use crate::plan::{CollectiveKind, CollectivePlan};
use crate::protocol::{McastRankApp, QpLayout, RankTiming};
use crate::ProtocolConfig;
use mcag_simnet::fabric::RunStats;
use mcag_simnet::{Fabric, FabricConfig, SimTime, Topology, TraceSink, TrafficReport};
use mcag_verbs::{CollectiveId, Rank, Transport};
use std::sync::Arc;

/// Watchdog margin: a healthy collective (including recovery rounds, each
/// of which re-arms a cutoff-sized timer) finishes within a handful of
/// cutoffs; a run still pending after this many is livelocked. Used to
/// bound [`run_collective`] via the peek-based [`Fabric::run_until`]
/// instead of grinding toward the multi-billion event cap; the runtime
/// scheduler applies the same margin to whole batches.
pub const WATCHDOG_CUTOFFS: u64 = 1024;

/// Per-run recovery/termination bounds: how aggressively the protocol's
/// reliability cutoff is stretched, and how many cutoffs the watchdog
/// grants before declaring the run timed out. The knobs of the fault
/// sweeps' "recovery cutoff" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBounds {
    /// Multiplier on the ideal-drain-time term of the cutoff timer
    /// ([`cutoff_ns`]'s `headroom`): larger values wait longer before
    /// falling back to the unicast recovery ring — fewer spurious
    /// fetches on a healthy fabric, fatter tail under faults.
    pub cutoff_headroom: u64,
    /// Watchdog deadline in cutoffs; a run still pending after
    /// `cutoff * watchdog_cutoffs` is abandoned ([`RunStats::all_done`]
    /// stays false — a clean timeout, never a panic).
    pub watchdog_cutoffs: u64,
}

impl Default for RunBounds {
    fn default() -> RunBounds {
        RunBounds {
            cutoff_headroom: 1,
            watchdog_cutoffs: WATCHDOG_CUTOFFS,
        }
    }
}

/// Result of one collective run on the DES fabric.
#[derive(Debug, Clone)]
pub struct CollectiveOutcome {
    /// The executed plan.
    pub plan: Arc<CollectivePlan>,
    /// Per-rank phase timings.
    pub timings: Vec<RankTiming>,
    /// Fabric run statistics.
    pub stats: RunStats,
    /// Link counters (switch-port view included).
    pub traffic: TrafficReport,
    /// Total receiver-not-ready drops.
    pub rnr_drops: u64,
    /// Total fabric (corruption) drops.
    pub fabric_drops: u64,
    /// The reliability cutoff the endpoints armed (after headroom).
    pub cutoff_ns: u64,
    /// The watchdog deadline the run was bounded by.
    pub deadline: SimTime,
    /// The harvested flight recorder (`Some` iff the fabric config
    /// carried a `TraceSpec`).
    pub trace: Option<TraceSink>,
}

impl CollectiveOutcome {
    /// Per-rank receive throughput in Gbit/s for ranks that actually
    /// receive data (Broadcast roots are excluded, as in Fig. 11's
    /// "measurements only on leaf ranks").
    pub fn per_rank_recv_gbps(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (i, t) in self.timings.iter().enumerate() {
            let bytes = self.plan.expected_psn_bytes(Rank(i as u32));
            let ns = t.total_ns();
            if bytes == 0 || ns == 0 {
                continue;
            }
            out.push(bytes as f64 * 8.0 / ns as f64);
        }
        out
    }

    /// Mean receive throughput (Gbit/s) over receiving ranks.
    pub fn mean_recv_gbps(&self) -> f64 {
        let v = self.per_rank_recv_gbps();
        if v.is_empty() {
            return 0.0;
        }
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Coefficient of variation of per-rank throughput — the paper's
    /// "performance variability" observation (Section VI-B(c)).
    pub fn recv_gbps_cv(&self) -> f64 {
        let v = self.per_rank_recv_gbps();
        if v.len() < 2 {
            return 0.0;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        var.sqrt() / mean
    }

    /// Wall time of the whole collective (last rank release).
    pub fn completion_ns(&self) -> u64 {
        self.timings.iter().map(|t| t.total_ns()).max().unwrap_or(0)
    }

    /// Mean phase breakdown across ranks: `(sync, datapath, final)` in ns.
    pub fn mean_breakdown_ns(&self) -> (f64, f64, f64) {
        let n = self.timings.len().max(1) as f64;
        let s: u64 = self.timings.iter().map(|t| t.sync_ns()).sum();
        let d: u64 = self.timings.iter().map(|t| t.datapath_ns()).sum();
        let f: u64 = self.timings.iter().map(|t| t.final_sync_ns()).sum();
        (s as f64 / n, d as f64 / n, f as f64 / n)
    }

    /// Total chunks recovered via the slow path, across ranks.
    pub fn total_fetched(&self) -> u64 {
        self.timings.iter().map(|t| t.fetched_chunks).sum()
    }

    /// True when the run did not complete within its watchdog deadline —
    /// the clean-timeout outcome of a fault the protocol cannot recover
    /// from (e.g. a link that never comes back).
    pub fn timed_out(&self) -> bool {
        !self.stats.all_done()
    }

    /// Completion time with timeouts censored at the watchdog deadline —
    /// the value tail-latency sweeps aggregate, so a timed-out seed
    /// contributes the (known, deterministic) bound it burned rather
    /// than a misleading partial timing.
    pub fn censored_completion_ns(&self) -> u64 {
        if self.timed_out() {
            self.deadline.as_ns()
        } else {
            self.completion_ns()
        }
    }
}

impl CollectivePlan {
    /// Bytes rank `r` must receive over the network (its own block, if it
    /// broadcasts one, is already local).
    pub fn expected_psn_bytes(&self, r: Rank) -> u64 {
        match self.root_index(r) {
            Some(_) => (self.recv_len() - self.send_len()) as u64,
            None => self.recv_len() as u64,
        }
    }
}

/// Reliability cutoff timer for `plan` on `topo` (Section III-C): the
/// ideal drain time of the receive buffer at the host link rate scaled by
/// `headroom` (collectives sharing the NIC stretch the drain
/// proportionally), plus the configured fixed slack and per-schedule-step
/// slack for activation handoffs.
pub fn cutoff_ns(
    topo: &Topology,
    plan: &CollectivePlan,
    proto: &ProtocolConfig,
    headroom: u64,
) -> u64 {
    let host_link = *topo.link(topo.uplinks(topo.host_node(Rank(0)))[0]);
    let drain_ns = host_link
        .rate
        .serialization_ns(plan.recv_len())
        .saturating_mul(headroom.max(1));
    let steps = plan.sequencer().num_steps() as u64;
    drain_ns + proto.cutoff_alpha_ns + proto.cutoff_per_step_ns * steps
}

/// Run one multicast collective on `topo` with default [`RunBounds`].
pub fn run_collective(
    topo: Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    kind: CollectiveKind,
    send_len: usize,
) -> CollectiveOutcome {
    run_collective_bounded(
        topo,
        fabric_cfg,
        proto,
        kind,
        send_len,
        RunBounds::default(),
    )
}

/// Run one multicast collective on `topo` under explicit recovery
/// bounds. Under fault injection (`FabricConfig::faults`) this is the
/// driver of record: the cutoff headroom stretches how long endpoints
/// tolerate holes before fetching over the recovery ring, and the
/// watchdog converts an unrecoverable fabric into a clean timeout
/// ([`CollectiveOutcome::timed_out`]) instead of a panic.
pub fn run_collective_bounded(
    topo: Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    kind: CollectiveKind,
    send_len: usize,
    bounds: RunBounds,
) -> CollectiveOutcome {
    let p = topo.num_hosts() as u32;
    let plan = Arc::new(CollectivePlan::new(
        kind,
        p,
        send_len,
        proto.mtu,
        proto.imm,
        CollectiveId(1),
        proto.subgroups,
        proto.chains,
    ));
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg.clone());

    // Cutoff timer: ideal drain time of the receive buffer at the host
    // link rate, scaled by the recovery headroom, plus slack
    // (Section III-C).
    let cutoff = cutoff_ns(fab.topology(), &plan, &proto, bounds.cutoff_headroom);

    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let n_workers = fabric_cfg.host.rx_workers.max(1);
    let groups: Vec<_> = (0..plan.num_subgroups())
        .map(|_| fab.create_group(&members))
        .collect();

    for &r in &members {
        let ctrl = fab.add_qp(r, Transport::Rc, 0);
        let mut subgroup_qps = Vec::with_capacity(groups.len());
        for (j, &g) in groups.iter().enumerate() {
            let qp = fab.add_qp(r, Transport::Ud, j % n_workers);
            fab.attach(r, qp, g);
            subgroup_qps.push(qp);
        }
        let layout = QpLayout {
            ctrl,
            subgroup_qps,
            groups: groups.clone(),
        };
        fab.set_app(
            r,
            Box::new(McastRankApp::new(Arc::clone(&plan), r, layout, cutoff)),
        );
    }

    // Deadline-bounded run: `run_until` peeks the next event time instead
    // of popping-and-rescheduling, so the bound never perturbs event
    // order. `all_done()` stays false if the watchdog trips.
    let watchdog = SimTime::from_ns(cutoff.saturating_mul(bounds.watchdog_cutoffs.max(1)));
    let stats = fab.run_until(watchdog);
    let traffic = fab.traffic();
    let rnr = fab.total_rnr_drops();
    let drops = fab.total_fabric_drops();
    // Harvest the owned per-app sinks: each endpoint carried its own
    // timing row through the run; the driver assembles the table.
    let timings = members
        .iter()
        .map(|&r| fab.take_app_as::<McastRankApp>(r).timing())
        .collect();
    let trace = fab.take_trace();
    CollectiveOutcome {
        plan,
        timings,
        stats,
        traffic,
        rnr_drops: rnr,
        fabric_drops: drops,
        cutoff_ns: cutoff,
        deadline: watchdog,
        trace,
    }
}

/// Run `iters` iterations (fresh fabric each time, as OSU does between
/// iterations), returning all outcomes. Traffic accumulates naturally by
/// summing the reports.
pub fn run_iterations(
    mk_topo: impl Fn() -> Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    kind: CollectiveKind,
    send_len: usize,
    iters: usize,
) -> Vec<CollectiveOutcome> {
    (0..iters)
        .map(|i| {
            let mut cfg = fabric_cfg.clone();
            cfg.seed = fabric_cfg.seed.wrapping_add(i as u64);
            run_collective(mk_topo(), cfg, proto, kind, send_len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_simnet::DropModel;
    use mcag_verbs::LinkRate;

    fn star(n: usize) -> Topology {
        Topology::single_switch(n, LinkRate::CX3_56G, 100)
    }

    #[test]
    fn broadcast_completes_on_star() {
        let out = run_collective(
            star(8),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Broadcast { root: Rank(0) },
            64 << 10,
        );
        assert!(out.stats.all_done(), "{:?}", out.stats);
        assert_eq!(out.rnr_drops, 0);
        assert_eq!(out.fabric_drops, 0);
        assert_eq!(out.total_fetched(), 0, "no recovery on lossless fabric");
        assert_eq!(out.per_rank_recv_gbps().len(), 7, "root excluded");
    }

    #[test]
    fn allgather_completes_on_star() {
        let out = run_collective(
            star(6),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            32 << 10,
        );
        assert!(out.stats.all_done());
        assert_eq!(out.per_rank_recv_gbps().len(), 6);
        // Every rank's datapath phase saw (P-1) * N inbound bytes.
        for t in &out.timings {
            assert!(t.t_complete.is_some());
            assert!(t.t_done.is_some());
        }
    }

    #[test]
    fn allgather_bandwidth_optimal_traffic() {
        // Each root's 64 KiB buffer crosses each link at most once:
        // max per-link data bytes == P * N only on host downlinks
        // (each host receives all blocks), and no link carries more.
        let n: usize = 64 << 10;
        let p = 6usize;
        let out = run_collective(
            star(p),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            n,
        );
        assert!(out.stats.all_done());
        let per_link_max = out.traffic.max_link_data_bytes();
        assert!(
            per_link_max <= (p as u64) * n as u64,
            "a link carried {per_link_max} > P*N"
        );
        // Total payload movement: each block crosses its root's uplink
        // once and each of the (P-1) other hosts' downlinks once.
        let expect = (p as u64) * (n as u64) // uplinks
            + (p as u64) * (p as u64 - 1) * n as u64; // downlinks
        assert_eq!(out.traffic.total_data_bytes(), expect);
    }

    #[test]
    fn allgather_with_chains_and_subgroups() {
        let out = run_collective(
            star(8),
            FabricConfig::ucc_default(),
            ProtocolConfig::parallel(2, 4),
            CollectiveKind::Allgather,
            64 << 10,
        );
        assert!(out.stats.all_done());
        assert_eq!(out.total_fetched(), 0);
    }

    #[test]
    fn recovery_after_forced_drops() {
        let mut cfg = FabricConfig::ucc_default();
        // Drop chunk psn 3 of root 0 at rank 2, and psn 5 of root 1 at rank 3.
        cfg.drops.forced.insert((0, 3, 2));
        let out = run_collective(
            star(4),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            32 << 10,
        );
        assert!(out.stats.all_done(), "recovery failed: {:?}", out.stats);
        assert!(out.total_fetched() >= 1, "dropped chunk was not fetched");
        assert_eq!(out.timings[2].recovery_rounds, 1);
    }

    #[test]
    fn recovery_under_random_drops() {
        let mut cfg = FabricConfig::ucc_default();
        cfg.drops = DropModel::uniform(0.01); // brutal 1% per-hop loss
        cfg.seed = 99;
        let out = run_collective(
            star(5),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            64 << 10,
        );
        assert!(out.stats.all_done(), "recovery failed: {:?}", out.stats);
        assert!(out.fabric_drops > 0, "seed produced no drops");
        assert!(out.total_fetched() > 0);
    }

    #[test]
    fn iterations_are_independent() {
        let outs = run_iterations(
            || star(4),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            16 << 10,
            3,
        );
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert!(o.stats.all_done());
        }
        // Lossless, deterministic: identical completion times.
        assert_eq!(outs[0].completion_ns(), outs[1].completion_ns());
    }

    #[test]
    fn recovery_completes_under_a_flapping_downlink() {
        use mcag_simnet::topology::LinkId;
        use mcag_simnet::{LinkSchedule, LinkStateEvent};
        // Switch->rank2 delivery link (star layout: 2*r + 1) down over
        // the whole multicast phase: rank 2's datagrams are lost at the
        // egress, the cutoff fires, and the unicast ring fetches the
        // holes once the port recovers.
        let window_end = 60_000u64;
        let mut cfg = FabricConfig::ucc_default();
        cfg.faults = LinkSchedule::new(vec![
            LinkStateEvent::down(5_000, LinkId(5)),
            LinkStateEvent::up(window_end, LinkId(5)),
        ]);
        let out = run_collective(
            star(4),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            32 << 10,
        );
        assert!(out.stats.all_done(), "recovery failed: {:?}", out.stats);
        assert!(!out.timed_out());
        assert!(out.traffic.total_fault_drops() > 0, "no datagram was lost");
        assert!(out.total_fetched() > 0, "holes were not fetched");
        assert!(
            out.completion_ns() > window_end,
            "cannot complete before the port recovers"
        );
        assert_eq!(out.censored_completion_ns(), out.completion_ns());
        assert!(out.traffic.link(LinkId(5)).downtime_ns == window_end - 5_000);
    }

    #[test]
    fn unrecoverable_outage_times_out_cleanly() {
        use mcag_simnet::topology::LinkId;
        use mcag_simnet::{LinkSchedule, LinkStateEvent};
        // Rank 3's delivery link never comes back: even the recovery
        // ring cannot reach it, and the run must end as a clean timeout
        // at the watchdog deadline — no panic, no event-cap grind.
        let mut cfg = FabricConfig::ucc_default();
        cfg.faults = LinkSchedule::new(vec![LinkStateEvent::down(0, LinkId(7))]);
        let bounds = RunBounds {
            cutoff_headroom: 1,
            watchdog_cutoffs: 4,
        };
        let out = run_collective_bounded(
            star(4),
            cfg,
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            16 << 10,
            bounds,
        );
        assert!(out.timed_out());
        assert_eq!(out.censored_completion_ns(), out.deadline.as_ns());
        assert_eq!(out.deadline.as_ns(), out.cutoff_ns * 4);
        // Even reliable traffic toward the dead port is lost (the link
        // never recovers), which is what wedges the whole collective:
        // the dissemination barrier cannot reach rank 3.
        assert!(out.traffic.total_fault_drops() > 0);
        assert!(out.stats.per_rank_done.iter().flatten().count() == 0);
    }

    #[test]
    fn cutoff_headroom_stretches_recovery() {
        // A forced drop with growing cutoff headroom: the fetch fires
        // later, so completion time grows monotonically — the fault
        // sweep's "recovery cutoff" axis in miniature.
        let run = |headroom: u64| {
            let mut cfg = FabricConfig::ucc_default();
            cfg.drops.forced.insert((0, 3, 2));
            run_collective_bounded(
                star(4),
                cfg,
                ProtocolConfig::default(),
                CollectiveKind::Allgather,
                32 << 10,
                RunBounds {
                    cutoff_headroom: headroom,
                    watchdog_cutoffs: WATCHDOG_CUTOFFS,
                },
            )
        };
        let tight = run(1);
        let loose = run(8);
        assert!(tight.stats.all_done() && loose.stats.all_done());
        assert!(loose.cutoff_ns > tight.cutoff_ns);
        assert!(
            loose.completion_ns() > tight.completion_ns(),
            "headroom 8 should recover later: {} vs {}",
            loose.completion_ns(),
            tight.completion_ns()
        );
    }

    #[test]
    fn phase_breakdown_small_vs_large_messages() {
        // Fig. 10's shape: sync dominates tiny messages, the datapath
        // dominates large ones.
        let small = run_collective(
            star(8),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            4 << 10,
        );
        let large = run_collective(
            star(8),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            CollectiveKind::Allgather,
            2 << 20,
        );
        let (s_sync, s_dp, _) = small.mean_breakdown_ns();
        let (l_sync, l_dp, _) = large.mean_breakdown_ns();
        let small_dp_frac = s_dp / (s_sync + s_dp);
        let large_dp_frac = l_dp / (l_sync + l_dp);
        assert!(
            large_dp_frac > small_dp_frac,
            "datapath fraction should grow with message size: {small_dp_frac} vs {large_dp_frac}"
        );
        assert!(
            large_dp_frac > 0.95,
            "8-rank 2 MiB should be datapath-bound"
        );
    }
}
