//! Collective plans: who broadcasts what, where chunks land, and which
//! multicast subgroup carries them.
//!
//! Broadcast and Allgather share one plan structure — the paper notes the
//! two collectives differ by "around 20 lines of code related to the
//! Allgather multicasting scheduler". A plan fixes:
//!
//! * the ordered list of **roots** (one for Broadcast, all ranks for
//!   Allgather) — root *index* determines where a root's block sits in
//!   every receive buffer;
//! * the **global PSN space**: chunk `c` of root index `i` has global PSN
//!   `i * chunks_per_root + c`, which is the value stamped into the
//!   immediate field and the bit index in the receive bitmap (Fig. 7's
//!   "Allgather receive buffer" addressing);
//! * the **subgroup split** (packet parallelism, Section IV-C):
//!   contiguous blocks of each root's send buffer map to distinct
//!   multicast groups so receive workers can own disjoint PSN ranges;
//! * the **chain schedule** via [`crate::sequencer::Sequencer`].

use crate::sequencer::Sequencer;
use mcag_verbs::{CollectiveId, ImmLayout, Mtu, Rank};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Which collective a plan describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// One root multicasts its buffer to every other rank.
    Broadcast {
        /// The broadcasting rank.
        root: Rank,
    },
    /// Every rank broadcasts; everyone ends with the concatenation of all
    /// send buffers in rank order.
    Allgather,
}

/// A fully-resolved collective schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectivePlan {
    kind: CollectiveKind,
    p: u32,
    send_len: usize,
    mtu: Mtu,
    imm: ImmLayout,
    coll_id: CollectiveId,
    subgroups: u32,
    seq: Sequencer,
    roots: Vec<Rank>,
    chunks_per_root: u32,
    chunks_per_subgroup: u32,
}

impl CollectivePlan {
    /// Build a plan.
    ///
    /// * `p` — number of ranks;
    /// * `send_len` — bytes each root contributes (`N`);
    /// * `subgroups` — multicast groups per root buffer (packet
    ///   parallelism);
    /// * `chains` — parallel broadcast chains (`M`; ignored for
    ///   Broadcast, which trivially has one root).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: CollectiveKind,
        p: u32,
        send_len: usize,
        mtu: Mtu,
        imm: ImmLayout,
        coll_id: CollectiveId,
        subgroups: u32,
        chains: u32,
    ) -> CollectivePlan {
        assert!(p >= 2, "collectives need at least two ranks");
        assert!(subgroups >= 1);
        let roots: Vec<Rank> = match kind {
            CollectiveKind::Broadcast { root } => {
                assert!(root.0 < p, "root {root} out of range");
                vec![root]
            }
            CollectiveKind::Allgather => (0..p).map(Rank).collect(),
        };
        let chunks_per_root = mtu.chunks_for(send_len) as u32;
        let subgroups = subgroups.min(chunks_per_root);
        let total = chunks_per_root as u64 * roots.len() as u64;
        assert!(
            total <= imm.addressable_chunks(),
            "plan needs {total} global PSNs but the immediate layout \
             addresses {} (Fig. 7 constraint)",
            imm.addressable_chunks()
        );
        let seq = Sequencer::new(roots.len() as u32, chains.max(1));
        CollectivePlan {
            kind,
            p,
            send_len,
            mtu,
            imm,
            coll_id,
            subgroups,
            seq,
            roots,
            chunks_per_root,
            chunks_per_subgroup: chunks_per_root.div_ceil(subgroups),
        }
    }

    /// Collective kind.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.p
    }

    /// Bytes contributed per root.
    pub fn send_len(&self) -> usize {
        self.send_len
    }

    /// Chunk size.
    pub fn mtu(&self) -> Mtu {
        self.mtu
    }

    /// Immediate-field layout.
    pub fn imm_layout(&self) -> ImmLayout {
        self.imm
    }

    /// Collective id stamped into immediates.
    pub fn coll_id(&self) -> CollectiveId {
        self.coll_id
    }

    /// The chain schedule.
    pub fn sequencer(&self) -> Sequencer {
        self.seq
    }

    /// Multicast subgroups per root buffer.
    pub fn num_subgroups(&self) -> u32 {
        self.subgroups
    }

    /// Broadcasting roots in block order.
    pub fn roots(&self) -> &[Rank] {
        &self.roots
    }

    /// Root index of `rank` (its block position), if it broadcasts.
    pub fn root_index(&self, rank: Rank) -> Option<u32> {
        match self.kind {
            CollectiveKind::Broadcast { root } => (rank == root).then_some(0),
            CollectiveKind::Allgather => (rank.0 < self.p).then_some(rank.0),
        }
    }

    /// Chunks per root buffer.
    pub fn chunks_per_root(&self) -> u32 {
        self.chunks_per_root
    }

    /// Total chunks in the receive buffer (the bitmap length).
    pub fn total_chunks(&self) -> u32 {
        self.chunks_per_root * self.roots.len() as u32
    }

    /// Receive buffer size in bytes (`N` for Broadcast, `N·P` for
    /// Allgather).
    pub fn recv_len(&self) -> usize {
        self.send_len * self.roots.len()
    }

    /// Global PSN of local chunk `c` of root index `i`.
    #[inline]
    pub fn global_psn(&self, root_idx: u32, local: u32) -> u32 {
        debug_assert!(local < self.chunks_per_root);
        root_idx * self.chunks_per_root + local
    }

    /// Inverse of [`CollectivePlan::global_psn`]: `(root index, local)`.
    #[inline]
    pub fn split_psn(&self, psn: u32) -> (u32, u32) {
        debug_assert!(psn < self.total_chunks());
        (psn / self.chunks_per_root, psn % self.chunks_per_root)
    }

    /// Subgroup carrying local chunk `c` (contiguous split of the send
    /// buffer across subgroup QPs).
    #[inline]
    pub fn subgroup_of(&self, local: u32) -> u32 {
        (local / self.chunks_per_subgroup).min(self.subgroups - 1)
    }

    /// Byte range of global chunk `psn` inside the receive buffer.
    pub fn recv_range(&self, psn: u32) -> Range<usize> {
        let (root_idx, local) = self.split_psn(psn);
        let base = root_idx as usize * self.send_len;
        let r = self.mtu.chunk_range(local, self.send_len);
        base + r.start..base + r.end
    }

    /// Byte length of global chunk `psn` (last chunk of a block may be
    /// short).
    pub fn chunk_len(&self, psn: u32) -> usize {
        let (_, local) = self.split_psn(psn);
        self.mtu.chunk_range(local, self.send_len).len()
    }

    /// Global PSN range a leaf expects from root index `i`.
    pub fn root_psn_range(&self, root_idx: u32) -> Range<u32> {
        let s = root_idx * self.chunks_per_root;
        s..s + self.chunks_per_root
    }

    /// Chunks rank `r` must receive from the network (its own block, if it
    /// has one, is already local).
    pub fn expected_chunks(&self, rank: Rank) -> u32 {
        match self.root_index(rank) {
            Some(_) => self.total_chunks() - self.chunks_per_root,
            None => self.total_chunks(),
        }
    }

    /// Immediate value for global chunk `psn`.
    #[inline]
    pub fn imm_for(&self, psn: u32) -> mcag_verbs::ImmData {
        self.imm.pack(self.coll_id, psn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ag_plan(p: u32, len: usize, subgroups: u32, chains: u32) -> CollectivePlan {
        CollectivePlan::new(
            CollectiveKind::Allgather,
            p,
            len,
            Mtu::IB_4K,
            ImmLayout::DEFAULT,
            CollectiveId(1),
            subgroups,
            chains,
        )
    }

    #[test]
    fn paper_example_16_ranks_4_subgroups_8mib() {
        // Section IV-C: 16 processes, 4 subgroups, 8 MiB send buffer:
        // send path serves contiguous 2 MiB blocks per subgroup QP; each
        // receive QP handles 30 MiB.
        let plan = ag_plan(16, 8 << 20, 4, 1);
        assert_eq!(plan.chunks_per_root(), 2048);
        assert_eq!(plan.total_chunks(), 2048 * 16);
        assert_eq!(plan.recv_len(), 128 << 20);
        // Per subgroup: 512 local chunks = 2 MiB.
        let per_sub = (0..2048).filter(|&c| plan.subgroup_of(c) == 0).count();
        assert_eq!(per_sub * 4096, 2 << 20);
        // Receive side per subgroup across 15 remote roots: 30 MiB.
        let recv_per_sub = per_sub * 4096 * 15;
        assert_eq!(recv_per_sub, 30 << 20);
    }

    #[test]
    fn broadcast_plan_has_single_block() {
        let plan = CollectivePlan::new(
            CollectiveKind::Broadcast { root: Rank(3) },
            8,
            64 << 10,
            Mtu::IB_4K,
            ImmLayout::DEFAULT,
            CollectiveId(0),
            2,
            4, // chains irrelevant with one root
        );
        assert_eq!(plan.roots(), &[Rank(3)]);
        assert_eq!(plan.root_index(Rank(3)), Some(0));
        assert_eq!(plan.root_index(Rank(0)), None);
        assert_eq!(plan.total_chunks(), 16);
        assert_eq!(plan.recv_len(), 64 << 10);
        assert_eq!(plan.expected_chunks(Rank(3)), 0);
        assert_eq!(plan.expected_chunks(Rank(5)), 16);
        assert_eq!(plan.sequencer().num_steps(), 1);
    }

    #[test]
    fn recv_ranges_tile_receive_buffer() {
        let plan = ag_plan(4, 10_000, 2, 2);
        let mut covered = 0usize;
        for psn in 0..plan.total_chunks() {
            let r = plan.recv_range(psn);
            assert_eq!(r.start, covered);
            assert_eq!(r.len(), plan.chunk_len(psn));
            covered = r.end;
        }
        assert_eq!(covered, plan.recv_len());
    }

    #[test]
    fn subgroup_split_is_contiguous_and_complete() {
        let plan = ag_plan(4, 100 * 4096, 3, 1);
        let mut last_sub = 0;
        for c in 0..plan.chunks_per_root() {
            let s = plan.subgroup_of(c);
            assert!(s >= last_sub, "subgroups must be non-decreasing");
            assert!(s < plan.num_subgroups());
            last_sub = s;
        }
        assert_eq!(last_sub, plan.num_subgroups() - 1);
    }

    #[test]
    fn subgroups_clamped_to_chunk_count() {
        // 2 chunks cannot be spread over 8 subgroups.
        let plan = ag_plan(2, 8192, 8, 1);
        assert_eq!(plan.num_subgroups(), 2);
    }

    #[test]
    #[should_panic(expected = "Fig. 7 constraint")]
    fn psn_budget_enforced() {
        CollectivePlan::new(
            CollectiveKind::Allgather,
            4,
            1 << 20,
            Mtu::IB_4K,
            ImmLayout::new(8), // 256 PSNs only
            CollectiveId(0),
            1,
            1,
        );
    }

    proptest! {
        #[test]
        fn psn_roundtrip(p in 2u32..64, len in 1usize..200_000, psn_seed: u32) {
            let plan = ag_plan(p, len, 4, 2);
            let psn = psn_seed % plan.total_chunks();
            let (root, local) = plan.split_psn(psn);
            prop_assert_eq!(plan.global_psn(root, local), psn);
            prop_assert!(root < p);
            prop_assert!(local < plan.chunks_per_root());
        }

        #[test]
        fn expected_plus_local_is_total(p in 2u32..64, len in 1usize..100_000) {
            let plan = ag_plan(p, len, 2, 1);
            for r in 0..p {
                let e = plan.expected_chunks(Rank(r));
                prop_assert_eq!(e + plan.chunks_per_root(), plan.total_chunks());
            }
        }
    }
}
