//! The concurrent `{Allgather, Reduce-Scatter}` experiment (Section II
//! and Appendix B).
//!
//! FSDP interleaves Allgather (parameter fetch) and Reduce-Scatter
//! (gradient sync) on independent shards, so both compete for NIC
//! injection bandwidth. The paper's headline system claim is that the
//! bandwidth-optimal pair — multicast Allgather plus in-network-compute
//! Reduce-Scatter — "don't share network bottlenecks" and finish up to
//! `S = 2 − 2/P` faster than `{ring, ring}`.
//!
//! This module runs the real pair on the DES fabric: the multicast
//! Allgather state machine and a SHARP-style Reduce-Scatter whose
//! reductions happen inside the simulated switches, sharing each NIC's
//! round-robin QP arbiter and every fabric link.

use crate::msg::ControlMsg;
use crate::plan::{CollectiveKind, CollectivePlan};
use crate::protocol::{McastRankApp, QpLayout, RankTiming};
use crate::ProtocolConfig;
use mcag_simnet::fabric::RunStats;
use mcag_simnet::{Ctx, Fabric, FabricConfig, Payload, RankApp, SimTime, Topology, TrafficReport};
use mcag_verbs::{CollectiveId, Cqe, CqeOpcode, ImmLayout, McastGroupId, Mtu, QpNum, Rank};
use std::sync::Arc;

/// Drain-notification token used by [`IncRsApp`] (offset by the
/// instance's token base when several protocols share one rank; composite
/// apps route `token % TOKEN_STRIDE == RS_TX_TOKEN` to the RS endpoint).
/// Distinct from [`crate::protocol::McastRankApp`]'s cutoff timer (1) and
/// TX-drain tokens (≥ 16) so the two can share a token namespace.
pub const RS_TX_TOKEN: u64 = 5;

/// In-network-compute Reduce-Scatter endpoint: contributes every foreign
/// shard into the switch reduction tree and waits for its own reduced
/// shard to come back down.
pub struct IncRsApp {
    p: u32,
    me: Rank,
    shard_len: usize,
    mtu: Mtu,
    imm: ImmLayout,
    coll: CollectiveId,
    qp: QpNum,
    group: McastGroupId,
    chunks_per_shard: u32,
    got: u32,
    tx_done: bool,
    released: bool,
    auto_mark_done: bool,
    token_base: u64,
    t_start: SimTime,
    t_done: Option<SimTime>,
}

impl IncRsApp {
    /// Build the endpoint. `shard_len` is `N` (bytes of the reduced shard
    /// each rank keeps; the input vector is `N·P`). The `(start, end)`
    /// completion record is read back with [`IncRsApp::times`] after the
    /// run.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        p: u32,
        me: Rank,
        shard_len: usize,
        mtu: Mtu,
        imm: ImmLayout,
        coll: CollectiveId,
        qp: QpNum,
        group: McastGroupId,
    ) -> IncRsApp {
        IncRsApp {
            p,
            me,
            shard_len,
            mtu,
            imm,
            coll,
            qp,
            group,
            chunks_per_shard: mtu.chunks_for(shard_len) as u32,
            got: 0,
            tx_done: false,
            released: false,
            auto_mark_done: true,
            token_base: 0,
            t_start: SimTime::ZERO,
            t_done: None,
        }
    }

    /// Disable automatic `mark_done` (composite drivers).
    pub fn set_auto_mark_done(&mut self, auto: bool) {
        self.auto_mark_done = auto;
    }

    /// Namespace this instance's drain token (communicator index times
    /// [`TOKEN_STRIDE`](crate::protocol::TOKEN_STRIDE)) so several
    /// protocol instances sharing one rank never collide.
    pub fn set_token_base(&mut self, base: u64) {
        self.token_base = base;
    }

    /// Finished (shard received and contributions drained)?
    pub fn is_released(&self) -> bool {
        self.released
    }

    /// `(start, end)` completion record, owned by the app and harvested
    /// by the driver after the run (`None` until released).
    pub fn times(&self) -> Option<(SimTime, SimTime)> {
        self.t_done.map(|d| (self.t_start, d))
    }

    fn maybe_done(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if self.released || !self.tx_done || self.got < self.chunks_per_shard {
            return;
        }
        self.released = true;
        self.t_done = Some(ctx.now());
        if self.auto_mark_done {
            ctx.mark_done();
        }
    }
}

impl RankApp<ControlMsg> for IncRsApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.t_start = ctx.now();
        // Contribute every shard except our own: N(P−1) bytes up the
        // reduction tree (eq. 2's RS send volume). Our own shard's local
        // contribution is folded in at delivery, as SHARP endpoints do.
        for shard in 0..self.p {
            if shard == self.me.0 {
                continue;
            }
            for c in 0..self.chunks_per_shard {
                let psn = shard * self.chunks_per_shard + c;
                let len = self.mtu.chunk_range(c, self.shard_len).len();
                ctx.post_inc_chunk(
                    self.qp,
                    self.group,
                    self.imm.pack(self.coll, psn),
                    Rank(shard),
                    self.qp,
                    psn,
                    len,
                );
            }
        }
        ctx.notify_tx_drained(self.qp, self.token_base + RS_TX_TOKEN);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, _payload: Payload<ControlMsg>) {
        assert_eq!(cqe.opcode, CqeOpcode::Recv);
        let (coll, psn) = self.imm.unpack(cqe.imm.expect("reduced shard without imm"));
        assert_eq!(coll, self.coll, "crossed collective traffic");
        let shard = psn / self.chunks_per_shard;
        assert_eq!(shard, self.me.0, "received a shard we do not own");
        self.got += 1;
        self.maybe_done(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, ControlMsg>, _token: u64) {
        unreachable!("INC RS arms no timers");
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        assert_eq!(token, self.token_base + RS_TX_TOKEN);
        self.tx_done = true;
        self.maybe_done(ctx);
    }
}

/// Endpoint-reduction Reduce-Scatter: the no-offload reference for the
/// in-network backend comparison (`mcag-offload`). Every rank unicasts
/// each foreign-shard chunk straight to the shard's owner, and the
/// owner folds the `P − 1` contributions locally — so each owner's
/// down-link carries `N·(P − 1)` operand bytes where the SHARP path
/// carries `N` reduced bytes, the on-wire gap `backendfigs` measures.
pub struct EndpointRsApp {
    p: u32,
    me: Rank,
    shard_len: usize,
    mtu: Mtu,
    imm: ImmLayout,
    coll: CollectiveId,
    qp: QpNum,
    chunks_per_shard: u32,
    got: u32,
    tx_done: bool,
    released: bool,
    auto_mark_done: bool,
    token_base: u64,
    t_start: SimTime,
    t_done: Option<SimTime>,
}

impl EndpointRsApp {
    /// Build the endpoint. `shard_len` is `N`, as for [`IncRsApp`];
    /// `qp` must be the same rank-local QP number on every rank (SPMD
    /// wiring), since contributions target the owner's twin QP.
    pub fn new(
        p: u32,
        me: Rank,
        shard_len: usize,
        mtu: Mtu,
        imm: ImmLayout,
        coll: CollectiveId,
        qp: QpNum,
    ) -> EndpointRsApp {
        EndpointRsApp {
            p,
            me,
            shard_len,
            mtu,
            imm,
            coll,
            qp,
            chunks_per_shard: mtu.chunks_for(shard_len) as u32,
            got: 0,
            tx_done: false,
            released: false,
            auto_mark_done: true,
            token_base: 0,
            t_start: SimTime::ZERO,
            t_done: None,
        }
    }

    /// Disable automatic `mark_done` (composite drivers).
    pub fn set_auto_mark_done(&mut self, auto: bool) {
        self.auto_mark_done = auto;
    }

    /// Namespace this instance's drain token (see
    /// [`IncRsApp::set_token_base`]).
    pub fn set_token_base(&mut self, base: u64) {
        self.token_base = base;
    }

    /// Finished (all `P − 1` operand streams received and folded,
    /// contributions drained)?
    pub fn is_released(&self) -> bool {
        self.released
    }

    /// `(start, end)` completion record (`None` until released).
    pub fn times(&self) -> Option<(SimTime, SimTime)> {
        self.t_done.map(|d| (self.t_start, d))
    }

    fn expected(&self) -> u32 {
        (self.p - 1) * self.chunks_per_shard
    }

    fn maybe_done(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if self.released || !self.tx_done || self.got < self.expected() {
            return;
        }
        self.released = true;
        self.t_done = Some(ctx.now());
        if self.auto_mark_done {
            ctx.mark_done();
        }
    }
}

impl RankApp<ControlMsg> for EndpointRsApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.t_start = ctx.now();
        // Send every foreign shard's chunks straight to the owner:
        // the same N(P−1) injection as the INC path, but the operands
        // all converge on the owner's NIC instead of merging in-tree.
        for shard in 0..self.p {
            if shard == self.me.0 {
                continue;
            }
            for c in 0..self.chunks_per_shard {
                let psn = shard * self.chunks_per_shard + c;
                let len = self.mtu.chunk_range(c, self.shard_len).len();
                ctx.post_unicast_chunk(
                    Rank(shard),
                    self.qp,
                    Some(self.imm.pack(self.coll, psn)),
                    self.me,
                    psn,
                    len,
                    true,
                );
            }
        }
        ctx.notify_tx_drained(self.qp, self.token_base + RS_TX_TOKEN);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, _payload: Payload<ControlMsg>) {
        assert_eq!(cqe.opcode, CqeOpcode::Recv);
        let (coll, psn) = self.imm.unpack(cqe.imm.expect("operand chunk without imm"));
        assert_eq!(coll, self.coll, "crossed collective traffic");
        let shard = psn / self.chunks_per_shard;
        assert_eq!(shard, self.me.0, "received an operand for a foreign shard");
        self.got += 1;
        self.maybe_done(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, ControlMsg>, _token: u64) {
        unreachable!("endpoint RS arms no timers");
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        assert_eq!(token, self.token_base + RS_TX_TOKEN);
        self.tx_done = true;
        self.maybe_done(ctx);
    }
}

/// Composite endpoint: multicast Allgather and INC Reduce-Scatter running
/// concurrently on one rank, dispatched by QP.
pub struct AgRsDuplexApp {
    ag: McastRankApp,
    rs: IncRsApp,
    rs_qp: QpNum,
    marked: bool,
}

impl AgRsDuplexApp {
    /// Compose the two endpoints (both must have auto-mark-done off).
    pub fn new(mut ag: McastRankApp, mut rs: IncRsApp, rs_qp: QpNum) -> AgRsDuplexApp {
        ag.set_auto_mark_done(false);
        rs.set_auto_mark_done(false);
        AgRsDuplexApp {
            ag,
            rs,
            rs_qp,
            marked: false,
        }
    }

    fn maybe_mark(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if !self.marked && self.ag.is_released() && self.rs.is_released() {
            self.marked = true;
            ctx.mark_done();
        }
    }

    /// Decompose into the two endpoints (harvest path).
    pub fn into_parts(self) -> (McastRankApp, IncRsApp) {
        (self.ag, self.rs)
    }
}

impl RankApp<ControlMsg> for AgRsDuplexApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.ag.on_start(ctx);
        self.rs.on_start(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, payload: Payload<ControlMsg>) {
        if cqe.qp == self.rs_qp {
            self.rs.on_cqe(ctx, cqe, payload);
        } else {
            self.ag.on_cqe(ctx, cqe, payload);
        }
        self.maybe_mark(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        self.ag.on_timer(ctx, token);
        self.maybe_mark(ctx);
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        if token == RS_TX_TOKEN {
            self.rs.on_tx_drained(ctx, token);
        } else {
            self.ag.on_tx_drained(ctx, token);
        }
        self.maybe_mark(ctx);
    }
}

/// Outcome of the concurrent pair.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Allgather per-rank timings.
    pub ag_timings: Vec<RankTiming>,
    /// Reduce-Scatter `(start, end)` per rank.
    pub rs_times: Vec<Option<(SimTime, SimTime)>>,
    /// Fabric statistics.
    pub stats: RunStats,
    /// Link counters.
    pub traffic: TrafficReport,
}

impl ConcurrentOutcome {
    /// Wall time until *both* collectives finished everywhere (ns).
    pub fn pair_completion_ns(&self) -> u64 {
        let ag = self
            .ag_timings
            .iter()
            .map(|t| t.total_ns())
            .max()
            .unwrap_or(0);
        let rs = self
            .rs_times
            .iter()
            .flatten()
            .map(|(s, e)| e.since(*s))
            .max()
            .unwrap_or(0);
        ag.max(rs)
    }
}

/// Run `{AG_mc, RS_inc}` concurrently: every rank allgathers `send_len`
/// bytes while reduce-scattering an `send_len·P` vector, sharing NICs
/// and links.
pub fn run_concurrent_ag_rs(
    topo: Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    send_len: usize,
) -> ConcurrentOutcome {
    let p = topo.num_hosts() as u32;
    let plan = Arc::new(CollectivePlan::new(
        CollectiveKind::Allgather,
        p,
        send_len,
        proto.mtu,
        proto.imm,
        CollectiveId(1),
        proto.subgroups,
        proto.chains,
    ));
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg.clone());

    // The pair roughly doubles the drain time of each collective (they
    // share the NIC), so give the AG cutoff 3× the usual headroom.
    let cutoff = crate::des::cutoff_ns(fab.topology(), &plan, &proto, 3);

    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let n_workers = fabric_cfg.host.rx_workers.max(1);
    let ag_groups: Vec<_> = (0..plan.num_subgroups())
        .map(|_| fab.create_group(&members))
        .collect();
    let rs_group = fab.create_group(&members);

    for &r in &members {
        let ctrl = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        let mut subgroup_qps = Vec::new();
        for (j, &g) in ag_groups.iter().enumerate() {
            let qp = fab.add_qp(r, mcag_verbs::Transport::Ud, j % n_workers);
            fab.attach(r, qp, g);
            subgroup_qps.push(qp);
        }
        // No attach for the RS QP: contributions enter the reduction
        // tree by membership and results return as routed unicast.
        let rs_qp = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        let ag = McastRankApp::new(
            Arc::clone(&plan),
            r,
            QpLayout {
                ctrl,
                subgroup_qps,
                groups: ag_groups.clone(),
            },
            cutoff,
        );
        let rs = IncRsApp::new(
            p,
            r,
            send_len,
            proto.mtu,
            proto.imm,
            CollectiveId(3),
            rs_qp,
            rs_group,
        );
        fab.set_app(r, Box::new(AgRsDuplexApp::new(ag, rs, rs_qp)));
    }

    let stats = fab.run();
    let traffic = fab.traffic();
    let mut ag_timings = Vec::with_capacity(p as usize);
    let mut rs_times = Vec::with_capacity(p as usize);
    for &r in &members {
        let (ag, rs) = fab.take_app_as::<AgRsDuplexApp>(r).into_parts();
        ag_timings.push(ag.timing());
        rs_times.push(rs.times());
    }
    ConcurrentOutcome {
        ag_timings,
        rs_times,
        stats,
        traffic,
    }
}

/// Run the INC Reduce-Scatter alone (for the Fig. 3 decomposition).
pub fn run_inc_reduce_scatter(
    topo: Topology,
    fabric_cfg: FabricConfig,
    mtu: Mtu,
    shard_len: usize,
) -> ConcurrentOutcome {
    let p = topo.num_hosts() as u32;
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg);
    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let group = fab.create_group(&members);
    for &r in &members {
        let qp = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        fab.set_app(
            r,
            Box::new(IncRsApp::new(
                p,
                r,
                shard_len,
                mtu,
                ImmLayout::DEFAULT,
                CollectiveId(3),
                qp,
                group,
            )),
        );
    }
    let stats = fab.run();
    let traffic = fab.traffic();
    let rs_times = members
        .iter()
        .map(|&r| fab.take_app_as::<IncRsApp>(r).times())
        .collect();
    ConcurrentOutcome {
        ag_timings: Vec::new(),
        rs_times,
        stats,
        traffic,
    }
}

/// Composite endpoint: multicast Allgather and *endpoint-reduction*
/// Reduce-Scatter concurrently on one rank (the no-offload twin of
/// [`AgRsDuplexApp`], for the `mcag-offload` backend comparison).
pub struct AgRsEndpointDuplexApp {
    ag: McastRankApp,
    rs: EndpointRsApp,
    rs_qp: QpNum,
    marked: bool,
}

impl AgRsEndpointDuplexApp {
    /// Compose the two endpoints (both must have auto-mark-done off).
    pub fn new(mut ag: McastRankApp, mut rs: EndpointRsApp, rs_qp: QpNum) -> AgRsEndpointDuplexApp {
        ag.set_auto_mark_done(false);
        rs.set_auto_mark_done(false);
        AgRsEndpointDuplexApp {
            ag,
            rs,
            rs_qp,
            marked: false,
        }
    }

    fn maybe_mark(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if !self.marked && self.ag.is_released() && self.rs.is_released() {
            self.marked = true;
            ctx.mark_done();
        }
    }

    /// Decompose into the two endpoints (harvest path).
    pub fn into_parts(self) -> (McastRankApp, EndpointRsApp) {
        (self.ag, self.rs)
    }
}

impl RankApp<ControlMsg> for AgRsEndpointDuplexApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        self.ag.on_start(ctx);
        self.rs.on_start(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, payload: Payload<ControlMsg>) {
        if cqe.qp == self.rs_qp {
            self.rs.on_cqe(ctx, cqe, payload);
        } else {
            self.ag.on_cqe(ctx, cqe, payload);
        }
        self.maybe_mark(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        self.ag.on_timer(ctx, token);
        self.maybe_mark(ctx);
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        if token == RS_TX_TOKEN {
            self.rs.on_tx_drained(ctx, token);
        } else {
            self.ag.on_tx_drained(ctx, token);
        }
        self.maybe_mark(ctx);
    }
}

/// Run the endpoint-reduction Reduce-Scatter alone: same `N(P−1)`
/// injection as [`run_inc_reduce_scatter`], but operands converge on
/// each owner's NIC and fold there (no fabric compute, no aggregation
/// table). The wire-traffic delta against the INC run is the SHARP
/// backend's advantage.
pub fn run_endpoint_reduce_scatter(
    topo: Topology,
    fabric_cfg: FabricConfig,
    mtu: Mtu,
    shard_len: usize,
) -> ConcurrentOutcome {
    let p = topo.num_hosts() as u32;
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg);
    let members: Vec<Rank> = (0..p).map(Rank).collect();
    for &r in &members {
        let qp = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        fab.set_app(
            r,
            Box::new(EndpointRsApp::new(
                p,
                r,
                shard_len,
                mtu,
                ImmLayout::DEFAULT,
                CollectiveId(3),
                qp,
            )),
        );
    }
    let stats = fab.run();
    let traffic = fab.traffic();
    let rs_times = members
        .iter()
        .map(|&r| fab.take_app_as::<EndpointRsApp>(r).times())
        .collect();
    ConcurrentOutcome {
        ag_timings: Vec::new(),
        rs_times,
        stats,
        traffic,
    }
}

/// Run `{AG_mc, RS_endpoint}` concurrently: the no-offload twin of
/// [`run_concurrent_ag_rs`] — identical Allgather, but the
/// Reduce-Scatter's operands are unicast to their owners and reduced
/// on the endpoints instead of in the switches.
pub fn run_concurrent_ag_rs_endpoint(
    topo: Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    send_len: usize,
) -> ConcurrentOutcome {
    let p = topo.num_hosts() as u32;
    let plan = Arc::new(CollectivePlan::new(
        CollectiveKind::Allgather,
        p,
        send_len,
        proto.mtu,
        proto.imm,
        CollectiveId(1),
        proto.subgroups,
        proto.chains,
    ));
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg.clone());
    let cutoff = crate::des::cutoff_ns(fab.topology(), &plan, &proto, 3);

    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let n_workers = fabric_cfg.host.rx_workers.max(1);
    let ag_groups: Vec<_> = (0..plan.num_subgroups())
        .map(|_| fab.create_group(&members))
        .collect();

    for &r in &members {
        let ctrl = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        let mut subgroup_qps = Vec::new();
        for (j, &g) in ag_groups.iter().enumerate() {
            let qp = fab.add_qp(r, mcag_verbs::Transport::Ud, j % n_workers);
            fab.attach(r, qp, g);
            subgroup_qps.push(qp);
        }
        // SPMD wiring gives the RS QP the same number on every rank,
        // so contributions can target the owner's twin QP directly.
        let rs_qp = fab.add_qp(r, mcag_verbs::Transport::Rc, 0);
        let ag = McastRankApp::new(
            Arc::clone(&plan),
            r,
            QpLayout {
                ctrl,
                subgroup_qps,
                groups: ag_groups.clone(),
            },
            cutoff,
        );
        let rs = EndpointRsApp::new(p, r, send_len, proto.mtu, proto.imm, CollectiveId(3), rs_qp);
        fab.set_app(r, Box::new(AgRsEndpointDuplexApp::new(ag, rs, rs_qp)));
    }

    let stats = fab.run();
    let traffic = fab.traffic();
    let mut ag_timings = Vec::with_capacity(p as usize);
    let mut rs_times = Vec::with_capacity(p as usize);
    for &r in &members {
        let (ag, rs) = fab.take_app_as::<AgRsEndpointDuplexApp>(r).into_parts();
        ag_timings.push(ag.timing());
        rs_times.push(rs.times());
    }
    ConcurrentOutcome {
        ag_timings,
        rs_times,
        stats,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    fn star(n: usize) -> Topology {
        Topology::single_switch(n, LinkRate::CX3_56G, 100)
    }

    #[test]
    fn inc_reduce_scatter_completes() {
        let out =
            run_inc_reduce_scatter(star(6), FabricConfig::ucc_default(), Mtu::IB_4K, 64 << 10);
        assert!(out.stats.all_done(), "{:?}", out.stats);
        for t in out.rs_times.iter() {
            assert!(t.is_some());
        }
    }

    #[test]
    fn inc_rs_is_bandwidth_optimal_on_the_wire() {
        // Up-traffic: each rank injects N(P-1); each switch-child link
        // carries at most one merged copy per (shard, chunk) stream; the
        // down-traffic is one shard per rank. On a star: uplinks carry
        // N(P-1) each, downlinks carry N each.
        let n: u64 = 64 << 10;
        let p = 6u64;
        let out = run_inc_reduce_scatter(
            star(p as usize),
            FabricConfig::ideal(),
            Mtu::IB_4K,
            n as usize,
        );
        let total = out.traffic.total_data_bytes();
        // P uplinks x N(P-1) + P downlinks x N.
        assert_eq!(total, p * n * (p - 1) + p * n);
    }

    #[test]
    fn endpoint_reduce_scatter_completes() {
        let out =
            run_endpoint_reduce_scatter(star(6), FabricConfig::ucc_default(), Mtu::IB_4K, 64 << 10);
        assert!(out.stats.all_done(), "{:?}", out.stats);
        for t in out.rs_times.iter() {
            assert!(t.is_some());
        }
    }

    #[test]
    fn endpoint_rs_pays_the_operand_convergence_on_the_wire() {
        // Endpoint reduction: uplinks still carry N(P-1) each, but
        // every owner's downlink now carries the full P-1 operand
        // streams (N(P-1) bytes) instead of one reduced shard (N).
        let n: u64 = 64 << 10;
        let p = 6u64;
        let endpoint = run_endpoint_reduce_scatter(
            star(p as usize),
            FabricConfig::ideal(),
            Mtu::IB_4K,
            n as usize,
        );
        assert_eq!(
            endpoint.traffic.total_data_bytes(),
            2 * p * n * (p - 1),
            "P uplinks and P downlinks each moving N(P-1)"
        );
        let inc = run_inc_reduce_scatter(
            star(p as usize),
            FabricConfig::ideal(),
            Mtu::IB_4K,
            n as usize,
        );
        assert!(
            inc.traffic.total_data_bytes() < endpoint.traffic.total_data_bytes(),
            "in-switch reduction must move fewer bytes"
        );
    }

    #[test]
    fn concurrent_pair_completes() {
        let out = run_concurrent_ag_rs(
            star(4),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            32 << 10,
        );
        assert!(out.stats.all_done(), "{:?}", out.stats);
        assert!(out.pair_completion_ns() > 0);
    }

    #[test]
    fn appendix_b_speedup_shape() {
        // {AG_mc, RS_inc} vs {AG_ring, RS_ring} on the same fabric: the
        // measured speedup should approach 2 - 2/P.
        use mcag_baselines_shim::*;
        let p = 8u32;
        let n = 256 << 10;
        // Appendix B's fluid model has every rank's send path busy with
        // its own multicast; that corresponds to fully parallel chains
        // (M = P). With M = 1 the sequential root bursts each run at the
        // NIC's shared rate and the chain stretches ~2x.
        let opt = run_concurrent_ag_rs(
            star(p as usize),
            FabricConfig::ideal(),
            ProtocolConfig::parallel(1, p),
            n,
        );
        assert!(opt.stats.all_done());
        let t_opt = opt.pair_completion_ns();
        let t_ring = ring_ring_completion_ns(p, n);
        let s = t_ring as f64 / t_opt as f64;
        let expect = 2.0 - 2.0 / p as f64;
        assert!(
            (s - expect).abs() / expect < 0.35,
            "speedup {s:.2} vs expected {expect:.2}"
        );
    }

    /// Minimal ring+ring reference implemented locally (mcag-baselines
    /// depends on simnet, not on core, so tests shim the comparison here;
    /// the bench crate uses the real baselines executor).
    mod mcag_baselines_shim {
        use super::*;

        pub fn ring_ring_completion_ns(p: u32, n: usize) -> u64 {
            // Both rings move N(P-1) in each NIC direction, sharing the
            // link: the serialization bound is 2·N(P-1)/B plus per-hop
            // latencies; measure it on the fabric with a tiny
            // schedule-driven app rather than closed form.
            // Here: analytic lower bound with the same wire overhead
            // model used by the fabric (headers per 64 KiB segment).
            let link = LinkRate::CX3_56G;
            let seg: u64 = 64 << 10;
            let msgs = (n as u64).div_ceil(seg);
            let wire_per_step = link.serialization_ns(n + (msgs as usize) * 64);
            // 2 flows x (P-1) steps sharing the injection port.
            2 * (p as u64 - 1) * wire_per_step
        }
    }
}
