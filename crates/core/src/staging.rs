//! Receive-side staging area (Section III-B, "Receive-side staging").
//!
//! Because UD datagrams may be dropped or — with adaptive routing —
//! reordered, the user's receive buffer cannot be pre-posted directly: a
//! chunk landing in the wrong pre-posted slot would corrupt the buffer.
//! Instead every datagram lands in a slot of a fixed ring of MTU-sized
//! staging slots; the PSN in the completion tells the worker where in the
//! user buffer the chunk belongs, and a (non-blocking) DMA copy moves it
//! there before the slot is re-posted.
//!
//! This module owns the slot lifecycle (posted → filled → copied →
//! re-posted) and, for byte-moving fabrics, the staging storage itself.
//! The BlueField-3 numbers from the paper bound the ring: RQ depth 8192 ×
//! 4 KiB MTU = 32 MiB maximum, 4 MiB practical for 200 Gbit/s.

use mcag_verbs::Mtu;

/// State of one staging slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Posted to the receive queue, waiting for a datagram.
    Posted,
    /// Holds a received chunk not yet copied out.
    Filled { psn: u32, len: usize },
}

/// A ring of MTU-sized receive staging slots with real backing storage.
#[derive(Debug, Clone)]
pub struct StagingRing {
    mtu: Mtu,
    storage: Vec<u8>,
    slots: Vec<SlotState>,
    free: Vec<u32>,
    /// High-water mark of simultaneously filled slots (occupancy pressure).
    max_outstanding: usize,
    outstanding: usize,
}

impl StagingRing {
    /// A ring of `depth` slots of `mtu` bytes each, all posted.
    pub fn new(depth: usize, mtu: Mtu) -> StagingRing {
        assert!(depth > 0, "staging ring needs at least one slot");
        StagingRing {
            mtu,
            storage: vec![0u8; depth * mtu.bytes()],
            slots: vec![SlotState::Posted; depth],
            free: (0..depth as u32).rev().collect(),
            max_outstanding: 0,
            outstanding: 0,
        }
    }

    /// The 4 MiB / 200 Gbit/s configuration the paper found practical.
    pub fn practical_200g() -> StagingRing {
        StagingRing::new((4 << 20) / Mtu::IB_4K.bytes(), Mtu::IB_4K)
    }

    /// Number of slots.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Slot payload capacity.
    pub fn mtu(&self) -> Mtu {
        self.mtu
    }

    /// Total staging memory (the Section III-D footprint item).
    pub fn memory_bytes(&self) -> usize {
        self.storage.len()
    }

    /// Slots currently posted (available for incoming datagrams).
    pub fn posted(&self) -> usize {
        self.free.len()
    }

    /// Peak number of simultaneously filled slots observed.
    pub fn max_outstanding(&self) -> usize {
        self.max_outstanding
    }

    /// A datagram of `len` bytes with sequence number `psn` arrived:
    /// fill the next posted slot with `data`. Returns the slot index, or
    /// `None` on RNR (no posted slot — the datagram is lost).
    pub fn receive(&mut self, psn: u32, data: &[u8]) -> Option<u32> {
        assert!(
            data.len() <= self.mtu.bytes(),
            "datagram larger than MTU slot"
        );
        let slot = self.next_posted()?;
        let base = slot as usize * self.mtu.bytes();
        self.storage[base..base + data.len()].copy_from_slice(data);
        self.slots[slot as usize] = SlotState::Filled {
            psn,
            len: data.len(),
        };
        self.outstanding += 1;
        self.max_outstanding = self.max_outstanding.max(self.outstanding);
        Some(slot)
    }

    /// Copy slot `slot` into its place in `user_buf` (the DMA step 4 of
    /// Fig. 6) and re-post the slot. Returns `(psn, chunk_len)`.
    ///
    /// # Panics
    /// If the slot is not filled, or the PSN-derived range exceeds
    /// `user_buf` — both indicate datapath bugs.
    pub fn copy_out(&mut self, slot: u32, user_buf: &mut [u8]) -> (u32, usize) {
        let SlotState::Filled { psn, len } = self.slots[slot as usize] else {
            panic!("copy_out of slot {slot} that is not filled");
        };
        let dst = self.mtu.chunk_range(psn, user_buf.len());
        assert_eq!(
            dst.len(),
            len,
            "chunk {psn} length {len} does not match destination range {dst:?}"
        );
        let base = slot as usize * self.mtu.bytes();
        user_buf[dst].copy_from_slice(&self.storage[base..base + len]);
        self.slots[slot as usize] = SlotState::Posted;
        self.free.push(slot);
        self.outstanding -= 1;
        (psn, len)
    }

    /// PSN recorded in a filled slot (to look up its destination before
    /// a [`StagingRing::copy_out_to`]).
    ///
    /// # Panics
    /// If the slot is not filled.
    pub fn slot_psn(&self, slot: u32) -> u32 {
        match self.slots[slot as usize] {
            SlotState::Filled { psn, .. } => psn,
            SlotState::Posted => panic!("slot {slot} is not filled"),
        }
    }

    /// Like [`StagingRing::copy_out`], but with an explicit destination
    /// range — used when the chunk's place in the user buffer is not a
    /// plain `psn × MTU` offset (e.g. Allgather receive buffers, where
    /// each root's block may end on a short chunk so later blocks are
    /// not MTU-aligned). Returns `(psn, chunk_len)`.
    pub fn copy_out_to(
        &mut self,
        slot: u32,
        user_buf: &mut [u8],
        dst: std::ops::Range<usize>,
    ) -> (u32, usize) {
        let SlotState::Filled { psn, len } = self.slots[slot as usize] else {
            panic!("copy_out_to of slot {slot} that is not filled");
        };
        assert_eq!(
            dst.len(),
            len,
            "chunk {psn} length {len} does not match destination range {dst:?}"
        );
        let base = slot as usize * self.mtu.bytes();
        user_buf[dst].copy_from_slice(&self.storage[base..base + len]);
        self.slots[slot as usize] = SlotState::Posted;
        self.free.push(slot);
        self.outstanding -= 1;
        (psn, len)
    }

    /// Drop a filled slot without copying (duplicate chunk from recovery).
    pub fn discard(&mut self, slot: u32) {
        assert!(
            matches!(self.slots[slot as usize], SlotState::Filled { .. }),
            "discard of slot {slot} that is not filled"
        );
        self.slots[slot as usize] = SlotState::Posted;
        self.free.push(slot);
        self.outstanding -= 1;
    }

    fn next_posted(&mut self) -> Option<u32> {
        self.free.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fill_and_copy_roundtrip() {
        let mtu = Mtu::new(8);
        let mut ring = StagingRing::new(4, mtu);
        let mut user = vec![0u8; 24]; // 3 chunks
        let s = ring.receive(1, &[9, 9, 9, 9, 9, 9, 9, 9]).unwrap();
        let (psn, len) = ring.copy_out(s, &mut user);
        assert_eq!((psn, len), (1, 8));
        assert_eq!(&user[8..16], &[9; 8]);
        assert_eq!(&user[0..8], &[0; 8]);
    }

    #[test]
    fn short_final_chunk() {
        let mtu = Mtu::new(8);
        let mut ring = StagingRing::new(4, mtu);
        let mut user = vec![0u8; 20]; // chunks: 8, 8, 4
        let s = ring.receive(2, &[7, 7, 7, 7]).unwrap();
        let (psn, len) = ring.copy_out(s, &mut user);
        assert_eq!((psn, len), (2, 4));
        assert_eq!(&user[16..20], &[7; 4]);
    }

    #[test]
    fn rnr_when_ring_exhausted() {
        let mut ring = StagingRing::new(2, Mtu::new(4));
        assert!(ring.receive(0, &[1]).is_some());
        assert!(ring.receive(1, &[2]).is_some());
        assert!(ring.receive(2, &[3]).is_none(), "third receive must RNR");
        assert_eq!(ring.posted(), 0);
    }

    #[test]
    fn slot_reuse_after_copy() {
        let mut ring = StagingRing::new(1, Mtu::new(4));
        let mut user = vec![0u8; 8];
        for round in 0..10u8 {
            let s = ring.receive((round % 2) as u32, &[round; 4]).unwrap();
            ring.copy_out(s, &mut user);
        }
        assert_eq!(ring.max_outstanding(), 1);
        assert_eq!(&user[0..4], &[8; 4]);
        assert_eq!(&user[4..8], &[9; 4]);
    }

    #[test]
    fn discard_reposts_without_copy() {
        let mut ring = StagingRing::new(1, Mtu::new(4));
        let s = ring.receive(0, &[5; 4]).unwrap();
        ring.discard(s);
        assert_eq!(ring.posted(), 1);
        assert!(ring.receive(1, &[6; 4]).is_some());
    }

    #[test]
    #[should_panic(expected = "not filled")]
    fn double_copy_panics() {
        let mut ring = StagingRing::new(2, Mtu::new(4));
        let mut user = vec![0u8; 8];
        let s = ring.receive(0, &[1; 4]).unwrap();
        ring.copy_out(s, &mut user);
        ring.copy_out(s, &mut user);
    }

    #[test]
    fn paper_memory_budget() {
        let ring = StagingRing::practical_200g();
        assert_eq!(ring.memory_bytes(), 4 << 20);
        // Maximum configuration: RQ depth 8192 x 4 KiB = 32 MiB.
        let max = StagingRing::new(8192, Mtu::IB_4K);
        assert_eq!(max.memory_bytes(), 32 << 20);
    }

    proptest! {
        /// Chunks arriving in any order, with duplicates discarded,
        /// reassemble the exact source buffer.
        #[test]
        fn out_of_order_reassembly(
            len in 1usize..4000,
            mtu in 1usize..128,
            seed in any::<u64>(),
        ) {
            use rand::{seq::SliceRandom, SeedableRng};
            let mtu = Mtu::new(mtu);
            let src: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let n = mtu.chunks_for(len);
            let mut order: Vec<u32> = (0..n as u32).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
            // Duplicate a prefix of chunks to simulate recovery overlap.
            let dups: Vec<u32> = order.iter().take(n / 3).copied().collect();
            order.extend(dups);

            let mut ring = StagingRing::new(8, mtu);
            let mut user = vec![0u8; len];
            let mut seen = std::collections::HashSet::new();
            for psn in order {
                let r = mtu.chunk_range(psn, len);
                let slot = ring.receive(psn, &src[r]).unwrap();
                if seen.insert(psn) {
                    ring.copy_out(slot, &mut user);
                } else {
                    ring.discard(slot);
                }
            }
            prop_assert_eq!(user, src);
        }
    }
}
