//! The receive-buffer bitmap — the protocol's only state that grows with
//! the buffer (Section III-D(c)).
//!
//! Every received chunk sets one bit, indexed by the PSN carried in the
//! CQE immediate data. The bitmap is chosen over ACK-based schemes because
//! it "allows us to store information about drops in a compact way with
//! minimal overhead on the receive datapath throughput": a set is one
//! load+or+store, completeness is a popcount the datapath maintains
//! incrementally, and after the cutoff timer the recovery phase walks the
//! zero runs to build selective RDMA Read fetches.

/// Fixed-capacity chunk bitmap with an incrementally-maintained count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkBitmap {
    words: Vec<u64>,
    len: usize,
    set_count: usize,
}

impl ChunkBitmap {
    /// A bitmap tracking `len` chunks, all initially missing.
    pub fn new(len: usize) -> ChunkBitmap {
        ChunkBitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
            set_count: 0,
        }
    }

    /// Number of chunks tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap tracks zero chunks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of state this bitmap occupies — the Fig. 7 budget that must
    /// fit in the DPA's 1.5 MB last-level cache.
    #[inline]
    pub fn state_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Mark chunk `psn` received. Returns `true` if the bit was newly set
    /// (duplicates from recovery re-reads return `false`).
    ///
    /// # Panics
    /// If `psn` is out of range — corrupted immediate data must not be
    /// silently accepted.
    #[inline]
    pub fn set(&mut self, psn: u32) -> bool {
        let i = psn as usize;
        assert!(i < self.len, "PSN {psn} out of range (len {})", self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.set_count += 1;
            true
        } else {
            false
        }
    }

    /// Mark `range` of chunks received (recovery bulk-fill after an RDMA
    /// Read lands). Returns how many bits were newly set.
    pub fn set_range(&mut self, range: std::ops::Range<u32>) -> usize {
        let mut newly = 0;
        for psn in range {
            if self.set(psn) {
                newly += 1;
            }
        }
        newly
    }

    /// Is chunk `psn` present?
    #[inline]
    pub fn get(&self, psn: u32) -> bool {
        let i = psn as usize;
        assert!(i < self.len, "PSN {psn} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Chunks received so far.
    #[inline]
    pub fn count(&self) -> usize {
        self.set_count
    }

    /// All chunks received?
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.set_count == self.len
    }

    /// Chunks still missing.
    #[inline]
    pub fn missing(&self) -> usize {
        self.len - self.set_count
    }

    /// Iterate maximal runs of missing chunks as `start..end` ranges —
    /// these become the selective zero-copy fetches of the recovery phase.
    pub fn missing_runs(&self) -> MissingRuns<'_> {
        MissingRuns {
            bm: self,
            cursor: 0,
        }
    }
}

/// Iterator over maximal zero runs; see [`ChunkBitmap::missing_runs`].
#[derive(Debug, Clone)]
pub struct MissingRuns<'a> {
    bm: &'a ChunkBitmap,
    cursor: usize,
}

impl Iterator for MissingRuns<'_> {
    type Item = std::ops::Range<u32>;

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.bm.len;
        let mut i = self.cursor;
        // Skip present chunks word-at-a-time to the next missing one.
        while i < n {
            let (w, b) = (i / 64, i % 64);
            let inv = !self.bm.words[w] >> b; // ones where chunks are missing
            if inv == 0 {
                i += 64 - b;
                continue;
            }
            i += inv.trailing_zeros() as usize;
            break;
        }
        if i >= n {
            self.cursor = n;
            return None;
        }
        let start = i;
        // Extend across the missing run.
        while i < n {
            let (w, b) = (i / 64, i % 64);
            let word = self.bm.words[w] >> b; // ones where chunks are present
            if word == 0 {
                i += 64 - b;
                continue;
            }
            i += word.trailing_zeros() as usize;
            break;
        }
        let end = i.min(n);
        self.cursor = end;
        Some(start as u32..end as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn set_get_count() {
        let mut bm = ChunkBitmap::new(100);
        assert!(!bm.get(5));
        assert!(bm.set(5));
        assert!(!bm.set(5), "duplicate set must report false");
        assert!(bm.get(5));
        assert_eq!(bm.count(), 1);
        assert_eq!(bm.missing(), 99);
        assert!(!bm.is_complete());
    }

    #[test]
    fn completeness() {
        let mut bm = ChunkBitmap::new(130);
        for i in 0..130 {
            bm.set(i);
        }
        assert!(bm.is_complete());
        assert_eq!(bm.missing_runs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_rejected() {
        let mut bm = ChunkBitmap::new(10);
        bm.set(10);
    }

    #[test]
    fn missing_runs_simple() {
        let mut bm = ChunkBitmap::new(10);
        for i in [0, 1, 4, 9] {
            bm.set(i);
        }
        let runs: Vec<_> = bm.missing_runs().collect();
        assert_eq!(runs, vec![2..4, 5..9]);
    }

    #[test]
    fn missing_runs_all_missing() {
        let bm = ChunkBitmap::new(200);
        let runs: Vec<_> = bm.missing_runs().collect();
        assert_eq!(runs, vec![0..200]);
    }

    #[test]
    fn missing_runs_word_boundaries() {
        let mut bm = ChunkBitmap::new(192);
        // Present: entire middle word (64..128).
        for i in 64..128 {
            bm.set(i);
        }
        let runs: Vec<_> = bm.missing_runs().collect();
        assert_eq!(runs, vec![0..64, 128..192]);
    }

    #[test]
    fn set_range_counts_new_bits() {
        let mut bm = ChunkBitmap::new(50);
        bm.set(12);
        let newly = bm.set_range(10..20);
        assert_eq!(newly, 9);
        assert_eq!(bm.count(), 10);
    }

    #[test]
    fn fig7_sizing_fits_dpa_llc() {
        // 8 MiB receive buffer at 4 KiB chunks -> 2048 bits = 256 B.
        let bm = ChunkBitmap::new(2048);
        assert_eq!(bm.state_bytes(), 256);
        // A ~50 GB buffer's bitmap must sit around the 1.5 MB LLC budget
        // (Section III-D: "the bitmap size that fits in the DPA LLC
        // (1.5 MB) will allow addressing ... approximately 50 GB").
        let chunks_50gb = 50_000_000_000u64 / 4096;
        let bm = ChunkBitmap::new(chunks_50gb as usize);
        assert!(bm.state_bytes() <= 1_572_864, "{}", bm.state_bytes());
    }

    proptest! {
        #[test]
        fn matches_reference_set(len in 1usize..2000, ops in prop::collection::vec(0u32..2000, 0..400)) {
            let mut bm = ChunkBitmap::new(len);
            let mut reference = BTreeSet::new();
            for op in ops {
                let psn = op % len as u32;
                let newly = bm.set(psn);
                prop_assert_eq!(newly, reference.insert(psn));
            }
            prop_assert_eq!(bm.count(), reference.len());
            for i in 0..len as u32 {
                prop_assert_eq!(bm.get(i), reference.contains(&i));
            }
        }

        #[test]
        fn missing_runs_partition_missing(len in 1usize..1500, seed in prop::collection::vec(any::<bool>(), 1..1500)) {
            let mut bm = ChunkBitmap::new(len);
            for (i, &present) in seed.iter().take(len).enumerate() {
                if present {
                    bm.set(i as u32);
                }
            }
            let mut missing_from_runs = Vec::new();
            let mut last_end = 0u32;
            for run in bm.missing_runs() {
                // Runs are ordered, non-empty, non-adjacent.
                prop_assert!(run.start >= last_end);
                prop_assert!(run.end > run.start);
                if run.start == last_end && last_end != 0 {
                    // Adjacent runs should have been merged.
                    prop_assert!(run.start != last_end);
                }
                last_end = run.end;
                missing_from_runs.extend(run.clone());
            }
            let expected: Vec<u32> = (0..len as u32).filter(|&i| !bm.get(i)).collect();
            prop_assert_eq!(missing_from_runs, expected);
        }
    }
}
