//! Multiple communicators per rank (Section V-C).
//!
//! "In our setup, each new communicator is mapped to a set of threads. A
//! single thread serves a group of parallel multicast trees, with each
//! tree associated with a bitmap." Several collectives — different
//! training streams, interleaved FSDP layers — progress concurrently on
//! every rank, each with its own multicast groups, QPs, bitmap and
//! collective id in the immediate bits; they share the NIC's round-robin
//! arbiter and the fabric.
//!
//! [`MultiCommApp`] hosts one [`McastRankApp`] per communicator on a
//! rank, routing completions by QP and timers/drains by token namespace;
//! [`run_concurrent_allgathers`] drives `k` simultaneous Allgathers and
//! reports per-communicator timings.

use crate::msg::ControlMsg;
use crate::plan::{CollectiveKind, CollectivePlan};
use crate::protocol::{McastRankApp, QpLayout, RankTiming, TOKEN_STRIDE};
use crate::ProtocolConfig;
use mcag_simnet::fabric::RunStats;
use mcag_simnet::{Ctx, Fabric, FabricConfig, Payload, RankApp, Topology, TrafficReport};
use mcag_verbs::{CollectiveId, Cqe, Rank, Transport};
use std::sync::Arc;

/// One rank's view of several concurrently progressing communicators.
pub struct MultiCommApp {
    apps: Vec<McastRankApp>,
    /// `qp_owner[qp]` = communicator index owning that QP.
    qp_owner: Vec<usize>,
    marked: bool,
}

impl MultiCommApp {
    /// Compose `apps` (communicator `i` gets token base `i·TOKEN_STRIDE`;
    /// `qp_owner` maps every rank-local QP index to its communicator).
    pub fn new(mut apps: Vec<McastRankApp>, qp_owner: Vec<usize>) -> MultiCommApp {
        assert!(!apps.is_empty());
        for (i, a) in apps.iter_mut().enumerate() {
            a.set_auto_mark_done(false);
            a.set_token_base(i as u64 * TOKEN_STRIDE);
        }
        MultiCommApp {
            apps,
            qp_owner,
            marked: false,
        }
    }

    fn maybe_mark(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        if !self.marked && self.apps.iter().all(|a| a.is_released()) {
            self.marked = true;
            ctx.mark_done();
        }
    }

    /// Decompose into the per-communicator endpoints (harvest path):
    /// entry `c` is communicator `c`'s protocol instance on this rank.
    pub fn into_apps(self) -> Vec<McastRankApp> {
        self.apps
    }
}

impl RankApp<ControlMsg> for MultiCommApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ControlMsg>) {
        for a in &mut self.apps {
            a.on_start(ctx);
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ControlMsg>, cqe: Cqe, payload: Payload<ControlMsg>) {
        let owner = self.qp_owner[cqe.qp.0 as usize];
        self.apps[owner].on_cqe(ctx, cqe, payload);
        self.maybe_mark(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        let owner = (token / TOKEN_STRIDE) as usize;
        self.apps[owner].on_timer(ctx, token);
        self.maybe_mark(ctx);
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ControlMsg>, token: u64) {
        let owner = (token / TOKEN_STRIDE) as usize;
        self.apps[owner].on_tx_drained(ctx, token);
        self.maybe_mark(ctx);
    }
}

/// Outcome of `k` concurrent communicators.
#[derive(Debug, Clone)]
pub struct MultiCommOutcome {
    /// Per-communicator, per-rank timings.
    pub per_comm: Vec<Vec<RankTiming>>,
    /// Fabric statistics.
    pub stats: RunStats,
    /// Link counters (all communicators combined).
    pub traffic: TrafficReport,
}

impl MultiCommOutcome {
    /// Completion time of communicator `c` (last rank release), ns.
    pub fn comm_completion_ns(&self, c: usize) -> u64 {
        self.per_comm[c]
            .iter()
            .map(|t| t.total_ns())
            .max()
            .unwrap_or(0)
    }

    /// Completion of the whole batch.
    pub fn batch_completion_ns(&self) -> u64 {
        (0..self.per_comm.len())
            .map(|c| self.comm_completion_ns(c))
            .max()
            .unwrap_or(0)
    }
}

/// Run `k` identical Allgathers (one per communicator) concurrently on
/// `topo`, each of `send_len` bytes per rank.
pub fn run_concurrent_allgathers(
    topo: Topology,
    fabric_cfg: FabricConfig,
    proto: ProtocolConfig,
    send_len: usize,
    k: usize,
) -> MultiCommOutcome {
    assert!(k >= 1);
    let p = topo.num_hosts() as u32;
    let mut fab: Fabric<ControlMsg> = Fabric::new(topo, fabric_cfg.clone());
    let members: Vec<Rank> = (0..p).map(Rank).collect();
    let n_workers = fabric_cfg.host.rx_workers.max(1);

    // Per-communicator plans and groups.
    let mut plans = Vec::with_capacity(k);
    let mut groups_per_comm = Vec::with_capacity(k);
    for c in 0..k {
        let plan = Arc::new(CollectivePlan::new(
            CollectiveKind::Allgather,
            p,
            send_len,
            proto.mtu,
            proto.imm,
            CollectiveId(c as u32 + 1),
            proto.subgroups,
            proto.chains,
        ));
        let groups: Vec<_> = (0..plan.num_subgroups())
            .map(|_| fab.create_group(&members))
            .collect();
        plans.push(plan);
        groups_per_comm.push(groups);
    }

    // k communicators share the link: give the cutoff k× the headroom.
    let cutoff = crate::des::cutoff_ns(fab.topology(), &plans[0], &proto, k as u64 + 1);

    for &r in &members {
        let mut apps = Vec::with_capacity(k);
        let mut qp_owner = Vec::new();
        for c in 0..k {
            let ctrl = fab.add_qp(r, Transport::Rc, 0);
            qp_owner.push(c);
            let mut subgroup_qps = Vec::new();
            for (j, &g) in groups_per_comm[c].iter().enumerate() {
                // Communicators round-robin over the RX workers
                // (Section V-C's thread mapping).
                let qp = fab.add_qp(r, Transport::Ud, (c + j) % n_workers);
                fab.attach(r, qp, g);
                subgroup_qps.push(qp);
                qp_owner.push(c);
            }
            apps.push(McastRankApp::new(
                Arc::clone(&plans[c]),
                r,
                QpLayout {
                    ctrl,
                    subgroup_qps,
                    groups: groups_per_comm[c].clone(),
                },
                cutoff,
            ));
        }
        fab.set_app(r, Box::new(MultiCommApp::new(apps, qp_owner)));
    }

    let stats = fab.run();
    let traffic = fab.traffic();
    let mut per_comm = vec![vec![RankTiming::default(); p as usize]; k];
    for &r in &members {
        let apps = fab.take_app_as::<MultiCommApp>(r).into_apps();
        for (c, app) in apps.into_iter().enumerate() {
            per_comm[c][r.idx()] = app.timing();
        }
    }
    MultiCommOutcome {
        per_comm,
        stats,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    fn star(n: usize) -> Topology {
        Topology::single_switch(n, LinkRate::CX3_56G, 100)
    }

    #[test]
    fn four_communicators_complete() {
        let out = run_concurrent_allgathers(
            star(6),
            FabricConfig::ucc_default(),
            ProtocolConfig::default(),
            64 << 10,
            4,
        );
        assert!(out.stats.all_done(), "{:?}", out.stats);
        assert_eq!(out.per_comm.len(), 4);
        for c in 0..4 {
            assert!(out.comm_completion_ns(c) > 0);
            for t in &out.per_comm[c] {
                assert!(t.t_done.is_some());
            }
        }
    }

    #[test]
    fn communicators_share_bandwidth_fairly() {
        let n = 128usize << 10;
        let solo = run_concurrent_allgathers(
            star(4),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            n,
            1,
        );
        let quad = run_concurrent_allgathers(
            star(4),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            n,
            4,
        );
        assert!(quad.stats.all_done());
        let t1 = solo.batch_completion_ns() as f64;
        let t4 = quad.batch_completion_ns() as f64;
        // 4 communicators over one link: ~4x the time (within slack).
        assert!(
            (3.0..5.5).contains(&(t4 / t1)),
            "4-comm slowdown {}",
            t4 / t1
        );
        // Fairness: RR arbitration keeps communicators within ~25%.
        let times: Vec<u64> = (0..4).map(|c| quad.comm_completion_ns(c)).collect();
        let (min, max) = (
            *times.iter().min().unwrap() as f64,
            *times.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.25, "unfair communicators: {times:?}");
    }

    #[test]
    fn traffic_scales_linearly_with_communicators() {
        let n = 32usize << 10;
        let one = run_concurrent_allgathers(
            star(5),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            n,
            1,
        );
        let three = run_concurrent_allgathers(
            star(5),
            FabricConfig::ideal(),
            ProtocolConfig::default(),
            n,
            3,
        );
        let d1 = one.traffic.total_data_bytes();
        let d3 = three.traffic.total_data_bytes();
        assert_eq!(d3, 3 * d1, "payload must triple with 3 communicators");
    }

    #[test]
    fn streams_never_cross() {
        // The per-chunk collective-id check inside the protocol panics on
        // crossed traffic; surviving a multi-communicator run with
        // subgroups on shared workers is the assertion.
        let out = run_concurrent_allgathers(
            star(4),
            FabricConfig::ucc_default(),
            ProtocolConfig::parallel(2, 2),
            48 << 10,
            3,
        );
        assert!(out.stats.all_done());
    }
}
