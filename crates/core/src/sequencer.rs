//! The distributed Broadcast sequencer (Section IV-A and Appendix A).
//!
//! Letting all Allgather participants multicast at once would incast the
//! fabric; the sequencer instead splits the ring of `P` broadcasting
//! roots into `M` parallel *chains* of length `R = P/M`. Within a chain,
//! roots multicast one-by-one, each passing an activation signal to its
//! successor when its send path drains; the `M` chains run concurrently,
//! so exactly `M` roots multicast at any time.
//!
//! Appendix A defines the active group at step `i` as
//! `G_i = {P_i, P_{R+i}, P_{2R+i}, …, P_{(M−1)R+i}}`,
//! i.e. chain `k` owns roots `kR..(k+1)R` and its step-`i` member is
//! `P_{kR+i}`. We generalize to `P mod M != 0` by letting the last chain
//! run short.

use serde::{Deserialize, Serialize};

/// Chain schedule over `p` broadcasting roots (identified by their *root
/// index* `0..p`, not their rank — callers map indices to ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequencer {
    p: u32,
    m: u32,
    r: u32,
}

impl Sequencer {
    /// A schedule of `p` roots split into `m` parallel chains.
    pub fn new(p: u32, m: u32) -> Sequencer {
        assert!(p >= 1, "need at least one root");
        assert!(m >= 1, "need at least one chain");
        let m = m.min(p);
        Sequencer {
            p,
            m,
            r: p.div_ceil(m),
        }
    }

    /// Number of roots.
    pub fn num_roots(&self) -> u32 {
        self.p
    }

    /// Number of parallel chains (`M`, the size of each active group).
    pub fn num_chains(&self) -> u32 {
        self.m
    }

    /// Chain length `R` — the number of schedule steps.
    pub fn num_steps(&self) -> u32 {
        self.r
    }

    /// Which chain a root belongs to.
    #[inline]
    pub fn chain_of(&self, root: u32) -> u32 {
        debug_assert!(root < self.p);
        root / self.r
    }

    /// The step at which a root multicasts.
    #[inline]
    pub fn step_of(&self, root: u32) -> u32 {
        debug_assert!(root < self.p);
        root % self.r
    }

    /// True if `root` multicasts in the very first step (activated by the
    /// RNR barrier rather than by a predecessor's signal).
    #[inline]
    pub fn starts_immediately(&self, root: u32) -> bool {
        self.step_of(root) == 0
    }

    /// The root that must receive this root's activation signal when its
    /// multicast completes (`None` at the end of a chain).
    #[inline]
    pub fn successor(&self, root: u32) -> Option<u32> {
        debug_assert!(root < self.p);
        let next = root + 1;
        if next < self.p && self.chain_of(root) == self.chain_of(next) {
            Some(next)
        } else {
            None
        }
    }

    /// The root whose activation signal this root waits for (`None` for
    /// step-0 roots).
    #[inline]
    pub fn predecessor(&self, root: u32) -> Option<u32> {
        debug_assert!(root < self.p);
        if self.step_of(root) == 0 {
            None
        } else {
            Some(root - 1)
        }
    }

    /// The active group `G_i`: roots multicasting at step `i` (Appendix A).
    pub fn active_group(&self, step: u32) -> Vec<u32> {
        assert!(step < self.r);
        (0..self.m)
            .map(|k| k * self.r + step)
            .filter(|&root| root < self.p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_six_ranks_two_chains() {
        // Figure 8: six processes, two actively multicasting roots.
        let s = Sequencer::new(6, 2);
        assert_eq!(s.num_steps(), 3);
        assert_eq!(s.active_group(0), vec![0, 3]);
        assert_eq!(s.active_group(1), vec![1, 4]);
        assert_eq!(s.active_group(2), vec![2, 5]);
        // Process 1 (Figure 9): waits for rank 0's signal, then signals 2.
        assert_eq!(s.predecessor(1), Some(0));
        assert_eq!(s.successor(1), Some(2));
        assert!(!s.starts_immediately(1));
        assert!(s.starts_immediately(0) && s.starts_immediately(3));
    }

    #[test]
    fn single_chain_is_a_pure_ring_walk() {
        // The evaluation config: "one actively multicasting root".
        let s = Sequencer::new(5, 1);
        assert_eq!(s.num_steps(), 5);
        for i in 0..5 {
            assert_eq!(s.active_group(i), vec![i]);
        }
        assert_eq!(s.successor(4), None);
        assert_eq!(s.predecessor(0), None);
    }

    #[test]
    fn all_parallel_chains() {
        let s = Sequencer::new(4, 4);
        assert_eq!(s.num_steps(), 1);
        assert_eq!(s.active_group(0), vec![0, 1, 2, 3]);
        for r in 0..4 {
            assert!(s.starts_immediately(r));
            assert_eq!(s.successor(r), None);
        }
    }

    #[test]
    fn ragged_last_chain() {
        // 7 roots, 3 chains -> R = 3; chains {0,1,2}, {3,4,5}, {6}.
        let s = Sequencer::new(7, 3);
        assert_eq!(s.num_steps(), 3);
        assert_eq!(s.active_group(0), vec![0, 3, 6]);
        assert_eq!(s.active_group(1), vec![1, 4]);
        assert_eq!(s.active_group(2), vec![2, 5]);
        assert_eq!(s.successor(6), None);
    }

    #[test]
    fn broadcast_degenerate_case() {
        let s = Sequencer::new(1, 1);
        assert_eq!(s.num_steps(), 1);
        assert!(s.starts_immediately(0));
        assert_eq!(s.successor(0), None);
    }

    #[test]
    fn more_chains_than_roots_clamps() {
        let s = Sequencer::new(3, 8);
        assert_eq!(s.num_chains(), 3);
        assert_eq!(s.num_steps(), 1);
    }

    proptest! {
        /// Appendix A laws: groups partition the roots, each root appears
        /// exactly once, and |G_i| <= M with equality for full chains.
        #[test]
        fn groups_partition_roots(p in 1u32..300, m in 1u32..32) {
            let s = Sequencer::new(p, m);
            let mut seen = vec![false; p as usize];
            for step in 0..s.num_steps() {
                let g = s.active_group(step);
                prop_assert!(g.len() <= s.num_chains() as usize);
                for root in g {
                    prop_assert_eq!(s.step_of(root), step);
                    prop_assert!(!seen[root as usize], "root {} scheduled twice", root);
                    seen[root as usize] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|x| x));
        }

        /// Successor/predecessor are inverse and stay within a chain.
        #[test]
        fn chain_links_are_consistent(p in 1u32..300, m in 1u32..32) {
            let s = Sequencer::new(p, m);
            for root in 0..p {
                if let Some(succ) = s.successor(root) {
                    prop_assert_eq!(s.predecessor(succ), Some(root));
                    prop_assert_eq!(s.chain_of(succ), s.chain_of(root));
                    prop_assert_eq!(s.step_of(succ), s.step_of(root) + 1);
                }
                if let Some(pred) = s.predecessor(root) {
                    prop_assert_eq!(s.successor(pred), Some(root));
                }
            }
        }

        /// Exactly the step-0 members start without a signal; activation
        /// reaches every other root through its chain.
        #[test]
        fn activation_reaches_everyone(p in 1u32..300, m in 1u32..32) {
            let s = Sequencer::new(p, m);
            let mut activated: Vec<bool> = (0..p).map(|r| s.starts_immediately(r)).collect();
            // Simulate signal propagation to a fixpoint.
            loop {
                let mut changed = false;
                for root in 0..p {
                    if activated[root as usize] {
                        if let Some(succ) = s.successor(root) {
                            if !activated[succ as usize] {
                                activated[succ as usize] = true;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            prop_assert!(activated.into_iter().all(|x| x));
        }
    }
}
