//! The barrel-processor datapath simulation.
//!
//! Threads execute their kernel trace op-by-op against shared resources:
//!
//! * the **core issue port** — one instruction per cycle across all
//!   threads of a core (the fundamental barrel limit);
//! * the **core memory unit** — LLC/DRAM/MMIO accesses occupy it for an
//!   access-dependent time, so concurrent threads queue behind each
//!   other's misses (this is what bends the thread-scaling curves of
//!   Figs. 13/14 below linear);
//! * the **NIC inbound pipeline** — chunks are DMA-placed and their CQEs
//!   written serially (per-op + per-byte cost), which is what ultimately
//!   caps the 64 B micro-chunk rate in Fig. 16;
//! * the **NIC loopback pipeline** — UD staging→user copies posted by
//!   the threads.
//!
//! Threads are packed onto cores compactly ("first occupy 16 hardware
//! threads of core 1, then core 2", Section VI-C) and chunk `i` is
//! processed by thread `i mod T`, mirroring the paper's round-robin
//! traffic distribution across connections.

use crate::kernel::{Kernel, OpClass};
use crate::spec::DpaSpec;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How chunks arrive at the receive queues.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// Receive queues are always backlogged — measures the sustainable
    /// processing rate (Table I, Fig. 16).
    Saturated,
    /// Chunks arrive back-to-back at the line rate of a `gbps` link,
    /// including `header_bytes` of per-packet wire overhead — the
    /// throughput can then cap at the link (Figs. 13–15).
    LinkRate {
        /// Link speed in Gbit/s.
        gbps: f64,
        /// Per-chunk wire header overhead in bytes.
        header_bytes: usize,
    },
}

/// Measured datapath metrics (the Table I columns plus throughput).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathMetrics {
    /// Chunks processed.
    pub chunks: u64,
    /// Payload bytes per chunk.
    pub chunk_bytes: usize,
    /// Worker threads used.
    pub threads: u32,
    /// Wall-clock of the run in nanoseconds.
    pub wall_ns: f64,
    /// Payload throughput in Gbit/s.
    pub goodput_gbps: f64,
    /// Payload throughput in GiB/s (the Table I unit).
    pub gib_per_s: f64,
    /// Sustained chunk processing rate (chunks/s) — Fig. 16's metric.
    pub chunks_per_sec: f64,
    /// Instructions retired per CQE.
    pub instr_per_cqe: f64,
    /// Mean busy cycles per CQE (trace start → trace end, including
    /// resource queueing, excluding idle waits).
    pub cycles_per_cqe: f64,
    /// Instructions per cycle (per-thread, while busy).
    pub ipc: f64,
}

/// Run `chunks` chunks of `chunk_bytes` through `threads` workers.
///
/// # Panics
/// If `threads` exceeds the spec's hardware contexts.
pub fn run_datapath(
    spec: &DpaSpec,
    kernel: &Kernel,
    threads: u32,
    chunk_bytes: usize,
    chunks: u64,
    arrival: ArrivalModel,
) -> DatapathMetrics {
    assert!(threads >= 1, "need at least one thread");
    assert!(
        threads <= spec.total_threads(),
        "{threads} threads exceed {} hardware contexts",
        spec.total_threads()
    );
    assert!(chunks >= 1);
    let cyc_ns = 1.0 / spec.core.freq_ghz; // ns per cycle
    let core = &spec.core;

    // --- NIC inbound pipeline: compute per-chunk CQE-ready times. ---
    let interval_ns = match arrival {
        ArrivalModel::Saturated => 0.0,
        ArrivalModel::LinkRate { gbps, header_bytes } => {
            (chunk_bytes + header_bytes) as f64 * 8.0 / gbps
        }
    };
    let inbound_cost = spec.nic.inbound_op_ns + chunk_bytes as f64 * spec.nic.inbound_byte_ns;
    let mut ready = Vec::with_capacity(chunks as usize);
    let mut inbound_free = 0.0f64;
    for i in 0..chunks {
        let arr = i as f64 * interval_ns;
        let done = arr.max(inbound_free) + inbound_cost;
        inbound_free = done;
        ready.push(done);
    }

    // --- Shared compute resources. ---
    let cores_used = threads.div_ceil(core.threads) as usize;
    let mut issue_free = vec![0.0f64; cores_used];
    let mut mem_free = vec![0.0f64; cores_used];
    let loopback_cost = spec.nic.loopback_op_ns + chunk_bytes as f64 * spec.nic.loopback_byte_ns;
    let mut loopback_free = 0.0f64;

    struct Thread {
        core: usize,
        op_idx: usize,
        chunk_seq: u64, // which of its own chunks it is processing
        trace_start: f64,
        busy_ns: f64,
        done_chunks: u64,
        finish: f64,
    }
    let mut ths: Vec<Thread> = (0..threads)
        .map(|t| Thread {
            core: (t / core.threads) as usize,
            op_idx: 0,
            chunk_seq: 0,
            trace_start: 0.0,
            busy_ns: 0.0,
            done_chunks: 0,
            finish: 0.0,
        })
        .collect();

    // Chunks for thread t are indices t, t+T, t+2T, …
    let chunks_of = |t: u64| -> u64 { (chunks - t - 1) / threads as u64 + 1 };

    // Event heap: (time, thread) = thread may issue its next op then.
    // f64 ordered via total_cmp wrapper.
    #[derive(PartialEq)]
    struct Ev(f64, u32);
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .total_cmp(&other.0)
                .then_with(|| self.1.cmp(&other.1))
        }
    }

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    for t in 0..threads {
        if (t as u64) < chunks {
            heap.push(Reverse(Ev(ready[t as usize], t)));
        }
    }

    let trace = &kernel.trace;
    let stall_ns = kernel.extra_stall_cycles as f64 * cyc_ns;
    let mut total_busy = 0.0f64;

    while let Some(Reverse(Ev(t_now, tid))) = heap.pop() {
        let th = &mut ths[tid as usize];
        if th.op_idx == 0 {
            th.trace_start = t_now;
        }
        let op = trace[th.op_idx];
        // Issue port: one instruction per cycle per core.
        let issue = t_now.max(issue_free[th.core]);
        issue_free[th.core] = issue + cyc_ns;
        let done = match op.0 {
            OpClass::Alu => issue + core.alu_lat as f64 * cyc_ns,
            OpClass::LlcLoad => {
                let s = issue.max(mem_free[th.core]);
                mem_free[th.core] = s + core.llc_occ as f64 * cyc_ns;
                s + core.llc_lat as f64 * cyc_ns
            }
            OpClass::Store => {
                let s = issue.max(mem_free[th.core]);
                mem_free[th.core] = s + core.store_occ as f64 * cyc_ns;
                s + core.store_lat as f64 * cyc_ns
            }
            OpClass::DramLoad => {
                let s = issue.max(mem_free[th.core]);
                mem_free[th.core] = s + core.dram_occ as f64 * cyc_ns;
                s + core.dram_lat as f64 * cyc_ns
            }
            OpClass::Mmio => {
                let s = issue.max(mem_free[th.core]);
                mem_free[th.core] = s + core.mmio_occ as f64 * cyc_ns;
                s + core.mmio_lat as f64 * cyc_ns
            }
            OpClass::Memcpy => {
                let s = issue.max(mem_free[th.core]);
                mem_free[th.core] = s + core.memcpy_occ as f64 * cyc_ns;
                s + core.memcpy_lat as f64 * cyc_ns
            }
        };
        th.op_idx += 1;
        if th.op_idx < trace.len() {
            heap.push(Reverse(Ev(done, tid)));
            continue;
        }
        // CQE fully processed.
        th.op_idx = 0;
        th.busy_ns += done - th.trace_start;
        total_busy += done - th.trace_start;
        th.done_chunks += 1;
        if kernel.posts_loopback {
            loopback_free = loopback_free.max(done) + loopback_cost;
        }
        let next_seq = th.chunk_seq + 1;
        if next_seq < chunks_of(tid as u64) {
            th.chunk_seq = next_seq;
            let global_idx = (tid as u64 + next_seq * threads as u64) as usize;
            let t_next = (done + stall_ns).max(ready[global_idx]);
            heap.push(Reverse(Ev(t_next, tid)));
        } else {
            th.finish = done + stall_ns;
        }
    }

    let mut wall = ths.iter().map(|t| t.finish).fold(0.0f64, f64::max);
    if kernel.posts_loopback {
        // All staged data must land in the user buffer.
        wall = wall.max(loopback_free);
    }
    let total_bytes = chunks as f64 * chunk_bytes as f64;
    let busy_cycles = total_busy / cyc_ns / chunks as f64;
    DatapathMetrics {
        chunks,
        chunk_bytes,
        threads,
        wall_ns: wall,
        goodput_gbps: total_bytes * 8.0 / wall,
        gib_per_s: total_bytes / (wall * 1e-9) / (1u64 << 30) as f64,
        chunks_per_sec: chunks as f64 / (wall * 1e-9),
        instr_per_cqe: trace.len() as f64,
        cycles_per_cqe: busy_cycles,
        ipc: trace.len() as f64 / busy_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;

    const CHUNK_4K: usize = 4096;

    fn bf3_run(kind: KernelKind, threads: u32, arrival: ArrivalModel) -> DatapathMetrics {
        run_datapath(
            &DpaSpec::bf3(),
            &Kernel::new(kind),
            threads,
            CHUNK_4K,
            40_000,
            arrival,
        )
    }

    #[test]
    fn table1_ud_single_thread() {
        let m = bf3_run(KernelKind::DpaUd, 1, ArrivalModel::Saturated);
        // Table I: 5.2 GiB/s, 113 instr, 1084 cycles, IPC 0.10.
        assert!((m.gib_per_s - 5.2).abs() < 0.6, "GiB/s = {}", m.gib_per_s);
        assert_eq!(m.instr_per_cqe, 113.0);
        assert!(
            (m.cycles_per_cqe - 1084.0).abs() < 110.0,
            "cycles/CQE = {}",
            m.cycles_per_cqe
        );
        assert!((m.ipc - 0.10).abs() < 0.02, "IPC = {}", m.ipc);
    }

    #[test]
    fn table1_uc_single_thread() {
        let m = bf3_run(KernelKind::DpaUc, 1, ArrivalModel::Saturated);
        // Table I: 11.9 GiB/s, 66 instr, 598 cycles, IPC 0.11.
        assert!((m.gib_per_s - 11.9).abs() < 1.2, "GiB/s = {}", m.gib_per_s);
        assert_eq!(m.instr_per_cqe, 66.0);
        assert!(
            (m.cycles_per_cqe - 598.0).abs() < 60.0,
            "cycles/CQE = {}",
            m.cycles_per_cqe
        );
        assert!((m.ipc - 0.11).abs() < 0.02, "IPC = {}", m.ipc);
    }

    #[test]
    fn fig14_single_thread_fractions() {
        // "With 1/256 of DPA capacity, the datapaths achieve 1/2 (UC) and
        // 1/5 (UD) of peak theoretical throughput (200 Gbit/s)."
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let ud = bf3_run(KernelKind::DpaUd, 1, link);
        let uc = bf3_run(KernelKind::DpaUc, 1, link);
        let ud_frac = ud.goodput_gbps / 200.0;
        let uc_frac = uc.goodput_gbps / 200.0;
        assert!((ud_frac - 0.2).abs() < 0.05, "UD fraction {ud_frac}");
        assert!((uc_frac - 0.5).abs() < 0.08, "UC fraction {uc_frac}");
    }

    #[test]
    fn fig13_uc_reaches_line_rate_with_few_threads() {
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let m4 = bf3_run(KernelKind::DpaUc, 4, link);
        // Payload ceiling on a 200G link with 64B headers: ~196.9 Gbit/s.
        let ceiling = 200.0 * 4096.0 / 4160.0;
        assert!(
            m4.goodput_gbps > 0.95 * ceiling,
            "UC@4thr = {} Gbit/s",
            m4.goodput_gbps
        );
    }

    #[test]
    fn fig13_ud_needs_more_threads_than_uc() {
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let ceiling = 200.0 * 4096.0 / 4160.0;
        let mut ud_at = None;
        let mut uc_at = None;
        for t in 1..=16u32 {
            if ud_at.is_none() && bf3_run(KernelKind::DpaUd, t, link).goodput_gbps > 0.95 * ceiling
            {
                ud_at = Some(t);
            }
            if uc_at.is_none() && bf3_run(KernelKind::DpaUc, t, link).goodput_gbps > 0.95 * ceiling
            {
                uc_at = Some(t);
            }
        }
        let (ud_at, uc_at) = (ud_at.expect("UD never saturated"), uc_at.unwrap());
        assert!(
            uc_at < ud_at,
            "UC should saturate earlier (UC {uc_at}, UD {ud_at})"
        );
        assert!(uc_at <= 4, "paper: UC with 4 threads, got {uc_at}");
        assert!(
            (5..=16).contains(&ud_at),
            "paper: UD with 8-16 threads, got {ud_at}"
        );
    }

    #[test]
    fn fig13_scaling_is_monotonic() {
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let mut last = 0.0;
        for t in [1u32, 2, 4, 8, 16] {
            let m = bf3_run(KernelKind::DpaUd, t, link);
            assert!(
                m.goodput_gbps >= last * 0.99,
                "throughput regressed at {t} threads"
            );
            last = m.goodput_gbps;
        }
    }

    #[test]
    fn fig15_large_uc_chunks_need_fewer_threads() {
        // "With the larger chunk size, DPA can sustain a line rate with
        // fewer threads."
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let spec = DpaSpec::bf3();
        let k = Kernel::new(KernelKind::DpaUc);
        let m64k = run_datapath(&spec, &k, 1, 64 << 10, 10_000, link);
        let ceiling = 200.0 * 65536.0 / 65600.0;
        assert!(
            m64k.goodput_gbps > 0.95 * ceiling,
            "UC 64KiB single thread = {} Gbit/s",
            m64k.goodput_gbps
        );
    }

    #[test]
    fn fig16_tbit_chunk_rate() {
        // 1.6 Tbit/s at 4 KiB MTU = ~48.8 M chunks/s. 128 threads on 64 B
        // chunks must sustain at least that rate for both transports.
        let need = 1.6e12 / 8.0 / 4096.0;
        for kind in [KernelKind::DpaUd, KernelKind::DpaUc] {
            let m = run_datapath(
                &DpaSpec::bf3(),
                &Kernel::new(kind),
                128,
                64,
                400_000,
                ArrivalModel::Saturated,
            );
            assert!(
                m.chunks_per_sec >= need,
                "{kind:?} 128 threads: {:.1}M/s < {:.1}M/s",
                m.chunks_per_sec / 1e6,
                need / 1e6
            );
        }
    }

    #[test]
    fn fig16_rate_grows_with_threads() {
        let k = Kernel::new(KernelKind::DpaUd);
        let spec = DpaSpec::bf3();
        let mut last = 0.0;
        for t in [1u32, 8, 32, 128] {
            let m = run_datapath(&spec, &k, t, 64, 200_000, ArrivalModel::Saturated);
            assert!(m.chunks_per_sec > last);
            last = m.chunks_per_sec;
        }
    }

    #[test]
    fn fig5_cpu_baselines() {
        // One x86 core sustains only ~1/2 to 2/3 of 200 Gbit/s even
        // without software reliability; the UCX UD stack (reliability +
        // CPU memcpy) is slower still.
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let cpu = DpaSpec::host_cpu();
        let rc = run_datapath(
            &cpu,
            &Kernel::new(KernelKind::CpuRcCustom),
            1,
            CHUNK_4K,
            40_000,
            link,
        );
        let ucx = run_datapath(
            &cpu,
            &Kernel::new(KernelKind::CpuUdUcx),
            1,
            CHUNK_4K,
            40_000,
            link,
        );
        let rc_frac = rc.goodput_gbps / 200.0;
        assert!(
            (0.45..=0.7).contains(&rc_frac),
            "RC custom fraction = {rc_frac}"
        );
        assert!(ucx.goodput_gbps < rc.goodput_gbps);
        assert!(
            ucx.goodput_gbps / 200.0 > 0.2,
            "UCX UD unrealistically slow"
        );
    }

    #[test]
    fn dpa_single_core_beats_cpu_core() {
        // Fig. 5's headline: the multithreaded single DPA core reaches
        // link speed; the CPU core does not. Also Section VI-C(d): one
        // DPA core outperforms the CPU core by ~25%.
        let link = ArrivalModel::LinkRate {
            gbps: 200.0,
            header_bytes: 64,
        };
        let dpa16 = bf3_run(KernelKind::DpaUd, 16, link);
        let cpu = run_datapath(
            &DpaSpec::host_cpu(),
            &Kernel::new(KernelKind::CpuRcCustom),
            1,
            CHUNK_4K,
            40_000,
            link,
        );
        assert!(dpa16.goodput_gbps > cpu.goodput_gbps * 1.2);
        let ceiling = 200.0 * 4096.0 / 4160.0;
        assert!(dpa16.goodput_gbps > 0.95 * ceiling);
    }

    #[test]
    fn determinism() {
        let a = bf3_run(KernelKind::DpaUd, 7, ArrivalModel::Saturated);
        let b = bf3_run(KernelKind::DpaUd, 7, ArrivalModel::Saturated);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn thread_budget_enforced() {
        bf3_run(KernelKind::DpaUd, 257, ArrivalModel::Saturated);
    }
}
