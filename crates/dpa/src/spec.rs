//! Hardware specifications: the BlueField-3 DPA complex, the NIC DMA
//! engines, and the host-CPU baseline core.

use serde::{Deserialize, Serialize};

/// Latency/occupancy model of one processing core.
///
/// *Latency* is how long the issuing thread stalls; *occupancy* is how
/// long the (non-pipelined) memory unit stays busy, which is what makes
/// concurrent threads on one core contend — the mechanism behind the
/// sub-linear thread scaling in Figs. 13/14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Hardware threads per core.
    pub threads: u32,
    /// ALU op latency (cycles).
    pub alu_lat: u64,
    /// LLC load latency / memory-unit occupancy (cycles).
    pub llc_lat: u64,
    /// LLC-bound memory-unit occupancy per access (cycles).
    pub llc_occ: u64,
    /// DRAM access latency (cycles).
    pub dram_lat: u64,
    /// DRAM memory-unit occupancy per access (cycles).
    pub dram_occ: u64,
    /// Store latency (posted; cheap for the thread).
    pub store_lat: u64,
    /// Store memory-unit occupancy.
    pub store_occ: u64,
    /// MMIO doorbell latency (uncached write + ordering).
    pub mmio_lat: u64,
    /// MMIO memory-unit occupancy.
    pub mmio_occ: u64,
    /// CPU-side bulk copy of one chunk (UCX UD staging→user memcpy);
    /// only host kernels use this class.
    pub memcpy_lat: u64,
    /// Memory-unit occupancy of the bulk copy.
    pub memcpy_occ: u64,
}

impl CoreSpec {
    /// One DPA core: 1.8 GHz RISC-V with 16 hardware threads. Memory
    /// latencies are calibrated so the UD/UC receive kernels land at
    /// Table I's cycles/CQE and IPC (see `engine::tests`).
    pub fn dpa() -> CoreSpec {
        CoreSpec {
            freq_ghz: 1.8,
            threads: 16,
            alu_lat: 1,
            llc_lat: 20,
            llc_occ: 8,
            dram_lat: 150,
            dram_occ: 24,
            store_lat: 4,
            store_occ: 4,
            mmio_lat: 250,
            mmio_occ: 16,
            memcpy_lat: 0,
            memcpy_occ: 0,
        }
    }

    /// A server-class x86 core (2.6 GHz Epyc as in the DPA testbed host):
    /// no hardware multithreading in the progress engine, but a wide
    /// out-of-order pipeline — modeled as cheaper ALU work (traces use
    /// pre-compressed ALU counts) and lower memory latencies.
    pub fn x86() -> CoreSpec {
        CoreSpec {
            freq_ghz: 2.6,
            threads: 1,
            alu_lat: 1,
            llc_lat: 12,
            llc_occ: 2,
            dram_lat: 110,
            dram_occ: 8,
            store_lat: 2,
            store_occ: 1,
            mmio_lat: 250,
            mmio_occ: 8,
            memcpy_lat: 350,
            memcpy_occ: 300,
        }
    }
}

/// NIC DMA-engine model: the inbound pipeline (packet placement + CQE
/// write) and the loopback pipeline (DPA-initiated staging→user copies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Fixed cost per inbound chunk (descriptor + CQE write), ns.
    pub inbound_op_ns: f64,
    /// Per-byte cost of inbound placement, ns (DMA bandwidth).
    pub inbound_byte_ns: f64,
    /// Fixed cost per loopback copy operation, ns.
    pub loopback_op_ns: f64,
    /// Per-byte cost of loopback copies, ns.
    pub loopback_byte_ns: f64,
}

impl NicSpec {
    /// BlueField-3 class engines: ~10 ns per descriptor, ~50 GB/s DMA per
    /// pipeline (comfortably above the 25 GB/s of one 200 Gbit/s port).
    pub fn bf3() -> NicSpec {
        NicSpec {
            inbound_op_ns: 10.0,
            inbound_byte_ns: 0.02,
            loopback_op_ns: 10.0,
            loopback_byte_ns: 0.02,
        }
    }
}

/// The full accelerator complex.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpaSpec {
    /// Core model.
    pub core: CoreSpec,
    /// Number of cores.
    pub cores: u32,
    /// Last-level cache capacity (bytes) — bounds the bitmap state the
    /// datapath can hold (Fig. 7 analysis lives in `mcag-models`).
    pub llc_bytes: usize,
    /// NIC engine model.
    pub nic: NicSpec,
}

impl DpaSpec {
    /// The ConnectX-7 / BlueField-3 DPA of the paper: 16 cores × 16
    /// threads, 1.5 MB LLC.
    pub fn bf3() -> DpaSpec {
        DpaSpec {
            core: CoreSpec::dpa(),
            cores: 16,
            llc_bytes: 3 << 19, // 1.5 MB
            nic: NicSpec::bf3(),
        }
    }

    /// Host-CPU "accelerator": one x86 core, no multithreading (the
    /// single-threaded baseline of Figs. 5 and 13).
    pub fn host_cpu() -> DpaSpec {
        DpaSpec {
            core: CoreSpec::x86(),
            cores: 1,
            llc_bytes: 32 << 20,
            nic: NicSpec::bf3(),
        }
    }

    /// Total hardware execution contexts.
    pub fn total_threads(&self) -> u32 {
        self.cores * self.core.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf3_matches_paper_description() {
        let d = DpaSpec::bf3();
        assert_eq!(d.cores, 16);
        assert_eq!(d.core.threads, 16);
        assert_eq!(d.total_threads(), 256);
        assert_eq!(d.llc_bytes, 1_572_864); // 1.5 MB
        assert!((d.core.freq_ghz - 1.8).abs() < 1e-9);
    }

    #[test]
    fn nic_dma_bandwidth_exceeds_port_rate() {
        let n = NicSpec::bf3();
        // 1/byte_ns = bytes/ns = GB/s; must exceed 25 GB/s (200 Gbit/s).
        assert!(1.0 / n.inbound_byte_ns > 25.0);
        assert!(1.0 / n.loopback_byte_ns > 25.0);
    }
}
