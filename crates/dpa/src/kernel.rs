//! Receive-datapath kernels as micro-op traces.
//!
//! Each kernel is the per-CQE body of the event handler in the paper's
//! Appendix C (Listing 1), broken into instruction classes. The counts
//! are chosen so that, on the calibrated [`crate::spec::CoreSpec`]
//! models, the measured single-thread metrics land on Table I:
//!
//! | datapath | GiB/s | instructions/CQE | cycles/CQE | IPC  |
//! |----------|-------|------------------|------------|------|
//! | UC       | 11.9  | 66               | 598        | 0.11 |
//! | UD       | 5.2   | 113              | 1084       | 0.10 |
//!
//! The UD path is roughly twice the work of UC because it must build and
//! post the loopback RDMA write that copies each chunk from the staging
//! ring to the user buffer, and reap those copy completions; UC writes
//! land in place (zero-copy), leaving only CQ/bitmap/doorbell work.

use serde::{Deserialize, Serialize};

/// Instruction class of one micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// Register ALU / branch work.
    Alu,
    /// Load hitting the LLC (CQ ring, bitmap word, context).
    LlcLoad,
    /// Store to LLC-backed state (bitmap update, CQ index).
    Store,
    /// Load from DRAM (cold descriptor / staging metadata).
    DramLoad,
    /// Uncached MMIO doorbell write to the NIC.
    Mmio,
    /// CPU bulk copy of one chunk (host UCX-style UD datapath only —
    /// the DPA offloads this to the loopback DMA engine instead).
    Memcpy,
}

/// One micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOp(pub OpClass);

/// Which datapath a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelKind {
    /// DPA UD receive: staging + loopback copy posting (Listing 1 +
    /// Section III-B).
    DpaUd,
    /// DPA UC receive: zero-copy multi-packet writes (Appendix C).
    DpaUc,
    /// Host CPU running a UCX-style UD stack: segmentation/reassembly,
    /// software reliability (sequence/ACK bookkeeping) and a CPU memcpy
    /// per chunk.
    CpuUdUcx,
    /// Host CPU running the custom RC-chunk progress engine (the
    /// "without software reliability" baseline of Fig. 5).
    CpuRcCustom,
}

/// A receive kernel: its per-CQE trace plus fixed non-instruction stalls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Which datapath.
    pub kind: KernelKind,
    /// Per-CQE micro-op trace.
    pub trace: Vec<MicroOp>,
    /// Fixed stall per CQE that retires no instructions: thread
    /// rescheduling/arming for DPA, and (UD) waiting to reap loopback
    /// copy completions.
    pub extra_stall_cycles: u64,
    /// True if every processed chunk enqueues a loopback copy on the NIC.
    pub posts_loopback: bool,
}

fn ops(trace: &mut Vec<MicroOp>, class: OpClass, n: usize) {
    trace.extend(std::iter::repeat_n(MicroOp(class), n));
}

impl Kernel {
    /// Instruction count per CQE.
    pub fn instructions(&self) -> usize {
        self.trace.len()
    }

    /// Build the kernel for `kind`.
    pub fn new(kind: KernelKind) -> Kernel {
        use OpClass::*;
        let mut t = Vec::new();
        match kind {
            KernelKind::DpaUd => {
                // Activation + context fetch (Listing 1 lines 3-28).
                ops(&mut t, Alu, 8);
                ops(&mut t, LlcLoad, 1); // thread ctx

                // Poll CQE + owner/opcode checks (lines 30-35).
                ops(&mut t, DramLoad, 1); // CQE line (cold, DMA-written)
                ops(&mut t, Alu, 10);
                // PSN from immediate, step CQ, ring RQ doorbell (36-37).
                ops(&mut t, Alu, 8);
                ops(&mut t, Store, 2); // CQ consumer index
                ops(&mut t, Mmio, 1); // RQ doorbell

                // Bitmap set + OOO tracking (38-42).
                ops(&mut t, LlcLoad, 1);
                ops(&mut t, Alu, 10);
                ops(&mut t, Store, 1);
                // Build + post loopback RDMA write WQE (staging → user).
                ops(&mut t, LlcLoad, 2); // staging address, user address
                ops(&mut t, DramLoad, 1); // cold staging slot descriptor
                ops(&mut t, Alu, 28); // WQE assembly, lkey/rkey, lengths
                ops(&mut t, Store, 4); // WQE segments
                ops(&mut t, Mmio, 1); // loopback SQ doorbell

                // Reap loopback completions (amortized) + re-post recv.
                ops(&mut t, LlcLoad, 3);
                ops(&mut t, Alu, 14); // reposting batch bookkeeping
                ops(&mut t, Store, 1);
                // Loop bookkeeping (to_process, last_recvd).
                ops(&mut t, Alu, 16);
                Kernel {
                    kind,
                    trace: t,
                    // Rescheduling + waiting on loopback copy CQEs.
                    extra_stall_cycles: 240,
                    posts_loopback: true,
                }
            }
            KernelKind::DpaUc => {
                // Activation + context.
                ops(&mut t, Alu, 6);
                ops(&mut t, LlcLoad, 1);
                // Poll CQE, owner/opcode.
                ops(&mut t, DramLoad, 1);
                ops(&mut t, Alu, 9);
                // PSN decode, step CQ, RQ doorbell.
                ops(&mut t, Alu, 7);
                ops(&mut t, Store, 2);
                ops(&mut t, Mmio, 1);
                // Bitmap + OOO tracking (write already landed in place).
                ops(&mut t, LlcLoad, 2);
                ops(&mut t, Alu, 12);
                ops(&mut t, Store, 2);
                // Re-post receive + loop bookkeeping.
                ops(&mut t, LlcLoad, 2);
                ops(&mut t, Alu, 20);
                ops(&mut t, Store, 1);
                Kernel {
                    kind,
                    trace: t,
                    extra_stall_cycles: 20,
                    posts_loopback: false,
                }
            }
            KernelKind::CpuUdUcx => {
                // ALU counts are pre-compressed ~3× for the wide OoO core.
                // Poll CQE + UD address-vector handling.
                ops(&mut t, DramLoad, 1);
                ops(&mut t, Alu, 10);
                // Segmentation/reassembly bookkeeping.
                ops(&mut t, LlcLoad, 3);
                ops(&mut t, Alu, 8);
                ops(&mut t, Store, 3);
                // Software reliability: sequence window, ACK scheduling,
                // timer wheel touch.
                ops(&mut t, LlcLoad, 3);
                ops(&mut t, Alu, 12);
                ops(&mut t, Store, 2);
                ops(&mut t, Mmio, 1); // occasional ACK doorbell (amortized)

                // Staging → user copy runs on the CPU.
                ops(&mut t, Memcpy, 1);
                // Receive re-post + doorbell.
                ops(&mut t, Alu, 6);
                ops(&mut t, Store, 1);
                ops(&mut t, Mmio, 1);
                Kernel {
                    kind,
                    trace: t,
                    extra_stall_cycles: 40,
                    posts_loopback: false,
                }
            }
            KernelKind::CpuRcCustom => {
                // Zero-copy logical re-assembly over RC chunks: no
                // reliability software, no memcpy — the "practical lower
                // bound on single-threaded CPU processing" (Section VI-C).
                ops(&mut t, DramLoad, 1);
                ops(&mut t, Alu, 8);
                ops(&mut t, LlcLoad, 2);
                ops(&mut t, Alu, 6);
                ops(&mut t, Store, 2);
                ops(&mut t, Mmio, 1); // CQ arm / RQ doorbell (amortized)
                ops(&mut t, Alu, 4);
                ops(&mut t, Mmio, 1);
                Kernel {
                    kind,
                    trace: t,
                    extra_stall_cycles: 20,
                    posts_loopback: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts_match_table1() {
        // Table I: UD 113 instructions/CQE, UC 66.
        assert_eq!(Kernel::new(KernelKind::DpaUd).instructions(), 113);
        assert_eq!(Kernel::new(KernelKind::DpaUc).instructions(), 66);
    }

    #[test]
    fn ud_does_strictly_more_work_than_uc() {
        let ud = Kernel::new(KernelKind::DpaUd);
        let uc = Kernel::new(KernelKind::DpaUc);
        assert!(ud.instructions() > uc.instructions());
        assert!(ud.posts_loopback && !uc.posts_loopback);
        let mmio = |k: &Kernel| k.trace.iter().filter(|o| o.0 == OpClass::Mmio).count();
        assert!(mmio(&ud) > mmio(&uc), "UD posts an extra doorbell");
    }

    #[test]
    fn cpu_ucx_carries_memcpy_and_reliability() {
        let k = Kernel::new(KernelKind::CpuUdUcx);
        assert!(k.trace.iter().any(|o| o.0 == OpClass::Memcpy));
        let rc = Kernel::new(KernelKind::CpuRcCustom);
        assert!(rc.trace.iter().all(|o| o.0 != OpClass::Memcpy));
        assert!(rc.instructions() < k.instructions());
    }
}
