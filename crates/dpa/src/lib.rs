//! # mcag-dpa — cycle-level Datapath Accelerator simulator
//!
//! The paper offloads the Allgather receive datapath to the NVIDIA DPA:
//! 16 energy-efficient RISC-V cores at 1.8 GHz, 16 hardware threads per
//! core (256 contexts), 1.5 MB LLC, directly interfaced with the NIC DMA
//! engine. The defining property is that the receive kernel is *low-IPC
//! data movement* (Table I: IPC ≈ 0.10) — most cycles stall on loads,
//! stores, and doorbells — and **hardware multithreading hides that
//! latency**: while one thread waits on memory, the core issues
//! instructions from its siblings.
//!
//! This crate reproduces that mechanism with a barrel-processor resource
//! model:
//!
//! * each **core** owns an issue port (one instruction per cycle shared
//!   by its threads) and a memory unit with per-access occupancy (LLC and
//!   DRAM accesses queue when several threads miss at once);
//! * the **NIC** has an inbound DMA pipeline (chunk placement + CQE
//!   write) and a loopback pipeline (the UD staging→user copies), each
//!   with per-operation and per-byte costs;
//! * **kernels** are micro-op traces transcribed from the paper's
//!   Appendix C listing: poll CQE, decode the PSN immediate, step the CQ,
//!   ring the receive doorbell, update the bitmap, and (UD only) post the
//!   loopback copy descriptor;
//! * a **host-CPU model** runs the same handlers on a wide out-of-order
//!   core without hardware threads, including the software-reliability
//!   and CPU-memcpy work of a UCX-style UD stack (the Fig. 5 baseline).
//!
//! Table I's metrics (GiB/s, instructions/CQE, cycles/CQE, IPC) are
//! *measured* from simulation, and the thread-scaling figures
//! (Figs. 13–16) emerge from the resource model rather than being
//! hard-coded.

#![warn(missing_docs)]

pub mod engine;
pub mod kernel;
pub mod spec;

pub use engine::{run_datapath, ArrivalModel, DatapathMetrics};
pub use kernel::{Kernel, KernelKind, MicroOp, OpClass};
pub use spec::{CoreSpec, DpaSpec, NicSpec};
