//! # mcag-faults — seeded fault-injection plans for the DES fabric
//!
//! The paper's offload assumes a healthy fabric; at production scale,
//! link degradation and port flaps dominate collective slowdowns (the
//! regime of "Don't Let a Few Network Failures Slow the Entire
//! AllReduce"). This crate describes such failures as data: a
//! [`FaultPlan`] is a seed plus a list of composable [`FaultModel`]s,
//! and [`FaultPlan::compile`] lowers it — deterministically — onto a
//! concrete topology as a `mcag-simnet` [`LinkSchedule`] of timed
//! link-state transitions that the fabric replays as ordinary queue
//! events.
//!
//! ## Models
//!
//! * [`FaultModel::DegradedLink`] — a fraction of *directed* links run
//!   below line rate for a window (bandwidth asymmetry: one direction of
//!   a cable can degrade alone, as after FEC retraining or a lane
//!   downgrade, e.g. 100G→25G).
//! * [`FaultModel::FlappingPort`] — a fraction of *ports* (both
//!   directions of a cable) cycle up/down with a fixed period and down
//!   duty until the flap window ends.
//! * [`FaultModel::SwitchFailure`] — whole switches go dark (every
//!   attached link down, both directions) and recover after a fixed
//!   outage.
//! * [`FaultModel::CorrelatedFailure`] — one seeded *physical* event
//!   strikes a shared-risk link group ([`SrlgKind`]): a cable bundle, a
//!   switch chassis, or a rack. Every member link of the struck group
//!   goes down together — the correlated-failure regime real clusters
//!   see (a cut conduit, a failed PSU, a rack power event), replacing
//!   the independent victim draws of the per-link models.
//!
//! ## Determinism contract
//!
//! Compilation draws every random choice (which links, which switches)
//! from one `StdRng` seeded with [`FaultPlan::seed`], consumed in model
//! order; the resulting schedule is a pure function of
//! `(seed, models, topology)`. Replays are therefore bit-identical
//! across runs, hosts, and sweep worker counts — the property the
//! golden tests in `tests/fault_determinism.rs` pin down.

#![warn(missing_docs)]

use mcag_simnet::linkstate::{LinkSchedule, LinkStateEvent};
use mcag_simnet::topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A shared-risk link group family: which physical structure fails as a
/// unit when a correlated event strikes. Groups are derived from the
/// topology by [`srlg_groups`]; [`FaultModel::CorrelatedFailure`] draws
/// whole groups instead of independent links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrlgKind {
    /// All parallel cables between one adjacent switch pair (they run
    /// through the same conduit, so a cut severs every rail at once).
    /// One group per switch-switch adjacency, both directions included.
    CableBundle,
    /// Every link attached to one switch (a chassis-level failure:
    /// PSU, fan tray, firmware wedge). One group per switch, any level.
    SwitchChassis,
    /// A rack power domain: every link of one leaf switch plus every
    /// link of the hosts beneath it. One group per leaf-level switch.
    Rack,
}

impl SrlgKind {
    /// Short display label ("cable-bundle", "switch-chassis", "rack").
    pub fn label(self) -> &'static str {
        match self {
            SrlgKind::CableBundle => "cable-bundle",
            SrlgKind::SwitchChassis => "switch-chassis",
            SrlgKind::Rack => "rack",
        }
    }
}

/// One composable failure process. See the crate docs for the physical
/// interpretation of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// A random `fraction` of directed links serialize at
    /// `bw_num / bw_den` of line rate during `[start_ns, start_ns +
    /// duration_ns)`.
    DegradedLink {
        /// Fraction of directed links affected, in `[0, 1]`.
        fraction: f64,
        /// Effective-bandwidth multiplier numerator (`1/4` = 100G→25G).
        bw_num: u32,
        /// Effective-bandwidth multiplier denominator.
        bw_den: u32,
        /// Window start (simulated ns).
        start_ns: u64,
        /// Window length (simulated ns).
        duration_ns: u64,
    },
    /// A random `fraction` of ports (a port = both directions of a
    /// cable) flap: down for `down_ns` at the head of every `period_ns`
    /// cycle, from `start_ns` until `end_ns`.
    FlappingPort {
        /// Fraction of ports affected, in `[0, 1]`.
        fraction: f64,
        /// Flap cycle length (simulated ns); must exceed `down_ns`.
        period_ns: u64,
        /// Down time at the head of each cycle (simulated ns).
        down_ns: u64,
        /// First cycle start (simulated ns).
        start_ns: u64,
        /// No cycle starts at or after this instant.
        end_ns: u64,
    },
    /// `switches` random switches lose every attached link (both
    /// directions) during `[start_ns, start_ns + downtime_ns)`.
    SwitchFailure {
        /// Number of switches taken down.
        switches: u32,
        /// Outage start (simulated ns).
        start_ns: u64,
        /// Outage length (simulated ns).
        downtime_ns: u64,
    },
    /// `events` correlated physical events, each striking one random
    /// shared-risk link group of `kind`: every member link of a struck
    /// group goes down at `start_ns` and recovers together at
    /// `start_ns + downtime_ns`. Groups are drawn without replacement.
    CorrelatedFailure {
        /// Which physical structure fails as a unit.
        kind: SrlgKind,
        /// Number of distinct groups struck.
        events: u32,
        /// Event start (simulated ns).
        start_ns: u64,
        /// Outage length (simulated ns).
        downtime_ns: u64,
    },
}

/// A seeded, composable fault-injection plan: the description half of
/// fault injection (the `mcag-simnet` fabric owns enforcement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    models: Vec<FaultModel>,
}

impl FaultPlan {
    /// An empty plan drawing all randomness from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            models: Vec::new(),
        }
    }

    /// Append a model (builder style). Model order matters: random
    /// choices are drawn sequentially, and same-instant transitions of
    /// one link resolve later-model-wins.
    pub fn with(mut self, model: FaultModel) -> FaultPlan {
        self.models.push(model);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The composed models, in application order.
    pub fn models(&self) -> &[FaultModel] {
        &self.models
    }

    /// Lower the plan onto `topo`: draw the affected links/switches from
    /// the seeded RNG and emit the full transition timeline. Pure in
    /// `(seed, models, topo)`.
    pub fn compile(&self, topo: &Topology) -> LinkSchedule {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        for m in &self.models {
            emit(m, topo, &mut rng, &mut events);
        }
        LinkSchedule::new(events)
    }
}

/// `ceil(fraction * n)` clamped to `[0, n]`; the "how many victims"
/// rule shared by the link- and port-fraction models.
fn fraction_count(n: usize, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction out of [0, 1]: {fraction}"
    );
    ((n as f64 * fraction).ceil() as usize).min(n)
}

/// Draw `count` distinct items by partial Fisher–Yates — deterministic
/// given the RNG state, independent of `count` beyond the drawn prefix.
fn choose<T: Copy>(rng: &mut StdRng, items: &[T], count: usize) -> Vec<T> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    let count = count.min(idx.len());
    for i in 0..count {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..count].iter().map(|&i| items[i]).collect()
}

/// Canonical port representatives: one directed link per cable (the one
/// with the smaller id), so a port-level model never double-draws a
/// cable.
fn ports(topo: &Topology) -> Vec<LinkId> {
    (0..topo.num_links() as u32)
        .map(LinkId)
        .filter(|&l| l.0 <= topo.reverse(l).0)
        .collect()
}

/// Every switch node, leaf level upward.
fn switches(topo: &Topology) -> Vec<NodeId> {
    let mut out = Vec::new();
    for level in 1..=topo.top_level() {
        out.extend(topo.switches_at_level(level));
    }
    out
}

/// All directed links touching `node`, in link-id order.
fn links_of(topo: &Topology, node: NodeId) -> Vec<LinkId> {
    (0..topo.num_links() as u32)
        .map(LinkId)
        .filter(|&l| {
            let lk = topo.link(l);
            lk.src == node || lk.dst == node
        })
        .collect()
}

/// Derive the shared-risk link groups of `kind` from `topo`: every
/// group is the set of directed links one physical event downs together.
/// Groups are returned in a canonical order (ascending lowest member
/// link id) with members sorted by link id, so the victim draw of
/// [`FaultModel::CorrelatedFailure`] is a pure function of the RNG
/// state — the same determinism contract the per-link models obey.
pub fn srlg_groups(topo: &Topology, kind: SrlgKind) -> Vec<Vec<LinkId>> {
    let mut groups: Vec<Vec<LinkId>> = match kind {
        SrlgKind::CableBundle => {
            // One bundle per adjacent switch pair: all parallel rails
            // between the two chassis, both directions of each cable.
            let mut bundles: std::collections::BTreeMap<(u32, u32), Vec<LinkId>> =
                std::collections::BTreeMap::new();
            for id in 0..topo.num_links() as u32 {
                let l = LinkId(id);
                let lk = topo.link(l);
                if topo.level(lk.src) == 0 || topo.level(lk.dst) == 0 {
                    continue; // host cables are rack-domain, not bundle
                }
                let key = (lk.src.0.min(lk.dst.0), lk.src.0.max(lk.dst.0));
                bundles.entry(key).or_default().push(l);
            }
            bundles.into_values().collect()
        }
        SrlgKind::SwitchChassis => switches(topo)
            .into_iter()
            .map(|sw| links_of(topo, sw))
            .collect(),
        SrlgKind::Rack => topo
            .switches_at_level(1)
            .into_iter()
            .map(|leaf| {
                let mut members: std::collections::BTreeSet<LinkId> =
                    links_of(topo, leaf).into_iter().collect();
                for r in topo.host_range(leaf) {
                    members.extend(links_of(topo, topo.host_node(mcag_verbs::Rank(r))));
                }
                members.into_iter().collect()
            })
            .collect(),
    };
    groups.retain(|g| !g.is_empty());
    for g in &mut groups {
        g.sort_unstable_by_key(|l| l.0);
    }
    groups.sort_unstable_by_key(|g| g[0].0);
    groups
}

fn emit(model: &FaultModel, topo: &Topology, rng: &mut StdRng, out: &mut Vec<LinkStateEvent>) {
    match *model {
        FaultModel::DegradedLink {
            fraction,
            bw_num,
            bw_den,
            start_ns,
            duration_ns,
        } => {
            let all: Vec<LinkId> = (0..topo.num_links() as u32).map(LinkId).collect();
            let n = fraction_count(all.len(), fraction);
            for link in choose(rng, &all, n) {
                out.push(LinkStateEvent::degraded(start_ns, link, bw_num, bw_den));
                out.push(LinkStateEvent::up(
                    start_ns.saturating_add(duration_ns),
                    link,
                ));
            }
        }
        FaultModel::FlappingPort {
            fraction,
            period_ns,
            down_ns,
            start_ns,
            end_ns,
        } => {
            assert!(period_ns > 0, "flap period must be positive");
            assert!(
                down_ns < period_ns,
                "down time {down_ns} must be shorter than the period {period_ns}"
            );
            let cands = ports(topo);
            let n = fraction_count(cands.len(), fraction);
            for port in choose(rng, &cands, n) {
                let pair = [port, topo.reverse(port)];
                let mut t = start_ns;
                while t < end_ns {
                    for &l in &pair {
                        out.push(LinkStateEvent::down(t, l));
                        out.push(LinkStateEvent::up(t.saturating_add(down_ns), l));
                    }
                    t = t.saturating_add(period_ns);
                }
            }
        }
        FaultModel::SwitchFailure {
            switches: count,
            start_ns,
            downtime_ns,
        } => {
            let cands = switches(topo);
            for sw in choose(rng, &cands, count as usize) {
                for l in links_of(topo, sw) {
                    out.push(LinkStateEvent::down(start_ns, l));
                    out.push(LinkStateEvent::up(start_ns.saturating_add(downtime_ns), l));
                }
            }
        }
        FaultModel::CorrelatedFailure {
            kind,
            events,
            start_ns,
            downtime_ns,
        } => {
            let groups = srlg_groups(topo, kind);
            let idx: Vec<usize> = (0..groups.len()).collect();
            for g in choose(rng, &idx, events as usize) {
                for &l in &groups[g] {
                    out.push(LinkStateEvent::down(start_ns, l));
                    out.push(LinkStateEvent::up(start_ns.saturating_add(downtime_ns), l));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;
    use proptest::prelude::*;

    fn tree() -> Topology {
        Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100)
    }

    #[test]
    fn compile_is_deterministic_in_the_seed() {
        let plan = FaultPlan::new(42)
            .with(FaultModel::DegradedLink {
                fraction: 0.25,
                bw_num: 1,
                bw_den: 4,
                start_ns: 1_000,
                duration_ns: 50_000,
            })
            .with(FaultModel::FlappingPort {
                fraction: 0.1,
                period_ns: 20_000,
                down_ns: 5_000,
                start_ns: 0,
                end_ns: 100_000,
            });
        let a = plan.compile(&tree());
        let b = plan.compile(&tree());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed draws different victims.
        let c = FaultPlan {
            seed: 43,
            models: plan.models.clone(),
        }
        .compile(&tree());
        assert_ne!(a, c, "seed 43 drew the exact same victims as 42?");
    }

    #[test]
    fn zero_fraction_models_compile_to_nothing() {
        let plan = FaultPlan::new(7)
            .with(FaultModel::DegradedLink {
                fraction: 0.0,
                bw_num: 1,
                bw_den: 4,
                start_ns: 0,
                duration_ns: 1,
            })
            .with(FaultModel::FlappingPort {
                fraction: 0.0,
                period_ns: 10,
                down_ns: 1,
                start_ns: 0,
                end_ns: 100,
            })
            .with(FaultModel::SwitchFailure {
                switches: 0,
                start_ns: 0,
                downtime_ns: 1,
            });
        assert!(plan.compile(&tree()).is_empty());
    }

    #[test]
    fn flapping_hits_both_directions_of_each_cable() {
        let topo = tree();
        let plan = FaultPlan::new(1).with(FaultModel::FlappingPort {
            fraction: 0.001, // rounds up to one port
            period_ns: 10_000,
            down_ns: 2_000,
            start_ns: 0,
            end_ns: 30_000,
        });
        let sched = plan.compile(&topo);
        // One port, 3 cycles, 2 directions, down+up each = 12 events.
        assert_eq!(sched.len(), 12);
        let downs: Vec<_> = sched.events().iter().filter(|e| !e.up).collect();
        assert_eq!(downs.len(), 6);
        let links: std::collections::BTreeSet<u32> = downs.iter().map(|e| e.link.0).collect();
        assert_eq!(links.len(), 2, "both directions of one cable");
        let mut it = links.iter();
        let (a, b) = (*it.next().unwrap(), *it.next().unwrap());
        assert_eq!(topo.reverse(LinkId(a)), LinkId(b));
    }

    #[test]
    fn switch_failure_downs_every_attached_link_and_recovers() {
        let topo = tree();
        let plan = FaultPlan::new(3).with(FaultModel::SwitchFailure {
            switches: 1,
            start_ns: 5_000,
            downtime_ns: 40_000,
        });
        let sched = plan.compile(&topo);
        assert!(!sched.is_empty());
        // Events pair up: every downed link recovers at start + downtime.
        let downs: Vec<LinkId> = sched
            .events()
            .iter()
            .filter(|e| !e.up)
            .map(|e| e.link)
            .collect();
        for e in sched.events() {
            if !e.up {
                assert_eq!(e.at_ns, 5_000);
            } else {
                assert_eq!(e.at_ns, 45_000);
                assert!(downs.contains(&e.link));
            }
        }
        // The victim is a real switch: its links all share one endpoint.
        let sw_links = downs.clone();
        let first = topo.link(sw_links[0]);
        let common: Vec<NodeId> = [first.src, first.dst]
            .into_iter()
            .filter(|&n| {
                sw_links.iter().all(|&l| {
                    let lk = topo.link(l);
                    lk.src == n || lk.dst == n
                })
            })
            .collect();
        assert_eq!(common.len(), 1);
    }

    #[test]
    fn cable_bundles_cover_every_switch_switch_adjacency() {
        // 2 leaves × 2 spines × 1 rail = 4 adjacencies of 2 directed
        // links each; host cables are excluded.
        let topo = tree();
        let groups = srlg_groups(&topo, SrlgKind::CableBundle);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.len(), 2);
            assert_eq!(topo.reverse(g[0]), g[1]);
            let lk = topo.link(g[0]);
            assert!(topo.level(lk.src) >= 1 && topo.level(lk.dst) >= 1);
        }
    }

    #[test]
    fn rack_groups_take_the_leaf_and_its_hosts() {
        // Each leaf: 4 host cables + 2 spine cables = 12 directed links.
        let topo = tree();
        let groups = srlg_groups(&topo, SrlgKind::Rack);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert_eq!(g.len(), 12);
        }
        // The two racks partition all links of the topology (every link
        // in this fat-tree touches a leaf domain).
        let union: std::collections::BTreeSet<u32> = groups.iter().flatten().map(|l| l.0).collect();
        assert!(union.len() <= topo.num_links());
    }

    #[test]
    fn chassis_groups_match_switch_failure_semantics() {
        let topo = tree();
        let groups = srlg_groups(&topo, SrlgKind::SwitchChassis);
        let switches = switches(&topo);
        assert_eq!(groups.len(), switches.len());
        for (g, &sw) in groups.iter().zip(&switches) {
            assert_eq!(g, &links_of(&topo, sw));
        }
    }

    proptest! {
        /// SRLG compilation is deterministic and the downed set is
        /// exactly the union of the struck groups' members.
        #[test]
        fn correlated_failure_downs_exactly_the_struck_groups(
            seed in 0u64..500,
            events in 1u32..4,
            kind_idx in 0usize..3,
        ) {
            let kind = [SrlgKind::CableBundle, SrlgKind::SwitchChassis, SrlgKind::Rack][kind_idx];
            let topo = tree();
            let plan = FaultPlan::new(seed).with(FaultModel::CorrelatedFailure {
                kind,
                events,
                start_ns: 10_000,
                downtime_ns: 80_000,
            });
            let sched = plan.compile(&topo);
            prop_assert_eq!(&sched, &plan.compile(&topo), "compile must be pure in the seed");

            // Reconstruct the draw: the emit arm consumes the RNG the
            // same way `choose` over group indices does.
            let groups = srlg_groups(&topo, kind);
            let idx: Vec<usize> = (0..groups.len()).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let struck = choose(&mut rng, &idx, events as usize);
            let expect: std::collections::BTreeSet<u32> = struck
                .iter()
                .flat_map(|&g| groups[g].iter().map(|l| l.0))
                .collect();

            let downed: std::collections::BTreeSet<u32> = sched
                .events()
                .iter()
                .filter(|e| !e.up)
                .map(|e| e.link.0)
                .collect();
            prop_assert_eq!(downed, expect, "downed set != union of struck groups");
            // Every member recovers together.
            for e in sched.events() {
                prop_assert_eq!(e.at_ns, if e.up { 90_000 } else { 10_000 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn flap_duty_cycle_validated() {
        FaultPlan::new(0)
            .with(FaultModel::FlappingPort {
                fraction: 1.0,
                period_ns: 10,
                down_ns: 10,
                start_ns: 0,
                end_ns: 100,
            })
            .compile(&tree());
    }

    proptest! {
        #[test]
        fn compiled_schedules_are_sorted_and_within_bounds(
            seed in 0u64..1_000,
            frac in 0.0f64..1.0,
        ) {
            let plan = FaultPlan::new(seed)
                .with(FaultModel::DegradedLink {
                    fraction: frac,
                    bw_num: 1,
                    bw_den: 4,
                    start_ns: 100,
                    duration_ns: 1_000,
                })
                .with(FaultModel::SwitchFailure {
                    switches: 1,
                    start_ns: 200,
                    downtime_ns: 2_000,
                });
            let topo = tree();
            let sched = plan.compile(&topo);
            let ev = sched.events();
            for w in ev.windows(2) {
                prop_assert!(w[0].at_ns <= w[1].at_ns);
            }
            for e in ev {
                prop_assert!(e.link.idx() < topo.num_links());
                prop_assert!(e.bw_num >= 1 && e.bw_num <= e.bw_den);
            }
        }
    }
}
