//! # mcag-memfabric — a threaded, real-byte unreliable fabric
//!
//! The discrete-event simulator validates timing and traffic; this crate
//! validates the *protocol itself* the way the paper's UCC backend runs
//! it: real OS threads for the application, TX worker and RX workers,
//! C11-style atomics for their signaling, real staging rings, real
//! buffer bytes — over an in-process fabric that drops and reorders
//! datagrams on demand.
//!
//! * [`fabric`] — multicast groups over crossbeam channels with seeded
//!   drop/reorder injection; registered memory windows for one-sided
//!   reads (the recovery fetch path).
//! * [`abitmap`] — the shared receive bitmap as a `fetch_or` atomic
//!   structure (the inter-thread synchronization story of Section V).
//! * [`collective`] — the threaded Broadcast/Allgather engine reusing
//!   the `mcag-core` plan, sequencer, barrier, and staging ring.
//!
//! End-to-end property: after an Allgather under loss, reordering and
//! staging exhaustion, every rank's receive buffer equals the
//! concatenation of all send buffers.

#![warn(missing_docs)]

pub mod abitmap;
pub mod collective;
pub mod fabric;

pub use abitmap::AtomicBitmap;
pub use collective::{run_threaded, MemRunReport, RankStats};
pub use fabric::{MemFabric, MemFabricConfig};
