//! Lock-free shared receive bitmap.
//!
//! RX workers (one per multicast subgroup) and the application thread
//! (recovery path) all update delivery state concurrently. `fetch_or`
//! on 64-bit words gives exactly-once accounting without locks — the
//! practical embodiment of "C11 atomics … non-blocking signaling between
//! the main application thread and workers" (Section V-A).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Concurrent chunk bitmap with a live remaining-count.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
    remaining: AtomicUsize,
}

impl AtomicBitmap {
    /// Track `len` chunks, all missing.
    pub fn new(len: usize) -> AtomicBitmap {
        AtomicBitmap {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            len,
            remaining: AtomicUsize::new(len),
        }
    }

    /// Chunks tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no chunks are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `psn`; returns true if this call was the one that set it.
    /// Decrements the remaining count exactly once per bit.
    pub fn set(&self, psn: u32) -> bool {
        let i = psn as usize;
        assert!(i < self.len, "PSN {psn} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        if prev & mask == 0 {
            self.remaining.fetch_sub(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Is bit `psn` set?
    pub fn get(&self, psn: u32) -> bool {
        let i = psn as usize;
        assert!(i < self.len);
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// Chunks still missing.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// All chunks present?
    pub fn is_complete(&self) -> bool {
        self.remaining() == 0
    }

    /// Snapshot the maximal missing runs (the recovery request list).
    /// Concurrent setters may shrink the result immediately — callers
    /// must tolerate fetching chunks that have since arrived (the bitmap
    /// deduplicates).
    pub fn missing_runs(&self) -> Vec<std::ops::Range<u32>> {
        let mut runs = Vec::new();
        let mut run_start: Option<u32> = None;
        for i in 0..self.len as u32 {
            if self.get(i) {
                if let Some(s) = run_start.take() {
                    runs.push(s..i);
                }
            } else if run_start.is_none() {
                run_start = Some(i);
            }
        }
        if let Some(s) = run_start {
            runs.push(s..self.len as u32);
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exactly_once_accounting() {
        let bm = AtomicBitmap::new(100);
        assert!(bm.set(7));
        assert!(!bm.set(7));
        assert_eq!(bm.remaining(), 99);
        assert!(bm.get(7) && !bm.get(8));
    }

    #[test]
    fn completion() {
        let bm = AtomicBitmap::new(65);
        for i in 0..65 {
            bm.set(i);
        }
        assert!(bm.is_complete());
        assert!(bm.missing_runs().is_empty());
    }

    #[test]
    fn missing_runs_snapshot() {
        let bm = AtomicBitmap::new(10);
        for i in [0, 1, 5] {
            bm.set(i);
        }
        assert_eq!(bm.missing_runs(), vec![2..5, 6..10]);
    }

    #[test]
    fn concurrent_setters_count_each_bit_once() {
        let bm = Arc::new(AtomicBitmap::new(4096));
        let threads = 8;
        std::thread::scope(|s| {
            for t in 0..threads {
                let bm = Arc::clone(&bm);
                s.spawn(move || {
                    // Heavy overlap: every thread sets every bit, offset
                    // start to vary interleavings.
                    for i in 0..4096u32 {
                        bm.set((i + t * 512) % 4096);
                    }
                });
            }
        });
        assert!(bm.is_complete());
        assert_eq!(bm.remaining(), 0);
    }
}
