//! The in-process unreliable fabric: multicast datagram channels with
//! drop/reorder injection, reliable control channels, and registered
//! memory windows for one-sided reads.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mcag_core::ControlMsg;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;
use std::sync::Arc;

/// A multicast datagram: one MTU-sized chunk plus its immediate data.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender rank index.
    pub src: u32,
    /// Immediate value (collective id | PSN).
    pub imm: u32,
    /// Payload (zero-copy slice of the sender's buffer).
    pub payload: Bytes,
}

/// A reliable control packet.
#[derive(Debug, Clone)]
pub struct CtrlPacket {
    /// Sender rank index.
    pub src: u32,
    /// Message.
    pub msg: ControlMsg,
}

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemFabricConfig {
    /// Probability a multicast datagram copy is dropped at one receiver.
    pub drop_prob: f64,
    /// Probability a datagram is held back and released later,
    /// reordering the stream (models adaptive-routing OOO delivery).
    pub reorder_prob: f64,
    /// RNG seed (per-sender streams derive from it).
    pub seed: u64,
}

impl MemFabricConfig {
    /// Lossless, ordered fabric.
    pub fn reliable() -> MemFabricConfig {
        MemFabricConfig {
            drop_prob: 0.0,
            reorder_prob: 0.0,
            seed: 7,
        }
    }

    /// Configured loss and reordering.
    pub fn faulty(drop_prob: f64, reorder_prob: f64, seed: u64) -> MemFabricConfig {
        assert!((0.0..=1.0).contains(&drop_prob));
        assert!((0.0..=1.0).contains(&reorder_prob));
        MemFabricConfig {
            drop_prob,
            reorder_prob,
            seed,
        }
    }
}

/// Shared fabric state.
pub struct MemFabric {
    p: usize,
    subgroups: usize,
    cfg: MemFabricConfig,
    /// `data_tx[rank][subgroup]`: channel into that rank's subgroup CQ.
    data_tx: Vec<Vec<Sender<Datagram>>>,
    /// `ctrl_tx[rank]`: reliable control channel.
    ctrl_tx: Vec<Sender<CtrlPacket>>,
    /// Registered receive windows, readable one-sided (RDMA Read).
    windows: Vec<Arc<Mutex<Vec<u8>>>>,
}

/// Receive side handed to each rank at setup.
pub struct RankRx {
    /// One datagram receiver per subgroup (the per-QP CQs).
    pub data_rx: Vec<Receiver<Datagram>>,
    /// Control receiver.
    pub ctrl_rx: Receiver<CtrlPacket>,
}

impl MemFabric {
    /// Build a fabric for `p` ranks × `subgroups` multicast groups with
    /// `recv_len`-byte registered windows. Returns the fabric and each
    /// rank's receive handles.
    pub fn new(
        p: usize,
        subgroups: usize,
        recv_len: usize,
        cfg: MemFabricConfig,
    ) -> (Arc<MemFabric>, Vec<RankRx>) {
        assert!(p >= 2 && subgroups >= 1);
        let mut data_tx = Vec::with_capacity(p);
        let mut ctrl_tx = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let mut dtx = Vec::with_capacity(subgroups);
            let mut drx = Vec::with_capacity(subgroups);
            for _ in 0..subgroups {
                let (t, r) = unbounded();
                dtx.push(t);
                drx.push(r);
            }
            let (ct, cr) = unbounded();
            data_tx.push(dtx);
            ctrl_tx.push(ct);
            rxs.push(RankRx {
                data_rx: drx,
                ctrl_rx: cr,
            });
        }
        let windows = (0..p)
            .map(|_| Arc::new(Mutex::new(vec![0u8; recv_len])))
            .collect();
        (
            Arc::new(MemFabric {
                p,
                subgroups,
                cfg,
                data_tx,
                ctrl_tx,
                windows,
            }),
            rxs,
        )
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// This rank's registered window (RX workers and recovery write it;
    /// neighbors read it one-sided).
    pub fn window(&self, rank: u32) -> Arc<Mutex<Vec<u8>>> {
        Arc::clone(&self.windows[rank as usize])
    }

    /// One-sided read of `range` from `target`'s registered window — the
    /// RDMA Read of the recovery fetch. No target-side software runs.
    pub fn read(&self, target: u32, range: Range<usize>) -> Vec<u8> {
        let w = self.windows[target as usize].lock();
        w[range].to_vec()
    }

    /// Reliable control send.
    pub fn ctrl_send(&self, src: u32, dst: u32, msg: ControlMsg) {
        // A send can race with teardown of a completed rank; a closed
        // control channel means the peer has released its buffer and no
        // longer needs the message.
        let _ = self.ctrl_tx[dst as usize].send(CtrlPacket { src, msg });
    }

    /// Create the per-sender multicast port (owns the fault-injection
    /// RNG and reorder holdback state).
    pub fn tx_port(self: &Arc<Self>, rank: u32) -> McastPort {
        McastPort {
            fabric: Arc::clone(self),
            rank,
            rng: StdRng::seed_from_u64(self.cfg.seed ^ (0x9e37 + rank as u64 * 0x1_0000_0001)),
            held: Vec::new(),
        }
    }
}

/// Per-sender multicast injection port with fault injection.
pub struct McastPort {
    fabric: Arc<MemFabric>,
    rank: u32,
    rng: StdRng,
    /// Held-back (dst, subgroup, datagram) triples for reordering.
    held: Vec<(u32, usize, Datagram)>,
}

impl McastPort {
    /// Multicast one datagram to every other rank on `subgroup`.
    pub fn mcast(&mut self, subgroup: usize, imm: u32, payload: Bytes) {
        assert!(subgroup < self.fabric.subgroups);
        let d = Datagram {
            src: self.rank,
            imm,
            payload,
        };
        for dst in 0..self.fabric.p as u32 {
            if dst == self.rank {
                continue;
            }
            // Per-receiver drop: one corrupted copy does not affect the
            // other receivers (tree-internal drops are modeled by the
            // DES fabric; here we exercise the per-receiver slow path).
            if self.fabric.cfg.drop_prob > 0.0 && self.rng.random_bool(self.fabric.cfg.drop_prob) {
                continue;
            }
            if self.fabric.cfg.reorder_prob > 0.0
                && self.rng.random_bool(self.fabric.cfg.reorder_prob)
            {
                self.held.push((dst, subgroup, d.clone()));
                continue;
            }
            self.deliver(dst, subgroup, d.clone());
            // Occasionally release a held datagram after a later one —
            // the observable reordering.
            if !self.held.is_empty() && self.rng.random_bool(0.5) {
                let i = self.rng.random_range(0..self.held.len());
                let (hd, hs, hdg) = self.held.swap_remove(i);
                self.deliver(hd, hs, hdg);
            }
        }
    }

    /// Flush all held datagrams (end of the send path — nothing stays
    /// in flight forever).
    pub fn flush(&mut self) {
        for (dst, sub, d) in std::mem::take(&mut self.held) {
            self.deliver(dst, sub, d);
        }
    }

    fn deliver(&self, dst: u32, subgroup: usize, d: Datagram) {
        // Receiver may have torn down after completing.
        let _ = self.fabric.data_tx[dst as usize][subgroup].send(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_multicast_reaches_everyone() {
        let (fab, rxs) = MemFabric::new(4, 1, 64, MemFabricConfig::reliable());
        let mut port = fab.tx_port(0);
        port.mcast(0, 42, Bytes::from_static(b"hello"));
        port.flush();
        for (r, rx) in rxs.iter().enumerate() {
            if r == 0 {
                assert!(rx.data_rx[0].try_recv().is_err(), "no self-delivery");
            } else {
                let d = rx.data_rx[0].try_recv().unwrap();
                assert_eq!(d.imm, 42);
                assert_eq!(&d.payload[..], b"hello");
                assert_eq!(d.src, 0);
            }
        }
    }

    #[test]
    fn drops_are_per_receiver_and_seeded() {
        let cfg = MemFabricConfig::faulty(0.5, 0.0, 123);
        let count = |seed: u64| {
            let cfg = MemFabricConfig { seed, ..cfg };
            let (fab, rxs) = MemFabric::new(8, 1, 64, cfg);
            let mut port = fab.tx_port(0);
            for i in 0..100 {
                port.mcast(0, i, Bytes::from_static(b"x"));
            }
            port.flush();
            rxs[1..]
                .iter()
                .map(|rx| rx.data_rx[0].try_iter().count())
                .sum::<usize>()
        };
        let a = count(123);
        let b = count(123);
        assert_eq!(a, b, "same seed, same drops");
        // 700 copies at 50% drop: statistically far from 0 and 700.
        assert!(a > 200 && a < 500, "dropped count {a}");
    }

    #[test]
    fn reordering_preserves_delivery() {
        let cfg = MemFabricConfig::faulty(0.0, 0.4, 5);
        let (fab, rxs) = MemFabric::new(2, 1, 64, cfg);
        let mut port = fab.tx_port(0);
        for i in 0..200u32 {
            port.mcast(0, i, Bytes::from_static(b"y"));
        }
        port.flush();
        let imms: Vec<u32> = rxs[1].data_rx[0].try_iter().map(|d| d.imm).collect();
        assert_eq!(imms.len(), 200, "reordering must not lose datagrams");
        let mut sorted = imms.clone();
        sorted.sort_unstable();
        assert_ne!(imms, sorted, "stream was never reordered");
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn one_sided_read_sees_window_writes() {
        let (fab, _rxs) = MemFabric::new(2, 1, 16, MemFabricConfig::reliable());
        fab.window(1).lock()[4..8].copy_from_slice(&[9, 8, 7, 6]);
        assert_eq!(fab.read(1, 4..8), vec![9, 8, 7, 6]);
    }

    #[test]
    fn ctrl_channel_is_reliable_and_ordered() {
        let cfg = MemFabricConfig::faulty(0.9, 0.9, 1); // data chaos only
        let (fab, rxs) = MemFabric::new(2, 1, 16, cfg);
        for round in 0..50u8 {
            fab.ctrl_send(0, 1, ControlMsg::Barrier { round });
        }
        let rounds: Vec<u8> = rxs[1]
            .ctrl_rx
            .try_iter()
            .map(|p| match p.msg {
                ControlMsg::Barrier { round } => round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, (0..50).collect::<Vec<_>>());
    }
}
