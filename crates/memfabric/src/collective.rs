//! The threaded multicast collective engine.
//!
//! Mirrors the paper's UCC backend thread structure (Fig. 9): per rank,
//! an **application thread** drives the control path (RNR barrier, chain
//! activation, recovery, final handshake), a **TX worker** fragments and
//! multicasts the send buffer, and one **RX worker per multicast
//! subgroup** drains its completion channel through a staging ring into
//! the receive buffer, flipping bitmap bits. Signaling runs over atomics
//! and channels; data is real bytes.

use crate::abitmap::AtomicBitmap;
use crate::fabric::{CtrlPacket, MemFabric, MemFabricConfig, RankRx};
use bytes::Bytes;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use mcag_core::barrier::{BarrierAction, BarrierState};
use mcag_core::plan::CollectivePlan;
use mcag_core::{ControlMsg, StagingRing};
use mcag_verbs::{ImmData, Rank, Transport};

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-rank execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Chunks recovered through the fetch ring.
    pub fetched_chunks: u64,
    /// Duplicate datagrams discarded by the bitmap.
    pub duplicate_chunks: u64,
    /// Datagrams dropped because the staging ring was exhausted (the
    /// receiver-not-ready failure mode).
    pub staging_drops: u64,
    /// Cutoff-timer recovery activations.
    pub recovery_rounds: u32,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct MemRunReport {
    /// Final receive buffers, indexed by rank.
    pub recv_bufs: Vec<Vec<u8>>,
    /// Per-rank statistics.
    pub stats: Vec<RankStats>,
}

/// Execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Fault injection.
    pub fabric: MemFabricConfig,
    /// Fast-path transport: `Ud` receives through the staging ring
    /// (loss/OOO-safe re-assembly, the deployed path); `Uc` models the
    /// next-generation multicast RDMA-write extension — multi-packet
    /// chunks land zero-copy in the receive buffer, no staging
    /// (Section VI-C(e)).
    pub transport: Transport,
    /// Staging slots per RX worker (UD only).
    pub staging_slots: usize,
    /// Cutoff timer before the recovery phase starts.
    pub cutoff: Duration,
    /// Hard deadline: panic (protocol hang) if a rank has not released
    /// its buffer by then.
    pub watchdog: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            fabric: MemFabricConfig::reliable(),
            transport: Transport::Ud,
            staging_slots: 256,
            cutoff: Duration::from_millis(25),
            watchdog: Duration::from_secs(30),
        }
    }
}

struct Shared {
    plan: CollectivePlan,
    fabric: Arc<MemFabric>,
    bitmaps: Vec<Arc<AtomicBitmap>>,
    tx_done: Vec<Arc<AtomicBool>>,
    shutdown: Vec<Arc<AtomicBool>>,
    staging_drops: Vec<Arc<AtomicU64>>,
    duplicates: Vec<Arc<AtomicU64>>,
}

/// Run one Broadcast/Allgather with real threads and real bytes.
///
/// `send_bufs[r]` is rank `r`'s contribution; non-root ranks of a
/// Broadcast may pass an empty buffer. Returns every rank's receive
/// buffer (`N` bytes for Broadcast, `N·P` for Allgather) plus stats.
pub fn run_threaded(
    plan: &CollectivePlan,
    cfg: &ThreadedConfig,
    send_bufs: &[Vec<u8>],
) -> MemRunReport {
    let p = plan.num_ranks() as usize;
    assert_eq!(send_bufs.len(), p);
    for r in plan.roots() {
        assert_eq!(
            send_bufs[r.idx()].len(),
            plan.send_len(),
            "root {r} send buffer length"
        );
    }
    let subgroups = plan.num_subgroups() as usize;
    let (fabric, rxs) = MemFabric::new(p, subgroups, plan.recv_len(), cfg.fabric);

    let shared = Arc::new(Shared {
        plan: plan.clone(),
        fabric: Arc::clone(&fabric),
        bitmaps: (0..p)
            .map(|_| Arc::new(AtomicBitmap::new(plan.total_chunks() as usize)))
            .collect(),
        tx_done: (0..p).map(|_| Arc::new(AtomicBool::new(false))).collect(),
        shutdown: (0..p).map(|_| Arc::new(AtomicBool::new(false))).collect(),
        staging_drops: (0..p).map(|_| Arc::new(AtomicU64::new(0))).collect(),
        duplicates: (0..p).map(|_| Arc::new(AtomicU64::new(0))).collect(),
    });

    let stats: Vec<RankStats> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (r, rx) in rxs.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let send = Bytes::from(send_bufs[r].clone());
            let cfg = *cfg;
            handles.push(s.spawn(move || rank_main(r as u32, shared, rx, send, cfg)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    let recv_bufs = (0..p as u32)
        .map(|r| fabric.window(r).lock().clone())
        .collect();
    MemRunReport { recv_bufs, stats }
}

/// The per-rank body: spawns TX/RX workers, runs the app control loop.
fn rank_main(
    me: u32,
    shared: Arc<Shared>,
    rx: RankRx,
    send_buf: Bytes,
    cfg: ThreadedConfig,
) -> RankStats {
    let plan = &shared.plan;
    let window = shared.fabric.window(me);
    // The local block is in place before anything else (zero-copy in the
    // real stack: the send region aliases into the receive buffer).
    if let Some(idx) = plan.root_index(Rank(me)) {
        {
            let mut w = window.lock();
            let base = idx as usize * plan.send_len();
            w[base..base + plan.send_len()].copy_from_slice(&send_buf);
        }
        for psn in plan.root_psn_range(idx) {
            shared.bitmaps[me as usize].set(psn);
        }
    }

    let (activate_tx, activate_rx) = bounded::<()>(1);

    std::thread::scope(|s| {
        // ---- TX worker: fragmentation + multicast fast path. ----
        let is_root = plan.root_index(Rank(me)).is_some();
        if is_root {
            let shared = Arc::clone(&shared);
            let send_buf = send_buf.clone();
            s.spawn(move || {
                if activate_rx.recv().is_err() {
                    return; // collective torn down before activation
                }
                let plan = &shared.plan;
                let idx = plan.root_index(Rank(me)).unwrap();
                let mut port = shared.fabric.tx_port(me);
                for local in 0..plan.chunks_per_root() {
                    let psn = plan.global_psn(idx, local);
                    let range = plan.mtu().chunk_range(local, plan.send_len());
                    let imm = plan.imm_for(psn);
                    let sub = plan.subgroup_of(local) as usize;
                    port.mcast(sub, imm.0, send_buf.slice(range));
                }
                port.flush();
                shared.tx_done[me as usize].store(true, Ordering::Release);
            });
        }

        // ---- RX workers: one per subgroup (packet parallelism). ----
        for (sub, data_rx) in rx.data_rx.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let window = Arc::clone(&window);
            let staging_slots = cfg.staging_slots;
            let transport = cfg.transport;
            s.spawn(move || {
                let plan = &shared.plan;
                let bitmap = &shared.bitmaps[me as usize];
                let mut staging = StagingRing::new(staging_slots, plan.mtu());
                let layout = plan.imm_layout();
                let mut staged: Vec<u32> = Vec::new();
                // Stage one datagram; None = RNR drop (counted).
                let stage = |d: crate::fabric::Datagram,
                             staging: &mut StagingRing,
                             staged: &mut Vec<u32>| {
                    let (coll, psn) = layout.unpack(ImmData(d.imm));
                    assert_eq!(coll, plan.coll_id(), "crossed collective");
                    debug_assert_eq!(
                        plan.subgroup_of(plan.split_psn(psn).1) as usize,
                        sub,
                        "chunk on wrong subgroup channel"
                    );
                    match staging.receive(psn, &d.payload) {
                        Some(slot) => staged.push(slot),
                        None => {
                            shared.staging_drops[me as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                // UC zero-copy landing: the RDMA write placed the whole
                // chunk; just record it and flip the bit.
                let land_uc = |d: crate::fabric::Datagram| {
                    let (coll, psn) = layout.unpack(ImmData(d.imm));
                    assert_eq!(coll, plan.coll_id(), "crossed collective");
                    {
                        let mut w = window.lock();
                        let dst = plan.recv_range(psn);
                        w[dst].copy_from_slice(&d.payload);
                    }
                    if !bitmap.set(psn) {
                        shared.duplicates[me as usize].fetch_add(1, Ordering::Relaxed);
                    }
                };
                loop {
                    match data_rx.recv_timeout(Duration::from_micros(500)) {
                        Ok(d) if transport == Transport::Uc => land_uc(d),
                        Ok(d) => {
                            // UD: stage the whole arrival burst first —
                            // packets keep landing in the ring while
                            // earlier slots await their (DMA) copy-out;
                            // overflow is an RNR drop recovered by the
                            // fetch ring.
                            stage(d, &mut staging, &mut staged);
                            while let Ok(d) = data_rx.try_recv() {
                                stage(d, &mut staging, &mut staged);
                            }
                            // Drain: copy staging → user buffer, flip bits.
                            let mut w = window.lock();
                            for slot in staged.drain(..) {
                                let psn = staging.slot_psn(slot);
                                let dst = plan.recv_range(psn);
                                staging.copy_out_to(slot, &mut w, dst);
                                if !bitmap.set(psn) {
                                    shared.duplicates[me as usize].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if shared.shutdown[me as usize].load(Ordering::Acquire) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            });
        }

        // ---- Application thread: the control path. ----
        let stats = app_loop(me, &shared, rx.ctrl_rx, &activate_tx, &cfg);
        shared.shutdown[me as usize].store(true, Ordering::Release);
        stats
    })
}

/// Control state of the application thread (Fig. 9's violet arrows).
struct AppState {
    barrier: BarrierState,
    barrier_done: bool,
    deadline: Option<Instant>,
    activated: bool,
    tx_kicked: bool,
    activate_signal_sent: bool,
    final_sent: bool,
    final_received: bool,
    recovered: bool,
    stats: RankStats,
    /// Ranges owed to recovering peers, served incrementally.
    pending_serve: Vec<(u32, Vec<Range<u32>>)>,
}

fn app_loop(
    me: u32,
    shared: &Shared,
    ctrl_rx: crossbeam::channel::Receiver<CtrlPacket>,
    activate_tx: &Sender<()>,
    cfg: &ThreadedConfig,
) -> RankStats {
    let plan = &shared.plan;
    let p = plan.num_ranks();
    let bitmap = &shared.bitmaps[me as usize];
    let left = Rank(me).ring_left(p).0;
    let start = Instant::now();

    let mut st = AppState {
        barrier: BarrierState::new(Rank(me), p),
        barrier_done: false,
        deadline: None,
        activated: false,
        tx_kicked: false,
        activate_signal_sent: false,
        final_sent: false,
        final_received: false,
        recovered: false,
        stats: RankStats::default(),
        pending_serve: Vec::new(),
    };

    let actions = st.barrier.start();
    run_barrier_actions(me, shared, &mut st, actions);

    loop {
        assert!(
            start.elapsed() < cfg.watchdog,
            "rank {me} hung: remaining={} barrier_done={} recovered={}",
            bitmap.remaining(),
            st.barrier_done,
            st.recovered
        );
        match ctrl_rx.recv_timeout(Duration::from_micros(200)) {
            Ok(pkt) => handle_ctrl(me, shared, &mut st, pkt),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => unreachable!("fabric dropped"),
        }

        // -- Multicast phase entry: arm the cutoff, kick step-0 roots. --
        if st.barrier_done {
            if st.deadline.is_none() && plan.expected_chunks(Rank(me)) > 0 {
                st.deadline = Some(Instant::now() + cfg.cutoff);
            }
            if !st.activated {
                if let Some(idx) = plan.root_index(Rank(me)) {
                    if plan.sequencer().starts_immediately(idx) {
                        st.activated = true;
                    }
                }
            }
        }

        // -- Wake the TX worker once activation arrives (barrier for
        //    step-0 roots, predecessor signal otherwise). --
        if st.activated && !st.tx_kicked {
            st.tx_kicked = true;
            let _ = activate_tx.send(());
        }

        // -- Own multicast drained: pass the activation signal. --
        if shared.tx_done[me as usize].load(Ordering::Acquire) && !st.activate_signal_sent {
            st.activate_signal_sent = true;
            let idx = plan.root_index(Rank(me)).unwrap();
            if let Some(succ) = plan.sequencer().successor(idx) {
                let to = plan.roots()[succ as usize];
                shared.fabric.ctrl_send(me, to.0, ControlMsg::Activate);
            }
        }

        // -- Cutoff expired with holes: request from the left neighbor. --
        if let Some(d) = st.deadline {
            if !st.recovered && !bitmap.is_complete() && Instant::now() >= d {
                st.recovered = true;
                st.stats.recovery_rounds += 1;
                let runs = bitmap.missing_runs();
                if !runs.is_empty() {
                    shared
                        .fabric
                        .ctrl_send(me, left, ControlMsg::FetchReq { ranges: runs });
                }
            }
        }

        serve_pending(me, shared, &mut st);

        // -- Final handshake. --
        let tx_ok = plan.root_index(Rank(me)).is_none()
            || shared.tx_done[me as usize].load(Ordering::Acquire);
        if bitmap.is_complete() && tx_ok && !st.final_sent {
            st.final_sent = true;
            shared.fabric.ctrl_send(me, left, ControlMsg::FinalPkt);
        }
        if st.final_sent && st.final_received {
            st.stats.duplicate_chunks = shared.duplicates[me as usize].load(Ordering::Relaxed);
            st.stats.staging_drops = shared.staging_drops[me as usize].load(Ordering::Relaxed);
            return st.stats;
        }
    }
}

fn run_barrier_actions(me: u32, shared: &Shared, st: &mut AppState, actions: Vec<BarrierAction>) {
    for a in actions {
        match a {
            BarrierAction::Send { to, round } => {
                shared
                    .fabric
                    .ctrl_send(me, to.0, ControlMsg::Barrier { round });
            }
            BarrierAction::Done => st.barrier_done = true,
        }
    }
}

fn handle_ctrl(me: u32, shared: &Shared, st: &mut AppState, pkt: CtrlPacket) {
    let plan = &shared.plan;
    let bitmap = &shared.bitmaps[me as usize];
    match pkt.msg {
        ControlMsg::Barrier { round } => {
            let actions = st.barrier.on_msg(round);
            run_barrier_actions(me, shared, st, actions);
        }
        ControlMsg::Activate => {
            assert!(!st.activated, "rank {me} double activation");
            st.activated = true; // TX worker is kicked from the main loop
        }
        ControlMsg::FinalPkt => {
            assert_eq!(
                pkt.src,
                Rank(me).ring_right(plan.num_ranks()).0,
                "final packet from non-neighbor"
            );
            st.final_received = true;
        }
        ControlMsg::FetchReq { ranges } => {
            st.pending_serve.push((pkt.src, ranges));
        }
        ControlMsg::FetchAck { ranges } => {
            let left = Rank(me).ring_left(plan.num_ranks()).0;
            let window = shared.fabric.window(me);
            for r in ranges {
                for psn in r.clone() {
                    if bitmap.get(psn) {
                        continue;
                    }
                    // One-sided read from the left neighbor's receive
                    // buffer (identical layout), then land + mark.
                    let byte_range = plan.recv_range(psn);
                    let data = shared.fabric.read(left, byte_range.clone());
                    {
                        let mut w = window.lock();
                        w[byte_range].copy_from_slice(&data);
                    }
                    if bitmap.set(psn) {
                        st.stats.fetched_chunks += 1;
                    }
                }
            }
        }
    }
}

/// Incrementally serve owed fetch ranges as chunks land (the recursive
/// recovery propagation — see `mcag-core::protocol` for why serving only
/// on completion would deadlock the ring).
fn serve_pending(me: u32, shared: &Shared, st: &mut AppState) {
    if st.pending_serve.is_empty() {
        return;
    }
    let bitmap = &shared.bitmaps[me as usize];
    let mut still = Vec::new();
    for (requester, ranges) in std::mem::take(&mut st.pending_serve) {
        let mut have: Vec<Range<u32>> = Vec::new();
        let mut owe: Vec<Range<u32>> = Vec::new();
        for r in ranges {
            let mut i = r.start;
            while i < r.end {
                let present = bitmap.get(i);
                let s = i;
                while i < r.end && bitmap.get(i) == present {
                    i += 1;
                }
                if present {
                    have.push(s..i);
                } else {
                    owe.push(s..i);
                }
            }
        }
        if !have.is_empty() {
            shared
                .fabric
                .ctrl_send(me, requester, ControlMsg::FetchAck { ranges: have });
        }
        if !owe.is_empty() {
            still.push((requester, owe));
        }
    }
    st.pending_serve = still;
}

/// Convenience: an Allgather plan + deterministic pseudo-random send
/// buffers for `p` ranks of `n` bytes, returning `(plan, bufs)`.
pub fn allgather_fixture(
    p: u32,
    n: usize,
    subgroups: u32,
    chains: u32,
) -> (CollectivePlan, Vec<Vec<u8>>) {
    use mcag_core::plan::CollectiveKind;
    use mcag_verbs::{CollectiveId, ImmLayout, Mtu};
    let plan = CollectivePlan::new(
        CollectiveKind::Allgather,
        p,
        n,
        Mtu::IB_4K,
        ImmLayout::DEFAULT,
        CollectiveId(2),
        subgroups,
        chains,
    );
    let bufs = (0..p)
        .map(|r| {
            (0..n)
                .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(r as u64 * 131) % 251) as u8)
                .collect()
        })
        .collect();
    (plan, bufs)
}

/// Expected Allgather result: concatenation of all send buffers.
pub fn expected_allgather(bufs: &[Vec<u8>]) -> Vec<u8> {
    bufs.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_core::plan::CollectiveKind;
    use mcag_verbs::{CollectiveId, ImmLayout, Mtu};

    fn bcast_plan(p: u32, n: usize, root: u32, subgroups: u32) -> CollectivePlan {
        CollectivePlan::new(
            CollectiveKind::Broadcast { root: Rank(root) },
            p,
            n,
            Mtu::IB_4K,
            ImmLayout::DEFAULT,
            CollectiveId(1),
            subgroups,
            1,
        )
    }

    #[test]
    fn allgather_lossless() {
        let (plan, bufs) = allgather_fixture(4, 20_000, 1, 1);
        // Generous cutoff: under parallel-test CPU contention a short
        // timer can fire before the (lossless) fast path drains, which
        // would make the fetched==0 assertion racy.
        let cfg = ThreadedConfig {
            cutoff: Duration::from_secs(5),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for (r, got) in report.recv_bufs.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} buffer mismatch");
        }
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        assert_eq!(fetched, 0, "no recovery on a lossless fabric");
    }

    #[test]
    fn allgather_with_drops_recovers() {
        let (plan, bufs) = allgather_fixture(5, 50_000, 1, 1);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(0.05, 0.0, 42),
            cutoff: Duration::from_millis(15),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for (r, got) in report.recv_bufs.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r} corrupted after recovery");
        }
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        assert!(fetched > 0, "5% drops should have triggered fetches");
    }

    #[test]
    fn allgather_with_reordering() {
        let (plan, bufs) = allgather_fixture(4, 64_000, 1, 1);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(0.0, 0.3, 9),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for got in &report.recv_bufs {
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn allgather_multi_subgroup_multi_chain() {
        let (plan, bufs) = allgather_fixture(6, 40_000, 3, 2);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(0.02, 0.2, 3),
            cutoff: Duration::from_millis(15),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for got in &report.recv_bufs {
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn staging_exhaustion_recovers_via_fetch_ring() {
        // 2 staging slots against thousands of back-to-back datagrams:
        // most are RNR-dropped; recovery must still converge.
        let (plan, bufs) = allgather_fixture(3, 120_000, 1, 1);
        let cfg = ThreadedConfig {
            staging_slots: 2,
            cutoff: Duration::from_millis(20),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for got in &report.recv_bufs {
            assert_eq!(got, &expect);
        }
        let drops: u64 = report.stats.iter().map(|s| s.staging_drops).sum();
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        assert!(drops > 0, "tiny staging ring never overflowed?");
        assert!(fetched > 0, "drops but no fetches?");
    }

    #[test]
    fn broadcast_delivers_root_buffer() {
        let p = 5;
        let n = 30_000;
        let plan = bcast_plan(p, n, 2, 1);
        let mut bufs = vec![Vec::new(); p as usize];
        bufs[2] = (0..n).map(|i| (i % 256) as u8).collect();
        let report = run_threaded(&plan, &ThreadedConfig::default(), &bufs);
        for (r, got) in report.recv_bufs.iter().enumerate() {
            assert_eq!(got, &bufs[2], "rank {r}");
        }
    }

    #[test]
    fn broadcast_with_heavy_drops() {
        let p = 4;
        let n = 100_000;
        let plan = bcast_plan(p, n, 0, 2);
        let mut bufs = vec![Vec::new(); p as usize];
        bufs[0] = (0..n).map(|i| (i * 7 % 256) as u8).collect();
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(0.15, 0.1, 77),
            cutoff: Duration::from_millis(15),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        for got in &report.recv_bufs {
            assert_eq!(got, &bufs[0]);
        }
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        assert!(fetched > 0);
    }

    #[test]
    fn uc_zero_copy_mode_with_large_chunks() {
        // Next-gen UC multicast: 64 KiB multi-packet chunks land without
        // staging; whole-chunk drops recovered by the fetch ring.
        use mcag_core::plan::CollectiveKind;
        use mcag_verbs::{CollectiveId, ImmLayout, Mtu};
        let p = 4u32;
        let n = 256 << 10;
        let plan = CollectivePlan::new(
            CollectiveKind::Allgather,
            p,
            n,
            Mtu::new(64 << 10),
            ImmLayout::DEFAULT,
            CollectiveId(2),
            1,
            1,
        );
        let bufs: Vec<Vec<u8>> = (0..p)
            .map(|r| (0..n).map(|i| ((i + r as usize * 7) % 251) as u8).collect())
            .collect();
        let cfg = ThreadedConfig {
            transport: Transport::Uc,
            fabric: MemFabricConfig::faulty(0.08, 0.2, 11),
            cutoff: Duration::from_millis(15),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for (r, got) in report.recv_bufs.iter().enumerate() {
            assert_eq!(got, &expect, "rank {r}");
        }
        let drops: u64 = report.stats.iter().map(|s| s.staging_drops).sum();
        assert_eq!(drops, 0, "UC path must not touch the staging ring");
        let fetched: u64 = report.stats.iter().map(|s| s.fetched_chunks).sum();
        assert!(fetched > 0, "8% chunk loss must trigger recovery");
    }

    #[test]
    fn two_rank_edge_case() {
        let (plan, bufs) = allgather_fixture(2, 10_000, 1, 1);
        let cfg = ThreadedConfig {
            fabric: MemFabricConfig::faulty(0.1, 0.0, 5),
            cutoff: Duration::from_millis(10),
            ..Default::default()
        };
        let report = run_threaded(&plan, &cfg, &bufs);
        let expect = expected_allgather(&bufs);
        for got in &report.recv_bufs {
            assert_eq!(got, &expect);
        }
    }
}
