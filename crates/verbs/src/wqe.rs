//! Work requests and completions.
//!
//! These mirror the Verbs send/receive work-queue-element and
//! completion-queue-entry structures closely enough that the DPA kernel
//! code in the paper's Appendix C maps one-to-one onto our simulated
//! handlers (`flexio_dev_cqe_get_opcode`, `cqe_get_imm_data`, ...).

use crate::imm::ImmData;
use crate::types::{McastGroupId, QpNum, Rank};
use crate::wire::PacketKind;
use serde::{Deserialize, Serialize};

/// A send-side or receive-side work request, posted to a QP.
///
/// Buffer references are `(offset, len)` into the memory region registered
/// with the owning endpoint; fabrics resolve them to descriptors (DES) or
/// byte slices (memfabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkRequest {
    /// Two-sided send of one datagram to a multicast group (UD/UC fast path).
    SendMcast {
        /// Target multicast group (one multicast tree in the fabric).
        group: McastGroupId,
        /// Immediate data carrying `(collective id, PSN)`.
        imm: ImmData,
        /// Offset of the chunk inside the registered send buffer.
        offset: usize,
        /// Chunk length in bytes.
        len: usize,
    },
    /// Two-sided unicast send.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Destination queue pair.
        dst_qp: QpNum,
        /// Optional immediate data.
        imm: Option<ImmData>,
        /// Offset inside the registered send buffer.
        offset: usize,
        /// Length in bytes.
        len: usize,
        /// Traffic class for accounting.
        kind: PacketKind,
    },
    /// One-sided RDMA Write (RC/UC).
    RdmaWrite {
        /// Destination rank.
        dst: Rank,
        /// Destination queue pair.
        dst_qp: QpNum,
        /// Offset in the remote registered region.
        remote_offset: usize,
        /// Offset in the local registered region.
        local_offset: usize,
        /// Length in bytes.
        len: usize,
        /// Optional immediate (generates a receive completion remotely).
        imm: Option<ImmData>,
    },
    /// One-sided RDMA Read (RC only) — the selective-fetch primitive of the
    /// slow-path reliability layer.
    RdmaRead {
        /// Rank owning the source buffer.
        dst: Rank,
        /// Remote queue pair.
        dst_qp: QpNum,
        /// Offset in the remote registered region to read from.
        remote_offset: usize,
        /// Offset in the local registered region to land data at.
        local_offset: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Pre-posted receive buffer slot (staging ring entry).
    RecvPost {
        /// Offset inside the registered receive/staging region.
        offset: usize,
        /// Capacity of the slot in bytes.
        len: usize,
    },
}

/// Completion opcode, matching the subset of `ibv_wc_opcode` /
/// `flexio_dev_cqe_get_opcode` values the protocol dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CqeOpcode {
    /// Incoming two-sided message landed in a pre-posted receive slot.
    Recv,
    /// Incoming RDMA Write-with-immediate (the `DPA_CQE_RESPONDER_WRITE_W_IMM`
    /// case in Appendix C, Listing 1).
    RecvRdmaWriteImm,
    /// Local send completed (last WQE of a batch when send batching is on).
    Send,
    /// Local RDMA Read completed; fetched data is in the local region.
    RdmaReadDone,
    /// Local RDMA Write completed.
    RdmaWriteDone,
}

/// Completion status. Real NICs only report errors on reliable transports;
/// unreliable drops are silent — the simulators keep these variants for
/// test observability, and protocol code must *not* rely on seeing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompletionStatus {
    /// Operation completed successfully.
    Success,
    /// Receiver-not-ready: no pre-posted receive slot was available.
    RnrDrop,
    /// Packet lost in the fabric (link-layer corruption).
    FabricDrop,
    /// Work request flushed (QP destroyed mid-operation).
    Flushed,
}

/// Completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cqe {
    /// What completed.
    pub opcode: CqeOpcode,
    /// Outcome.
    pub status: CompletionStatus,
    /// The local QP this completion belongs to.
    pub qp: QpNum,
    /// Immediate data carried by the packet (PSN lives here).
    pub imm: Option<ImmData>,
    /// Payload bytes received/sent.
    pub byte_len: usize,
    /// User-chosen work-request identifier (e.g. staging slot index).
    pub wr_id: u64,
    /// Source rank for receive completions (from the UD address vector).
    pub src: Option<Rank>,
}

impl Cqe {
    /// True if this CQE is a successful inbound data completion.
    #[inline]
    pub fn is_recv_success(&self) -> bool {
        self.status == CompletionStatus::Success
            && matches!(self.opcode, CqeOpcode::Recv | CqeOpcode::RecvRdmaWriteImm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(opcode: CqeOpcode, status: CompletionStatus) -> Cqe {
        Cqe {
            opcode,
            status,
            qp: QpNum(0),
            imm: None,
            byte_len: 0,
            wr_id: 0,
            src: None,
        }
    }

    #[test]
    fn recv_success_predicate() {
        assert!(mk(CqeOpcode::Recv, CompletionStatus::Success).is_recv_success());
        assert!(mk(CqeOpcode::RecvRdmaWriteImm, CompletionStatus::Success).is_recv_success());
        assert!(!mk(CqeOpcode::Send, CompletionStatus::Success).is_recv_success());
        assert!(!mk(CqeOpcode::Recv, CompletionStatus::FabricDrop).is_recv_success());
        assert!(!mk(CqeOpcode::Recv, CompletionStatus::RnrDrop).is_recv_success());
    }
}
