//! Zero-copy buffer fragmentation: the Broadcast-root send datapath.
//!
//! "The root process performs the fragmentation of the send buffer. It
//! chunks up the user send buffer into MTU-sized datagrams [...] Each
//! buffer chunk is associated with a packet sequence number (PSN) that
//! enumerates the chunk within the send buffer" (Section III-A).
//!
//! [`Chunker`] produces `(PSN, byte range, ImmData)` triples without
//! touching the payload: fabrics that move real bytes slice the user
//! buffer with the returned range, and the DES fabric ships descriptors.

use crate::imm::{ImmData, ImmLayout};
use crate::mtu::Mtu;
use crate::types::CollectiveId;

/// Fragmentation plan for one send buffer.
#[derive(Debug, Clone, Copy)]
pub struct Chunker {
    mtu: Mtu,
    layout: ImmLayout,
    coll: CollectiveId,
    buf_len: usize,
}

/// One planned datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedChunk {
    /// Packet sequence number (chunk index within the buffer).
    pub psn: u32,
    /// Byte offset of the chunk in the send buffer.
    pub offset: usize,
    /// Chunk length (equal to MTU except possibly the last chunk).
    pub len: usize,
    /// Packed immediate value to stamp on the datagram.
    pub imm: ImmData,
}

impl Chunker {
    /// Plan fragmentation of a `buf_len`-byte buffer.
    ///
    /// # Panics
    /// If the buffer needs more chunks than the PSN bit budget can
    /// enumerate — Figure 7's constraint made explicit.
    pub fn new(buf_len: usize, mtu: Mtu, layout: ImmLayout, coll: CollectiveId) -> Chunker {
        let n = mtu.chunks_for(buf_len) as u64;
        assert!(
            n <= layout.addressable_chunks(),
            "buffer of {buf_len} B needs {n} chunks but PSN field addresses only {} \
             (increase psn_bits or MTU)",
            layout.addressable_chunks()
        );
        Chunker {
            mtu,
            layout,
            coll,
            buf_len,
        }
    }

    /// Number of datagrams this buffer fragments into.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.mtu.chunks_for(self.buf_len)
    }

    /// Buffer length being fragmented.
    #[inline]
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// The chunk with the given PSN.
    #[inline]
    pub fn chunk(&self, psn: u32) -> PlannedChunk {
        debug_assert!((psn as usize) < self.num_chunks());
        let range = self.mtu.chunk_range(psn, self.buf_len);
        PlannedChunk {
            psn,
            offset: range.start,
            len: range.len(),
            imm: self.layout.pack(self.coll, psn),
        }
    }

    /// Iterate all chunks in PSN order.
    pub fn iter(&self) -> ChunkIter {
        ChunkIter {
            chunker: *self,
            next_psn: 0,
            end_psn: self.num_chunks() as u32,
        }
    }
}

/// Iterator over [`PlannedChunk`]s in PSN order.
#[derive(Debug, Clone)]
pub struct ChunkIter {
    chunker: Chunker,
    next_psn: u32,
    end_psn: u32,
}

impl Iterator for ChunkIter {
    type Item = PlannedChunk;

    fn next(&mut self) -> Option<PlannedChunk> {
        if self.next_psn >= self.end_psn {
            return None;
        }
        let c = self.chunker.chunk(self.next_psn);
        self.next_psn += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end_psn - self.next_psn) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ChunkIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chunker(len: usize, mtu: usize) -> Chunker {
        Chunker::new(len, Mtu::new(mtu), ImmLayout::DEFAULT, CollectiveId(3))
    }

    #[test]
    fn eight_mib_buffer_is_2048_datagrams() {
        // The paper's canonical DPA workload: 8 MiB buffer, 4 KiB chunks.
        let c = chunker(8 << 20, 4096);
        assert_eq!(c.num_chunks(), 2048);
        let last = c.chunk(2047);
        assert_eq!(last.offset, (8 << 20) - 4096);
        assert_eq!(last.len, 4096);
    }

    #[test]
    fn imm_carries_collective_and_psn() {
        let c = chunker(10_000, 4096);
        let layout = ImmLayout::DEFAULT;
        for pc in c.iter() {
            let (coll, psn) = layout.unpack(pc.imm);
            assert_eq!(coll, CollectiveId(3));
            assert_eq!(psn, pc.psn);
        }
    }

    #[test]
    fn empty_buffer_single_empty_chunk() {
        let c = chunker(0, 4096);
        assert_eq!(c.num_chunks(), 1);
        let pc = c.chunk(0);
        assert_eq!((pc.offset, pc.len), (0, 0));
    }

    #[test]
    #[should_panic(expected = "PSN field addresses only")]
    fn psn_budget_enforced() {
        // 3 PSN bits address 8 chunks; 9 needed.
        Chunker::new(9 * 64, Mtu::new(64), ImmLayout::new(3), CollectiveId(0));
    }

    #[test]
    fn iterator_length_matches() {
        let c = chunker(1_000_000, 4096);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v.len(), c.num_chunks());
        assert_eq!(c.iter().len(), c.num_chunks());
    }

    proptest! {
        #[test]
        fn chunks_tile_buffer_exactly(len in 0usize..200_000, mtu in 1usize..9000) {
            let c = chunker(len, mtu);
            let mut expect_off = 0usize;
            let mut total = 0usize;
            for (i, pc) in c.iter().enumerate() {
                prop_assert_eq!(pc.psn as usize, i);
                prop_assert_eq!(pc.offset, expect_off);
                expect_off += pc.len;
                total += pc.len;
            }
            prop_assert_eq!(total, len);
        }
    }
}
