//! The three IB transport service models and their capability matrix.
//!
//! Figure 4 of the paper lays out the trade-off space: UD is the only
//! transport with standardized multicast but is datagram-granular and
//! unreliable; UC supports arbitrary-length RDMA writes (and the paper
//! prototypes a vendor extension giving it multicast) but drops whole
//! messages; RC is reliable with one-sided operations but cannot multicast
//! because reliability state is per-connection.

use serde::{Deserialize, Serialize};

/// IB Verbs transport service model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Unreliable Datagram: connection-less, MTU-sized, multicast-capable.
    Ud,
    /// Unreliable Connection: arbitrary-length messages / RDMA writes;
    /// a dropped packet drops the whole message. Multicast on UC is the
    /// next-generation extension evaluated in Section VI-C(e).
    Uc,
    /// Reliable Connection: hardware retransmission, one-sided RDMA
    /// Read/Write — the substrate for the slow-path fetch ring.
    Rc,
}

/// What a transport can and cannot do; used by fabrics to reject invalid
/// work requests exactly as a real NIC would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportCaps {
    /// Delivery is guaranteed (hardware retransmission).
    pub reliable: bool,
    /// Send/receive targets may be multicast groups.
    pub multicast: bool,
    /// Messages may exceed the MTU (NIC segments them itself).
    pub multi_packet_messages: bool,
    /// One-sided RDMA Read is available.
    pub rdma_read: bool,
    /// One-sided RDMA Write is available.
    pub rdma_write: bool,
    /// Receiver must pre-post buffers (two-sided semantics present).
    pub two_sided: bool,
}

impl Transport {
    /// Capability matrix per the InfiniBand specification (plus the UC
    /// multicast extension the paper proposes for next-gen hardware).
    pub const fn caps(self) -> TransportCaps {
        match self {
            Transport::Ud => TransportCaps {
                reliable: false,
                multicast: true,
                multi_packet_messages: false,
                rdma_read: false,
                rdma_write: false,
                two_sided: true,
            },
            Transport::Uc => TransportCaps {
                reliable: false,
                multicast: true, // vendor extension studied by the paper
                multi_packet_messages: true,
                rdma_read: false,
                rdma_write: true,
                two_sided: true,
            },
            Transport::Rc => TransportCaps {
                reliable: true,
                multicast: false,
                multi_packet_messages: true,
                rdma_read: true,
                rdma_write: true,
                two_sided: true,
            },
        }
    }

    /// Short lowercase name, matching the paper's figure legends.
    pub const fn name(self) -> &'static str {
        match self {
            Transport::Ud => "ud",
            Transport::Uc => "uc",
            Transport::Rc => "rc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ud_is_multicast_but_unreliable_and_datagram_only() {
        let caps = Transport::Ud.caps();
        assert!(caps.multicast);
        assert!(!caps.reliable);
        assert!(!caps.multi_packet_messages);
        assert!(!caps.rdma_read && !caps.rdma_write);
    }

    #[test]
    fn rc_is_reliable_one_sided_but_never_multicast() {
        let caps = Transport::Rc.caps();
        assert!(caps.reliable);
        assert!(caps.rdma_read && caps.rdma_write);
        assert!(!caps.multicast);
    }

    #[test]
    fn uc_supports_multipacket_writes_and_extension_multicast() {
        let caps = Transport::Uc.caps();
        assert!(!caps.reliable);
        assert!(caps.multi_packet_messages);
        assert!(caps.rdma_write && !caps.rdma_read);
        assert!(caps.multicast);
    }

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(Transport::Ud.name(), "ud");
        assert_eq!(Transport::Uc.name(), "uc");
        assert_eq!(Transport::Rc.name(), "rc");
    }
}
