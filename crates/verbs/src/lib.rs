//! # mcag-verbs — an InfiniBand-Verbs-like RDMA model
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: queue pairs and their three transport service models
//! (UD / UC / RC), work requests and completions, MTU-sized datagram
//! chunking with packet sequence numbers (PSNs) carried in the 32-bit
//! immediate-data field, and multicast group identifiers.
//!
//! The paper (Khalilov et al., SC'24) builds its Broadcast/Allgather stack
//! directly on IB Verbs semantics; reproducing those semantics faithfully —
//! connection-less unreliable datagrams for UD, per-message-drop RDMA
//! writes for UC, hardware-reliable one-sided operations for RC — is what
//! lets the protocol crates above remain substrate-independent: the same
//! state machines run on the discrete-event fabric ([`mcag-simnet`]) and on
//! the threaded in-memory fabric ([`mcag-memfabric`]).
//!
//! Nothing in this crate performs I/O or simulation; it is a pure data
//! model plus the PSN/immediate encoding and buffer-fragmentation math.

#![warn(missing_docs)]

pub mod chunk;
pub mod imm;
pub mod mtu;
pub mod transport;
pub mod types;
pub mod wire;
pub mod wqe;

pub use chunk::{ChunkIter, Chunker};
pub use imm::{ImmData, ImmLayout};
pub use mtu::Mtu;
pub use transport::{Transport, TransportCaps};
pub use types::{
    CollectiveId, CqNum, LinkRate, McastGroupId, QpNum, Rank, WorkerId, DEFAULT_MTU_BYTES,
};
pub use wire::{PacketHeader, PacketKind};
pub use wqe::{CompletionStatus, Cqe, CqeOpcode, WorkRequest};
