//! Packing of the 32-bit CQE immediate-data field.
//!
//! The fast path delivers exactly one piece of metadata per datagram: the
//! packet sequence number (PSN) that locates the chunk inside the receive
//! buffer. The paper stores it in the RDMA immediate field and leaves the
//! remaining high bits for "implementation-specific information, such as
//! the collective ID" (footnote 3). Figure 7 studies how the PSN bit-width
//! bounds the addressable receive buffer and the reliability bitmap size;
//! [`ImmLayout`] is the code form of that trade-off.

use crate::types::CollectiveId;
use serde::{Deserialize, Serialize};

/// A raw 32-bit immediate value as carried in a packet header / CQE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImmData(pub u32);

/// Split of the 32 immediate bits into `[collective id | PSN]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImmLayout {
    psn_bits: u32,
}

impl ImmLayout {
    /// Default layout: 24 PSN bits (64 GiB of 4 KiB chunks) and 8 bits of
    /// collective ID, enough for the ≥16 concurrent communicators the
    /// paper's memory-footprint analysis targets (Section III-D).
    pub const DEFAULT: ImmLayout = ImmLayout { psn_bits: 24 };

    /// A layout with `psn_bits` bits of PSN (1..=32).
    pub fn new(psn_bits: u32) -> ImmLayout {
        assert!(
            (1..=32).contains(&psn_bits),
            "psn_bits must be in 1..=32, got {psn_bits}"
        );
        ImmLayout { psn_bits }
    }

    /// Number of bits carrying the PSN.
    #[inline]
    pub const fn psn_bits(self) -> u32 {
        self.psn_bits
    }

    /// Number of high bits available for the collective ID.
    #[inline]
    pub const fn coll_bits(self) -> u32 {
        32 - self.psn_bits
    }

    /// Largest representable PSN.
    #[inline]
    pub const fn max_psn(self) -> u32 {
        if self.psn_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.psn_bits) - 1
        }
    }

    /// Number of distinct chunks addressable = `2^psn_bits`.
    #[inline]
    pub const fn addressable_chunks(self) -> u64 {
        1u64 << self.psn_bits
    }

    /// Largest collective ID representable in the remaining bits.
    #[inline]
    pub const fn max_coll_id(self) -> u32 {
        if self.psn_bits == 32 {
            0
        } else {
            (1u32 << (32 - self.psn_bits)) - 1
        }
    }

    /// Pack `(coll, psn)` into an immediate value.
    ///
    /// # Panics
    /// If either field exceeds its bit budget — that is a protocol bug, not
    /// a runtime condition.
    #[inline]
    pub fn pack(self, coll: CollectiveId, psn: u32) -> ImmData {
        assert!(
            psn <= self.max_psn(),
            "PSN {psn} exceeds {} bits",
            self.psn_bits
        );
        assert!(
            coll.0 <= self.max_coll_id(),
            "collective id {} exceeds {} bits",
            coll.0,
            self.coll_bits()
        );
        if self.psn_bits == 32 {
            ImmData(psn)
        } else {
            ImmData((coll.0 << self.psn_bits) | psn)
        }
    }

    /// Unpack an immediate value into `(collective id, psn)`.
    #[inline]
    pub fn unpack(self, imm: ImmData) -> (CollectiveId, u32) {
        if self.psn_bits == 32 {
            (CollectiveId(0), imm.0)
        } else {
            let psn = imm.0 & self.max_psn();
            let coll = imm.0 >> self.psn_bits;
            (CollectiveId(coll), psn)
        }
    }
}

impl Default for ImmLayout {
    fn default() -> Self {
        ImmLayout::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_layout_budget() {
        let l = ImmLayout::DEFAULT;
        assert_eq!(l.psn_bits(), 24);
        assert_eq!(l.coll_bits(), 8);
        assert_eq!(l.max_psn(), (1 << 24) - 1);
        assert_eq!(l.max_coll_id(), 255);
        assert_eq!(l.addressable_chunks(), 1 << 24);
    }

    #[test]
    fn full_width_psn() {
        let l = ImmLayout::new(32);
        assert_eq!(l.max_psn(), u32::MAX);
        assert_eq!(l.max_coll_id(), 0);
        let imm = l.pack(CollectiveId(0), 0xdead_beef);
        assert_eq!(l.unpack(imm), (CollectiveId(0), 0xdead_beef));
    }

    #[test]
    #[should_panic(expected = "PSN")]
    fn psn_overflow_panics() {
        ImmLayout::new(8).pack(CollectiveId(0), 256);
    }

    #[test]
    #[should_panic(expected = "collective id")]
    fn coll_overflow_panics() {
        ImmLayout::new(30).pack(CollectiveId(4), 0);
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(bits in 1u32..=32, raw_coll: u32, raw_psn: u32) {
            let l = ImmLayout::new(bits);
            let coll = CollectiveId(raw_coll & l.max_coll_id());
            let psn = raw_psn & l.max_psn();
            let imm = l.pack(coll, psn);
            prop_assert_eq!(l.unpack(imm), (coll, psn));
        }

        #[test]
        fn distinct_psn_distinct_imm(bits in 1u32..=32, a: u32, b: u32) {
            let l = ImmLayout::new(bits);
            let (a, b) = (a & l.max_psn(), b & l.max_psn());
            prop_assume!(a != b);
            let coll = CollectiveId(0);
            prop_assert_ne!(l.pack(coll, a), l.pack(coll, b));
        }
    }
}
