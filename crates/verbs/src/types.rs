//! Fundamental identifier and unit types.
//!
//! Small newtypes keep rank/QP/group identifiers from being confused for
//! one another across the fabric, protocol, and accelerator crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default MTU used throughout the paper's evaluation: 4 KiB datagrams.
pub const DEFAULT_MTU_BYTES: usize = 4096;

/// A collective participant (one process; the paper runs 1 process per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Rank as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Left neighbor on the virtual ring of `p` ranks (used by the
    /// reliability fetch ring and the final handshake).
    #[inline]
    pub fn ring_left(self, p: u32) -> Rank {
        debug_assert!(p > 0 && self.0 < p);
        Rank((self.0 + p - 1) % p)
    }

    /// Right neighbor on the virtual ring of `p` ranks.
    #[inline]
    pub fn ring_right(self, p: u32) -> Rank {
        debug_assert!(p > 0 && self.0 < p);
        Rank((self.0 + 1) % p)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Queue pair number, unique per fabric endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QpNum(pub u32);

/// Completion queue number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CqNum(pub u32);

/// Hardware multicast group (maps to one multicast tree in the fabric).
///
/// The Allgather protocol replicates groups into *subgroups* so that
/// receive-side packet processing can be spread across worker threads
/// (packet parallelism, Section IV-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct McastGroupId(pub u32);

/// Identifier of a collective operation in flight; stored in the high bits
/// of the CQE immediate value (footnote 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CollectiveId(pub u32);

/// A datapath worker thread (CPU thread or DPA hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// Link rate expressed in bits per second, with convenience constructors
/// matching the hardware generations in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkRate {
    bits_per_sec: u64,
}

impl LinkRate {
    /// ConnectX-3 FDR InfiniBand, the UCC testbed link speed.
    pub const CX3_56G: LinkRate = LinkRate::from_gbit(56);
    /// ConnectX-7 / BlueField-3 port speed used in the DPA testbed.
    pub const CX7_200G: LinkRate = LinkRate::from_gbit(200);
    /// ConnectX-7 dual-port aggregate / NDR.
    pub const NDR_400G: LinkRate = LinkRate::from_gbit(400);
    /// Projected next-generation Ethernet/IB speed the paper targets.
    pub const TBIT_1600G: LinkRate = LinkRate::from_gbit(1600);

    /// A rate of `gbit` Gbit/s (decimal giga, as in link-speed marketing).
    pub const fn from_gbit(gbit: u64) -> LinkRate {
        LinkRate {
            bits_per_sec: gbit * 1_000_000_000,
        }
    }

    /// Raw bits per second.
    #[inline]
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Bytes per second.
    #[inline]
    pub const fn bytes_per_sec(self) -> u64 {
        self.bits_per_sec / 8
    }

    /// Bytes transferable per nanosecond (fractional).
    #[inline]
    pub fn bytes_per_ns(self) -> f64 {
        self.bits_per_sec as f64 / 8.0 / 1e9
    }

    /// Time to serialize `bytes` onto the wire, in nanoseconds (rounded up,
    /// minimum 1 ns for a non-empty transfer so that events always advance
    /// simulated time).
    #[inline]
    pub fn serialization_ns(self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let ns = (bytes as u128 * 8 * 1_000_000_000).div_ceil(self.bits_per_sec as u128);
        (ns as u64).max(1)
    }

    /// Datagram arrival rate for back-to-back `chunk_bytes` payloads at
    /// full line rate, in packets per second.
    #[inline]
    pub fn packets_per_sec(self, chunk_bytes: usize) -> f64 {
        self.bytes_per_sec() as f64 / chunk_bytes as f64
    }
}

impl fmt::Display for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}G", self.bits_per_sec / 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbors_wrap() {
        let p = 6;
        assert_eq!(Rank(0).ring_left(p), Rank(5));
        assert_eq!(Rank(5).ring_right(p), Rank(0));
        assert_eq!(Rank(3).ring_left(p), Rank(2));
        assert_eq!(Rank(3).ring_right(p), Rank(4));
    }

    #[test]
    fn ring_neighbors_inverse() {
        let p = 11;
        for r in 0..p {
            assert_eq!(Rank(r).ring_left(p).ring_right(p), Rank(r));
            assert_eq!(Rank(r).ring_right(p).ring_left(p), Rank(r));
        }
    }

    #[test]
    fn link_rate_serialization_time() {
        // 200 Gbit/s = 25 GB/s; 4 KiB takes 4096/25 ns = 163.84 -> 164 ns.
        assert_eq!(LinkRate::CX7_200G.serialization_ns(4096), 164);
        // 56 Gbit/s = 7 GB/s; 4 KiB takes 585.14 -> 586 ns.
        assert_eq!(LinkRate::CX3_56G.serialization_ns(4096), 586);
        assert_eq!(LinkRate::CX7_200G.serialization_ns(0), 0);
        // A single byte still takes at least a nanosecond of wire time.
        assert!(LinkRate::TBIT_1600G.serialization_ns(1) >= 1);
    }

    #[test]
    fn link_rate_packet_rate() {
        // 200 Gbit/s at 4 KiB MTU: 6.1 M packets/s, the rate the paper's
        // progress engine must sustain (Section I, challenge 1).
        let pps = LinkRate::CX7_200G.packets_per_sec(4096);
        assert!((pps - 6.103e6).abs() < 5e3, "pps = {pps}");
        // 1.6 Tbit/s at 4 KiB: ~48.8 M packets/s (Section VII).
        let pps = LinkRate::TBIT_1600G.packets_per_sec(4096);
        assert!((pps - 48.8e6).abs() < 1e5, "pps = {pps}");
    }

    #[test]
    fn display_forms() {
        assert_eq!(LinkRate::CX7_200G.to_string(), "200G");
        assert_eq!(Rank(7).to_string(), "r7");
    }
}
