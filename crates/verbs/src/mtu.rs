//! Maximum Transmission Unit handling.
//!
//! UD transports deliver at most one MTU of payload per datagram, so every
//! buffer the protocol moves is cut into `ceil(len / mtu)` chunks. The IB
//! specification allows MTUs up to 4 KiB; the paper additionally shrinks
//! the *chunk* size to 64 B in Section VII to emulate the packet arrival
//! rate of a 1.6 Tbit/s link, so chunk sizes here are not restricted to
//! the spec values.

use serde::{Deserialize, Serialize};

/// A validated chunk/packet payload capacity in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mtu(usize);

impl Mtu {
    /// The 4 KiB IB MTU used by default throughout the paper.
    pub const IB_4K: Mtu = Mtu(4096);
    /// 2 KiB IB MTU.
    pub const IB_2K: Mtu = Mtu(2048);
    /// 1 KiB IB MTU.
    pub const IB_1K: Mtu = Mtu(1024);
    /// The 64 B micro-chunk used for the Tbit/s arrival-rate study (Fig. 16).
    pub const MICRO_64B: Mtu = Mtu(64);

    /// An arbitrary positive chunk size.
    pub fn new(bytes: usize) -> Mtu {
        assert!(bytes > 0, "MTU must be positive");
        Mtu(bytes)
    }

    /// Payload capacity in bytes.
    #[inline]
    pub const fn bytes(self) -> usize {
        self.0
    }

    /// Number of chunks needed for a buffer of `len` bytes (zero-length
    /// buffers still occupy one (empty) chunk so that completion semantics
    /// are uniform).
    #[inline]
    pub const fn chunks_for(self, len: usize) -> usize {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.0)
        }
    }

    /// Byte range `[start, end)` of chunk `psn` within a buffer of `len`
    /// bytes. The last chunk may be short.
    #[inline]
    pub fn chunk_range(self, psn: u32, len: usize) -> std::ops::Range<usize> {
        let start = (psn as usize) * self.0;
        let end = (start + self.0).min(len);
        debug_assert!(start <= len, "PSN {psn} beyond buffer of {len} bytes");
        start..end
    }
}

impl Default for Mtu {
    fn default() -> Self {
        Mtu::IB_4K
    }
}

impl std::fmt::Display for Mtu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1024) {
            write!(f, "{}KiB", self.0 / 1024)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chunk_counts() {
        let m = Mtu::IB_4K;
        assert_eq!(m.chunks_for(0), 1);
        assert_eq!(m.chunks_for(1), 1);
        assert_eq!(m.chunks_for(4096), 1);
        assert_eq!(m.chunks_for(4097), 2);
        assert_eq!(m.chunks_for(8 << 20), 2048); // the paper's 8 MiB buffer
    }

    #[test]
    fn last_chunk_is_short() {
        let m = Mtu::new(100);
        assert_eq!(m.chunk_range(0, 250), 0..100);
        assert_eq!(m.chunk_range(1, 250), 100..200);
        assert_eq!(m.chunk_range(2, 250), 200..250);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mtu_rejected() {
        Mtu::new(0);
    }

    #[test]
    fn display() {
        assert_eq!(Mtu::IB_4K.to_string(), "4KiB");
        assert_eq!(Mtu::MICRO_64B.to_string(), "64B");
        assert_eq!(Mtu::new(100).to_string(), "100B");
    }

    proptest! {
        #[test]
        fn ranges_partition_buffer(mtu in 1usize..8192, len in 0usize..100_000) {
            let m = Mtu::new(mtu);
            let n = m.chunks_for(len);
            let mut covered = 0usize;
            for psn in 0..n {
                let r = m.chunk_range(psn as u32, len);
                prop_assert_eq!(r.start, covered);
                prop_assert!(r.end <= len);
                prop_assert!(r.len() <= mtu);
                // Only the final chunk may be short (or empty for len == 0).
                if psn + 1 < n {
                    prop_assert_eq!(r.len(), mtu);
                }
                covered = r.end;
            }
            prop_assert_eq!(covered, len);
        }
    }
}
