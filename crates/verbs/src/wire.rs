//! On-the-wire packet representation shared by the fabrics.
//!
//! The simulators move *descriptors* of payloads (offset + length into a
//! registered buffer) rather than copying bytes for every hop; the
//! threaded memfabric attaches real bytes. Both use the same header.

use crate::imm::ImmData;
use crate::types::{McastGroupId, QpNum, Rank};
use serde::{Deserialize, Serialize};

/// IB/RoCE-ish per-packet header overhead in bytes (LRH+GRH+BTH+ICRC ≈ 58 B
/// for RoCEv2; we use a round 64 B — only the *relative* traffic numbers
/// matter for the reproduction and payload/header are tracked separately).
pub const HEADER_BYTES: usize = 64;

/// What kind of traffic a packet carries. Fabric-level switches do not
/// interpret this (they only route/replicate), but endpoint datapaths
/// dispatch on it, and traffic accounting reports data vs. control bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A multicast fast-path datagram carrying one chunk (UD) or a segment
    /// of a multi-packet message (UC).
    McastData,
    /// A unicast data packet (P2P baselines, RDMA read responses, ...).
    UnicastData,
    /// Slow-path/control traffic: barrier, activation signal, handshake,
    /// fetch request/ACK.
    Control,
}

/// Destination of a packet at the fabric level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Destination {
    /// A specific remote queue pair on a specific rank's NIC.
    Unicast(Rank, QpNum),
    /// All members of a multicast group (switch-replicated).
    Multicast(McastGroupId),
}

/// Packet header; the payload travels alongside it as either a descriptor
/// (DES fabric) or owned bytes (memfabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Sending rank.
    pub src: Rank,
    /// Sending queue pair.
    pub src_qp: QpNum,
    /// Fabric destination.
    pub dst: Destination,
    /// Traffic class.
    pub kind: PacketKind,
    /// Immediate data (collective id | PSN) if the operation carries it.
    pub imm: Option<ImmData>,
    /// Payload length in bytes (excluding header overhead).
    pub payload_len: usize,
}

impl PacketHeader {
    /// Total wire footprint: payload plus fixed header overhead.
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        self.payload_len + HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_footprint_includes_header() {
        let h = PacketHeader {
            src: Rank(0),
            src_qp: QpNum(1),
            dst: Destination::Multicast(McastGroupId(0)),
            kind: PacketKind::McastData,
            imm: Some(ImmData(42)),
            payload_len: 4096,
        };
        assert_eq!(h.wire_bytes(), 4096 + HEADER_BYTES);
    }

    #[test]
    fn control_packets_can_be_empty() {
        let h = PacketHeader {
            src: Rank(3),
            src_qp: QpNum(9),
            dst: Destination::Unicast(Rank(4), QpNum(2)),
            kind: PacketKind::Control,
            imm: None,
            payload_len: 0,
        };
        assert_eq!(h.wire_bytes(), HEADER_BYTES);
    }
}
