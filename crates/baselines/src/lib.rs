//! # mcag-baselines — point-to-point collective algorithms
//!
//! The unicast baselines the paper compares against (Section VI-B): the
//! bandwidth-optimized P2P algorithms of the UCC/UCX stack — ring and
//! other classic Allgather schedules, k-nomial/binomial/binary-tree
//! Broadcasts, and ring Reduce-Scatter.
//!
//! Algorithms are expressed as per-rank [`schedule::Schedule`]s (steps of
//! sends and receives, annotated with the logical blocks they carry) and
//! executed on the discrete-event fabric by [`executor::ScheduleApp`].
//! The block annotations let tests verify the *semantics* of each
//! algorithm (every rank ends holding every block) independently of the
//! timing model.

#![warn(missing_docs)]

pub mod executor;
pub mod schedule;

pub use executor::{run_p2p, run_p2p_concurrent, P2POutcome};
pub use schedule::{
    binary_tree_broadcast, binomial_broadcast, bruck_allgather, knomial_broadcast,
    linear_allgather, pipelined_chain_broadcast, recursive_doubling_allgather, ring_allgather,
    ring_reduce_scatter, scatter_allgather_broadcast, validate_allgather, validate_bcast_blocks,
    validate_broadcast, RecvOp, Schedule, SendOp, Step,
};
