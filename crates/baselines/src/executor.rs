//! Executes point-to-point schedules on the discrete-event fabric.
//!
//! Large messages are segmented into simulation chunks so that store-and-
//! forward pipelining across switch hops emerges as in a real packetized
//! fabric. All baseline traffic rides the reliable connected transport
//! (RC), matching the production P2P stacks (UCX zero-copy rendezvous)
//! the paper benchmarks against.
//!
//! [`run_p2p_concurrent`] runs several independent schedules per rank at
//! once — that is how the concurrent `{Allgather, Reduce-Scatter}`
//! contention scenario of Section II / Appendix B is reproduced: both
//! collectives' flows share the NIC injection pipeline and fabric links.

use crate::schedule::Schedule;
use mcag_simnet::fabric::RunStats;
use mcag_simnet::{Ctx, Fabric, FabricConfig, Payload, RankApp, SimTime, Topology, TrafficReport};
use mcag_verbs::{Cqe, CqeOpcode, ImmData, QpNum, Rank, Transport};

/// Default segmentation for unicast messages (64 KiB keeps event counts
/// tractable while preserving pipelining; pass a custom value for
/// fine-grained studies).
pub const DEFAULT_SEG_BYTES: usize = 64 << 10;

const TX_ALL_DONE: u64 = 10;

/// One flow = one schedule in execution.
struct FlowState {
    sched: Schedule,
    cursor: usize,
    /// Cumulative bytes received from each src rank (over the whole
    /// schedule) — FIFO channels make cumulative accounting exact.
    recvd_from: Vec<u64>,
    /// Cumulative receive thresholds per step per src, precomputed.
    thresholds: Vec<Vec<(u32, u64)>>,
    done_at: Option<SimTime>,
}

impl FlowState {
    fn new(sched: Schedule, p: usize) -> FlowState {
        let mut cum: Vec<u64> = vec![0; p];
        let thresholds = sched
            .steps
            .iter()
            .map(|step| {
                for r in &step.recvs {
                    cum[r.src.idx()] += r.bytes as u64;
                }
                step.recvs
                    .iter()
                    .map(|r| (r.src.0, cum[r.src.idx()]))
                    .collect()
            })
            .collect();
        FlowState {
            sched,
            cursor: 0,
            recvd_from: vec![0; p],
            thresholds,
            done_at: None,
        }
    }

    fn step_satisfied(&self) -> bool {
        self.thresholds[self.cursor]
            .iter()
            .all(|&(src, need)| self.recvd_from[src as usize] >= need)
    }

    fn is_done(&self) -> bool {
        self.cursor >= self.sched.steps.len()
    }
}

/// Per-rank executor over one or more concurrent flows.
pub struct ScheduleApp {
    flows: Vec<FlowState>,
    seg: usize,
    qp: QpNum,
    start: SimTime,
    next_psn: u32,
    all_posted: bool,
}

impl ScheduleApp {
    /// Build an executor for `rank` running `flows` concurrently. This
    /// rank's per-flow `(start, end)` records are read back with
    /// [`ScheduleApp::flow_times`] after the run.
    pub fn new(flows: Vec<Schedule>, p: usize, seg: usize, qp: QpNum) -> ScheduleApp {
        assert!(seg > 0);
        ScheduleApp {
            flows: flows.into_iter().map(|s| FlowState::new(s, p)).collect(),
            seg,
            qp,
            start: SimTime::ZERO,
            next_psn: 0,
            all_posted: false,
        }
    }

    /// This rank's `(start, end)` record for each flow, owned by the app
    /// and harvested by the driver (`None` for unfinished flows).
    pub fn flow_times(&self) -> Vec<Option<(SimTime, SimTime)>> {
        self.flows
            .iter()
            .map(|f| f.done_at.map(|e| (self.start, e)))
            .collect()
    }

    fn post_step_sends(&mut self, ctx: &mut Ctx<'_, ()>, flow_idx: usize) {
        let me = ctx.rank();
        let cursor = self.flows[flow_idx].cursor;
        let sends: Vec<(Rank, usize)> = self.flows[flow_idx].sched.steps[cursor]
            .sends
            .iter()
            .map(|s| (s.dst, s.bytes))
            .collect();
        for (dst, bytes) in sends {
            let mut left = bytes;
            while left > 0 {
                let this = left.min(self.seg);
                ctx.post_unicast_chunk(
                    dst,
                    self.qp,
                    Some(ImmData(flow_idx as u32)),
                    me,
                    self.next_psn,
                    this,
                    true, // RC: reliable
                );
                self.next_psn += 1;
                left -= this;
            }
        }
    }

    /// Advance all flows as far as receive thresholds allow.
    fn progress(&mut self, ctx: &mut Ctx<'_, ()>) {
        loop {
            let mut advanced = false;
            for f in 0..self.flows.len() {
                while !self.flows[f].is_done() && self.flows[f].step_satisfied() {
                    // Step complete: move to the next one and post its sends.
                    self.flows[f].cursor += 1;
                    if self.flows[f].is_done() {
                        self.flows[f].done_at = Some(ctx.now());
                    } else {
                        self.post_step_sends(ctx, f);
                    }
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        if !self.all_posted && self.flows.iter().all(|f| f.is_done()) {
            self.all_posted = true;
            ctx.notify_tx_drained(self.qp, TX_ALL_DONE);
        }
    }
}

impl RankApp<()> for ScheduleApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        self.start = ctx.now();
        for f in 0..self.flows.len() {
            if self.flows[f].is_done() {
                // Empty schedule (e.g. broadcast root with no parent and
                // no children at P=... ) — completes immediately.
                self.flows[f].done_at = Some(ctx.now());
                continue;
            }
            self.post_step_sends(ctx, f);
        }
        self.progress(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_, ()>, cqe: Cqe, _payload: Payload<()>) {
        assert_eq!(cqe.opcode, CqeOpcode::Recv);
        let flow = cqe.imm.expect("baseline chunk without flow tag").0 as usize;
        let src = cqe.src.expect("chunk without source");
        self.flows[flow].recvd_from[src.idx()] += cqe.byte_len as u64;
        self.progress(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, ()>, _token: u64) {
        unreachable!("baselines arm no timers");
    }

    fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
        assert_eq!(token, TX_ALL_DONE);
        ctx.mark_done();
    }
}

/// Outcome of a P2P run.
#[derive(Debug, Clone)]
pub struct P2POutcome {
    /// `(start, end)` per flow per rank.
    pub flow_times: Vec<Vec<Option<(SimTime, SimTime)>>>,
    /// Fabric statistics.
    pub stats: RunStats,
    /// Link counters.
    pub traffic: TrafficReport,
}

impl P2POutcome {
    /// Wall-clock of flow `f` (max end across ranks), ns.
    pub fn flow_completion_ns(&self, f: usize) -> u64 {
        self.flow_times[f]
            .iter()
            .flatten()
            .map(|(s, e)| e.since(*s))
            .max()
            .unwrap_or(0)
    }

    /// Per-rank durations of flow `f` for ranks that moved data.
    pub fn flow_rank_ns(&self, f: usize) -> Vec<u64> {
        self.flow_times[f]
            .iter()
            .flatten()
            .map(|(s, e)| e.since(*s))
            .collect()
    }

    /// Per-rank receive throughput (Gbit/s) of flow `f`, given the bytes
    /// each rank receives; ranks with zero expected bytes are skipped.
    pub fn recv_gbps(&self, f: usize, recv_bytes: impl Fn(Rank) -> u64) -> Vec<f64> {
        self.flow_times[f]
            .iter()
            .enumerate()
            .filter_map(|(r, t)| {
                let (s, e) = (*t)?;
                let bytes = recv_bytes(Rank(r as u32));
                let ns = e.since(s);
                (bytes > 0 && ns > 0).then(|| bytes as f64 * 8.0 / ns as f64)
            })
            .collect()
    }
}

/// Run one schedule set (`schedules[rank]`) on `topo`.
pub fn run_p2p(
    topo: Topology,
    cfg: FabricConfig,
    schedules: Vec<Schedule>,
    seg: usize,
) -> P2POutcome {
    run_p2p_concurrent(topo, cfg, vec![schedules], seg)
}

/// Run several schedule sets concurrently (flow `f` of rank `r` is
/// `flows[f][r]`); all flows share NICs and links.
pub fn run_p2p_concurrent(
    topo: Topology,
    cfg: FabricConfig,
    flows: Vec<Vec<Schedule>>,
    seg: usize,
) -> P2POutcome {
    let p = topo.num_hosts();
    for fl in &flows {
        assert_eq!(fl.len(), p, "one schedule per rank");
    }
    let mut fab: Fabric<()> = Fabric::new(topo, cfg);
    let n_flows = flows.len();
    for r in 0..p {
        let rank = Rank(r as u32);
        let qp = fab.add_qp(rank, Transport::Rc, 0);
        let rank_flows: Vec<Schedule> = flows.iter().map(|fl| fl[r].clone()).collect();
        fab.set_app(rank, Box::new(ScheduleApp::new(rank_flows, p, seg, qp)));
    }
    let stats = fab.run();
    let traffic = fab.traffic();
    // Harvest each rank's owned per-flow records, then transpose to the
    // `[flow][rank]` layout the outcome exposes.
    let per_rank: Vec<Vec<Option<(SimTime, SimTime)>>> = (0..p)
        .map(|r| fab.take_app_as::<ScheduleApp>(Rank(r as u32)).flow_times())
        .collect();
    let flow_times: Vec<Vec<Option<(SimTime, SimTime)>>> = (0..n_flows)
        .map(|f| per_rank.iter().map(|rank_rows| rank_rows[f]).collect())
        .collect();
    P2POutcome {
        flow_times,
        stats,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::*;
    use mcag_verbs::LinkRate;

    fn star(n: usize) -> Topology {
        Topology::single_switch(n, LinkRate::CX3_56G, 100)
    }

    #[test]
    fn ring_allgather_runs() {
        let p = 8;
        let out = run_p2p(
            star(p),
            FabricConfig::ideal(),
            ring_allgather(p as u32, 64 << 10),
            DEFAULT_SEG_BYTES,
        );
        assert!(out.stats.all_done(), "{:?}", out.stats);
        // Ring time >= (P-1) * N / B.
        let min_ns = LinkRate::CX3_56G.serialization_ns(64 << 10) * (p as u64 - 1);
        assert!(out.flow_completion_ns(0) >= min_ns);
    }

    #[test]
    fn tree_broadcasts_run_and_order_sanely() {
        let p = 32u32;
        let n = 1 << 20;
        let mut times = Vec::new();
        for sched in [
            binomial_broadcast(p, Rank(0), n),
            knomial_broadcast(p, Rank(0), n, 4),
            binary_tree_broadcast(p, Rank(0), n),
        ] {
            let out = run_p2p(star(p as usize), FabricConfig::ideal(), sched, 64 << 10);
            assert!(out.stats.all_done());
            times.push(out.flow_completion_ns(0));
        }
        // Binary tree must be the slowest of the three for large buffers
        // (every interior node forwards the buffer twice serially).
        assert!(
            times[2] >= times[0],
            "binary {} < binomial {}",
            times[2],
            times[0]
        );
    }

    #[test]
    fn linear_vs_ring_traffic_equal_but_linear_has_one_step() {
        let p = 6u32;
        let n = 32 << 10;
        let ring = run_p2p(
            star(p as usize),
            FabricConfig::ideal(),
            ring_allgather(p, n),
            16 << 10,
        );
        let lin = run_p2p(
            star(p as usize),
            FabricConfig::ideal(),
            linear_allgather(p, n),
            16 << 10,
        );
        // Same total data movement (P2P Allgather moves N(P-1) per rank
        // regardless of schedule).
        assert_eq!(
            ring.traffic.total_data_bytes(),
            lin.traffic.total_data_bytes()
        );
        assert!(ring.stats.all_done() && lin.stats.all_done());
    }

    #[test]
    fn concurrent_flows_share_bandwidth() {
        // AG and RS rings running together must take longer than either
        // alone (they compete for the same NIC send path).
        let p = 6u32;
        let n = 256 << 10;
        let ag_alone = run_p2p(
            star(p as usize),
            FabricConfig::ideal(),
            ring_allgather(p, n),
            64 << 10,
        );
        let both = run_p2p_concurrent(
            star(p as usize),
            FabricConfig::ideal(),
            vec![ring_allgather(p, n), ring_reduce_scatter(p, n)],
            64 << 10,
        );
        assert!(both.stats.all_done());
        let t_alone = ag_alone.flow_completion_ns(0);
        let t_both = both.flow_completion_ns(0).max(both.flow_completion_ns(1));
        assert!(
            t_both as f64 > t_alone as f64 * 1.5,
            "contention missing: alone {t_alone}, both {t_both}"
        );
    }

    #[test]
    fn recursive_doubling_faster_than_ring_for_small() {
        let p = 16u32;
        let n = 4 << 10;
        let cfg = FabricConfig::ucc_default();
        let ring = run_p2p(star(p as usize), cfg.clone(), ring_allgather(p, n), 4096);
        let rd = run_p2p(
            star(p as usize),
            cfg,
            recursive_doubling_allgather(p, n),
            4096,
        );
        // log(P) rounds beat P-1 rounds at small sizes.
        assert!(rd.flow_completion_ns(0) < ring.flow_completion_ns(0));
    }
}
