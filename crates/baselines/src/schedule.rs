//! Communication schedules for classic point-to-point collectives.
//!
//! Each generator returns one [`Schedule`] per rank. A schedule is a list
//! of [`Step`]s; within a step a rank posts all its sends and then waits
//! for all its receives before moving on (the dependency structure of the
//! textbook algorithms). Sends/receives carry the logical *block* indices
//! they transport so that semantic validators — and reduce-scatter's
//! element accounting — can check the algorithms independently of timing.

use mcag_verbs::Rank;

/// One send within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendOp {
    /// Destination rank.
    pub dst: Rank,
    /// Bytes to move.
    pub bytes: usize,
    /// Logical blocks carried (for semantic validation).
    pub blocks: Vec<u32>,
}

/// One expected receive within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvOp {
    /// Source rank.
    pub src: Rank,
    /// Bytes expected.
    pub bytes: usize,
    /// Logical blocks carried.
    pub blocks: Vec<u32>,
}

/// A step: post `sends`, then block until all `recvs` arrive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Step {
    /// Sends posted at step entry.
    pub sends: Vec<SendOp>,
    /// Receives gating step exit.
    pub recvs: Vec<RecvOp>,
}

/// A per-rank schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Ordered steps.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Total bytes this rank sends.
    pub fn total_send_bytes(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.sends)
            .map(|s| s.bytes)
            .sum()
    }

    /// Total bytes this rank receives.
    pub fn total_recv_bytes(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.recvs)
            .map(|r| r.bytes)
            .sum()
    }
}

/// Ring Allgather (the NCCL/UCC default for large messages): step `k`
/// sends block `(rank − k) mod P` to the right neighbor and receives
/// block `(rank − k − 1) mod P` from the left. `P − 1` steps, `N` bytes
/// per step, optimal schedule time but `N·(P−1)` send bytes per rank.
pub fn ring_allgather(p: u32, n: usize) -> Vec<Schedule> {
    assert!(p >= 2);
    (0..p)
        .map(|r| {
            let right = Rank(r).ring_right(p);
            let left = Rank(r).ring_left(p);
            let steps = (0..p - 1)
                .map(|k| Step {
                    sends: vec![SendOp {
                        dst: right,
                        bytes: n,
                        blocks: vec![(r + p - k) % p],
                    }],
                    recvs: vec![RecvOp {
                        src: left,
                        bytes: n,
                        blocks: vec![(r + p - k - 1) % p],
                    }],
                })
                .collect();
            Schedule { steps }
        })
        .collect()
}

/// Linear Allgather: every rank sends its block directly to every other
/// rank in one step — the `Ω(N·(P−1))` send-path extreme of Insight 1.
pub fn linear_allgather(p: u32, n: usize) -> Vec<Schedule> {
    assert!(p >= 2);
    (0..p)
        .map(|r| {
            let sends = (0..p)
                .filter(|&d| d != r)
                .map(|d| SendOp {
                    dst: Rank(d),
                    bytes: n,
                    blocks: vec![r],
                })
                .collect();
            let recvs = (0..p)
                .filter(|&s| s != r)
                .map(|s| RecvOp {
                    src: Rank(s),
                    bytes: n,
                    blocks: vec![s],
                })
                .collect();
            Schedule {
                steps: vec![Step { sends, recvs }],
            }
        })
        .collect()
}

/// Recursive-doubling Allgather: `log2 P` exchange steps, doubling the
/// payload each step. Requires a power-of-two rank count.
pub fn recursive_doubling_allgather(p: u32, n: usize) -> Vec<Schedule> {
    assert!(p >= 2 && p.is_power_of_two(), "p must be a power of two");
    (0..p)
        .map(|r| {
            let mut steps = Vec::new();
            let mut held: Vec<u32> = vec![r];
            let mut dist = 1u32;
            while dist < p {
                let peer = r ^ dist;
                // Blocks the peer holds at this point mirror ours.
                let peer_held: Vec<u32> = held.iter().map(|b| b ^ dist).collect();
                steps.push(Step {
                    sends: vec![SendOp {
                        dst: Rank(peer),
                        bytes: n * held.len(),
                        blocks: held.clone(),
                    }],
                    recvs: vec![RecvOp {
                        src: Rank(peer),
                        bytes: n * peer_held.len(),
                        blocks: peer_held.clone(),
                    }],
                });
                held.extend(peer_held);
                dist <<= 1;
            }
            Schedule { steps }
        })
        .collect()
}

/// Bruck Allgather: `⌈log2 P⌉` steps for arbitrary `P`; step `k` sends
/// `min(2^k, P − 2^k)` blocks to `(rank − 2^k) mod P`.
pub fn bruck_allgather(p: u32, n: usize) -> Vec<Schedule> {
    assert!(p >= 2);
    (0..p)
        .map(|r| {
            let mut steps = Vec::new();
            let mut have = 1u32; // blocks r, r+1, …, r+have−1 (mod p)
            let mut k = 0u32;
            while have < p {
                let send_cnt = have.min(p - have);
                let dst = Rank((r + p - (1 << k) % p) % p);
                let src = Rank((r + (1 << k)) % p);
                // We send our first `send_cnt` held blocks; we receive the
                // blocks starting at r+have.
                let send_blocks: Vec<u32> = (0..send_cnt).map(|i| (r + i) % p).collect();
                let recv_blocks: Vec<u32> = (0..send_cnt).map(|i| (r + have + i) % p).collect();
                steps.push(Step {
                    sends: vec![SendOp {
                        dst,
                        bytes: n * send_cnt as usize,
                        blocks: send_blocks,
                    }],
                    recvs: vec![RecvOp {
                        src,
                        bytes: n * send_cnt as usize,
                        blocks: recv_blocks,
                    }],
                });
                have += send_cnt;
                k += 1;
            }
            Schedule { steps }
        })
        .collect()
}

/// Generic k-nomial tree broadcast. With `k = 2` this is the binomial
/// tree. The root sends to `k − 1` children per round; subtree sizes
/// shrink by `k` each round.
pub fn knomial_broadcast(p: u32, root: Rank, n: usize, k: u32) -> Vec<Schedule> {
    assert!(p >= 2 && root.0 < p && k >= 2);
    // Virtual ranks relative to the root.
    let vrank = |r: u32| (r + p - root.0) % p;
    let unvrank = |v: u32| (v + root.0) % p;

    // For each rank compute (parent, children) on the k-nomial tree over
    // virtual ranks 0..p.
    let mut parent: Vec<Option<u32>> = vec![None; p as usize];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); p as usize];
    // Highest power of k not exceeding p-1 … iterate digit positions from
    // the top so the root's first sends reach the farthest subtrees
    // (standard MPICH ordering).
    let mut span = 1u32;
    while span.saturating_mul(k) < p {
        span *= k;
    }
    let mut s = span;
    loop {
        for v in 0..p {
            if v % (s * k) == 0 {
                for j in 1..k {
                    let c = v + j * s;
                    if c < p {
                        parent[c as usize] = Some(v);
                        children[v as usize].push(c);
                    }
                }
            }
        }
        if s == 1 {
            break;
        }
        s /= k;
    }

    (0..p)
        .map(|r| {
            let v = vrank(r);
            let mut steps = Vec::new();
            if let Some(pv) = parent[v as usize] {
                steps.push(Step {
                    sends: vec![],
                    recvs: vec![RecvOp {
                        src: Rank(unvrank(pv)),
                        bytes: n,
                        blocks: vec![0],
                    }],
                });
            }
            if !children[v as usize].is_empty() {
                steps.push(Step {
                    sends: children[v as usize]
                        .iter()
                        .map(|&c| SendOp {
                            dst: Rank(unvrank(c)),
                            bytes: n,
                            blocks: vec![0],
                        })
                        .collect(),
                    recvs: vec![],
                });
            }
            Schedule { steps }
        })
        .collect()
}

/// Binomial tree broadcast (`k = 2`).
pub fn binomial_broadcast(p: u32, root: Rank, n: usize) -> Vec<Schedule> {
    knomial_broadcast(p, root, n, 2)
}

/// Plain binary tree broadcast: node `v` (virtual) has children `2v+1`
/// and `2v+2`. Depth `log2 P` but every interior node forwards the whole
/// buffer twice — the weakest baseline in Fig. 11 (up to 4.75× slower).
pub fn binary_tree_broadcast(p: u32, root: Rank, n: usize) -> Vec<Schedule> {
    assert!(p >= 2 && root.0 < p);
    let vrank = |r: u32| (r + p - root.0) % p;
    let unvrank = |v: u32| (v + root.0) % p;
    (0..p)
        .map(|r| {
            let v = vrank(r);
            let mut steps = Vec::new();
            if v != 0 {
                steps.push(Step {
                    sends: vec![],
                    recvs: vec![RecvOp {
                        src: Rank(unvrank((v - 1) / 2)),
                        bytes: n,
                        blocks: vec![0],
                    }],
                });
            }
            let kids: Vec<u32> = [2 * v + 1, 2 * v + 2]
                .into_iter()
                .filter(|&c| c < p)
                .collect();
            if !kids.is_empty() {
                steps.push(Step {
                    sends: kids
                        .iter()
                        .map(|&c| SendOp {
                            dst: Rank(unvrank(c)),
                            bytes: n,
                            blocks: vec![0],
                        })
                        .collect(),
                    recvs: vec![],
                });
            }
            Schedule { steps }
        })
        .collect()
}

/// Pipelined chain broadcast (the NCCL-style large-message scheme): the
/// buffer is cut into `ceil(n/seg)` segments that flow down the chain
/// `root → root+1 → …`; every interior rank forwards segment `s` as soon
/// as it arrives, so steady-state throughput approaches the line rate
/// with a `depth × seg` pipeline-fill bubble.
pub fn pipelined_chain_broadcast(p: u32, root: Rank, n: usize, seg: usize) -> Vec<Schedule> {
    assert!(p >= 2 && root.0 < p && seg > 0);
    let vrank = |r: u32| (r + p - root.0) % p;
    let unvrank = |v: u32| (v + root.0) % p;
    let num_segs = n.div_ceil(seg).max(1);
    let seg_len = |s: usize| -> usize {
        let start = s * seg;
        (start + seg).min(n) - start
    };
    (0..p)
        .map(|r| {
            let v = vrank(r);
            let prev = (v > 0).then(|| Rank(unvrank(v - 1)));
            let next = (v + 1 < p).then(|| Rank(unvrank(v + 1)));
            let mut steps = Vec::with_capacity(num_segs + 1);
            if v == 0 {
                // Root: inject all segments; the NIC serializes them.
                steps.push(Step {
                    sends: (0..num_segs)
                        .map(|s| SendOp {
                            dst: next.expect("chain of length >= 2"),
                            bytes: seg_len(s),
                            blocks: vec![0],
                        })
                        .collect(),
                    recvs: vec![],
                });
            } else {
                // Interior/tail: segment s is received in step s and
                // forwarded in step s+1 (after the receive completes) —
                // the cut-through relay that pipelines the chain.
                for s in 0..num_segs {
                    steps.push(Step {
                        sends: (s > 0)
                            .then(|| {
                                next.map(|dst| SendOp {
                                    dst,
                                    bytes: seg_len(s - 1),
                                    blocks: vec![0],
                                })
                            })
                            .flatten()
                            .into_iter()
                            .collect(),
                        recvs: vec![RecvOp {
                            src: prev.unwrap(),
                            bytes: seg_len(s),
                            blocks: vec![0],
                        }],
                    });
                }
                if let Some(dst) = next {
                    steps.push(Step {
                        sends: vec![SendOp {
                            dst,
                            bytes: seg_len(num_segs - 1),
                            blocks: vec![0],
                        }],
                        recvs: vec![],
                    });
                }
            }
            Schedule { steps }
        })
        .collect()
}

/// Scatter-allgather (van de Geijn) broadcast — the MPICH/UCC
/// bandwidth-oriented large-message scheme: a binomial scatter splits the
/// buffer into `P` blocks, then a ring allgather reassembles it
/// everywhere. Per-rank volume ≈ `2N(P−1)/P`.
pub fn scatter_allgather_broadcast(p: u32, root: Rank, n: usize) -> Vec<Schedule> {
    assert!(p >= 2 && root.0 < p);
    let vrank = |r: u32| (r + p - root.0) % p;
    let unvrank = |v: u32| (v + root.0) % p;
    // Block b (0..p) of the root buffer; block sizes n/p with remainder
    // spread over the first blocks.
    let blen = |b: u32| -> usize {
        let base = n / p as usize;
        base + ((b as usize) < n % p as usize) as usize
    };
    let range_len = |blocks: &[u32]| -> usize { blocks.iter().map(|&b| blen(b)).sum() };

    // Binomial scatter over virtual ranks: at the round with span d
    // (p/2-ish downward), node v holding blocks [v, v+span) sends the
    // upper half to v+d.
    let mut span_of = vec![0u32; p as usize]; // blocks held after scatter start at v
    span_of[0] = p;
    let mut scatter_steps: Vec<Vec<Step>> = vec![Vec::new(); p as usize];
    let mut d = 1u32;
    while d < p {
        d <<= 1;
    }
    d >>= 1; // largest power of two < p (or == p/2 when p is 2^k)
    while d >= 1 {
        for v in 0..p {
            if span_of[v as usize] > d && v + d < p {
                // v holds [v, v+span): hand [v+d, v+span) to v+d.
                let give: Vec<u32> = (v + d..v + span_of[v as usize]).collect();
                let keep = d;
                scatter_steps[v as usize].push(Step {
                    sends: vec![SendOp {
                        dst: Rank(unvrank(v + d)),
                        bytes: range_len(&give),
                        blocks: give.clone(),
                    }],
                    recvs: vec![],
                });
                scatter_steps[(v + d) as usize].push(Step {
                    sends: vec![],
                    recvs: vec![RecvOp {
                        src: Rank(unvrank(v)),
                        bytes: range_len(&give),
                        blocks: give,
                    }],
                });
                span_of[(v + d) as usize] = span_of[v as usize] - keep;
                span_of[v as usize] = keep;
            }
        }
        d >>= 1;
    }

    // Ring allgather over the scattered blocks (in virtual-rank space).
    (0..p)
        .map(|r| {
            let v = vrank(r);
            let mut steps = scatter_steps[v as usize].clone();
            let right = Rank(unvrank((v + 1) % p));
            let left = Rank(unvrank((v + p - 1) % p));
            for k in 0..p - 1 {
                let send_b = (v + p - k) % p;
                let recv_b = (v + p - k - 1) % p;
                steps.push(Step {
                    sends: vec![SendOp {
                        dst: right,
                        bytes: blen(send_b),
                        blocks: vec![send_b],
                    }],
                    recvs: vec![RecvOp {
                        src: left,
                        bytes: blen(recv_b),
                        blocks: vec![recv_b],
                    }],
                });
            }
            Schedule { steps }
        })
        .collect()
}

/// Verify that a segmented/blocked broadcast delivers every one of
/// `blocks` root-buffer blocks to every rank.
pub fn validate_bcast_blocks(
    schedules: &[Schedule],
    p: u32,
    root: Rank,
    blocks: u32,
) -> Result<(), String> {
    validate_propagation(
        schedules,
        p,
        |r| {
            if r == root.0 {
                (0..blocks).collect()
            } else {
                Vec::new()
            }
        },
        (0..blocks).collect(),
    )
}

/// Ring Reduce-Scatter over a `P·n`-byte vector (`n` bytes per shard):
/// `P − 1` steps, each sending one partially-reduced shard of `n` bytes to
/// the right neighbor. Send volume `n·(P−1)` per rank — the same wire
/// pattern as ring Allgather run in reverse (Fig. 3's symmetry).
pub fn ring_reduce_scatter(p: u32, n: usize) -> Vec<Schedule> {
    assert!(p >= 2);
    (0..p)
        .map(|r| {
            let right = Rank(r).ring_right(p);
            let left = Rank(r).ring_left(p);
            let steps = (0..p - 1)
                .map(|k| Step {
                    // Step k: pass on the partial sum for shard
                    // (r − k − 1) mod p; after the last step each rank
                    // holds the full reduction of shard (r+1) mod p … by
                    // convention shard r lands on rank r with one rotation.
                    sends: vec![SendOp {
                        dst: right,
                        bytes: n,
                        blocks: vec![(r + p - k - 1) % p],
                    }],
                    recvs: vec![RecvOp {
                        src: left,
                        bytes: n,
                        blocks: vec![(r + p - k - 2 + p) % p],
                    }],
                })
                .collect();
            Schedule { steps }
        })
        .collect()
}

/// Verify Allgather semantics: starting with its own block, executing the
/// steps in order (sends may only carry blocks held at step entry) must
/// leave every rank holding all `P` blocks.
pub fn validate_allgather(schedules: &[Schedule], p: u32) -> Result<(), String> {
    validate_propagation(schedules, p, |r| vec![r], (0..p).collect())
}

/// Verify Broadcast semantics: only the root starts with block 0; every
/// rank must end up holding it.
pub fn validate_broadcast(schedules: &[Schedule], p: u32, root: Rank) -> Result<(), String> {
    validate_propagation(
        schedules,
        p,
        |r| if r == root.0 { vec![0] } else { vec![] },
        vec![0],
    )
}

/// Abstract interpreter over block ownership. Steps across ranks are
/// interleaved by data dependency: a rank's step-`k` receives must match
/// blocks the sender held when it posted them (we check sends against the
/// sender's held set at its own step entry, which is conservative for
/// these BSP-shaped schedules).
fn validate_propagation(
    schedules: &[Schedule],
    p: u32,
    init: impl Fn(u32) -> Vec<u32>,
    must_end_with: Vec<u32>,
) -> Result<(), String> {
    use std::collections::HashSet;
    let mut held: Vec<HashSet<u32>> = (0..p).map(|r| init(r).into_iter().collect()).collect();
    let mut cursor = vec![0usize; p as usize];
    // Steps whose sends have been posted (sends precede blocking receives).
    let mut sends_posted = vec![0usize; p as usize];
    let mut sent: Vec<Vec<&SendOp>> = vec![Vec::new(); p as usize];
    // Iterate to fixpoint: a rank posts its current step's sends as soon
    // as it enters the step, and advances when all the step's receives
    // are satisfiable from already-posted matching sends.
    let mut progress = true;
    while progress {
        progress = false;
        for r in 0..p as usize {
            let sched = &schedules[r];
            if cursor[r] >= sched.steps.len() {
                continue;
            }
            let step = &sched.steps[cursor[r]];
            if sends_posted[r] == cursor[r] {
                for s in &step.sends {
                    for b in &s.blocks {
                        if !held[r].contains(b) {
                            return Err(format!(
                                "rank {r} step {} sends block {b} it does not hold",
                                cursor[r]
                            ));
                        }
                    }
                    sent[r].push(s);
                }
                sends_posted[r] = cursor[r] + 1;
                progress = true;
            }
            let all_recv_ok = step.recvs.iter().all(|recv| {
                let needed: HashSet<u32> = recv.blocks.iter().copied().collect();
                let available: HashSet<u32> = sent[recv.src.idx()]
                    .iter()
                    .filter(|s| s.dst.0 as usize == r)
                    .flat_map(|s| s.blocks.iter().copied())
                    .collect();
                needed.is_subset(&available)
            });
            if all_recv_ok {
                for recv in &step.recvs {
                    held[r].extend(recv.blocks.iter().copied());
                }
                cursor[r] += 1;
                progress = true;
            }
        }
    }
    for r in 0..p as usize {
        if cursor[r] < schedules[r].steps.len() {
            return Err(format!("rank {r} deadlocked at step {}", cursor[r]));
        }
        for b in &must_end_with {
            if !held[r].contains(b) {
                return Err(format!("rank {r} never received block {b}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allgather_semantics_and_volume() {
        for p in [2u32, 3, 5, 8, 17] {
            let s = ring_allgather(p, 1000);
            validate_allgather(&s, p).unwrap();
            for r in &s {
                assert_eq!(r.total_send_bytes(), 1000 * (p as usize - 1));
                assert_eq!(r.total_recv_bytes(), 1000 * (p as usize - 1));
            }
        }
    }

    #[test]
    fn linear_allgather_semantics() {
        for p in [2u32, 4, 9] {
            let s = linear_allgather(p, 500);
            validate_allgather(&s, p).unwrap();
            assert_eq!(s[0].steps.len(), 1);
        }
    }

    #[test]
    fn recursive_doubling_semantics() {
        for p in [2u32, 4, 8, 16, 32] {
            let s = recursive_doubling_allgather(p, 100);
            validate_allgather(&s, p).unwrap();
            assert_eq!(s[0].steps.len(), (p as f64).log2() as usize);
            // Total volume matches ring.
            assert_eq!(s[0].total_send_bytes(), 100 * (p as usize - 1));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn recursive_doubling_rejects_odd() {
        recursive_doubling_allgather(6, 100);
    }

    #[test]
    fn bruck_semantics_any_p() {
        for p in [2u32, 3, 5, 6, 7, 12, 31] {
            let s = bruck_allgather(p, 100);
            validate_allgather(&s, p).unwrap();
            assert_eq!(s[0].steps.len(), (p as f64).log2().ceil() as usize);
            assert_eq!(s[0].total_send_bytes(), 100 * (p as usize - 1));
        }
    }

    #[test]
    fn binomial_broadcast_semantics() {
        for p in [2u32, 3, 8, 13, 188] {
            for root in [0u32, 1, p - 1] {
                let s = binomial_broadcast(p, Rank(root), 100);
                validate_broadcast(&s, p, Rank(root)).unwrap();
            }
        }
    }

    #[test]
    fn knomial_broadcast_semantics() {
        for p in [2u32, 5, 27, 64, 188] {
            for k in [2u32, 3, 4, 8] {
                let s = knomial_broadcast(p, Rank(0), 100, k);
                validate_broadcast(&s, p, Rank(0)).unwrap();
            }
        }
    }

    #[test]
    fn binary_tree_broadcast_semantics() {
        for p in [2u32, 3, 7, 10, 188] {
            let s = binary_tree_broadcast(p, Rank(2 % p), 100);
            validate_broadcast(&s, p, Rank(2 % p)).unwrap();
        }
    }

    #[test]
    fn knomial_root_fanout() {
        // k-nomial root sends (k-1) messages per round, log_k(p) rounds.
        let s = knomial_broadcast(27, Rank(0), 100, 3);
        let root_sends: usize = s[0].steps.iter().map(|st| st.sends.len()).sum();
        assert_eq!(root_sends, 6, "3 rounds x 2 children");
        // Binomial root on 188: ceil(log2 188) = 8 sends.
        let s = binomial_broadcast(188, Rank(0), 100);
        let root_sends: usize = s[0].steps.iter().map(|st| st.sends.len()).sum();
        assert_eq!(root_sends, 8);
    }

    #[test]
    fn ring_reduce_scatter_volume() {
        let p = 8u32;
        let s = ring_reduce_scatter(p, 4096);
        for r in &s {
            assert_eq!(r.total_send_bytes(), 4096 * 7);
            assert_eq!(r.total_recv_bytes(), 4096 * 7);
            assert_eq!(r.steps.len(), 7);
        }
    }

    #[test]
    fn pipelined_chain_semantics_and_volume() {
        for p in [2u32, 5, 16] {
            for root in [0u32, 2 % p] {
                let s = pipelined_chain_broadcast(p, Rank(root), 10_000, 1024);
                validate_broadcast(&s, p, Rank(root)).unwrap();
                // Interior ranks forward exactly N; the tail sends 0.
                for (r, sched) in s.iter().enumerate() {
                    let v = (r as u32 + p - root) % p;
                    let sent = sched.total_send_bytes();
                    if v + 1 < p {
                        assert_eq!(sent, 10_000, "rank {r}");
                    } else {
                        assert_eq!(sent, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_allgather_semantics_and_volume() {
        for p in [2u32, 4, 5, 7, 16] {
            for root in [0u32, p - 1] {
                let n = 9973usize; // awkward size: uneven blocks
                let s = scatter_allgather_broadcast(p, Rank(root), n);
                validate_bcast_blocks(&s, p, Rank(root), p).unwrap();
                // Total receive volume per non-root rank:
                // scatter part + ring part ~ 2N(P-1)/P-ish; every rank
                // must at least receive the blocks it lacks.
                for (r, sched) in s.iter().enumerate() {
                    if r as u32 == root {
                        continue;
                    }
                    assert!(sched.total_recv_bytes() >= n - n / p as usize);
                }
            }
        }
    }

    #[test]
    fn broadcast_leaf_has_single_recv_step() {
        let s = binomial_broadcast(8, Rank(0), 64);
        // Rank 7 (virtual 7) is a leaf of the binomial tree.
        let leaf = &s[7];
        assert_eq!(leaf.steps.len(), 1);
        assert!(leaf.steps[0].sends.is_empty());
        assert_eq!(leaf.steps[0].recvs.len(), 1);
    }
}
