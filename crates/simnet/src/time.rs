//! Simulated time: nanoseconds since simulation start.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds.
///
/// `u64` nanoseconds cover ~584 years of simulated time — far beyond any
/// collective schedule — while keeping event ordering exact (no float
/// comparison hazards in the event queue).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since epoch.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(1);
        assert_eq!((t + 500).as_ns(), 1500);
        assert_eq!(t + 500 - t, 500);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime(100).since(SimTime(40)), 60);
        assert_eq!(SimTime(40).since(SimTime(100)), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime(5).to_string(), "5ns");
        assert_eq!(SimTime(5_000).to_string(), "5.000us");
        assert_eq!(SimTime(5_000_000).to_string(), "5.000ms");
        assert_eq!(SimTime(5_000_000_000).to_string(), "5.000s");
    }
}
