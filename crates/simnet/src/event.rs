//! Deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`, so two events at the
//! same instant fire in insertion order — the whole simulation is a pure
//! function of its inputs and seeds.
//!
//! ## Engines
//!
//! Two interchangeable engines implement that contract:
//!
//! * [`QueueBackend::Wheel`] (default) — a hierarchical timer wheel /
//!   bucketed calendar queue. The *near* level has 4096 one-nanosecond
//!   slots, so every event within ~4 µs of `now` (NIC serialization,
//!   switch hops, CQE DMA — the events that dominate a collective run)
//!   schedules and pops in O(1) with no comparisons. A *far* level of
//!   4096 coarser slots (~16.8 ms horizon) cascades into the near level
//!   as simulated time advances, and a sorted overflow map holds
//!   far-future timers (reliability cutoffs, watchdogs). Because each
//!   near slot spans exactly one nanosecond, same-slot events share a
//!   timestamp and FIFO append order *is* `(time, seq)` order — no
//!   per-pop comparisons anywhere on the hot path.
//! * [`QueueBackend::Heap`] — the reference `BinaryHeap` engine
//!   (O(log n) per operation). Kept as the determinism oracle for the
//!   equivalence property tests and as the perf baseline recorded in
//!   `BENCH_simcore.json`.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Which engine backs an [`EventQueue`]. Both produce bit-for-bit
/// identical pop order; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueBackend {
    /// Hierarchical timer wheel: O(1) schedule/pop for near-future
    /// events, amortized-O(1) cascading for far ones. The default.
    #[default]
    Wheel,
    /// Reference binary-heap engine: O(log n) per operation. The
    /// determinism oracle and perf baseline.
    Heap,
}

/// A scheduled entry wrapping the caller's event payload.
struct Scheduled<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slots per wheel level (and slot width of the far level, in ns).
const SLOT_BITS: u32 = 12;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

/// Two-level occupancy bitmap over one wheel level: `bits[w]` covers 64
/// slots, `summary` bit `w` says word `w` is non-empty. Finding the next
/// occupied slot is two trailing-zero scans — O(1) per pop.
#[derive(Clone)]
struct SlotBits {
    bits: [u64; WORDS],
    summary: u64,
}

impl SlotBits {
    fn new() -> SlotBits {
        SlotBits {
            bits: [0; WORDS],
            summary: 0,
        }
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        self.bits[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        let w = slot / 64;
        self.bits[w] &= !(1 << (slot % 64));
        if self.bits[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// First set bit at index `>= from`.
    #[inline]
    fn next(&self, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let w0 = from / 64;
        let word = self.bits[w0] & (!0u64 << (from % 64));
        if word != 0 {
            return Some(w0 * 64 + word.trailing_zeros() as usize);
        }
        let rest = if w0 + 1 >= WORDS {
            0
        } else {
            self.summary & (!0u64 << (w0 + 1))
        };
        if rest == 0 {
            return None;
        }
        let w = rest.trailing_zeros() as usize;
        Some(w * 64 + self.bits[w].trailing_zeros() as usize)
    }
}

/// The two-level timer wheel with sorted overflow.
///
/// Invariants (between public calls):
/// * every pending event has `at >= now >= base0`;
/// * `base0` is slot-aligned and its chunk routes to the near level;
/// * far slots `< cursor1` are empty; overflow holds only super-chunks
///   beyond the far window.
struct Wheel<E> {
    /// Near level: one slot per nanosecond in `[base0, base0 + SLOTS)`.
    /// All events in a slot share a timestamp (the slot index), so the
    /// entries are bare events — FIFO append order *is* `(time, seq)`
    /// order, and no timestamp or sequence number is stored per entry.
    near: Vec<VecDeque<E>>,
    near_bits: SlotBits,
    base0: u64,
    /// Far level: one slot per near-window-sized chunk of the super-chunk
    /// `super_base` (i.e. `at >> (2 * SLOT_BITS) == super_base`); entries
    /// keep their timestamp for the later cascade.
    far: Vec<Vec<(u64, E)>>,
    far_bits: SlotBits,
    super_base: u64,
    cursor1: usize,
    /// Far-future events bucketed by super-chunk (`at >> 24`), sorted.
    overflow: BTreeMap<u64, Vec<(u64, E)>>,
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            near: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            near_bits: SlotBits::new(),
            base0: 0,
            far: (0..SLOTS).map(|_| Vec::new()).collect(),
            far_bits: SlotBits::new(),
            super_base: 0,
            // base0's own chunk (far slot 0) routes to the near level.
            cursor1: 1,
            overflow: BTreeMap::new(),
        }
    }

    #[inline]
    fn push(&mut self, at: u64, event: E) {
        let chunk = at >> SLOT_BITS;
        if chunk == self.base0 >> SLOT_BITS {
            let slot = (at & SLOT_MASK) as usize;
            self.near_bits.set(slot);
            self.near[slot].push_back(event);
        } else if at >> (2 * SLOT_BITS) == self.super_base {
            let slot = (chunk & SLOT_MASK) as usize;
            self.far_bits.set(slot);
            self.far[slot].push((at, event));
        } else {
            self.overflow
                .entry(at >> (2 * SLOT_BITS))
                .or_default()
                .push((at, event));
        }
    }

    /// Pop the earliest event if its time is `<= deadline`. The caller
    /// guarantees the queue is non-empty. Levels only advance when the
    /// advance is immediately followed by a successful pop, so an early
    /// (deadline) return never strands later insertions behind `base0`.
    fn pop_if_before(&mut self, now: u64, deadline: u64) -> Option<(u64, E)> {
        loop {
            // Near level: slots before `now` are already drained.
            let start = (now.max(self.base0) - self.base0) as usize;
            if let Some(slot) = self.near_bits.next(start) {
                let at = self.base0 + slot as u64;
                if at > deadline {
                    return None;
                }
                let q = &mut self.near[slot];
                let event = q.pop_front().expect("occupancy bit set on empty slot");
                if q.is_empty() {
                    self.near_bits.clear(slot);
                }
                return Some((at, event));
            }
            // Near window drained: cascade the next far slot into it.
            if let Some(cslot) = self.far_bits.next(self.cursor1) {
                let min = self.far[cslot].iter().map(|(at, _)| *at).min();
                if min.expect("occupancy bit set on empty far slot") > deadline {
                    return None;
                }
                let chunk = (self.super_base << SLOT_BITS) + cslot as u64;
                self.base0 = chunk << SLOT_BITS;
                self.cursor1 = cslot + 1;
                self.far_bits.clear(cslot);
                // Draining in insertion order keeps per-slot seq order.
                let mut v = std::mem::take(&mut self.far[cslot]);
                for (at, event) in v.drain(..) {
                    let slot = (at & SLOT_MASK) as usize;
                    self.near_bits.set(slot);
                    self.near[slot].push_back(event);
                }
                self.far[cslot] = v; // keep the capacity for reuse
                continue;
            }
            // Far window drained too: refill from the earliest overflow
            // super-chunk (its first occupied slot holds the global min).
            let (&sup, bucket) = self.overflow.first_key_value()?;
            let min = bucket.iter().map(|(at, _)| *at).min();
            if min.expect("empty overflow bucket") > deadline {
                return None;
            }
            let evs = self.overflow.remove(&sup).expect("bucket vanished");
            self.super_base = sup;
            self.base0 = sup << (2 * SLOT_BITS);
            self.cursor1 = 0;
            for (at, event) in evs {
                let slot = ((at >> SLOT_BITS) & SLOT_MASK) as usize;
                self.far_bits.set(slot);
                self.far[slot].push((at, event));
            }
        }
    }

    /// Earliest pending timestamp without mutating any level.
    fn peek(&self, now: u64) -> Option<u64> {
        let start = (now.max(self.base0) - self.base0) as usize;
        if let Some(slot) = self.near_bits.next(start) {
            return Some(self.base0 + slot as u64);
        }
        if let Some(cslot) = self.far_bits.next(self.cursor1) {
            return self.far[cslot].iter().map(|(at, _)| *at).min();
        }
        self.overflow
            .first_key_value()
            .and_then(|(_, v)| v.iter().map(|(at, _)| *at).min())
    }
}

enum Engine<E> {
    // Boxed: the wheel's bitmap arrays make it much larger than the
    // heap's three pointers.
    Wheel(Box<Wheel<E>>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// Priority queue of simulation events.
pub struct EventQueue<E> {
    engine: Engine<E>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
    len: usize,
    peak: usize,
}

impl<E> EventQueue<E> {
    /// New empty queue at time zero on the default (wheel) engine.
    pub fn new() -> EventQueue<E> {
        EventQueue::with_backend(QueueBackend::default())
    }

    /// New empty queue at time zero on the given engine.
    pub fn with_backend(backend: QueueBackend) -> EventQueue<E> {
        EventQueue {
            engine: match backend {
                QueueBackend::Wheel => Engine::Wheel(Box::new(Wheel::new())),
                QueueBackend::Heap => Engine::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            len: 0,
            peak: 0,
        }
    }

    /// Which engine this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.engine {
            Engine::Wheel(_) => QueueBackend::Wheel,
            Engine::Heap(_) => QueueBackend::Heap,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest pending-event count observed so far.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past — a causality bug in the model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        match &mut self.engine {
            // The wheel needs no sequence number: slot FIFO order is
            // insertion order.
            Engine::Wheel(w) => w.push(at.as_ns(), event),
            Engine::Heap(h) => h.push(Scheduled {
                at: at.as_ns(),
                seq: self.next_seq,
                event,
            }),
        }
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
    }

    /// Schedule `event` after `delay_ns` nanoseconds.
    ///
    /// # Panics
    /// If `now + delay_ns` overflows simulated time (a `u64::MAX`-ish
    /// delay is a caller bug; it must not silently wrap into the past).
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) {
        let at = self.now.as_ns().checked_add(delay_ns).unwrap_or_else(|| {
            panic!(
                "schedule_in: delay {delay_ns}ns overflows simulated time (now {})",
                self.now
            )
        });
        self.schedule_at(SimTime::from_ns(at), event);
    }

    /// Pop the earliest event, advancing simulated time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_if_before(SimTime(u64::MAX))
    }

    /// Pop the earliest event only if its timestamp is `<= deadline`;
    /// otherwise leave the queue untouched and return `None`. This is the
    /// peek-free way to run a simulation up to a cutoff without the
    /// pop-then-reschedule dance (which would perturb `(time, seq)` tie
    /// order).
    pub fn pop_if_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let popped = match &mut self.engine {
            Engine::Wheel(w) => w.pop_if_before(self.now.as_ns(), deadline.as_ns()),
            Engine::Heap(h) => match h.peek() {
                Some(s) if s.at <= deadline.as_ns() => h.pop().map(|s| (s.at, s.event)),
                _ => None,
            },
        };
        let (at, event) = popped?;
        debug_assert!(at >= self.now.as_ns());
        self.len -= 1;
        self.now = SimTime(at);
        self.processed += 1;
        Some((self.now, event))
    }

    /// Timestamp of the earliest pending event, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        match &self.engine {
            Engine::Wheel(w) => w.peek(self.now.as_ns()).map(SimTime),
            Engine::Heap(h) => h.peek().map(|s| SimTime(s.at)),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Wheel, QueueBackend::Heap];

    #[test]
    fn pops_in_time_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule_at(SimTime(30), "c");
            q.schedule_at(SimTime(10), "a");
            q.schedule_at(SimTime(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{b:?}");
            assert_eq!(q.now(), SimTime(30));
            assert_eq!(q.processed(), 3);
            assert_eq!(q.peak_len(), 3);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            for i in 0..100 {
                q.schedule_at(SimTime(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{b:?}");
        }
    }

    #[test]
    fn relative_scheduling_tracks_now() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule_in(10, 1u32);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime(10));
            q.schedule_in(5, 2u32);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime(15));
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    #[should_panic(expected = "overflows simulated time")]
    fn overflowing_delay_panics_with_a_clear_message() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        // Used to wrap and die as "event scheduled in the past".
        q.schedule_in(u64::MAX, ());
    }

    #[test]
    fn far_future_events_cross_wheel_levels() {
        // One event per wheel regime: near, far, overflow, deep overflow.
        let times = [3u64, 5_000, 20_000_000, 1 << 40];
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            for (i, &t) in times.iter().rev().enumerate() {
                q.schedule_at(SimTime(t), i);
            }
            let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
            assert_eq!(popped, times.to_vec(), "{b:?}");
        }
    }

    #[test]
    fn same_time_ties_survive_cascading() {
        // Two same-timestamp events landing in the far level must still
        // pop in insertion order after cascading into the near level.
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule_at(SimTime(1_000_000), "first");
            q.schedule_at(SimTime(1_000_000), "second");
            q.schedule_at(SimTime(7), "warm");
            assert_eq!(q.pop().unwrap().1, "warm");
            assert_eq!(q.pop().unwrap().1, "first");
            assert_eq!(q.pop().unwrap().1, "second");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            assert_eq!(q.peek_time(), None);
            for t in [40_000u64, 12, 900, 1 << 30] {
                q.schedule_at(SimTime(t), t);
            }
            while let Some(t) = q.peek_time() {
                let (at, _) = q.pop().unwrap();
                assert_eq!(t, at, "{b:?}");
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_if_before_respects_the_deadline() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule_at(SimTime(10), 1u32);
            q.schedule_at(SimTime(2_000_000), 2u32); // far level
            assert_eq!(q.pop_if_before(SimTime(5)), None);
            assert_eq!(q.pop_if_before(SimTime(10)), Some((SimTime(10), 1)));
            // Deadline inside the far gap: nothing pops, nothing is lost.
            assert_eq!(q.pop_if_before(SimTime(1_000_000)), None);
            assert_eq!(q.len(), 1);
            // Scheduling after a refused pop must still work and order.
            q.schedule_at(SimTime(500_000), 3u32);
            assert_eq!(q.pop(), Some((SimTime(500_000), 3)));
            assert_eq!(q.pop(), Some((SimTime(2_000_000), 2)));
        }
    }

    #[test]
    fn scheduling_into_the_active_slot_keeps_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), 0u32);
        q.schedule_at(SimTime(5), 1u32);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        // Same-instant insert while the slot is half-drained.
        q.schedule_at(SimTime(5), 2u32);
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wheel and the reference heap pop identically under random
        /// schedule/pop interleavings spanning every wheel level.
        #[test]
        fn wheel_matches_heap_model(
            ops in prop::collection::vec((0u8..8, 0u64..u64::MAX / 4), 1..250),
        ) {
            let mut w = EventQueue::with_backend(QueueBackend::Wheel);
            let mut h = EventQueue::with_backend(QueueBackend::Heap);
            let mut id = 0u64;
            for (op, val) in ops {
                if op == 0 {
                    prop_assert_eq!(w.pop(), h.pop());
                    prop_assert_eq!(w.now(), h.now());
                } else {
                    // Spread delays across near slots, far slots, the
                    // overflow map, and exact ties.
                    let delay = match op % 4 {
                        0 => 0,
                        1 => val % (1 << SLOT_BITS),
                        2 => val % (1 << (2 * SLOT_BITS + 4)),
                        _ => val,
                    };
                    w.schedule_in(delay, id);
                    h.schedule_in(delay, id);
                    id += 1;
                }
            }
            loop {
                let (a, b) = (w.pop(), h.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(w.processed(), h.processed());
            prop_assert_eq!(w.peak_len(), h.peak_len());
        }
    }
}
