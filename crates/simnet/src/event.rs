//! Deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`, so two events at the
//! same instant fire in insertion order — the whole simulation is a pure
//! function of its inputs and seeds.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry wrapping the caller's event payload.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// New empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the past — a causality bug in the model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` after `delay_ns` nanoseconds.
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) {
        self.schedule_at(self.now + delay_ns, event);
    }

    /// Pop the earliest event, advancing simulated time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn relative_scheduling_tracks_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(10));
        q.schedule_in(5, 2u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(15));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }
}
