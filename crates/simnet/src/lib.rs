//! # mcag-simnet — packet-level discrete-event RDMA fabric simulator
//!
//! The paper evaluates its collectives on a 188-node InfiniBand fat-tree
//! (18 Mellanox SX6036 switches, ConnectX-3 56 Gbit/s NICs). That hardware
//! is replaced here by a deterministic discrete-event simulation with:
//!
//! * **Topologies** — back-to-back pairs, single-switch stars, two-level
//!   leaf/spine fat-trees (the UCC testbed shape), and three-level fat-trees
//!   (the 1024-node radix-32 cluster modeled in Fig. 2).
//! * **Switches** with output-link serialization, store-and-forward hop
//!   latency, and **per-port byte/packet counters** — the measurement
//!   methodology of Fig. 12 ("we collect performance counters across all
//!   switch ports").
//! * **Multicast groups** realized as spanning trees rooted at a
//!   deterministic core switch; senders inject anywhere in the tree and
//!   switches replicate to every subscribed egress, so each byte crosses
//!   each link at most once — the bandwidth-optimality invariant.
//! * **Unreliability** — per-link probabilistic fabric drops, forced
//!   per-(origin, PSN, destination) drops for failure-injection tests,
//!   receiver-not-ready drops when the receive queue is exhausted, and
//!   scheduled time-varying link state ([`linkstate::LinkSchedule`]:
//!   down windows, flaps, bandwidth degradation) compiled from
//!   `mcag-faults` fault plans.
//! * **Host datapath costs** — per-datagram TX posting and per-CQE RX
//!   processing overheads with a configurable number of RX worker threads,
//!   reproducing the CPU-bound single-thread behaviour of Fig. 5.
//!
//! Protocol state machines implement [`app::RankApp`] and are driven by
//! [`fabric::Fabric`]; everything is single-threaded and reproducible
//! (events are totally ordered by `(time, sequence)`).

#![warn(missing_docs)]

pub mod app;
pub mod config;
pub mod counters;
pub mod event;
pub mod fabric;
pub mod health;
pub mod linkstate;
pub mod mcast;
pub mod routing;
pub mod time;
pub mod topology;

pub use app::{Ctx, Payload, RankApp};
pub use config::{DropModel, FabricConfig, HostModel};
pub use counters::{LinkCounters, TrafficReport};
pub use event::{EventQueue, QueueBackend};
pub use fabric::Fabric;
pub use health::{FabricHealth, LinkHealth};
pub use linkstate::{LinkSchedule, LinkStateEvent};
pub use mcag_trace::{TraceEvent, TraceSink, TraceSpec};
pub use mcast::McastTree;
pub use time::SimTime;
pub use topology::{LinkId, NodeId, NodeKind, Topology};
