//! The discrete-event fabric: NIC send/receive datapaths, switch
//! forwarding with multicast replication, drop injection, and the event
//! loop driving per-rank protocol apps.
//!
//! ## Timing model
//!
//! * Every directed link serializes packets at its line rate and adds a
//!   propagation delay; a switch adds a store-and-forward latency per hop.
//! * A NIC's injection pipeline issues one packet per
//!   `max(serialization, tx_post_overhead)` — the latter models the CPU
//!   cost of posting work requests (Fig. 5's single-core send bottleneck).
//! * On the receive side, the NIC surfaces a CQE after `rx_cqe_dma_ns`;
//!   the QP's assigned worker thread then spends `rx_proc_ns_per_cqe` per
//!   completion, FIFO per worker. Receive slots are consumed at packet
//!   arrival and recycled when the worker finishes processing — if the
//!   backlog exceeds the RQ depth, packets are RNR-dropped, exactly the
//!   failure mode the paper's RNR-synchronization phase exists to avoid.
//!
//! ## Hot-path memory model
//!
//! In-flight packets live in a slab with an embedded free list; events
//! carry a 4-byte [`PktRef`] handle instead of a boxed packet. Multicast
//! replication at a switch is a reference-count bump per extra branch —
//! no payload/route clone and no allocation per hop — and the event
//! payload [`Ev`] is a small `Copy`-able struct, so the steady state of a
//! run performs no per-packet heap allocation at all. Unicast routes are
//! interned behind `Arc<[LinkId]>` in a per-pair cache.

use crate::app::{Ctx, Payload, RankApp};
use crate::config::FabricConfig;
use crate::counters::{LinkCounters, TrafficReport};
use crate::event::EventQueue;
use crate::health::{FabricHealth, LinkHealth};
use crate::mcast::McastTree;
use crate::routing::{self, descend, RouteMode};
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use mcag_trace::{DropCause, TraceEvent, TraceSink};
use mcag_verbs::wire::{Destination, PacketHeader, PacketKind};
use mcag_verbs::{CompletionStatus, Cqe, CqeOpcode, ImmData, McastGroupId, QpNum, Rank, Transport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What happens when a packet reaches its destination host.
#[derive(Debug, Clone, Copy)]
enum ArrivalSem {
    /// Normal two-sided delivery into a pre-posted receive.
    TwoSided,
    /// RDMA Read request: target NIC answers in hardware with `resp_len`
    /// bytes, completion tagged `tag` on the requester.
    ReadReq {
        resp_len: usize,
        tag: u64,
        req_qp: QpNum,
    },
    /// RDMA Read response arriving back at the requester.
    ReadResp { tag: u64, req_qp: QpNum },
}

#[derive(Debug, Clone)]
enum RouteState {
    Unicast {
        path: Arc<[LinkId]>,
        hop: usize,
    },
    Mcast {
        group: McastGroupId,
    },
    /// In-network-compute contribution climbing its reduction tree
    /// (SHARP-style). Switches absorb contributions until every child
    /// branch has reported, then forward one merged packet up; the tree
    /// root routes the result down to the shard's `owner`.
    IncUp {
        group: McastGroupId,
        owner: Rank,
        owner_qp: QpNum,
    },
}

struct PacketInst<M> {
    header: PacketHeader,
    payload: Payload<M>,
    route: RouteState,
    sem: ArrivalSem,
    reliable: bool,
    dst_qp: QpNum,
}

/// Slab handle of an in-flight packet. Replicating a multicast packet at
/// a switch copies this handle and bumps a refcount — never the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PktRef(u32);

struct SlabEntry<M> {
    refs: u32,
    pkt: PacketInst<M>,
}

/// The event payload. Deliberately small and payload-free: packet state
/// lives in the slab, CQE contents are derived from it at dispatch time,
/// so the wheel queue moves ~16-byte values around.
#[derive(Debug, Clone, Copy)]
enum Ev {
    TxKick {
        rank: Rank,
    },
    LinkArrive {
        link: LinkId,
        pkt: PktRef,
    },
    CqeDone {
        rank: Rank,
        qp_idx: u32,
        repost: bool,
        pkt: PktRef,
    },
    Timer {
        rank: Rank,
        token: u64,
    },
    TxDrained {
        rank: Rank,
        token: u64,
    },
    /// A scheduled link-state transition (`FabricConfig::faults`) takes
    /// effect; `idx` indexes the compiled schedule.
    LinkFault {
        idx: u32,
    },
}

/// Runtime state of one directed link under the fault schedule. Only
/// allocated when the schedule is non-empty; every hot-path consult is
/// gated on `Inner::has_faults`.
#[derive(Debug, Clone, Copy)]
struct LinkFaultState {
    up: bool,
    bw_num: u32,
    bw_den: u32,
    /// When the current state began (for downtime/degraded accounting).
    since: SimTime,
    /// While down: the schedule's next up transition for this link
    /// (`u64::MAX` when it never recovers).
    next_up_ns: u64,
}

impl LinkFaultState {
    fn healthy() -> LinkFaultState {
        LinkFaultState {
            up: true,
            bw_num: 1,
            bw_den: 1,
            since: SimTime::ZERO,
            next_up_ns: 0,
        }
    }
}

struct QpState {
    transport: Transport,
    worker: usize,
    rq_avail: usize,
    rq_depth: usize,
}

struct NicState {
    uplink: LinkId,
    /// One send queue per QP; the NIC arbiter serves them round-robin,
    /// which is how concurrent collectives share injection bandwidth.
    tx_queues: Vec<VecDeque<PktRef>>,
    tx_rr: usize,
    tx_free_at: SimTime,
    kick_scheduled: bool,
    /// Per-QP drain-notification tokens.
    drain_tokens: Vec<Vec<u64>>,
    workers: Vec<SimTime>,
    qps: Vec<QpState>,
    /// Receiving QP per multicast group, indexed by group id — consulted
    /// once per multicast delivery, so it is a dense table, not a map.
    group_attach: Vec<Option<usize>>,
    rnr_drops: u64,
}

/// Fabric internals reachable from [`Ctx`] (everything except the apps).
pub struct Inner<M> {
    topo: Arc<Topology>,
    cfg: FabricConfig,
    q: EventQueue<Ev>,
    nics: Vec<NicState>,
    trees: Vec<McastTree>,
    counters: Vec<LinkCounters>,
    link_busy: Vec<SimTime>,
    /// Per-link fault state (empty when the schedule is empty).
    link_fault: Vec<LinkFaultState>,
    /// Fast gate for every fault-path consult: true iff
    /// `cfg.faults` has at least one transition.
    has_faults: bool,
    route_cache: HashMap<(u32, u32), Arc<[LinkId]>>,
    rng: StdRng,
    done: Vec<Option<SimTime>>,
    done_count: usize,
    /// In-network reduction progress: contributions seen per
    /// `(group, psn, switch)`.
    inc_arrivals: HashMap<(u32, u32, NodeId), u32>,
    /// Live aggregation-table entries per switch (`(group, psn)`
    /// states currently held), maintained only while INC traffic
    /// flows; bounded by [`FabricConfig::inc_table_capacity`].
    inc_live: HashMap<NodeId, usize>,
    /// High-water mark of any single switch's live aggregation-table
    /// occupancy over the run (reported even when unbounded).
    inc_table_peak: usize,
    /// Reusable egress-link buffer for switch forwarding (avoids a fresh
    /// `Vec` per packet hop on the multicast replication hot path).
    scratch_links: Vec<LinkId>,
    /// In-flight packet slab + free list: `PktRef` handles index here.
    pkt_slab: Vec<Option<SlabEntry<M>>>,
    free_pkts: Vec<u32>,
    /// Flight recorder, allocated iff `cfg.trace` is `Some` — every
    /// record site is gated on this `Option`, so a disabled recorder
    /// costs one branch (the same pattern as `has_faults`).
    trace: Option<TraceSink>,
    /// Cumulative wall-clock ns spent inside the event loop.
    run_wall_ns: u64,
}

/// Statistics of one completed run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Time the last rank finished.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Per-rank completion times (`None` if a rank never called
    /// [`Ctx::mark_done`]).
    pub per_rank_done: Vec<Option<SimTime>>,
    /// Highest pending-event count the queue reached.
    pub peak_queue_depth: usize,
    /// Wall-clock nanoseconds spent in the event loop (cumulative over
    /// [`Fabric::run`] / [`Fabric::run_until`] calls on this fabric).
    pub wall_ns: u64,
}

impl RunStats {
    /// True if every rank completed.
    pub fn all_done(&self) -> bool {
        self.per_rank_done.iter().all(|t| t.is_some())
    }

    /// Latest completion time across ranks that finished.
    pub fn max_done(&self) -> Option<SimTime> {
        self.per_rank_done.iter().flatten().copied().max()
    }

    /// Simulator throughput: events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        crate::counters::events_per_sec(self.events, self.wall_ns)
    }
}

/// The discrete-event fabric simulator. See the module docs for the model.
pub struct Fabric<M> {
    inner: Inner<M>,
    apps: Vec<Option<Box<dyn RankApp<M>>>>,
    started: bool,
}

impl<M: Clone + 'static> Fabric<M> {
    /// Create a fabric over `topo` with the given configuration. Apps and
    /// QPs must be registered before [`Fabric::run`].
    pub fn new(topo: Topology, cfg: FabricConfig) -> Fabric<M> {
        let topo = Arc::new(topo);
        let n = topo.num_hosts();
        let nics = (0..n)
            .map(|r| {
                let host = topo.host_node(Rank(r as u32));
                let ups = topo.uplinks(host);
                assert_eq!(ups.len(), 1, "hosts have exactly one NIC port");
                NicState {
                    uplink: ups[0],
                    tx_queues: Vec::new(),
                    tx_rr: 0,
                    tx_free_at: SimTime::ZERO,
                    kick_scheduled: false,
                    drain_tokens: Vec::new(),
                    workers: vec![SimTime::ZERO; cfg.host.rx_workers.max(1)],
                    qps: Vec::new(),
                    group_attach: Vec::new(),
                    rnr_drops: 0,
                }
            })
            .collect();
        let counters = vec![LinkCounters::default(); topo.num_links()];
        let link_busy = vec![SimTime::ZERO; topo.num_links()];
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut q = EventQueue::with_backend(cfg.event_queue);
        // Replay the fault schedule as ordinary queue events. They are
        // scheduled before any protocol event, so a transition and a
        // same-instant transmission resolve in schedule-first order —
        // part of the determinism contract.
        let trace = cfg.trace.clone().map(TraceSink::new);
        let has_faults = !cfg.faults.is_empty();
        let link_fault = if has_faults {
            for (i, ev) in cfg.faults.events().iter().enumerate() {
                assert!(
                    ev.link.idx() < topo.num_links(),
                    "fault schedule references {:?} outside the topology",
                    ev.link
                );
                q.schedule_at(SimTime(ev.at_ns), Ev::LinkFault { idx: i as u32 });
            }
            vec![LinkFaultState::healthy(); topo.num_links()]
        } else {
            Vec::new()
        };
        Fabric {
            inner: Inner {
                topo,
                cfg,
                q,
                nics,
                trees: Vec::new(),
                counters,
                link_busy,
                link_fault,
                has_faults,
                route_cache: HashMap::new(),
                rng,
                done: vec![None; n],
                done_count: 0,
                inc_arrivals: HashMap::new(),
                inc_live: HashMap::new(),
                inc_table_peak: 0,
                scratch_links: Vec::new(),
                pkt_slab: Vec::new(),
                free_pkts: Vec::new(),
                trace,
                run_wall_ns: 0,
            },
            apps: (0..n).map(|_| None).collect(),
            started: false,
        }
    }

    /// Topology handle.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// Create a QP on `rank`, pinned to RX `worker`. Returns the rank-local
    /// QP number (SPMD setups produce identical numbering on every rank).
    pub fn add_qp(&mut self, rank: Rank, transport: Transport, worker: usize) -> QpNum {
        let nic = &mut self.inner.nics[rank.idx()];
        assert!(
            worker < nic.workers.len(),
            "worker {worker} out of range ({} workers)",
            nic.workers.len()
        );
        let qpn = QpNum(nic.qps.len() as u32);
        let depth = self.inner.cfg.host.rq_depth;
        nic.qps.push(QpState {
            transport,
            worker,
            rq_avail: depth,
            rq_depth: depth,
        });
        nic.tx_queues.push(VecDeque::new());
        nic.drain_tokens.push(Vec::new());
        qpn
    }

    /// Create a multicast group over `members`; builds the spanning tree.
    ///
    /// Panics when [`FabricConfig::mcast_table_capacity`] is set and the
    /// switch group table is already full — the hard resource bound the
    /// `mcag-runtime` group pool schedules around.
    pub fn create_group(&mut self, members: &[Rank]) -> McastGroupId {
        if let Some(cap) = self.inner.cfg.mcast_table_capacity {
            assert!(
                self.inner.trees.len() < cap,
                "switch multicast-group table exhausted ({cap} groups programmed)"
            );
        }
        let gid = McastGroupId(self.inner.trees.len() as u32);
        let tree = McastTree::build(&self.inner.topo, gid, members);
        self.inner.trees.push(tree);
        gid
    }

    /// Multicast groups currently programmed into the fabric — the
    /// simulated switch group-table occupancy.
    pub fn num_groups(&self) -> usize {
        self.inner.trees.len()
    }

    /// High-water mark of any single switch's live in-network-reduction
    /// aggregation-table occupancy over the run so far (0 when no INC
    /// traffic flowed). The demand side of
    /// [`FabricConfig::inc_table_capacity`].
    pub fn inc_table_peak(&self) -> usize {
        self.inner.inc_table_peak
    }

    /// Attach `rank`'s `qp` to `group` (receives that group's datagrams).
    pub fn attach(&mut self, rank: Rank, qp: QpNum, group: McastGroupId) {
        let tree = &self.inner.trees[group.0 as usize];
        assert!(tree.is_member(rank), "{rank} is not a member of {group:?}");
        let nic = &mut self.inner.nics[rank.idx()];
        assert!(
            matches!(
                nic.qps[qp.0 as usize].transport,
                Transport::Ud | Transport::Uc
            ),
            "only UD/UC QPs can join multicast groups"
        );
        let gi = group.0 as usize;
        if nic.group_attach.len() <= gi {
            nic.group_attach.resize(gi + 1, None);
        }
        nic.group_attach[gi] = Some(qp.0 as usize);
    }

    /// Install the protocol endpoint for `rank`.
    pub fn set_app(&mut self, rank: Rank, app: Box<dyn RankApp<M>>) {
        self.apps[rank.idx()] = Some(app);
    }

    /// Remove and return `rank`'s endpoint — the harvest half of the
    /// owned-sink protocol: apps accumulate their results privately
    /// during the run and the driver takes them back afterwards (no
    /// shared `Rc<RefCell<…>>` sinks, so the whole simulation stays
    /// `Send`). Panics if no app is installed (or it was already taken).
    pub fn take_app(&mut self, rank: Rank) -> Box<dyn RankApp<M>> {
        self.apps[rank.idx()]
            .take()
            .unwrap_or_else(|| panic!("no app installed for {rank}"))
    }

    /// [`Fabric::take_app`], downcast to the concrete app type the
    /// driver installed. Panics if the installed app is not an `A`.
    pub fn take_app_as<A: RankApp<M>>(&mut self, rank: Rank) -> A {
        let app: Box<dyn std::any::Any> = self.take_app(rank);
        *app.downcast::<A>()
            .unwrap_or_else(|_| panic!("app at {rank} is not a {}", std::any::type_name::<A>()))
    }

    /// The live flight recorder (`None` when `cfg.trace` was `None`).
    pub fn trace(&self) -> Option<&TraceSink> {
        self.inner.trace.as_ref()
    }

    /// Remove and return the flight recorder — the trace analogue of the
    /// [`Fabric::take_app`] harvest step; drivers take the sink after the
    /// run and hand its events to `mcag-trace` for merging/export.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.inner.trace.take()
    }

    /// Run to completion: starts every app, then processes events until
    /// all ranks are done (or the queue empties / the event cap trips).
    pub fn run(&mut self) -> RunStats {
        self.run_until(SimTime(u64::MAX))
    }

    /// Like [`Fabric::run`], but stops (without popping) once the next
    /// pending event lies beyond `deadline` — a peek-based cutoff, so a
    /// bounded run never perturbs event order. Callers may inspect
    /// [`RunStats::all_done`] and continue with a later deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> RunStats {
        let wall_start = std::time::Instant::now();
        // Queue-depth sampling period; 0 (tracing off or sampling
        // disabled) reduces the per-event tracing cost to one compare.
        let sample_every = self
            .inner
            .trace
            .as_ref()
            .map_or(0, |t| t.spec().queue_sample_every);
        let n = self.inner.num_ranks();
        if !self.started {
            self.started = true;
            for r in 0..n {
                self.with_app(Rank(r as u32), |app, ctx| app.on_start(ctx));
            }
        }
        while self.inner.done_count < n {
            if self.inner.q.processed() >= self.inner.cfg.max_events {
                panic!(
                    "event cap {} exceeded — livelocked protocol?",
                    self.inner.cfg.max_events
                );
            }
            let Some((_, ev)) = self.inner.q.pop_if_before(deadline) else {
                break; // quiescent or past the deadline; caller inspects stats
            };
            self.dispatch(ev);
            if sample_every != 0 && self.inner.q.processed().is_multiple_of(sample_every) {
                let (at_ns, depth) = (self.inner.q.now().as_ns(), self.inner.q.len() as u32);
                if let Some(t) = self.inner.trace.as_mut() {
                    t.record(TraceEvent::QueueDepth { at_ns, depth });
                }
            }
        }
        self.inner.run_wall_ns += wall_start.elapsed().as_nanos() as u64;
        RunStats {
            end_time: self.inner.q.now(),
            events: self.inner.q.processed(),
            per_rank_done: self.inner.done.clone(),
            peak_queue_depth: self.inner.q.peak_len(),
            wall_ns: self.inner.run_wall_ns,
        }
    }

    /// Timestamp of the earliest pending event (`None` when quiescent) —
    /// the peek-based progress probe for cutoff checks.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.inner.q.peek_time()
    }

    /// Snapshot of all link counters (open downtime/degraded intervals
    /// closed at the current simulated instant), with the per-rank RNR
    /// breakdown and the engine stats of the run so far (events
    /// processed, peak queue depth, wall clock).
    pub fn traffic(&self) -> TrafficReport {
        TrafficReport::new(self.inner.counters_snapshot())
            .with_rnr(self.inner.nics.iter().map(|n| n.rnr_drops).collect())
            .with_engine_stats(
                self.inner.q.processed(),
                self.inner.q.peak_len(),
                self.inner.run_wall_ns,
            )
    }

    /// Total RNR drops across all NICs.
    pub fn total_rnr_drops(&self) -> u64 {
        self.inner.nics.iter().map(|n| n.rnr_drops).sum()
    }

    /// Total fabric drops across all links.
    pub fn total_fabric_drops(&self) -> u64 {
        self.inner.counters.iter().map(|c| c.drops).sum()
    }

    /// Total packet copies lost to down links (fault injection).
    pub fn total_fault_drops(&self) -> u64 {
        self.inner.counters.iter().map(|c| c.fault_drops).sum()
    }

    /// Mid-run health snapshot: per-link up/down/degraded status plus
    /// cumulative fault drops and downtime (open outages closed at the
    /// current instant). Cheap — one pass over the counters, no event
    /// scheduled, nothing reset. With no fault schedule configured every
    /// link reports healthy.
    pub fn health(&self) -> FabricHealth {
        let counters = self.inner.counters_snapshot();
        let rows = counters
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (up, degraded) = if self.inner.has_faults {
                    let st = &self.inner.link_fault[i];
                    (st.up, st.up && st.bw_num != st.bw_den)
                } else {
                    (true, false)
                };
                LinkHealth {
                    up,
                    degraded,
                    fault_drops: c.fault_drops,
                    downtime_ns: c.downtime_ns,
                }
            })
            .collect();
        FabricHealth::new(rows)
    }

    /// Switches whose every attached link is currently down — the SM's
    /// rebuild trigger. Empty (without scanning) when no fault schedule
    /// is configured.
    pub fn dead_switches(&self) -> Vec<NodeId> {
        if !self.inner.has_faults {
            return Vec::new();
        }
        self.health().dead_switches(&self.inner.topo)
    }

    /// Subnet-manager recovery: re-route every programmed multicast group
    /// whose tree touches a switch in `dead`, rebuilding it around the
    /// full `dead` set. Returns the number of groups actually re-routed.
    ///
    /// A group whose members are unreachable without the dead switches
    /// (no live root, or a member stranded behind one) keeps its old
    /// tree — packets crossing the dead chassis keep paying the fault
    /// cost until it recovers. Swapping a tree mid-run is safe: switches
    /// consult `out_links` per packet hop, so copies already in flight
    /// on the old tree simply stop being forwarded at the dead chassis,
    /// exactly as they would have anyway.
    ///
    /// The simulated cost of the rebuild (SM programming time) is *not*
    /// charged here — the caller owns the clock it runs batches on and
    /// charges the `McastGroupPool` rebuild cost per re-routed group.
    pub fn rebuild_groups_avoiding(&mut self, dead: &[NodeId]) -> u32 {
        if dead.is_empty() {
            return 0;
        }
        let mut rebuilt = 0;
        for gi in 0..self.inner.trees.len() {
            let tree = &self.inner.trees[gi];
            if !tree.nodes().any(|n| dead.contains(&n)) {
                continue;
            }
            let (group, members) = (tree.group(), tree.members().to_vec());
            if let Some(fresh) = McastTree::build_avoiding(&self.inner.topo, group, &members, dead)
            {
                self.inner.trees[gi] = fresh;
                rebuilt += 1;
            }
        }
        rebuilt
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::TxKick { rank } => self.inner.handle_tx_kick(rank),
            Ev::LinkArrive { link, pkt } => self.inner.handle_link_arrive(link, pkt),
            Ev::CqeDone {
                rank,
                qp_idx,
                repost,
                pkt,
            } => {
                let (cqe, payload) = self.inner.take_cqe(pkt, qp_idx);
                if repost {
                    let qp = &mut self.inner.nics[rank.idx()].qps[qp_idx as usize];
                    qp.rq_avail = (qp.rq_avail + 1).min(qp.rq_depth);
                }
                self.with_app(rank, |app, ctx| app.on_cqe(ctx, cqe, payload));
            }
            Ev::Timer { rank, token } => {
                self.with_app(rank, |app, ctx| app.on_timer(ctx, token));
            }
            Ev::TxDrained { rank, token } => {
                self.with_app(rank, |app, ctx| app.on_tx_drained(ctx, token));
            }
            Ev::LinkFault { idx } => self.inner.apply_link_fault(idx),
        }
    }

    fn with_app(&mut self, rank: Rank, f: impl FnOnce(&mut dyn RankApp<M>, &mut Ctx<'_, M>)) {
        let mut app = self.apps[rank.idx()]
            .take()
            .unwrap_or_else(|| panic!("no app installed for {rank}"));
        let mut ctx = Ctx {
            inner: &mut self.inner,
            rank,
        };
        f(app.as_mut(), &mut ctx);
        self.apps[rank.idx()] = Some(app);
    }
}

impl<M: Clone + 'static> Inner<M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.topo.num_hosts()
    }

    pub(crate) fn rnr_drops(&self, rank: Rank) -> u64 {
        self.nics[rank.idx()].rnr_drops
    }

    pub(crate) fn set_timer(&mut self, rank: Rank, delay_ns: u64, token: u64) {
        self.q.schedule_in(delay_ns, Ev::Timer { rank, token });
    }

    pub(crate) fn mark_done(&mut self, rank: Rank) {
        if self.done[rank.idx()].is_none() {
            self.done[rank.idx()] = Some(self.q.now());
            self.done_count += 1;
        }
    }

    pub(crate) fn notify_tx_drained(&mut self, rank: Rank, qp: QpNum, token: u64) {
        let nic = &mut self.nics[rank.idx()];
        let qi = qp.0 as usize;
        if nic.tx_queues[qi].is_empty() {
            let at = nic.tx_free_at.max(self.q.now());
            self.q.schedule_at(at, Ev::TxDrained { rank, token });
        } else {
            nic.drain_tokens[qi].push(token);
        }
    }

    // --------------------------- fault state --------------------------- //

    /// Apply scheduled transition `idx`, closing the accounting interval
    /// of the state the link leaves.
    fn apply_link_fault(&mut self, idx: u32) {
        let ev = self.cfg.faults.events()[idx as usize];
        let next_up = self.cfg.faults.next_up_ns(idx as usize);
        let now = self.q.now();
        let li = ev.link.idx();
        let st = self.link_fault[li];
        let c = &mut self.counters[li];
        if !st.up {
            c.downtime_ns += now.as_ns().saturating_sub(st.since.as_ns());
        } else if st.bw_num != st.bw_den {
            c.degraded_ns += now.as_ns().saturating_sub(st.since.as_ns());
        }
        self.link_fault[li] = LinkFaultState {
            up: ev.up,
            bw_num: ev.bw_num,
            bw_den: ev.bw_den,
            since: now,
            next_up_ns: if ev.up { now.as_ns() } else { next_up },
        };
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Fault {
                at_ns: now.as_ns(),
                link: li as u32,
                up: ev.up,
            });
        }
    }

    /// Per-link counters with any open downtime/degraded interval closed
    /// at the current instant — the `traffic()` view stays correct even
    /// when a run ends (or is sampled) mid-outage.
    fn counters_snapshot(&self) -> Vec<LinkCounters> {
        let mut c = self.counters.clone();
        if self.has_faults {
            let now = self.q.now().as_ns();
            for (li, st) in self.link_fault.iter().enumerate() {
                let open = now.saturating_sub(st.since.as_ns());
                if !st.up {
                    c[li].downtime_ns += open;
                } else if st.bw_num != st.bw_den {
                    c[li].degraded_ns += open;
                }
            }
        }
        c
    }

    /// Serialization time on `link` under its current effective
    /// bandwidth: a degraded link stretches the wire time by
    /// `bw_den / bw_num` (rounded up).
    #[inline]
    fn effective_ser_ns(&self, link: LinkId, ser: u64) -> u64 {
        if !self.has_faults {
            return ser;
        }
        let st = &self.link_fault[link.idx()];
        if st.bw_num == st.bw_den {
            return ser;
        }
        ((ser as u128 * st.bw_den as u128).div_ceil(st.bw_num as u128)) as u64
    }

    // --------------------------- packet slab --------------------------- //

    fn alloc_pkt(&mut self, pkt: PacketInst<M>) -> PktRef {
        match self.free_pkts.pop() {
            Some(i) => {
                debug_assert!(self.pkt_slab[i as usize].is_none());
                self.pkt_slab[i as usize] = Some(SlabEntry { refs: 1, pkt });
                PktRef(i)
            }
            None => {
                let i = self.pkt_slab.len() as u32;
                self.pkt_slab.push(Some(SlabEntry { refs: 1, pkt }));
                PktRef(i)
            }
        }
    }

    #[inline]
    fn pkt(&self, r: PktRef) -> &PacketInst<M> {
        &self.pkt_slab[r.0 as usize]
            .as_ref()
            .expect("stale packet handle")
            .pkt
    }

    #[inline]
    fn pkt_mut(&mut self, r: PktRef) -> &mut PacketInst<M> {
        &mut self.pkt_slab[r.0 as usize]
            .as_mut()
            .expect("stale packet handle")
            .pkt
    }

    /// Add one reference (a multicast replica about to be transmitted).
    #[inline]
    fn retain_pkt(&mut self, r: PktRef) {
        self.pkt_slab[r.0 as usize]
            .as_mut()
            .expect("stale packet handle")
            .refs += 1;
    }

    /// Drop one reference; the slab slot is recycled at zero.
    fn release_pkt(&mut self, r: PktRef) {
        let e = self.pkt_slab[r.0 as usize]
            .as_mut()
            .expect("stale packet handle");
        if e.refs > 1 {
            e.refs -= 1;
        } else {
            self.pkt_slab[r.0 as usize] = None;
            self.free_pkts.push(r.0);
        }
    }

    /// Build the CQE a delivered packet surfaces and consume the handle —
    /// one slab access for the whole completion.
    fn take_cqe(&mut self, r: PktRef, qp_idx: u32) -> (Cqe, Payload<M>) {
        let i = r.0 as usize;
        let e = self.pkt_slab[i].as_mut().expect("stale packet handle");
        let (header, sem) = (e.pkt.header, e.pkt.sem);
        let payload = if e.refs > 1 {
            e.refs -= 1;
            e.pkt.payload.clone()
        } else {
            let owned = self.pkt_slab[i].take().expect("stale packet handle");
            self.free_pkts.push(r.0);
            owned.pkt.payload
        };
        let cqe = match sem {
            ArrivalSem::ReadResp { tag, req_qp } => Cqe {
                opcode: CqeOpcode::RdmaReadDone,
                status: CompletionStatus::Success,
                qp: req_qp,
                imm: None,
                byte_len: header.payload_len,
                wr_id: tag,
                src: Some(header.src),
            },
            _ => Cqe {
                opcode: CqeOpcode::Recv,
                status: CompletionStatus::Success,
                qp: QpNum(qp_idx),
                imm: header.imm,
                byte_len: header.payload_len,
                wr_id: 0,
                src: Some(header.src),
            },
        };
        (cqe, payload)
    }

    // ----------------------------- posting ----------------------------- //

    #[allow(clippy::too_many_arguments)] // mirrors the verbs post signature
    pub(crate) fn post_mcast(
        &mut self,
        src: Rank,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        origin: Rank,
        psn: u32,
        len: usize,
    ) {
        let tree = &self.trees[group.0 as usize];
        assert!(tree.is_member(src), "{src} multicasts to foreign group");
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Multicast(group),
                kind: PacketKind::McastData,
                imm: Some(imm),
                payload_len: len,
            },
            payload: Payload::Chunk { origin, psn },
            route: RouteState::Mcast { group },
            sem: ArrivalSem::TwoSided,
            reliable: false,
            dst_qp: QpNum(0),
        };
        let r = self.alloc_pkt(pkt);
        self.enqueue_tx(src, qp, r);
    }

    /// Post an in-network-reduction contribution for shard chunk `psn`
    /// owned by `owner`; the fabric's switches merge contributions up the
    /// group's tree and deliver one result to `owner`'s `owner_qp`.
    #[allow(clippy::too_many_arguments)] // mirrors the verbs post signature
    pub(crate) fn post_inc(
        &mut self,
        src: Rank,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        owner: Rank,
        owner_qp: QpNum,
        psn: u32,
        len: usize,
    ) {
        assert!(
            self.topo.top_level() > 0,
            "in-network reduction needs a switched fabric"
        );
        let tree = &self.trees[group.0 as usize];
        assert!(tree.is_member(src), "{src} contributes to foreign group");
        assert_eq!(
            tree.members().len(),
            self.num_ranks(),
            "in-network reduction requires full-membership groups"
        );
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Multicast(group),
                kind: PacketKind::McastData,
                imm: Some(imm),
                payload_len: len,
            },
            payload: Payload::Chunk { origin: src, psn },
            route: RouteState::IncUp {
                group,
                owner,
                owner_qp,
            },
            sem: ArrivalSem::TwoSided,
            reliable: true, // SHARP runs over reliable transport
            dst_qp: owner_qp,
        };
        let r = self.alloc_pkt(pkt);
        self.enqueue_tx(src, qp, r);
    }

    pub(crate) fn post_msg(&mut self, src: Rank, dst: Rank, dst_qp: QpNum, msg: M, len: usize) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: dst_qp,
                dst: Destination::Unicast(dst, dst_qp),
                kind: PacketKind::Control,
                imm: None,
                payload_len: len,
            },
            payload: Payload::Msg(msg),
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::TwoSided,
            reliable: true,
            dst_qp,
        };
        let r = self.alloc_pkt(pkt);
        self.enqueue_tx(src, dst_qp, r);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_unicast_chunk(
        &mut self,
        src: Rank,
        dst: Rank,
        dst_qp: QpNum,
        imm: Option<ImmData>,
        origin: Rank,
        psn: u32,
        len: usize,
        reliable: bool,
    ) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: QpNum(0),
                dst: Destination::Unicast(dst, dst_qp),
                kind: PacketKind::UnicastData,
                imm,
                payload_len: len,
            },
            payload: Payload::Chunk { origin, psn },
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::TwoSided,
            reliable,
            dst_qp,
        };
        let r = self.alloc_pkt(pkt);
        self.enqueue_tx(src, dst_qp, r);
    }

    pub(crate) fn post_rdma_read(&mut self, src: Rank, qp: QpNum, dst: Rank, len: usize, tag: u64) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Unicast(dst, qp),
                kind: PacketKind::Control,
                imm: None,
                payload_len: 0,
            },
            payload: Payload::Empty,
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::ReadReq {
                resp_len: len,
                tag,
                req_qp: qp,
            },
            reliable: true,
            dst_qp: qp,
        };
        let r = self.alloc_pkt(pkt);
        self.enqueue_tx(src, qp, r);
    }

    fn unicast_path(&mut self, src: Rank, dst: Rank) -> Arc<[LinkId]> {
        if self.cfg.adaptive_routing {
            let p = routing::route(&self.topo, src, dst, RouteMode::Adaptive, 0, &mut self.rng);
            return p.into();
        }
        if let Some(p) = self.route_cache.get(&(src.0, dst.0)) {
            return Arc::clone(p);
        }
        let p: Arc<[LinkId]> = routing::route(
            &self.topo,
            src,
            dst,
            RouteMode::Deterministic,
            0,
            &mut self.rng,
        )
        .into();
        self.route_cache.insert((src.0, dst.0), Arc::clone(&p));
        p
    }

    fn enqueue_tx(&mut self, src: Rank, qp: QpNum, pkt: PktRef) {
        let nic = &mut self.nics[src.idx()];
        nic.tx_queues[qp.0 as usize].push_back(pkt);
        if !nic.kick_scheduled {
            nic.kick_scheduled = true;
            let at = nic.tx_free_at.max(self.q.now());
            self.q.schedule_at(at, Ev::TxKick { rank: src });
        }
    }

    /// Round-robin QP arbitration: pick the next non-empty send queue.
    fn tx_pick(nic: &mut NicState) -> Option<(usize, PktRef)> {
        let n = nic.tx_queues.len();
        for i in 0..n {
            let qi = (nic.tx_rr + i) % n;
            if let Some(pkt) = nic.tx_queues[qi].pop_front() {
                nic.tx_rr = (qi + 1) % n;
                return Some((qi, pkt));
            }
        }
        None
    }

    fn handle_tx_kick(&mut self, rank: Rank) {
        let now = self.q.now();
        if self.has_faults {
            let uplink = self.nics[rank.idx()].uplink;
            let st = self.link_fault[uplink.idx()];
            if !st.up {
                // Port down: the whole injection pipeline stalls
                // (link-level backpressure) with packets parked in their
                // send queues; resume when the schedule restores the
                // port. `kick_scheduled` stays true so enqueue_tx does
                // not double-arm; a port that never recovers wedges the
                // NIC and the collective times out at its watchdog.
                self.nics[rank.idx()].kick_scheduled = true;
                if st.next_up_ns != u64::MAX {
                    self.q
                        .schedule_at(SimTime(st.next_up_ns).max(now), Ev::TxKick { rank });
                }
                return;
            }
        }
        let nic = &mut self.nics[rank.idx()];
        nic.kick_scheduled = false;
        let Some((qi, pr)) = Self::tx_pick(nic) else {
            return;
        };
        let uplink = nic.uplink;
        let link = *self.topo.link(uplink);
        // One slab access: first-hop bookkeeping + the header fields the
        // wire model and counters need.
        let (wire, kind, payload_len, reliable) = {
            let p = self.pkt_mut(pr);
            if let RouteState::Unicast { path, hop } = &mut p.route {
                debug_assert_eq!(path[0], uplink, "route does not start at the NIC port");
                *hop = 1;
            }
            let h = &p.header;
            (h.wire_bytes(), h.kind, h.payload_len, p.reliable)
        };
        let ser = self.effective_ser_ns(uplink, link.rate.serialization_ns(wire));
        let start = now.max(self.link_busy[uplink.idx()]);
        let tx_gap = ser.max(self.cfg.host.tx_post_overhead_ns);
        self.link_busy[uplink.idx()] = start + ser;
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Inject {
                start_ns: start.as_ns(),
                ser_ns: ser,
                link: uplink.idx() as u32,
                src: rank.0,
                bytes: wire as u32,
            });
        }
        let free_at = start + tx_gap;
        let nic = &mut self.nics[rank.idx()];
        nic.tx_free_at = free_at;
        if self.count_and_maybe_drop(uplink, wire, kind, payload_len, reliable) {
            self.q.schedule_at(
                start + ser + link.prop_delay_ns,
                Ev::LinkArrive {
                    link: uplink,
                    pkt: pr,
                },
            );
        } else {
            self.release_pkt(pr);
        }
        let nic = &mut self.nics[rank.idx()];
        if nic.tx_queues[qi].is_empty() {
            for token in std::mem::take(&mut nic.drain_tokens[qi]) {
                self.q.schedule_at(free_at, Ev::TxDrained { rank, token });
            }
        }
        if nic.tx_queues.iter().any(|q| !q.is_empty()) {
            nic.kick_scheduled = true;
            self.q.schedule_at(free_at, Ev::TxKick { rank });
        }
    }

    /// Record traffic on `link`; returns false if the packet copy was
    /// corrupted there (fabric drop). The caller owns the handle and must
    /// release it when the copy is dropped.
    fn count_and_maybe_drop(
        &mut self,
        link: LinkId,
        wire: usize,
        kind: PacketKind,
        payload_len: usize,
        reliable: bool,
    ) -> bool {
        let c = &mut self.counters[link.idx()];
        c.packets += 1;
        c.wire_bytes += wire as u64;
        match kind {
            PacketKind::Control => c.ctrl_bytes += payload_len as u64,
            _ => c.data_bytes += payload_len as u64,
        }
        if !reliable && self.cfg.drops.fabric_drop_prob > 0.0 {
            let p = self.cfg.drops.fabric_drop_prob;
            if self.rng.random_bool(p) {
                self.counters[link.idx()].drops += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent::Drop {
                        at_ns: self.q.now().as_ns(),
                        link: link.idx() as u32,
                        cause: DropCause::Corruption,
                    });
                }
                return false;
            }
        }
        true
    }

    fn handle_link_arrive(&mut self, in_link: LinkId, pkt: PktRef) {
        let node = self.topo.link(in_link).dst;
        match self.topo.kind(node) {
            NodeKind::Switch { .. } => self.forward_at_switch(node, in_link, pkt),
            NodeKind::Host(rank) => self.deliver_at_host(rank, in_link, pkt),
        }
    }

    fn forward_at_switch(&mut self, node: NodeId, in_link: LinkId, pr: PktRef) {
        let now = self.q.now();
        // One slab lookup: copy the small route summary out (every
        // variant's data is `Copy`), then branch.
        enum Fwd {
            Unicast(LinkId),
            Mcast(McastGroupId),
            Inc(McastGroupId, Rank, QpNum),
        }
        let fwd = match &self.pkt(pr).route {
            RouteState::Unicast { path, hop } => {
                debug_assert!(*hop < path.len(), "unicast route exhausted at a switch");
                Fwd::Unicast(path[*hop])
            }
            RouteState::Mcast { group } => Fwd::Mcast(*group),
            RouteState::IncUp {
                group,
                owner,
                owner_qp,
            } => Fwd::Inc(*group, *owner, *owner_qp),
        };
        let group = match fwd {
            Fwd::Inc(group, owner, owner_qp) => {
                return self.reduce_at_switch(node, pr, group, owner, owner_qp)
            }
            // Unicast: exactly one egress — skip the replication machinery.
            Fwd::Unicast(out) => return self.transmit_hop(out, pr, now),
            Fwd::Mcast(group) => group,
        };
        // Multicast: collect egress links into the reusable scratch
        // buffer — switch forwarding runs once per packet hop, so a fresh
        // Vec here would be a per-packet allocation on the replication
        // hot path.
        let mut outs = std::mem::take(&mut self.scratch_links);
        outs.clear();
        outs.extend(self.trees[group.0 as usize].out_links(&self.topo, node, Some(in_link)));
        // Replicate: every extra branch is a refcount bump on the slab
        // entry and a handle copy — the last branch rides the original.
        match outs.split_last() {
            Some((&last, rest)) => {
                for &out in rest {
                    self.retain_pkt(pr);
                    self.transmit_hop(out, pr, now);
                }
                self.transmit_hop(last, pr, now);
            }
            None => self.release_pkt(pr), // no egress (degenerate tree)
        }
        self.scratch_links = outs;
    }

    /// SHARP-style switch behaviour: absorb contributions for
    /// `(group, psn)` until every child branch with contributors has
    /// reported, then forward one merged packet toward the root — or,
    /// at the root, route the reduced shard down to its owner.
    fn reduce_at_switch(
        &mut self,
        node: NodeId,
        pr: PktRef,
        group: McastGroupId,
        owner: Rank,
        owner_qp: QpNum,
    ) {
        let now = self.q.now();
        let psn = match &self.pkt(pr).payload {
            Payload::Chunk { psn, .. } => *psn,
            _ => unreachable!("INC packet without chunk payload"),
        };
        let tree = &self.trees[group.0 as usize];
        // Expected = child branches containing at least one contributor
        // (every rank except the shard owner contributes).
        let mut expected = 0u32;
        for cl in tree.child_links(node) {
            let child = self.topo.link(cl).dst;
            let contributors = match self.topo.kind(child) {
                NodeKind::Host(r) => (r != owner) as u32,
                NodeKind::Switch { .. } => {
                    let range = self.topo.host_range(child);
                    range.len() as u32 - range.contains(&owner.0) as u32
                }
            };
            expected += (contributors > 0) as u32;
        }
        debug_assert!(expected > 0, "reduction node with no contributors");
        let key = (group.0, psn, node);
        let cnt = {
            let c = self.inc_arrivals.entry(key).or_insert(0);
            *c += 1;
            *c
        };
        if cnt == 1 {
            // A fresh `(group, psn)` state claims one aggregation-table
            // entry at this switch — the bounded SHARP SRAM, charged
            // like the MGID table on group creation.
            let live = self.inc_live.entry(node).or_insert(0);
            *live += 1;
            if let Some(cap) = self.cfg.inc_table_capacity {
                assert!(
                    *live <= cap,
                    "switch aggregation table exhausted ({cap} live reduction states at {node:?})"
                );
            }
            self.inc_table_peak = self.inc_table_peak.max(*live);
        }
        if cnt < expected {
            // Absorbed into the partial reduction.
            self.release_pkt(pr);
            return;
        }
        self.inc_arrivals.remove(&key);
        if let Some(live) = self.inc_live.get_mut(&node) {
            *live -= 1;
        }
        let tree = &self.trees[group.0 as usize];
        match tree.parent_link(node) {
            Some(up) => {
                // One merged packet continues toward the root.
                self.transmit_hop(up, pr, now);
            }
            None => {
                // Root: retarget the packet in place (single owner — INC
                // contributions are never replicated) and descend.
                let path: Arc<[LinkId]> = descend(&self.topo, node, owner, psn as u64).into();
                let first = path[0];
                let pkt = self.pkt_mut(pr);
                pkt.header.dst = Destination::Unicast(owner, owner_qp);
                pkt.header.kind = PacketKind::UnicastData;
                pkt.route = RouteState::Unicast { path, hop: 0 };
                pkt.sem = ArrivalSem::TwoSided;
                pkt.reliable = true;
                pkt.dst_qp = owner_qp;
                self.transmit_hop(first, pr, now);
            }
        }
    }

    fn transmit_hop(&mut self, out: LinkId, pr: PktRef, now: SimTime) {
        let link = *self.topo.link(out);
        // One slab access: hop bookkeeping + header fields.
        let (wire, kind, payload_len, reliable) = {
            let p = self.pkt_mut(pr);
            if let RouteState::Unicast { hop, .. } = &mut p.route {
                *hop += 1;
            }
            let h = &p.header;
            (h.wire_bytes(), h.kind, h.payload_len, p.reliable)
        };
        // Down egress: unreliable copies are lost; reliable copies wait
        // for the link's next recovery (link-level retransmission wins
        // eventually) unless it never comes back.
        let mut not_before = SimTime::ZERO;
        if self.has_faults {
            let st = self.link_fault[out.idx()];
            if !st.up {
                if reliable && st.next_up_ns != u64::MAX {
                    not_before = SimTime(st.next_up_ns);
                } else {
                    self.counters[out.idx()].fault_drops += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Drop {
                            at_ns: now.as_ns(),
                            link: out.idx() as u32,
                            cause: DropCause::FaultDown,
                        });
                    }
                    return self.release_pkt(pr);
                }
            }
        }
        let ser = self.effective_ser_ns(out, link.rate.serialization_ns(wire));
        let start = (now + self.cfg.switch_latency_ns)
            .max(self.link_busy[out.idx()])
            .max(not_before);
        self.link_busy[out.idx()] = start + ser;
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Egress {
                start_ns: start.as_ns(),
                ser_ns: ser,
                link: out.idx() as u32,
                bytes: wire as u32,
            });
        }
        if self.count_and_maybe_drop(out, wire, kind, payload_len, reliable) {
            self.q.schedule_at(
                start + ser + link.prop_delay_ns,
                Ev::LinkArrive { link: out, pkt: pr },
            );
        } else {
            self.release_pkt(pr);
        }
    }

    fn deliver_at_host(&mut self, rank: Rank, in_link: LinkId, pr: PktRef) {
        match self.pkt(pr).sem {
            ArrivalSem::ReadReq {
                resp_len,
                tag,
                req_qp,
            } => {
                // Target NIC hardware answers; no CPU involvement (RC
                // one-sided semantics).
                let requester = self.pkt(pr).header.src;
                self.release_pkt(pr);
                let path = self.unicast_path(rank, requester);
                let resp = PacketInst {
                    header: PacketHeader {
                        src: rank,
                        src_qp: QpNum(0),
                        dst: Destination::Unicast(requester, req_qp),
                        kind: PacketKind::UnicastData,
                        imm: None,
                        payload_len: resp_len,
                    },
                    payload: Payload::Empty,
                    route: RouteState::Unicast { path, hop: 0 },
                    sem: ArrivalSem::ReadResp { tag, req_qp },
                    reliable: true,
                    dst_qp: req_qp,
                };
                let r = self.alloc_pkt(resp);
                self.enqueue_tx(rank, req_qp, r);
            }
            ArrivalSem::ReadResp { req_qp, .. } => {
                self.schedule_cqe(rank, req_qp.0 as usize, pr, false);
            }
            ArrivalSem::TwoSided => self.deliver_two_sided(rank, in_link, pr),
        }
    }

    fn deliver_two_sided(&mut self, rank: Rank, _in_link: LinkId, pr: PktRef) {
        // One slab read for everything delivery needs.
        let (dest, forced_key, needs_slot) = {
            let p = self.pkt(pr);
            let dest = match (&p.route, &p.header.dst) {
                (RouteState::IncUp { .. }, _) => {
                    unreachable!("reduction contribution delivered to a host")
                }
                (RouteState::Mcast { group }, _) => Err(*group),
                (_, Destination::Unicast(_, qp)) => Ok(qp.0 as usize),
                _ => unreachable!("unicast route with multicast destination"),
            };
            // Forced-drop key (origin, psn, dst) for multicast data.
            let forced_key = match (&p.header.kind, &p.payload) {
                (PacketKind::McastData, Payload::Chunk { origin, psn }) => {
                    Some((origin.0, *psn, rank.0))
                }
                _ => None,
            };
            (dest, forced_key, !p.reliable)
        };
        let qp_idx = match dest {
            Ok(qi) => qi,
            Err(group) => {
                let attach = &self.nics[rank.idx()].group_attach;
                match attach.get(group.0 as usize).copied().flatten() {
                    Some(qi) => qi,
                    // Hosts on the tree but not attached (e.g. sender's own
                    // copy in degenerate trees) silently discard.
                    None => return self.release_pkt(pr),
                }
            }
        };

        // Forced drop injection; the emptiness guard keeps the hash
        // lookup off the common (no-injection) delivery path.
        if !self.cfg.drops.forced.is_empty() {
            if let Some(key) = forced_key {
                if self.cfg.drops.forced.contains(&key) {
                    // Account as a drop on the final delivery link.
                    self.counters[_in_link.idx()].drops += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.record(TraceEvent::Drop {
                            at_ns: self.q.now().as_ns(),
                            link: _in_link.idx() as u32,
                            cause: DropCause::Forced,
                        });
                    }
                    return self.release_pkt(pr);
                }
            }
        }

        if needs_slot {
            let qp = &mut self.nics[rank.idx()].qps[qp_idx];
            if qp.rq_avail == 0 {
                self.nics[rank.idx()].rnr_drops += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent::Drop {
                        at_ns: self.q.now().as_ns(),
                        link: _in_link.idx() as u32,
                        cause: DropCause::Rnr,
                    });
                }
                return self.release_pkt(pr);
            }
            qp.rq_avail -= 1;
        }
        self.schedule_cqe(rank, qp_idx, pr, needs_slot);
    }

    /// Queue the packet's completion through its QP's RX worker; the
    /// handle transfers to the `CqeDone` event (CQE contents are derived
    /// from the slab entry at dispatch time).
    fn schedule_cqe(&mut self, rank: Rank, qp_idx: usize, pr: PktRef, repost: bool) {
        let now = self.q.now();
        let nic = &mut self.nics[rank.idx()];
        let worker = nic.qps.get(qp_idx).map(|q| q.worker).unwrap_or(0);
        let visible = now + self.cfg.host.rx_cqe_dma_ns;
        let start = visible.max(nic.workers[worker]);
        let done = start + self.cfg.host.rx_proc_ns_per_cqe;
        nic.workers[worker] = done;
        if self.trace.is_some() {
            // The extra slab read for `bytes` happens only when tracing.
            let bytes = self.pkt(pr).header.payload_len as u32;
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent::Deliver {
                    at_ns: done.as_ns(),
                    rank: rank.0,
                    qp: qp_idx as u32,
                    bytes,
                });
            }
        }
        self.q.schedule_at(
            done,
            Ev::CqeDone {
                rank,
                qp_idx: qp_idx as u32,
                repost,
                pkt: pr,
            },
        );
    }

    /// Live slab entries (for leak checks in tests).
    #[cfg(test)]
    fn live_pkts(&self) -> usize {
        self.pkt_slab.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DropModel;
    use crate::event::QueueBackend;
    use mcag_verbs::LinkRate;

    type Msg = u64;

    /// Sends `n` multicast chunks from rank 0; leaves count receptions and
    /// mark done when they saw all of them. Rank 0 marks done on TX drain.
    struct BcastApp {
        qp: QpNum,
        group: McastGroupId,
        n: u32,
        len: usize,
        got: u32,
    }

    impl RankApp<Msg> for BcastApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                for psn in 0..self.n {
                    ctx.post_mcast_chunk(self.qp, self.group, ImmData(psn), Rank(0), psn, self.len);
                }
                ctx.notify_tx_drained(self.qp, 0);
            } else if self.n == 0 {
                ctx.mark_done();
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_, Msg>, cqe: Cqe, _payload: Payload<Msg>) {
            assert!(cqe.is_recv_success());
            self.got += 1;
            if self.got == self.n {
                ctx.mark_done();
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _token: u64) {}

        fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
            ctx.mark_done();
        }
    }

    fn bcast_fabric(n_ranks: usize, chunks: u32, cfg: FabricConfig) -> (Fabric<Msg>, McastGroupId) {
        let topo = Topology::single_switch(n_ranks, LinkRate::CX3_56G, 100);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..n_ranks as u32).map(Rank).collect();
        let group = fab.create_group(&members);
        for &r in &members {
            let qp = fab.add_qp(r, Transport::Ud, 0);
            fab.attach(r, qp, group);
            fab.set_app(
                r,
                Box::new(BcastApp {
                    qp,
                    group,
                    n: chunks,
                    len: 4096,
                    got: 0,
                }),
            );
        }
        (fab, group)
    }

    #[test]
    fn broadcast_delivers_to_all_leaves() {
        let (mut fab, _) = bcast_fabric(8, 16, FabricConfig::ideal());
        let stats = fab.run();
        assert!(stats.all_done(), "stats: {stats:?}");
        assert_eq!(fab.total_rnr_drops(), 0);
        assert_eq!(fab.total_fabric_drops(), 0);
        assert!(stats.peak_queue_depth > 0);
    }

    #[test]
    fn broadcast_traffic_is_bandwidth_optimal() {
        // Each of the 16 chunks (4 KiB payload) must cross each link at
        // most once: per-link data bytes <= 64 KiB.
        let (mut fab, _) = bcast_fabric(8, 16, FabricConfig::ideal());
        fab.run();
        let report = fab.traffic();
        let payload_total = 16 * 4096u64;
        assert_eq!(report.max_link_data_bytes(), payload_total);
        // Exactly: uplink of rank 0 once, downlinks to 7 leaves once.
        assert_eq!(report.total_data_bytes(), payload_total * 8);
        // Engine stats ride along with the counters.
        assert!(report.events() > 0);
        assert!(report.events_per_sec() > 0.0);
    }

    #[test]
    fn broadcast_timing_is_serialization_bound() {
        let cfg = FabricConfig::ideal();
        let (mut fab, _) = bcast_fabric(4, 64, cfg);
        let stats = fab.run();
        // 64 chunks of (4096+64)B at 7 B/ns ≈ 38 us end-to-end minimum,
        // two hops. Loose sanity bounds.
        let t = stats.max_done().unwrap().as_ns();
        let wire = LinkRate::CX3_56G.serialization_ns(4096 + 64) * 64;
        assert!(t >= wire, "t={t} < wire={wire}");
        assert!(t < wire * 3, "t={t} suspiciously slow vs {wire}");
    }

    #[test]
    fn full_drop_probability_kills_all_datagrams() {
        let mut cfg = FabricConfig::ideal();
        cfg.drops = DropModel::uniform(1.0);
        let (mut fab, _) = bcast_fabric(4, 4, cfg);
        let stats = fab.run();
        // Leaves never finish; only the root (tx-drain) completes.
        assert!(!stats.all_done());
        assert_eq!(
            stats.per_rank_done.iter().flatten().count(),
            1,
            "only root done"
        );
        assert!(fab.total_fabric_drops() > 0);
        // Dropped replicas must not leak slab entries.
        assert_eq!(fab.inner.live_pkts(), 0);
    }

    #[test]
    fn forced_drop_hits_exactly_one_receiver() {
        let mut cfg = FabricConfig::ideal();
        cfg.drops.forced.insert((0, 2, 3)); // origin 0, psn 2, dst rank 3
        let (mut fab, _) = bcast_fabric(4, 4, cfg);
        let stats = fab.run();
        assert!(!stats.all_done());
        let unfinished: Vec<usize> = stats
            .per_rank_done
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unfinished, vec![3]);
    }

    #[test]
    fn rnr_drops_under_rq_exhaustion() {
        let mut cfg = FabricConfig::ideal();
        cfg.host.rq_depth = 4;
        cfg.host.rx_proc_ns_per_cqe = 100_000; // absurdly slow worker
        let (mut fab, _) = bcast_fabric(3, 64, cfg);
        let stats = fab.run();
        assert!(!stats.all_done());
        assert!(fab.total_rnr_drops() > 0, "expected RNR drops");
    }

    #[test]
    fn group_table_occupancy_tracked() {
        let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
        let mut cfg = FabricConfig::ideal();
        cfg.mcast_table_capacity = Some(3);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..4).map(Rank).collect();
        assert_eq!(fab.num_groups(), 0);
        fab.create_group(&members);
        fab.create_group(&members);
        assert_eq!(fab.num_groups(), 2);
    }

    #[test]
    #[should_panic(expected = "multicast-group table exhausted")]
    fn group_table_capacity_enforced() {
        let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
        let mut cfg = FabricConfig::ideal();
        cfg.mcast_table_capacity = Some(2);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..4).map(Rank).collect();
        fab.create_group(&members);
        fab.create_group(&members);
        fab.create_group(&members); // third group exceeds the table
    }

    #[test]
    fn fabric_is_send() {
        // The whole simulation — fabric, queue, slab, installed apps —
        // must be movable to a sweep-executor worker thread. A compile
        // check, but kept as a test so the property is named and
        // searchable.
        fn assert_send<T: Send>() {}
        assert_send::<Fabric<Msg>>();
        assert_send::<Box<dyn RankApp<Msg>>>();
    }

    #[test]
    fn take_app_roundtrips_concrete_type() {
        let (mut fab, _) = bcast_fabric(4, 4, FabricConfig::ideal());
        let stats = fab.run();
        assert!(stats.all_done());
        for r in 0..4 {
            let app: BcastApp = fab.take_app_as(Rank(r));
            // Leaves counted every chunk; the root's counter stays 0.
            assert_eq!(app.got, if r == 0 { 0 } else { 4 });
        }
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn take_app_as_panics_on_type_mismatch() {
        let (mut fab, _) = bcast_fabric(2, 1, FabricConfig::ideal());
        fab.run();
        let _: TimerApp = fab.take_app_as(Rank(0));
    }

    #[test]
    fn deterministic_replay() {
        let (mut f1, _) = bcast_fabric(8, 32, FabricConfig::ucc_default());
        let (mut f2, _) = bcast_fabric(8, 32, FabricConfig::ucc_default());
        let s1 = f1.run();
        let s2 = f2.run();
        assert_eq!(s1.per_rank_done, s2.per_rank_done);
        assert_eq!(s1.events, s2.events);
        assert_eq!(s1.peak_queue_depth, s2.peak_queue_depth);
    }

    #[test]
    fn wheel_and_heap_engines_agree() {
        // Same broadcast on both event-queue engines: identical timing,
        // event counts, and per-link counters.
        let mut wheel_cfg = FabricConfig::ucc_default();
        wheel_cfg.event_queue = QueueBackend::Wheel;
        let mut heap_cfg = FabricConfig::ucc_default();
        heap_cfg.event_queue = QueueBackend::Heap;
        let (mut fw, _) = bcast_fabric(8, 32, wheel_cfg);
        let (mut fh, _) = bcast_fabric(8, 32, heap_cfg);
        let sw = fw.run();
        let sh = fh.run();
        assert_eq!(sw.per_rank_done, sh.per_rank_done);
        assert_eq!(sw.events, sh.events);
        assert_eq!(sw.peak_queue_depth, sh.peak_queue_depth);
        assert_eq!(fw.traffic().per_link(), fh.traffic().per_link());
    }

    #[test]
    fn run_until_pauses_and_resumes_without_reordering() {
        let (mut fab, _) = bcast_fabric(4, 16, FabricConfig::ucc_default());
        let (mut reference, _) = bcast_fabric(4, 16, FabricConfig::ucc_default());
        // Drive the first fabric in 2 µs slices until quiescent.
        let mut deadline = 2_000u64;
        let stats = loop {
            let s = fab.run_until(SimTime(deadline));
            if s.all_done() {
                break s;
            }
            assert!(
                fab.next_event_time().is_some(),
                "paused without pending events"
            );
            deadline += 2_000;
        };
        let whole = reference.run();
        assert_eq!(stats.per_rank_done, whole.per_rank_done);
        assert_eq!(stats.events, whole.events);
    }

    #[test]
    fn slab_recycles_instead_of_growing() {
        // Steady-state broadcast: the slab high-water mark must be far
        // below the total packet count (handles are recycled).
        let (mut fab, _) = bcast_fabric(8, 256, FabricConfig::ucc_default());
        let stats = fab.run();
        assert!(stats.all_done());
        assert_eq!(fab.inner.live_pkts(), 0, "all packets released");
        let slab_size = fab.inner.pkt_slab.len();
        assert!(
            slab_size < 2048,
            "slab grew to {slab_size} for 256 chunks — free list not reused?"
        );
    }

    /// Ping-pong over control messages + one RDMA read.
    struct PingPong {
        peer: Rank,
        hops_left: u32,
        read_done: bool,
    }

    impl RankApp<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                ctx.post_msg(self.peer, QpNum(0), 1, 64);
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_, Msg>, cqe: Cqe, payload: Payload<Msg>) {
            match cqe.opcode {
                CqeOpcode::Recv => {
                    let Payload::Msg(v) = payload else {
                        panic!("expected message")
                    };
                    if self.hops_left > 0 {
                        self.hops_left -= 1;
                        ctx.post_msg(self.peer, QpNum(0), v + 1, 64);
                    } else if ctx.rank() == Rank(0) {
                        // Finish with a read of 8 KiB from the peer.
                        ctx.post_rdma_read(QpNum(0), self.peer, 8192, 0xfe7c);
                    } else {
                        // Final reply lets rank 0 drain its own count.
                        ctx.post_msg(self.peer, QpNum(0), v + 1, 64);
                        ctx.mark_done();
                    }
                }
                CqeOpcode::RdmaReadDone => {
                    assert_eq!(cqe.wr_id, 0xfe7c);
                    assert_eq!(cqe.byte_len, 8192);
                    self.read_done = true;
                    ctx.mark_done();
                }
                _ => panic!("unexpected opcode"),
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _token: u64) {}
    }

    #[test]
    fn control_messages_and_rdma_read_roundtrip() {
        let topo = Topology::back_to_back(LinkRate::CX7_200G, 50);
        let mut fab: Fabric<Msg> = Fabric::new(topo, FabricConfig::ideal());
        for r in [Rank(0), Rank(1)] {
            fab.add_qp(r, Transport::Rc, 0);
            fab.set_app(
                r,
                Box::new(PingPong {
                    peer: if r == Rank(0) { Rank(1) } else { Rank(0) },
                    hops_left: 4,
                    read_done: false,
                }),
            );
        }
        let stats = fab.run();
        assert!(stats.all_done());
        // Mark-done of rank 1 happens before rank 0's read completes.
        let d0 = stats.per_rank_done[0].unwrap();
        let d1 = stats.per_rank_done[1].unwrap();
        assert!(d0 > d1);
    }

    /// App that arms a timer and records the fire time.
    struct TimerApp {
        fired_at: Option<SimTime>,
    }

    impl RankApp<Msg> for TimerApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                ctx.set_timer(12_345, 7);
            } else {
                ctx.mark_done();
            }
        }
        fn on_cqe(&mut self, _ctx: &mut Ctx<'_, Msg>, _cqe: Cqe, _p: Payload<Msg>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
            assert_eq!(token, 7);
            self.fired_at = Some(ctx.now());
            ctx.mark_done();
        }
    }

    #[test]
    fn timers_fire_on_schedule() {
        let topo = Topology::back_to_back(LinkRate::CX7_200G, 50);
        let mut fab: Fabric<Msg> = Fabric::new(topo, FabricConfig::ideal());
        fab.add_qp(Rank(0), Transport::Rc, 0);
        fab.add_qp(Rank(1), Transport::Rc, 0);
        fab.set_app(Rank(0), Box::new(TimerApp { fired_at: None }));
        fab.set_app(Rank(1), Box::new(TimerApp { fired_at: None }));
        let stats = fab.run();
        assert_eq!(stats.per_rank_done[0], Some(SimTime(12_345)));
    }

    #[test]
    fn per_link_and_per_rank_breakdowns_sum_to_totals() {
        // Forced drops land on identifiable delivery links and RQ
        // exhaustion produces RNR drops; the TrafficReport breakdowns
        // must sum back to the fabric-level aggregates.
        let mut cfg = FabricConfig::ideal();
        cfg.drops.forced.insert((0, 1, 1));
        cfg.drops.forced.insert((0, 2, 3));
        cfg.host.rq_depth = 4;
        cfg.host.rx_proc_ns_per_cqe = 100_000; // slow worker: RNR backlog
        let (mut fab, _) = bcast_fabric(4, 64, cfg);
        fab.run();
        let report = fab.traffic();
        assert!(fab.total_fabric_drops() > 0);
        assert!(fab.total_rnr_drops() > 0);
        let per_link_sum: u64 = report.per_link().iter().map(|c| c.drops).sum();
        assert_eq!(per_link_sum, fab.total_fabric_drops());
        assert_eq!(report.total_drops(), fab.total_fabric_drops());
        assert_eq!(report.rnr_per_rank().len(), 4);
        assert_eq!(report.total_rnr_drops(), fab.total_rnr_drops());
        // Forced drops are charged to the two victims' delivery links.
        assert!(report.link(LinkId(3)).drops >= 1);
        assert!(report.link(LinkId(7)).drops >= 1);
    }

    #[test]
    fn degraded_uplink_stretches_completion() {
        use crate::linkstate::{LinkSchedule, LinkStateEvent};
        let (mut healthy, _) = bcast_fabric(4, 32, FabricConfig::ideal());
        let base = healthy.run().max_done().unwrap().as_ns();
        // Root uplink at quarter rate for the whole run.
        let mut cfg = FabricConfig::ideal();
        cfg.faults = LinkSchedule::new(vec![LinkStateEvent::degraded(0, LinkId(0), 1, 4)]);
        let (mut fab, _) = bcast_fabric(4, 32, cfg);
        let stats = fab.run();
        assert!(stats.all_done());
        let slow = stats.max_done().unwrap().as_ns();
        assert!(
            slow > base * 3 && slow < base * 5,
            "quarter-rate uplink: {slow} vs healthy {base}"
        );
        let report = fab.traffic();
        assert!(report.link(LinkId(0)).degraded_ns > 0);
        assert_eq!(
            report.total_degraded_ns(),
            report.link(LinkId(0)).degraded_ns
        );
        assert_eq!(fab.total_fault_drops(), 0);
    }

    #[test]
    fn down_delivery_link_drops_datagrams() {
        use crate::linkstate::{LinkSchedule, LinkStateEvent};
        // Switch->rank3 downlink dead forever: rank 3's multicast copies
        // are lost at the egress and counted as fault drops.
        let mut cfg = FabricConfig::ideal();
        cfg.faults = LinkSchedule::new(vec![LinkStateEvent::down(0, LinkId(7))]);
        let (mut fab, _) = bcast_fabric(4, 8, cfg);
        let stats = fab.run();
        assert!(!stats.all_done());
        let unfinished: Vec<usize> = stats
            .per_rank_done
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unfinished, vec![3]);
        let report = fab.traffic();
        assert_eq!(report.link(LinkId(7)).fault_drops, 8);
        assert_eq!(report.total_fault_drops(), fab.total_fault_drops());
        // The open-ended outage accrues downtime up to the end of the run.
        assert!(report.link(LinkId(7)).downtime_ns > 0);
        assert_eq!(fab.inner.live_pkts(), 0, "dropped copies must not leak");
    }

    #[test]
    fn nic_stalls_through_down_window_then_resumes() {
        use crate::linkstate::{LinkSchedule, LinkStateEvent};
        let window = 50_000u64;
        let mut cfg = FabricConfig::ideal();
        cfg.faults = LinkSchedule::new(vec![
            LinkStateEvent::down(0, LinkId(0)),
            LinkStateEvent::up(window, LinkId(0)),
        ]);
        let (mut fab, _) = bcast_fabric(4, 8, cfg);
        let stats = fab.run();
        assert!(stats.all_done(), "injection must resume after the window");
        assert!(
            stats.max_done().unwrap().as_ns() > window,
            "completion cannot precede the port recovery"
        );
        let report = fab.traffic();
        assert_eq!(report.link(LinkId(0)).downtime_ns, window);
        assert_eq!(fab.total_fault_drops(), 0, "stalled, not dropped");
    }

    #[test]
    fn reliable_traffic_waits_out_a_switch_egress_outage() {
        use crate::linkstate::{LinkSchedule, LinkStateEvent};
        // Ping-pong over RC through a switch whose egress toward rank 1
        // is down for a window: the first ping is delayed to the
        // recovery instant, never dropped.
        let window = 30_000u64;
        let topo = Topology::single_switch(2, LinkRate::CX7_200G, 50);
        let mut cfg = FabricConfig::ideal();
        cfg.faults = LinkSchedule::new(vec![
            LinkStateEvent::down(0, LinkId(3)),
            LinkStateEvent::up(window, LinkId(3)),
        ]);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        for r in [Rank(0), Rank(1)] {
            fab.add_qp(r, Transport::Rc, 0);
            fab.set_app(
                r,
                Box::new(PingPong {
                    peer: if r == Rank(0) { Rank(1) } else { Rank(0) },
                    hops_left: 2,
                    read_done: false,
                }),
            );
        }
        let stats = fab.run();
        assert!(stats.all_done());
        assert!(stats.max_done().unwrap().as_ns() > window);
        assert_eq!(fab.total_fault_drops(), 0);
    }

    #[test]
    fn sm_rebuild_routes_multicast_around_a_dead_spine() {
        use crate::linkstate::{LinkSchedule, LinkStateEvent};
        let topo = Topology::fat_tree_two_level(8, 2, 2, 1, LinkRate::CX3_56G, 100);
        let members: Vec<Rank> = (0..8).map(Rank).collect();
        // The SM roots group 0 at a hash-picked spine; kill exactly it.
        let victim = McastTree::build(&topo, McastGroupId(0), &members).root();
        let events: Vec<LinkStateEvent> = (0..topo.num_links() as u32)
            .map(LinkId)
            .filter(|&l| {
                let lk = topo.link(l);
                lk.src == victim || lk.dst == victim
            })
            .map(|l| LinkStateEvent::down(0, l))
            .collect();
        let mut cfg = FabricConfig::ideal();
        cfg.faults = LinkSchedule::new(events);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let group = fab.create_group(&members);
        for &r in &members {
            let qp = fab.add_qp(r, Transport::Ud, 0);
            fab.attach(r, qp, group);
            fab.set_app(
                r,
                Box::new(BcastApp {
                    qp,
                    group,
                    n: 16,
                    len: 4096,
                    got: 0,
                }),
            );
        }
        // Let the fault transitions (t = 0) land, then let the SM notice
        // and re-route — before the first copy reaches its leaf switch.
        let stats = fab.run_until(SimTime(50));
        assert!(!stats.all_done());
        let dead = fab.dead_switches();
        assert_eq!(dead, vec![victim], "chassis with every link down");
        // 2 leaves × 1 rail × 2 directions touch the spine.
        assert_eq!(fab.health().down_links(), 4);
        assert_eq!(fab.rebuild_groups_avoiding(&dead), 1);
        assert_eq!(fab.rebuild_groups_avoiding(&dead), 0, "already re-routed");
        let stats = fab.run();
        assert!(stats.all_done(), "rebuilt tree must deliver: {stats:?}");
        assert_eq!(fab.total_fault_drops(), 0, "no copy touched the corpse");
    }

    #[test]
    fn health_snapshot_is_all_up_without_faults() {
        let (fab, _) = bcast_fabric(4, 0, FabricConfig::ideal());
        let h = fab.health();
        assert_eq!(h.down_links(), 0);
        assert_eq!(h.total_fault_drops(), 0);
        assert!(h.links().iter().all(|l| l.up && !l.degraded));
        assert!(fab.dead_switches().is_empty());
    }

    #[test]
    fn fault_free_schedule_is_a_noop() {
        use crate::linkstate::LinkSchedule;
        let (mut base, _) = bcast_fabric(8, 32, FabricConfig::ucc_default());
        let mut cfg = FabricConfig::ucc_default();
        cfg.faults = LinkSchedule::new(Vec::new());
        let (mut faulted, _) = bcast_fabric(8, 32, cfg);
        let s1 = base.run();
        let s2 = faulted.run();
        assert_eq!(s1.per_rank_done, s2.per_rank_done);
        assert_eq!(s1.events, s2.events);
        assert_eq!(base.traffic().per_link(), faulted.traffic().per_link());
    }

    #[test]
    fn worker_serialization_delays_cqes() {
        // With one worker and a large per-CQE cost, completion times are
        // paced by the worker, not the wire.
        let mut cfg = FabricConfig::ideal();
        cfg.host.rx_proc_ns_per_cqe = 1000;
        let (mut fab, _) = bcast_fabric(2, 32, cfg);
        let stats = fab.run();
        let done = stats.per_rank_done[1].unwrap().as_ns();
        assert!(done >= 32 * 1000, "worker pacing not applied: {done}");
    }
}
