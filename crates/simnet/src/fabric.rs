//! The discrete-event fabric: NIC send/receive datapaths, switch
//! forwarding with multicast replication, drop injection, and the event
//! loop driving per-rank protocol apps.
//!
//! ## Timing model
//!
//! * Every directed link serializes packets at its line rate and adds a
//!   propagation delay; a switch adds a store-and-forward latency per hop.
//! * A NIC's injection pipeline issues one packet per
//!   `max(serialization, tx_post_overhead)` — the latter models the CPU
//!   cost of posting work requests (Fig. 5's single-core send bottleneck).
//! * On the receive side, the NIC surfaces a CQE after `rx_cqe_dma_ns`;
//!   the QP's assigned worker thread then spends `rx_proc_ns_per_cqe` per
//!   completion, FIFO per worker. Receive slots are consumed at packet
//!   arrival and recycled when the worker finishes processing — if the
//!   backlog exceeds the RQ depth, packets are RNR-dropped, exactly the
//!   failure mode the paper's RNR-synchronization phase exists to avoid.

use crate::app::{Ctx, Payload, RankApp};
use crate::config::FabricConfig;
use crate::counters::{LinkCounters, TrafficReport};
use crate::event::EventQueue;
use crate::mcast::McastTree;
use crate::routing::{self, descend, RouteMode};
use crate::time::SimTime;
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use mcag_verbs::wire::{Destination, PacketHeader, PacketKind};
use mcag_verbs::{CompletionStatus, Cqe, CqeOpcode, ImmData, McastGroupId, QpNum, Rank, Transport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What happens when a packet reaches its destination host.
#[derive(Debug, Clone, Copy)]
enum ArrivalSem {
    /// Normal two-sided delivery into a pre-posted receive.
    TwoSided,
    /// RDMA Read request: target NIC answers in hardware with `resp_len`
    /// bytes, completion tagged `tag` on the requester.
    ReadReq {
        resp_len: usize,
        tag: u64,
        req_qp: QpNum,
    },
    /// RDMA Read response arriving back at the requester.
    ReadResp { tag: u64, req_qp: QpNum },
}

#[derive(Debug, Clone)]
enum RouteState {
    Unicast {
        path: Arc<[LinkId]>,
        hop: usize,
    },
    Mcast {
        group: McastGroupId,
    },
    /// In-network-compute contribution climbing its reduction tree
    /// (SHARP-style). Switches absorb contributions until every child
    /// branch has reported, then forward one merged packet up; the tree
    /// root routes the result down to the shard's `owner`.
    IncUp {
        group: McastGroupId,
        owner: Rank,
        owner_qp: QpNum,
    },
}

struct PacketInst<M> {
    header: PacketHeader,
    payload: Payload<M>,
    route: RouteState,
    sem: ArrivalSem,
    reliable: bool,
    dst_qp: QpNum,
}

impl<M: Clone> Clone for PacketInst<M> {
    fn clone(&self) -> Self {
        PacketInst {
            header: self.header,
            payload: self.payload.clone(),
            route: self.route.clone(),
            sem: self.sem,
            reliable: self.reliable,
            dst_qp: self.dst_qp,
        }
    }
}

enum Ev<M> {
    TxKick {
        rank: Rank,
    },
    LinkArrive {
        link: LinkId,
        pkt: Box<PacketInst<M>>,
    },
    CqeDone {
        rank: Rank,
        cqe: Cqe,
        payload: Payload<M>,
        repost_qp: Option<usize>,
    },
    Timer {
        rank: Rank,
        token: u64,
    },
    TxDrained {
        rank: Rank,
        token: u64,
    },
}

struct QpState {
    transport: Transport,
    worker: usize,
    rq_avail: usize,
    rq_depth: usize,
}

struct NicState<M> {
    uplink: LinkId,
    /// One send queue per QP; the NIC arbiter serves them round-robin,
    /// which is how concurrent collectives share injection bandwidth.
    tx_queues: Vec<VecDeque<PacketInst<M>>>,
    tx_rr: usize,
    tx_free_at: SimTime,
    kick_scheduled: bool,
    /// Per-QP drain-notification tokens.
    drain_tokens: Vec<Vec<u64>>,
    workers: Vec<SimTime>,
    qps: Vec<QpState>,
    group_attach: HashMap<McastGroupId, usize>,
    rnr_drops: u64,
}

/// Fabric internals reachable from [`Ctx`] (everything except the apps).
pub struct Inner<M> {
    topo: Arc<Topology>,
    cfg: FabricConfig,
    q: EventQueue<Ev<M>>,
    nics: Vec<NicState<M>>,
    trees: Vec<McastTree>,
    counters: Vec<LinkCounters>,
    link_busy: Vec<SimTime>,
    route_cache: HashMap<(u32, u32), Arc<[LinkId]>>,
    rng: StdRng,
    done: Vec<Option<SimTime>>,
    done_count: usize,
    /// In-network reduction progress: contributions seen per
    /// `(group, psn, switch)`.
    inc_arrivals: HashMap<(u32, u32, NodeId), u32>,
    /// Reusable egress-link buffer for switch forwarding (avoids a fresh
    /// `Vec` per packet hop on the multicast replication hot path).
    scratch_links: Vec<LinkId>,
}

/// Statistics of one completed run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Time the last rank finished.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Per-rank completion times (`None` if a rank never called
    /// [`Ctx::mark_done`]).
    pub per_rank_done: Vec<Option<SimTime>>,
}

impl RunStats {
    /// True if every rank completed.
    pub fn all_done(&self) -> bool {
        self.per_rank_done.iter().all(|t| t.is_some())
    }

    /// Latest completion time across ranks that finished.
    pub fn max_done(&self) -> Option<SimTime> {
        self.per_rank_done.iter().flatten().copied().max()
    }
}

/// The discrete-event fabric simulator. See the module docs for the model.
pub struct Fabric<M> {
    inner: Inner<M>,
    apps: Vec<Option<Box<dyn RankApp<M>>>>,
}

impl<M: Clone + 'static> Fabric<M> {
    /// Create a fabric over `topo` with the given configuration. Apps and
    /// QPs must be registered before [`Fabric::run`].
    pub fn new(topo: Topology, cfg: FabricConfig) -> Fabric<M> {
        let topo = Arc::new(topo);
        let n = topo.num_hosts();
        let nics = (0..n)
            .map(|r| {
                let host = topo.host_node(Rank(r as u32));
                let ups = topo.uplinks(host);
                assert_eq!(ups.len(), 1, "hosts have exactly one NIC port");
                NicState {
                    uplink: ups[0],
                    tx_queues: Vec::new(),
                    tx_rr: 0,
                    tx_free_at: SimTime::ZERO,
                    kick_scheduled: false,
                    drain_tokens: Vec::new(),
                    workers: vec![SimTime::ZERO; cfg.host.rx_workers.max(1)],
                    qps: Vec::new(),
                    group_attach: HashMap::new(),
                    rnr_drops: 0,
                }
            })
            .collect();
        let counters = vec![LinkCounters::default(); topo.num_links()];
        let link_busy = vec![SimTime::ZERO; topo.num_links()];
        let rng = StdRng::seed_from_u64(cfg.seed);
        Fabric {
            inner: Inner {
                topo,
                cfg,
                q: EventQueue::new(),
                nics,
                trees: Vec::new(),
                counters,
                link_busy,
                route_cache: HashMap::new(),
                rng,
                done: vec![None; n],
                done_count: 0,
                inc_arrivals: HashMap::new(),
                scratch_links: Vec::new(),
            },
            apps: (0..n).map(|_| None).collect(),
        }
    }

    /// Topology handle.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// Create a QP on `rank`, pinned to RX `worker`. Returns the rank-local
    /// QP number (SPMD setups produce identical numbering on every rank).
    pub fn add_qp(&mut self, rank: Rank, transport: Transport, worker: usize) -> QpNum {
        let nic = &mut self.inner.nics[rank.idx()];
        assert!(
            worker < nic.workers.len(),
            "worker {worker} out of range ({} workers)",
            nic.workers.len()
        );
        let qpn = QpNum(nic.qps.len() as u32);
        let depth = self.inner.cfg.host.rq_depth;
        nic.qps.push(QpState {
            transport,
            worker,
            rq_avail: depth,
            rq_depth: depth,
        });
        nic.tx_queues.push(VecDeque::new());
        nic.drain_tokens.push(Vec::new());
        qpn
    }

    /// Create a multicast group over `members`; builds the spanning tree.
    ///
    /// Panics when [`FabricConfig::mcast_table_capacity`] is set and the
    /// switch group table is already full — the hard resource bound the
    /// `mcag-runtime` group pool schedules around.
    pub fn create_group(&mut self, members: &[Rank]) -> McastGroupId {
        if let Some(cap) = self.inner.cfg.mcast_table_capacity {
            assert!(
                self.inner.trees.len() < cap,
                "switch multicast-group table exhausted ({cap} groups programmed)"
            );
        }
        let gid = McastGroupId(self.inner.trees.len() as u32);
        let tree = McastTree::build(&self.inner.topo, gid, members);
        self.inner.trees.push(tree);
        gid
    }

    /// Multicast groups currently programmed into the fabric — the
    /// simulated switch group-table occupancy.
    pub fn num_groups(&self) -> usize {
        self.inner.trees.len()
    }

    /// Attach `rank`'s `qp` to `group` (receives that group's datagrams).
    pub fn attach(&mut self, rank: Rank, qp: QpNum, group: McastGroupId) {
        let tree = &self.inner.trees[group.0 as usize];
        assert!(tree.is_member(rank), "{rank} is not a member of {group:?}");
        let nic = &mut self.inner.nics[rank.idx()];
        assert!(
            matches!(
                nic.qps[qp.0 as usize].transport,
                Transport::Ud | Transport::Uc
            ),
            "only UD/UC QPs can join multicast groups"
        );
        nic.group_attach.insert(group, qp.0 as usize);
    }

    /// Install the protocol endpoint for `rank`.
    pub fn set_app(&mut self, rank: Rank, app: Box<dyn RankApp<M>>) {
        self.apps[rank.idx()] = Some(app);
    }

    /// Run to completion: starts every app, then processes events until
    /// all ranks are done (or the queue empties / the event cap trips).
    pub fn run(&mut self) -> RunStats {
        let n = self.inner.num_ranks();
        for r in 0..n {
            self.with_app(Rank(r as u32), |app, ctx| app.on_start(ctx));
        }
        while self.inner.done_count < n {
            if self.inner.q.processed() >= self.inner.cfg.max_events {
                panic!(
                    "event cap {} exceeded — livelocked protocol?",
                    self.inner.cfg.max_events
                );
            }
            let Some((_, ev)) = self.inner.q.pop() else {
                break; // quiescent but not all done; caller inspects stats
            };
            self.dispatch(ev);
        }
        RunStats {
            end_time: self.inner.q.now(),
            events: self.inner.q.processed(),
            per_rank_done: self.inner.done.clone(),
        }
    }

    /// Snapshot of all link counters.
    pub fn traffic(&self) -> TrafficReport {
        TrafficReport::new(self.inner.counters.clone())
    }

    /// Total RNR drops across all NICs.
    pub fn total_rnr_drops(&self) -> u64 {
        self.inner.nics.iter().map(|n| n.rnr_drops).sum()
    }

    /// Total fabric drops across all links.
    pub fn total_fabric_drops(&self) -> u64 {
        self.inner.counters.iter().map(|c| c.drops).sum()
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        match ev {
            Ev::TxKick { rank } => self.inner.handle_tx_kick(rank),
            Ev::LinkArrive { link, pkt } => self.inner.handle_link_arrive(link, *pkt),
            Ev::CqeDone {
                rank,
                cqe,
                payload,
                repost_qp,
            } => {
                if let Some(qi) = repost_qp {
                    let qp = &mut self.inner.nics[rank.idx()].qps[qi];
                    qp.rq_avail = (qp.rq_avail + 1).min(qp.rq_depth);
                }
                self.with_app(rank, |app, ctx| app.on_cqe(ctx, cqe, payload));
            }
            Ev::Timer { rank, token } => {
                self.with_app(rank, |app, ctx| app.on_timer(ctx, token));
            }
            Ev::TxDrained { rank, token } => {
                self.with_app(rank, |app, ctx| app.on_tx_drained(ctx, token));
            }
        }
    }

    fn with_app(&mut self, rank: Rank, f: impl FnOnce(&mut dyn RankApp<M>, &mut Ctx<'_, M>)) {
        let mut app = self.apps[rank.idx()]
            .take()
            .unwrap_or_else(|| panic!("no app installed for {rank}"));
        let mut ctx = Ctx {
            inner: &mut self.inner,
            rank,
        };
        f(app.as_mut(), &mut ctx);
        self.apps[rank.idx()] = Some(app);
    }
}

impl<M: Clone + 'static> Inner<M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.topo.num_hosts()
    }

    pub(crate) fn rnr_drops(&self, rank: Rank) -> u64 {
        self.nics[rank.idx()].rnr_drops
    }

    pub(crate) fn set_timer(&mut self, rank: Rank, delay_ns: u64, token: u64) {
        self.q.schedule_in(delay_ns, Ev::Timer { rank, token });
    }

    pub(crate) fn mark_done(&mut self, rank: Rank) {
        if self.done[rank.idx()].is_none() {
            self.done[rank.idx()] = Some(self.q.now());
            self.done_count += 1;
        }
    }

    pub(crate) fn notify_tx_drained(&mut self, rank: Rank, qp: QpNum, token: u64) {
        let nic = &mut self.nics[rank.idx()];
        let qi = qp.0 as usize;
        if nic.tx_queues[qi].is_empty() {
            let at = nic.tx_free_at.max(self.q.now());
            self.q.schedule_at(at, Ev::TxDrained { rank, token });
        } else {
            nic.drain_tokens[qi].push(token);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the verbs post signature
    pub(crate) fn post_mcast(
        &mut self,
        src: Rank,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        origin: Rank,
        psn: u32,
        len: usize,
    ) {
        let tree = &self.trees[group.0 as usize];
        assert!(tree.is_member(src), "{src} multicasts to foreign group");
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Multicast(group),
                kind: PacketKind::McastData,
                imm: Some(imm),
                payload_len: len,
            },
            payload: Payload::Chunk { origin, psn },
            route: RouteState::Mcast { group },
            sem: ArrivalSem::TwoSided,
            reliable: false,
            dst_qp: QpNum(0),
        };
        self.enqueue_tx(src, qp, pkt);
    }

    /// Post an in-network-reduction contribution for shard chunk `psn`
    /// owned by `owner`; the fabric's switches merge contributions up the
    /// group's tree and deliver one result to `owner`'s `owner_qp`.
    #[allow(clippy::too_many_arguments)] // mirrors the verbs post signature
    pub(crate) fn post_inc(
        &mut self,
        src: Rank,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        owner: Rank,
        owner_qp: QpNum,
        psn: u32,
        len: usize,
    ) {
        assert!(
            self.topo.top_level() > 0,
            "in-network reduction needs a switched fabric"
        );
        let tree = &self.trees[group.0 as usize];
        assert!(tree.is_member(src), "{src} contributes to foreign group");
        assert_eq!(
            tree.members().len(),
            self.num_ranks(),
            "in-network reduction requires full-membership groups"
        );
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Multicast(group),
                kind: PacketKind::McastData,
                imm: Some(imm),
                payload_len: len,
            },
            payload: Payload::Chunk { origin: src, psn },
            route: RouteState::IncUp {
                group,
                owner,
                owner_qp,
            },
            sem: ArrivalSem::TwoSided,
            reliable: true, // SHARP runs over reliable transport
            dst_qp: owner_qp,
        };
        self.enqueue_tx(src, qp, pkt);
    }

    pub(crate) fn post_msg(&mut self, src: Rank, dst: Rank, dst_qp: QpNum, msg: M, len: usize) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: dst_qp,
                dst: Destination::Unicast(dst, dst_qp),
                kind: PacketKind::Control,
                imm: None,
                payload_len: len,
            },
            payload: Payload::Msg(msg),
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::TwoSided,
            reliable: true,
            dst_qp,
        };
        self.enqueue_tx(src, dst_qp, pkt);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_unicast_chunk(
        &mut self,
        src: Rank,
        dst: Rank,
        dst_qp: QpNum,
        imm: Option<ImmData>,
        origin: Rank,
        psn: u32,
        len: usize,
        reliable: bool,
    ) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: QpNum(0),
                dst: Destination::Unicast(dst, dst_qp),
                kind: PacketKind::UnicastData,
                imm,
                payload_len: len,
            },
            payload: Payload::Chunk { origin, psn },
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::TwoSided,
            reliable,
            dst_qp,
        };
        self.enqueue_tx(src, dst_qp, pkt);
    }

    pub(crate) fn post_rdma_read(&mut self, src: Rank, qp: QpNum, dst: Rank, len: usize, tag: u64) {
        let path = self.unicast_path(src, dst);
        let pkt = PacketInst {
            header: PacketHeader {
                src,
                src_qp: qp,
                dst: Destination::Unicast(dst, qp),
                kind: PacketKind::Control,
                imm: None,
                payload_len: 0,
            },
            payload: Payload::Empty,
            route: RouteState::Unicast { path, hop: 0 },
            sem: ArrivalSem::ReadReq {
                resp_len: len,
                tag,
                req_qp: qp,
            },
            reliable: true,
            dst_qp: qp,
        };
        self.enqueue_tx(src, qp, pkt);
    }

    fn unicast_path(&mut self, src: Rank, dst: Rank) -> Arc<[LinkId]> {
        if self.cfg.adaptive_routing {
            let p = routing::route(&self.topo, src, dst, RouteMode::Adaptive, 0, &mut self.rng);
            return p.into();
        }
        if let Some(p) = self.route_cache.get(&(src.0, dst.0)) {
            return Arc::clone(p);
        }
        let p: Arc<[LinkId]> = routing::route(
            &self.topo,
            src,
            dst,
            RouteMode::Deterministic,
            0,
            &mut self.rng,
        )
        .into();
        self.route_cache.insert((src.0, dst.0), Arc::clone(&p));
        p
    }

    fn enqueue_tx(&mut self, src: Rank, qp: QpNum, pkt: PacketInst<M>) {
        let nic = &mut self.nics[src.idx()];
        nic.tx_queues[qp.0 as usize].push_back(pkt);
        if !nic.kick_scheduled {
            nic.kick_scheduled = true;
            let at = nic.tx_free_at.max(self.q.now());
            self.q.schedule_at(at, Ev::TxKick { rank: src });
        }
    }

    /// Round-robin QP arbitration: pick the next non-empty send queue.
    fn tx_pick(nic: &mut NicState<M>) -> Option<(usize, PacketInst<M>)> {
        let n = nic.tx_queues.len();
        for i in 0..n {
            let qi = (nic.tx_rr + i) % n;
            if let Some(pkt) = nic.tx_queues[qi].pop_front() {
                nic.tx_rr = (qi + 1) % n;
                return Some((qi, pkt));
            }
        }
        None
    }

    fn handle_tx_kick(&mut self, rank: Rank) {
        let now = self.q.now();
        let nic = &mut self.nics[rank.idx()];
        nic.kick_scheduled = false;
        let Some((qi, mut pkt)) = Self::tx_pick(nic) else {
            return;
        };
        let uplink = nic.uplink;
        let link = *self.topo.link(uplink);
        let ser = link.rate.serialization_ns(pkt.header.wire_bytes());
        let start = now.max(self.link_busy[uplink.idx()]);
        let tx_gap = ser.max(self.cfg.host.tx_post_overhead_ns);
        self.link_busy[uplink.idx()] = start + ser;
        let free_at = start + tx_gap;
        let nic = &mut self.nics[rank.idx()];
        nic.tx_free_at = free_at;
        // First-hop bookkeeping for unicast routes: path[0] *is* the uplink.
        if let RouteState::Unicast { path, hop } = &mut pkt.route {
            debug_assert_eq!(path[0], uplink, "route does not start at the NIC port");
            *hop = 1;
        }
        let survived = self.count_and_maybe_drop(uplink, &pkt);
        if survived {
            self.q.schedule_at(
                start + ser + link.prop_delay_ns,
                Ev::LinkArrive {
                    link: uplink,
                    pkt: Box::new(pkt),
                },
            );
        }
        let nic = &mut self.nics[rank.idx()];
        if nic.tx_queues[qi].is_empty() {
            for token in std::mem::take(&mut nic.drain_tokens[qi]) {
                self.q.schedule_at(free_at, Ev::TxDrained { rank, token });
            }
        }
        if nic.tx_queues.iter().any(|q| !q.is_empty()) {
            nic.kick_scheduled = true;
            self.q.schedule_at(free_at, Ev::TxKick { rank });
        }
    }

    /// Record traffic on `link`; returns false if the packet copy was
    /// corrupted there (fabric drop).
    fn count_and_maybe_drop(&mut self, link: LinkId, pkt: &PacketInst<M>) -> bool {
        let c = &mut self.counters[link.idx()];
        c.packets += 1;
        c.wire_bytes += pkt.header.wire_bytes() as u64;
        match pkt.header.kind {
            PacketKind::Control => c.ctrl_bytes += pkt.header.payload_len as u64,
            _ => c.data_bytes += pkt.header.payload_len as u64,
        }
        if !pkt.reliable && self.cfg.drops.fabric_drop_prob > 0.0 {
            let p = self.cfg.drops.fabric_drop_prob;
            if self.rng.random_bool(p) {
                self.counters[link.idx()].drops += 1;
                return false;
            }
        }
        true
    }

    fn handle_link_arrive(&mut self, in_link: LinkId, pkt: PacketInst<M>) {
        let node = self.topo.link(in_link).dst;
        match self.topo.kind(node) {
            NodeKind::Switch { .. } => self.forward_at_switch(node, in_link, pkt),
            NodeKind::Host(rank) => self.deliver_at_host(rank, in_link, pkt),
        }
    }

    fn forward_at_switch(&mut self, node: NodeId, in_link: LinkId, pkt: PacketInst<M>) {
        let now = self.q.now();
        if let RouteState::IncUp {
            group,
            owner,
            owner_qp,
        } = &pkt.route
        {
            let (group, owner, owner_qp) = (*group, *owner, *owner_qp);
            return self.reduce_at_switch(node, pkt, group, owner, owner_qp);
        }
        // Collect egress links into the reusable scratch buffer: switch
        // forwarding runs once per packet hop, so a fresh Vec here would be
        // a per-packet allocation on the replication hot path.
        let mut outs = std::mem::take(&mut self.scratch_links);
        outs.clear();
        match &pkt.route {
            RouteState::Unicast { path, hop } => {
                debug_assert!(*hop < path.len(), "unicast route exhausted at a switch");
                outs.push(path[*hop]);
            }
            RouteState::Mcast { group } => {
                outs.extend(self.trees[group.0 as usize].out_links(&self.topo, node, Some(in_link)))
            }
            RouteState::IncUp { .. } => unreachable!("handled above"),
        }
        // Replicate: clone for all branches but the last, which takes the
        // original packet.
        if let Some((&last, rest)) = outs.split_last() {
            for &out in rest {
                self.transmit_hop(out, pkt.clone(), now);
            }
            self.transmit_hop(last, pkt, now);
        }
        self.scratch_links = outs;
    }

    /// SHARP-style switch behaviour: absorb contributions for
    /// `(group, psn)` until every child branch with contributors has
    /// reported, then forward one merged packet toward the root — or,
    /// at the root, route the reduced shard down to its owner.
    fn reduce_at_switch(
        &mut self,
        node: NodeId,
        pkt: PacketInst<M>,
        group: McastGroupId,
        owner: Rank,
        owner_qp: QpNum,
    ) {
        let now = self.q.now();
        let psn = match pkt.payload {
            Payload::Chunk { psn, .. } => psn,
            _ => unreachable!("INC packet without chunk payload"),
        };
        let tree = &self.trees[group.0 as usize];
        // Expected = child branches containing at least one contributor
        // (every rank except the shard owner contributes).
        let mut expected = 0u32;
        for cl in tree.child_links(node) {
            let child = self.topo.link(cl).dst;
            let contributors = match self.topo.kind(child) {
                NodeKind::Host(r) => (r != owner) as u32,
                NodeKind::Switch { .. } => {
                    let range = self.topo.host_range(child);
                    range.len() as u32 - range.contains(&owner.0) as u32
                }
            };
            expected += (contributors > 0) as u32;
        }
        debug_assert!(expected > 0, "reduction node with no contributors");
        let key = (group.0, psn, node);
        let cnt = self.inc_arrivals.entry(key).or_insert(0);
        *cnt += 1;
        if *cnt < expected {
            return; // absorbed into the partial reduction
        }
        self.inc_arrivals.remove(&key);
        let tree = &self.trees[group.0 as usize];
        match tree.parent_link(node) {
            Some(up) => {
                // One merged packet continues toward the root.
                self.transmit_hop(up, pkt, now);
            }
            None => {
                // Root: route the reduced shard down to its owner.
                let path: Arc<[LinkId]> = descend(&self.topo, node, owner, psn as u64).into();
                let first = path[0];
                let down = PacketInst {
                    header: PacketHeader {
                        dst: Destination::Unicast(owner, owner_qp),
                        kind: PacketKind::UnicastData,
                        ..pkt.header
                    },
                    payload: pkt.payload,
                    route: RouteState::Unicast { path, hop: 0 },
                    sem: ArrivalSem::TwoSided,
                    reliable: true,
                    dst_qp: owner_qp,
                };
                self.transmit_hop(first, down, now);
            }
        }
    }

    fn transmit_hop(&mut self, out: LinkId, mut pkt: PacketInst<M>, now: SimTime) {
        let link = *self.topo.link(out);
        let ser = link.rate.serialization_ns(pkt.header.wire_bytes());
        let start = (now + self.cfg.switch_latency_ns).max(self.link_busy[out.idx()]);
        self.link_busy[out.idx()] = start + ser;
        if let RouteState::Unicast { hop, .. } = &mut pkt.route {
            *hop += 1;
        }
        if self.count_and_maybe_drop(out, &pkt) {
            self.q.schedule_at(
                start + ser + link.prop_delay_ns,
                Ev::LinkArrive {
                    link: out,
                    pkt: Box::new(pkt),
                },
            );
        }
    }

    fn deliver_at_host(&mut self, rank: Rank, in_link: LinkId, pkt: PacketInst<M>) {
        match pkt.sem {
            ArrivalSem::ReadReq {
                resp_len,
                tag,
                req_qp,
            } => {
                // Target NIC hardware answers; no CPU involvement (RC
                // one-sided semantics).
                let requester = pkt.header.src;
                let path = self.unicast_path(rank, requester);
                let resp = PacketInst {
                    header: PacketHeader {
                        src: rank,
                        src_qp: QpNum(0),
                        dst: Destination::Unicast(requester, req_qp),
                        kind: PacketKind::UnicastData,
                        imm: None,
                        payload_len: resp_len,
                    },
                    payload: Payload::Empty,
                    route: RouteState::Unicast { path, hop: 0 },
                    sem: ArrivalSem::ReadResp { tag, req_qp },
                    reliable: true,
                    dst_qp: req_qp,
                };
                self.enqueue_tx(rank, req_qp, resp);
            }
            ArrivalSem::ReadResp { tag, req_qp } => {
                let cqe = Cqe {
                    opcode: CqeOpcode::RdmaReadDone,
                    status: CompletionStatus::Success,
                    qp: req_qp,
                    imm: None,
                    byte_len: pkt.header.payload_len,
                    wr_id: tag,
                    src: Some(pkt.header.src),
                };
                self.schedule_cqe(rank, req_qp.0 as usize, cqe, Payload::Empty, false);
            }
            ArrivalSem::TwoSided => self.deliver_two_sided(rank, in_link, pkt),
        }
    }

    fn deliver_two_sided(&mut self, rank: Rank, _in_link: LinkId, pkt: PacketInst<M>) {
        // Resolve the receiving QP.
        let qp_idx = match (&pkt.route, &pkt.header.dst) {
            (RouteState::IncUp { .. }, _) => {
                unreachable!("reduction contribution delivered to a host")
            }
            (RouteState::Mcast { group }, _) => {
                match self.nics[rank.idx()].group_attach.get(group) {
                    Some(&qi) => qi,
                    // Hosts on the tree but not attached (e.g. sender's own
                    // copy in degenerate trees) silently discard.
                    None => return,
                }
            }
            (_, Destination::Unicast(_, qp)) => qp.0 as usize,
            _ => unreachable!("unicast route with multicast destination"),
        };

        // Forced drop injection (origin, psn, dst) for multicast data.
        if pkt.header.kind == PacketKind::McastData {
            if let Payload::Chunk { origin, psn } = pkt.payload {
                if self.cfg.drops.forced.contains(&(origin.0, psn, rank.0)) {
                    // Account as a drop on the final delivery link.
                    self.counters[_in_link.idx()].drops += 1;
                    return;
                }
            }
        }

        let opcode = CqeOpcode::Recv;
        let needs_slot = !pkt.reliable;
        if needs_slot {
            let qp = &mut self.nics[rank.idx()].qps[qp_idx];
            if qp.rq_avail == 0 {
                self.nics[rank.idx()].rnr_drops += 1;
                return;
            }
            qp.rq_avail -= 1;
        }
        let cqe = Cqe {
            opcode,
            status: CompletionStatus::Success,
            qp: QpNum(qp_idx as u32),
            imm: pkt.header.imm,
            byte_len: pkt.header.payload_len,
            wr_id: 0,
            src: Some(pkt.header.src),
        };
        self.schedule_cqe(rank, qp_idx, cqe, pkt.payload, needs_slot);
    }

    fn schedule_cqe(
        &mut self,
        rank: Rank,
        qp_idx: usize,
        cqe: Cqe,
        payload: Payload<M>,
        repost: bool,
    ) {
        let now = self.q.now();
        let nic = &mut self.nics[rank.idx()];
        let worker = nic.qps.get(qp_idx).map(|q| q.worker).unwrap_or(0);
        let visible = now + self.cfg.host.rx_cqe_dma_ns;
        let start = visible.max(nic.workers[worker]);
        let done = start + self.cfg.host.rx_proc_ns_per_cqe;
        nic.workers[worker] = done;
        self.q.schedule_at(
            done,
            Ev::CqeDone {
                rank,
                cqe,
                payload,
                repost_qp: repost.then_some(qp_idx),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DropModel;
    use mcag_verbs::LinkRate;

    type Msg = u64;

    /// Sends `n` multicast chunks from rank 0; leaves count receptions and
    /// mark done when they saw all of them. Rank 0 marks done on TX drain.
    struct BcastApp {
        qp: QpNum,
        group: McastGroupId,
        n: u32,
        len: usize,
        got: u32,
    }

    impl RankApp<Msg> for BcastApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                for psn in 0..self.n {
                    ctx.post_mcast_chunk(self.qp, self.group, ImmData(psn), Rank(0), psn, self.len);
                }
                ctx.notify_tx_drained(self.qp, 0);
            } else if self.n == 0 {
                ctx.mark_done();
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_, Msg>, cqe: Cqe, _payload: Payload<Msg>) {
            assert!(cqe.is_recv_success());
            self.got += 1;
            if self.got == self.n {
                ctx.mark_done();
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _token: u64) {}

        fn on_tx_drained(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
            ctx.mark_done();
        }
    }

    fn bcast_fabric(n_ranks: usize, chunks: u32, cfg: FabricConfig) -> (Fabric<Msg>, McastGroupId) {
        let topo = Topology::single_switch(n_ranks, LinkRate::CX3_56G, 100);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..n_ranks as u32).map(Rank).collect();
        let group = fab.create_group(&members);
        for &r in &members {
            let qp = fab.add_qp(r, Transport::Ud, 0);
            fab.attach(r, qp, group);
            fab.set_app(
                r,
                Box::new(BcastApp {
                    qp,
                    group,
                    n: chunks,
                    len: 4096,
                    got: 0,
                }),
            );
        }
        (fab, group)
    }

    #[test]
    fn broadcast_delivers_to_all_leaves() {
        let (mut fab, _) = bcast_fabric(8, 16, FabricConfig::ideal());
        let stats = fab.run();
        assert!(stats.all_done(), "stats: {stats:?}");
        assert_eq!(fab.total_rnr_drops(), 0);
        assert_eq!(fab.total_fabric_drops(), 0);
    }

    #[test]
    fn broadcast_traffic_is_bandwidth_optimal() {
        // Each of the 16 chunks (4 KiB payload) must cross each link at
        // most once: per-link data bytes <= 64 KiB.
        let (mut fab, _) = bcast_fabric(8, 16, FabricConfig::ideal());
        fab.run();
        let report = fab.traffic();
        let payload_total = 16 * 4096u64;
        assert_eq!(report.max_link_data_bytes(), payload_total);
        // Exactly: uplink of rank 0 once, downlinks to 7 leaves once.
        assert_eq!(report.total_data_bytes(), payload_total * 8);
    }

    #[test]
    fn broadcast_timing_is_serialization_bound() {
        let cfg = FabricConfig::ideal();
        let (mut fab, _) = bcast_fabric(4, 64, cfg);
        let stats = fab.run();
        // 64 chunks of (4096+64)B at 7 B/ns ≈ 38 us end-to-end minimum,
        // two hops. Loose sanity bounds.
        let t = stats.max_done().unwrap().as_ns();
        let wire = LinkRate::CX3_56G.serialization_ns(4096 + 64) * 64;
        assert!(t >= wire, "t={t} < wire={wire}");
        assert!(t < wire * 3, "t={t} suspiciously slow vs {wire}");
    }

    #[test]
    fn full_drop_probability_kills_all_datagrams() {
        let mut cfg = FabricConfig::ideal();
        cfg.drops = DropModel::uniform(1.0);
        let (mut fab, _) = bcast_fabric(4, 4, cfg);
        let stats = fab.run();
        // Leaves never finish; only the root (tx-drain) completes.
        assert!(!stats.all_done());
        assert_eq!(
            stats.per_rank_done.iter().flatten().count(),
            1,
            "only root done"
        );
        assert!(fab.total_fabric_drops() > 0);
    }

    #[test]
    fn forced_drop_hits_exactly_one_receiver() {
        let mut cfg = FabricConfig::ideal();
        cfg.drops.forced.insert((0, 2, 3)); // origin 0, psn 2, dst rank 3
        let (mut fab, _) = bcast_fabric(4, 4, cfg);
        let stats = fab.run();
        assert!(!stats.all_done());
        let unfinished: Vec<usize> = stats
            .per_rank_done
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_none())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unfinished, vec![3]);
    }

    #[test]
    fn rnr_drops_under_rq_exhaustion() {
        let mut cfg = FabricConfig::ideal();
        cfg.host.rq_depth = 4;
        cfg.host.rx_proc_ns_per_cqe = 100_000; // absurdly slow worker
        let (mut fab, _) = bcast_fabric(3, 64, cfg);
        let stats = fab.run();
        assert!(!stats.all_done());
        assert!(fab.total_rnr_drops() > 0, "expected RNR drops");
    }

    #[test]
    fn group_table_occupancy_tracked() {
        let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
        let mut cfg = FabricConfig::ideal();
        cfg.mcast_table_capacity = Some(3);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..4).map(Rank).collect();
        assert_eq!(fab.num_groups(), 0);
        fab.create_group(&members);
        fab.create_group(&members);
        assert_eq!(fab.num_groups(), 2);
    }

    #[test]
    #[should_panic(expected = "multicast-group table exhausted")]
    fn group_table_capacity_enforced() {
        let topo = Topology::single_switch(4, LinkRate::CX3_56G, 100);
        let mut cfg = FabricConfig::ideal();
        cfg.mcast_table_capacity = Some(2);
        let mut fab: Fabric<Msg> = Fabric::new(topo, cfg);
        let members: Vec<Rank> = (0..4).map(Rank).collect();
        fab.create_group(&members);
        fab.create_group(&members);
        fab.create_group(&members); // third group exceeds the table
    }

    #[test]
    fn deterministic_replay() {
        let (mut f1, _) = bcast_fabric(8, 32, FabricConfig::ucc_default());
        let (mut f2, _) = bcast_fabric(8, 32, FabricConfig::ucc_default());
        let s1 = f1.run();
        let s2 = f2.run();
        assert_eq!(s1.per_rank_done, s2.per_rank_done);
        assert_eq!(s1.events, s2.events);
    }

    /// Ping-pong over control messages + one RDMA read.
    struct PingPong {
        peer: Rank,
        hops_left: u32,
        read_done: bool,
    }

    impl RankApp<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                ctx.post_msg(self.peer, QpNum(0), 1, 64);
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_, Msg>, cqe: Cqe, payload: Payload<Msg>) {
            match cqe.opcode {
                CqeOpcode::Recv => {
                    let Payload::Msg(v) = payload else {
                        panic!("expected message")
                    };
                    if self.hops_left > 0 {
                        self.hops_left -= 1;
                        ctx.post_msg(self.peer, QpNum(0), v + 1, 64);
                    } else if ctx.rank() == Rank(0) {
                        // Finish with a read of 8 KiB from the peer.
                        ctx.post_rdma_read(QpNum(0), self.peer, 8192, 0xfe7c);
                    } else {
                        // Final reply lets rank 0 drain its own count.
                        ctx.post_msg(self.peer, QpNum(0), v + 1, 64);
                        ctx.mark_done();
                    }
                }
                CqeOpcode::RdmaReadDone => {
                    assert_eq!(cqe.wr_id, 0xfe7c);
                    assert_eq!(cqe.byte_len, 8192);
                    self.read_done = true;
                    ctx.mark_done();
                }
                _ => panic!("unexpected opcode"),
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _token: u64) {}
    }

    #[test]
    fn control_messages_and_rdma_read_roundtrip() {
        let topo = Topology::back_to_back(LinkRate::CX7_200G, 50);
        let mut fab: Fabric<Msg> = Fabric::new(topo, FabricConfig::ideal());
        for r in [Rank(0), Rank(1)] {
            fab.add_qp(r, Transport::Rc, 0);
            fab.set_app(
                r,
                Box::new(PingPong {
                    peer: if r == Rank(0) { Rank(1) } else { Rank(0) },
                    hops_left: 4,
                    read_done: false,
                }),
            );
        }
        let stats = fab.run();
        assert!(stats.all_done());
        // Mark-done of rank 1 happens before rank 0's read completes.
        let d0 = stats.per_rank_done[0].unwrap();
        let d1 = stats.per_rank_done[1].unwrap();
        assert!(d0 > d1);
    }

    /// App that arms a timer and records the fire time.
    struct TimerApp {
        fired_at: Option<SimTime>,
    }

    impl RankApp<Msg> for TimerApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.rank() == Rank(0) {
                ctx.set_timer(12_345, 7);
            } else {
                ctx.mark_done();
            }
        }
        fn on_cqe(&mut self, _ctx: &mut Ctx<'_, Msg>, _cqe: Cqe, _p: Payload<Msg>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
            assert_eq!(token, 7);
            self.fired_at = Some(ctx.now());
            ctx.mark_done();
        }
    }

    #[test]
    fn timers_fire_on_schedule() {
        let topo = Topology::back_to_back(LinkRate::CX7_200G, 50);
        let mut fab: Fabric<Msg> = Fabric::new(topo, FabricConfig::ideal());
        fab.add_qp(Rank(0), Transport::Rc, 0);
        fab.add_qp(Rank(1), Transport::Rc, 0);
        fab.set_app(Rank(0), Box::new(TimerApp { fired_at: None }));
        fab.set_app(Rank(1), Box::new(TimerApp { fired_at: None }));
        let stats = fab.run();
        assert_eq!(stats.per_rank_done[0], Some(SimTime(12_345)));
    }

    #[test]
    fn worker_serialization_delays_cqes() {
        // With one worker and a large per-CQE cost, completion times are
        // paced by the worker, not the wire.
        let mut cfg = FabricConfig::ideal();
        cfg.host.rx_proc_ns_per_cqe = 1000;
        let (mut fab, _) = bcast_fabric(2, 32, cfg);
        let stats = fab.run();
        let done = stats.per_rank_done[1].unwrap().as_ns();
        assert!(done >= 32 * 1000, "worker pacing not applied: {done}");
    }
}
