//! The endpoint application interface: protocol state machines implement
//! [`RankApp`] and interact with the fabric through [`Ctx`].
//!
//! Everything is event-driven: the fabric calls back into the app when a
//! completion surfaces from a worker thread, when a timer fires, or when
//! the NIC send queue drains; the app responds by posting work requests.
//! This mirrors the structure of the paper's progress engine (Fig. 9):
//! the application thread and the TX/RX workers communicate through
//! queues and signals, and all data-plane work happens in reaction to
//! completions.

use crate::fabric::Inner;
use crate::time::SimTime;
use mcag_verbs::{Cqe, ImmData, McastGroupId, QpNum, Rank};

/// What a delivered packet carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload<M> {
    /// A data chunk descriptor: `origin`'s buffer chunk number `psn`.
    /// (The DES moves descriptors, not bytes; the threaded memfabric is
    /// where real payload bytes flow.)
    Chunk {
        /// Rank whose send buffer this chunk belongs to.
        origin: Rank,
        /// Chunk index within `origin`'s send buffer.
        psn: u32,
    },
    /// A protocol control message.
    Msg(M),
    /// No payload (e.g. RDMA read completions identified by `wr_id`).
    Empty,
}

/// A per-rank protocol endpoint driven by the fabric.
///
/// The `Any + Send` supertraits are load-bearing: `Any` lets drivers
/// harvest their concrete app (and the results it owns) back out of the
/// fabric via [`crate::Fabric::take_app_as`] after a run, and `Send`
/// guarantees — at compile time — that a fully wired simulation (fabric
/// plus apps) can move to a worker thread of the fork-join sweep
/// executor. An app holding an `Rc`/`RefCell` result sink fails to
/// *build*, rather than silently re-serializing every sweep.
pub trait RankApp<M>: std::any::Any + Send {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);

    /// A completion surfaced from one of this rank's RX workers.
    fn on_cqe(&mut self, ctx: &mut Ctx<'_, M>, cqe: Cqe, payload: Payload<M>);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64);

    /// The NIC send queue fully drained (requested via
    /// [`Ctx::notify_tx_drained`]) — the DES equivalent of the send worker
    /// observing its batched send completions.
    fn on_tx_drained(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}
}

/// Handle through which an app interacts with the fabric.
pub struct Ctx<'a, M> {
    pub(crate) inner: &'a mut Inner<M>,
    pub(crate) rank: Rank,
}

impl<M: Clone + 'static> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total ranks in the fabric.
    pub fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    /// Post a multicast datagram carrying chunk `psn` of `origin`'s buffer
    /// (normally `origin == self.rank()`; relays would differ). `len` is
    /// the payload length in bytes.
    pub fn post_mcast_chunk(
        &mut self,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        origin: Rank,
        psn: u32,
        len: usize,
    ) {
        self.inner
            .post_mcast(self.rank, qp, group, imm, origin, psn, len);
    }

    /// Post a reliable control message to `dst` (slow-path RC semantics:
    /// never dropped, still consumes wire time).
    pub fn post_msg(&mut self, dst: Rank, dst_qp: QpNum, msg: M, len: usize) {
        self.inner.post_msg(self.rank, dst, dst_qp, msg, len);
    }

    /// Post a unicast data chunk to `dst` (two-sided). Reliable chunks
    /// model RC/UC-connected traffic; unreliable ones can suffer fabric
    /// drops like multicast datagrams.
    #[allow(clippy::too_many_arguments)]
    pub fn post_unicast_chunk(
        &mut self,
        dst: Rank,
        dst_qp: QpNum,
        imm: Option<ImmData>,
        origin: Rank,
        psn: u32,
        len: usize,
        reliable: bool,
    ) {
        self.inner
            .post_unicast_chunk(self.rank, dst, dst_qp, imm, origin, psn, len, reliable);
    }

    /// Issue a one-sided RDMA Read of `len` bytes from `dst` over `qp`
    /// (RC): the remote NIC answers in hardware; completion arrives as a
    /// [`mcag_verbs::CqeOpcode::RdmaReadDone`] CQE with `wr_id == tag`.
    pub fn post_rdma_read(&mut self, qp: QpNum, dst: Rank, len: usize, tag: u64) {
        self.inner.post_rdma_read(self.rank, qp, dst, len, tag);
    }

    /// Contribute chunk `psn` (shard owned by `owner`) to an in-network
    /// reduction over `group`: switches merge contributions up the tree
    /// and `owner` receives one reduced chunk on `owner_qp` — the
    /// SHARP-style Reduce-Scatter substrate of Section II.
    #[allow(clippy::too_many_arguments)]
    pub fn post_inc_chunk(
        &mut self,
        qp: QpNum,
        group: McastGroupId,
        imm: ImmData,
        owner: Rank,
        owner_qp: QpNum,
        psn: u32,
        len: usize,
    ) {
        self.inner
            .post_inc(self.rank, qp, group, imm, owner, owner_qp, psn, len);
    }

    /// Arm a one-shot timer `delay_ns` from now; fires `on_timer(token)`.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.inner.set_timer(self.rank, delay_ns, token);
    }

    /// Request `on_tx_drained(token)` once every send queued on `qp` has
    /// left the NIC.
    pub fn notify_tx_drained(&mut self, qp: QpNum, token: u64) {
        self.inner.notify_tx_drained(self.rank, qp, token);
    }

    /// Declare this rank's collective complete (records completion time;
    /// the run ends when every rank is done).
    pub fn mark_done(&mut self) {
        self.inner.mark_done(self.rank);
    }

    /// RNR drops observed at this rank's NIC so far.
    pub fn rnr_drops(&self) -> u64 {
        self.inner.rnr_drops(self.rank)
    }
}
