//! Mid-run fabric health snapshots — the subnet manager's view.
//!
//! The reactive scheduler and the SM rebuild loop both need a cheap
//! answer to "what is broken right now?" without walking the full
//! [`crate::counters::TrafficReport`]. A [`FabricHealth`] snapshot is
//! one `Vec` of per-link [`LinkHealth`] rows harvested from the live
//! fault state and counters: current up/down/degraded status plus the
//! cumulative `fault_drops` and `downtime_ns` the link has accrued.
//! Deltas between two snapshots of the same fabric give the per-window
//! fault activity the scheduler steers on.

use crate::topology::{LinkId, NodeId, NodeKind, Topology};

/// Health of one directed link at the snapshot instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkHealth {
    /// Is the link currently up?
    pub up: bool,
    /// Is the link up but running below line rate?
    pub degraded: bool,
    /// Packet copies lost to down-link windows so far (cumulative).
    pub fault_drops: u64,
    /// Simulated nanoseconds spent down so far, including any open
    /// outage closed at the snapshot instant (cumulative).
    pub downtime_ns: u64,
}

impl LinkHealth {
    /// A pristine link: up, full rate, no losses.
    pub fn healthy() -> LinkHealth {
        LinkHealth {
            up: true,
            degraded: false,
            fault_drops: 0,
            downtime_ns: 0,
        }
    }
}

/// A point-in-time health snapshot of every link in one fabric,
/// harvestable mid-run via `Fabric::health` (the fabric is not
/// perturbed: no event is scheduled, no counter reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricHealth {
    links: Vec<LinkHealth>,
}

impl FabricHealth {
    /// Wrap per-link rows (indexed by [`LinkId`]).
    pub fn new(links: Vec<LinkHealth>) -> FabricHealth {
        FabricHealth { links }
    }

    /// Health of one directed link.
    pub fn link(&self, l: LinkId) -> &LinkHealth {
        &self.links[l.idx()]
    }

    /// All per-link rows.
    pub fn links(&self) -> &[LinkHealth] {
        &self.links
    }

    /// Number of links currently down.
    pub fn down_links(&self) -> usize {
        self.links.iter().filter(|l| !l.up).count()
    }

    /// Cumulative fault drops summed over links.
    pub fn total_fault_drops(&self) -> u64 {
        self.links.iter().map(|l| l.fault_drops).sum()
    }

    /// Cumulative downtime summed over links.
    pub fn total_downtime_ns(&self) -> u64 {
        self.links.iter().map(|l| l.downtime_ns).sum()
    }

    /// Switches with *every* attached link currently down — the SM's
    /// "chassis is dark" diagnosis that triggers a multicast tree
    /// rebuild. A switch with one surviving link still forwards, so it
    /// does not qualify.
    pub fn dead_switches(&self, topo: &Topology) -> Vec<NodeId> {
        (0..topo.num_nodes() as u32)
            .map(NodeId)
            .filter(|&n| matches!(topo.kind(n), NodeKind::Switch { .. }))
            .filter(|&n| {
                let mut any = false;
                for id in 0..topo.num_links() as u32 {
                    let lk = topo.link(LinkId(id));
                    if lk.src == n || lk.dst == n {
                        any = true;
                        if self.links[id as usize].up {
                            return false;
                        }
                    }
                }
                any
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcag_verbs::LinkRate;

    #[test]
    fn dead_switch_requires_every_link_down() {
        let topo = Topology::fat_tree_two_level(4, 2, 2, 1, LinkRate::CX3_56G, 100);
        let mut rows = vec![LinkHealth::healthy(); topo.num_links()];
        let spine = topo.switches_at_level(2)[0];
        let touching: Vec<usize> = (0..topo.num_links() as u32)
            .filter(|&i| {
                let lk = topo.link(LinkId(i));
                lk.src == spine || lk.dst == spine
            })
            .map(|i| i as usize)
            .collect();
        // All but one link down: still alive.
        for &i in &touching[1..] {
            rows[i].up = false;
        }
        let h = FabricHealth::new(rows.clone());
        assert!(h.dead_switches(&topo).is_empty());
        assert_eq!(h.down_links(), touching.len() - 1);
        // Last link down: dead.
        rows[touching[0]].up = false;
        let h = FabricHealth::new(rows);
        assert_eq!(h.dead_switches(&topo), vec![spine]);
    }

    #[test]
    fn totals_sum_per_link_rows() {
        let mut rows = vec![LinkHealth::healthy(); 3];
        rows[0].fault_drops = 2;
        rows[2].fault_drops = 5;
        rows[1].downtime_ns = 700;
        let h = FabricHealth::new(rows);
        assert_eq!(h.total_fault_drops(), 7);
        assert_eq!(h.total_downtime_ns(), 700);
        assert_eq!(h.down_links(), 0);
    }
}
